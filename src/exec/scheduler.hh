/**
 * @file
 * Parallel execution engine shared by campaigns, characterization
 * and the figure/table benches: a fixed-size thread pool with
 * per-worker work-stealing deques, a TaskGroup/TaskGraph/
 * parallel_for front-end, cancellation on first error, and per-task
 * scheduling metrics (docs/PARALLELISM.md).
 *
 * Design constraints, in priority order:
 *
 *  1. Determinism of *results*: the scheduler never decides what a
 *     task computes, only when and where it runs.  Callers write
 *     results into per-index slots and perform reductions in index
 *     order after the parallel region, so an N-thread run is
 *     bitwise identical to a 1-thread run.
 *  2. No deadlock under nesting: a thread blocked in
 *     TaskGroup::wait or parallel_for executes other pool tasks
 *     while it waits, so nested parallel_for on the same pool makes
 *     progress even with a single worker.
 *  3. Fail fast: the first exception a task throws cancels every
 *     task of its group that has not started, is rethrown to the
 *     waiter, and leaves the pool reusable.
 */

#ifndef WSEL_EXEC_SCHEDULER_HH
#define WSEL_EXEC_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wsel::exec
{

/** std::thread::hardware_concurrency, never 0. */
unsigned hardwareConcurrency();

/**
 * Default worker count: $WSEL_JOBS when set to an integer in
 * [1, 1024], else hardwareConcurrency().  An invalid WSEL_JOBS is
 * warned about once and ignored.
 */
unsigned defaultJobs();

/** Resolve a user job request: 0 means defaultJobs(). */
unsigned resolveJobs(std::size_t requested);

/**
 * Snapshot of scheduler counters since pool construction.  Queue
 * latency is submit-to-start; run time is the task body only.
 * Counters are aggregated under one mutex per task completion, so a
 * snapshot is internally consistent: tasksRun + tasksCancelled
 * equals the number of submitted task bodies that have finished,
 * and tasksStolen + tasksHelped <= tasksRun.
 */
struct SchedulerStats
{
    unsigned threads = 0;             ///< pool worker count
    std::uint64_t tasksRun = 0;       ///< bodies executed
    std::uint64_t tasksCancelled = 0; ///< bodies skipped (cancel)
    std::uint64_t tasksStolen = 0;    ///< run by a non-home worker
    std::uint64_t tasksHelped = 0;    ///< run by a waiting thread
    double queueSeconds = 0.0;        ///< total submit-to-start
    double runSeconds = 0.0;          ///< total body wall time
    double maxQueueSeconds = 0.0;     ///< worst single queue wait
    double maxRunSeconds = 0.0;       ///< longest single task
};

/**
 * Fixed-size worker pool with per-worker deques.  Submission goes
 * to the submitting worker's own deque (locality for nested work)
 * or round-robin from external threads; an idle worker first drains
 * its own deque front-to-back, then steals from the back of a
 * sibling's deque.  Tasks are claimed exactly once.
 *
 * The pool itself is task-agnostic; use TaskGroup, TaskGraph or
 * parallel_for rather than submitting raw tasks.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means defaultJobs(). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins workers; outstanding tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Consistent snapshot of the counters. */
    SchedulerStats stats() const;

    /**
     * Run one queued task on the calling thread if any is
     * available; never blocks.  Used by waiters so that a blocked
     * parallel region lends its thread to the pool.
     * @return true when a task was executed.
     */
    bool helpOne();

  private:
    friend class TaskGroup;

    struct Task
    {
        std::function<void()> body;
        std::chrono::steady_clock::time_point enqueued;
    };

    /** One worker's deque; the mutex covers only this deque. */
    struct Worker
    {
        std::mutex mu;
        std::deque<Task> q;
    };

    /** Enqueue a task (TaskGroup wraps all bookkeeping around it). */
    void submit(std::function<void()> body);

    /**
     * Claim one task: own deque front first (when the caller is
     * worker @p self), then steal from siblings' backs.
     * @param self Caller's worker index, or SIZE_MAX for external.
     */
    bool claim(std::size_t self, Task &out, bool &stolen);

    /** Decrement pending_ and refresh the queue-depth gauge. */
    void noteClaimed();

    /** Claim-and-run helper shared by workers and helpOne. */
    bool runOne(std::size_t self, bool helping);

    void workerLoop(std::size_t idx);

    /** Called by TaskGroup when a body is skipped by cancellation. */
    void noteCancelled();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Queued-but-unclaimed task count (wake predicate). */
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::uint64_t> rr_{0}; ///< round-robin submit cursor
    std::atomic<bool> stop_{false};
    std::mutex waitMu_;
    std::condition_variable cv_;

    mutable std::mutex statsMu_;
    SchedulerStats stats_;
};

/**
 * A set of tasks that completes (or fails) together.  The first
 * exception thrown by a task cancels all not-yet-started tasks of
 * the group and is rethrown from wait().  wait() helps execute pool
 * tasks, so groups nest without deadlock.  A group is single-use:
 * submit, wait, destroy.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** Drains outstanding tasks; any error is swallowed here. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task (skipped if the group is cancelled). */
    void run(std::function<void()> fn);

    /**
     * Block until every submitted task has finished or been
     * skipped, executing pool tasks while waiting.  Rethrows the
     * first error any task raised.
     */
    void wait();

    /** Skip every task that has not started yet. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

  private:
    ThreadPool &pool_;
    std::atomic<bool> cancelled_{false};
    std::mutex mu_;               ///< guards pending_, error_
    std::condition_variable cv_;  ///< signalled when pending_ -> 0
    std::size_t pending_ = 0;
    std::exception_ptr error_;
};

/**
 * Explicit dependency graph over the pool: nodes are tasks, edges
 * are happens-before constraints.  run() releases nodes as their
 * dependencies complete, cancels the graph on the first error
 * (dependents of a failed node never run) and rethrows it;
 * an unsatisfiable graph (dependency cycle) is WSEL_FATAL.
 * Single-use, single-threaded construction.
 */
class TaskGraph
{
  public:
    using NodeId = std::size_t;

    explicit TaskGraph(ThreadPool &pool) : pool_(pool) {}

    TaskGraph(const TaskGraph &) = delete;
    TaskGraph &operator=(const TaskGraph &) = delete;

    /**
     * Add a node that runs after every node in @p deps.
     * @return Id to use as a dependency of later nodes.
     */
    NodeId add(std::function<void()> fn,
               const std::vector<NodeId> &deps = {});

    /** Execute the whole graph; rethrows the first task error. */
    void run();

  private:
    struct Node
    {
        std::function<void()> fn;
        std::vector<NodeId> dependents;
        std::size_t waits = 0; ///< unmet dependency count
    };

    void release(TaskGroup &group, NodeId id);

    ThreadPool &pool_;
    std::mutex mu_; ///< guards waits/executed_ during run()
    std::vector<std::unique_ptr<Node>> nodes_;
    std::size_t executed_ = 0;
    bool running_ = false;
};

/**
 * Apply @p fn to every index in [begin, end), @p grain indices per
 * task.  Runs inline (exact serial order, no pool traffic) when the
 * pool has one worker or the range fits a single grain; otherwise
 * submits chunks and helps execute while waiting.  @p fn must be
 * safe to invoke concurrently on distinct indices; the first
 * exception cancels remaining chunks and is rethrown.
 */
template <typename Fn>
void
parallel_for(ThreadPool &pool, std::size_t begin, std::size_t end,
             Fn &&fn, std::size_t grain = 1)
{
    if (begin >= end)
        return;
    if (grain == 0)
        grain = 1;
    if (pool.threads() <= 1 || end - begin <= grain) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    TaskGroup group(pool);
    for (std::size_t at = begin; at < end; at += grain) {
        const std::size_t hi = std::min(end, at + grain);
        group.run([&fn, at, hi] {
            for (std::size_t i = at; i < hi; ++i)
                fn(i);
        });
    }
    group.wait();
}

} // namespace wsel::exec

#endif // WSEL_EXEC_SCHEDULER_HH
