#include "exec/scheduler.hh"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/logging.hh"

namespace wsel::exec
{

namespace
{

/** Worker identity of the current thread, for submit locality. */
struct WorkerTls
{
    ThreadPool *pool = nullptr;
    std::size_t index = SIZE_MAX;
};

thread_local WorkerTls tls;

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

unsigned
hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
defaultJobs()
{
    const char *env = std::getenv("WSEL_JOBS");
    if (env && *env) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= 1024)
            return static_cast<unsigned>(v);
        warn(std::string("ignoring invalid WSEL_JOBS '") + env +
             "' (want an integer in [1, 1024])");
    }
    return hardwareConcurrency();
}

unsigned
resolveJobs(std::size_t requested)
{
    if (requested == 0)
        return defaultJobs();
    return static_cast<unsigned>(std::min<std::size_t>(requested,
                                                       1024));
}

// -------------------------------------------------------------------
// ThreadPool
// -------------------------------------------------------------------

ThreadPool::ThreadPool(std::size_t threads)
{
    const unsigned n = resolveJobs(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    stats_.threads = n;
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    {
        // Pair with the waiters' predicate check so no worker can
        // miss the shutdown notification.
        std::lock_guard<std::mutex> g(waitMu_);
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> body)
{
    Task t{std::move(body), std::chrono::steady_clock::now()};
    std::size_t target;
    if (tls.pool == this && tls.index < workers_.size()) {
        target = tls.index; // locality for nested submissions
    } else {
        target = static_cast<std::size_t>(
                     rr_.fetch_add(1, std::memory_order_relaxed)) %
                 workers_.size();
    }
    {
        std::lock_guard<std::mutex> g(workers_[target]->mu);
        workers_[target]->q.push_back(std::move(t));
    }
    const std::uint64_t depth =
        pending_.fetch_add(1, std::memory_order_release) + 1;
    if (obs::metricsEnabled()) {
        static obs::Gauge &g = obs::gauge("scheduler.queue_depth");
        g.setAlways(static_cast<double>(depth));
    }
    {
        std::lock_guard<std::mutex> g(waitMu_);
    }
    cv_.notify_one();
}

bool
ThreadPool::claim(std::size_t self, Task &out, bool &stolen)
{
    const std::size_t n = workers_.size();
    if (self < n) {
        Worker &own = *workers_[self];
        std::lock_guard<std::mutex> g(own.mu);
        if (!own.q.empty()) {
            out = std::move(own.q.front());
            own.q.pop_front();
            noteClaimed();
            stolen = false;
            return true;
        }
    }
    const std::size_t start = self < n ? self + 1 : 0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t v = (start + k) % n;
        if (v == self)
            continue;
        Worker &victim = *workers_[v];
        std::lock_guard<std::mutex> g(victim.mu);
        if (!victim.q.empty()) {
            out = std::move(victim.q.back());
            victim.q.pop_back();
            noteClaimed();
            stolen = true;
            return true;
        }
    }
    if (obs::metricsEnabled()) {
        static obs::Counter &fails =
            obs::counter("scheduler.steal_fail");
        fails.inc();
    }
    return false;
}

void
ThreadPool::noteClaimed()
{
    const std::uint64_t depth =
        pending_.fetch_sub(1, std::memory_order_release) - 1;
    if (obs::metricsEnabled()) {
        static obs::Gauge &g = obs::gauge("scheduler.queue_depth");
        g.setAlways(static_cast<double>(depth));
    }
}

bool
ThreadPool::runOne(std::size_t self, bool helping)
{
    Task t;
    bool stolen = false;
    if (!claim(self, t, stolen))
        return false;
    const auto start = std::chrono::steady_clock::now();
    const double queued = seconds(start - t.enqueued);
    {
        obs::Span span(helping ? "exec.task.helped" : "exec.task");
        t.body(); // group wrappers never let exceptions escape
    }
    const auto end = std::chrono::steady_clock::now();
    const double ran = seconds(end - start);
    if (obs::metricsEnabled()) {
        static obs::Counter &run = obs::counter("scheduler.tasks_run");
        static obs::Counter &stole =
            obs::counter("scheduler.tasks_stolen");
        static obs::Counter &helped =
            obs::counter("scheduler.tasks_helped");
        static obs::LatencyHistogram &queueNs =
            obs::histogram("scheduler.queue_ns");
        static obs::LatencyHistogram &runNs =
            obs::histogram("scheduler.run_ns");
        run.inc();
        if (stolen && !helping)
            stole.inc();
        if (helping)
            helped.inc();
        queueNs.record(start - t.enqueued);
        runNs.record(end - start);
    }
    {
        std::lock_guard<std::mutex> g(statsMu_);
        ++stats_.tasksRun;
        if (stolen && !helping)
            ++stats_.tasksStolen;
        if (helping)
            ++stats_.tasksHelped;
        stats_.queueSeconds += queued;
        stats_.runSeconds += ran;
        stats_.maxQueueSeconds =
            std::max(stats_.maxQueueSeconds, queued);
        stats_.maxRunSeconds = std::max(stats_.maxRunSeconds, ran);
    }
    return true;
}

bool
ThreadPool::helpOne()
{
    const std::size_t self =
        tls.pool == this ? tls.index : SIZE_MAX;
    return runOne(self, /*helping=*/tls.pool != this);
}

void
ThreadPool::workerLoop(std::size_t idx)
{
    tls.pool = this;
    tls.index = idx;
    for (;;) {
        if (runOne(idx, /*helping=*/false))
            continue;
        std::unique_lock<std::mutex> lk(waitMu_);
        cv_.wait(lk, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0)
            break;
    }
    tls.pool = nullptr;
    tls.index = SIZE_MAX;
}

void
ThreadPool::noteCancelled()
{
    if (obs::metricsEnabled()) {
        static obs::Counter &c =
            obs::counter("scheduler.tasks_cancelled");
        c.inc();
    }
    std::lock_guard<std::mutex> g(statsMu_);
    ++stats_.tasksCancelled;
}

SchedulerStats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> g(statsMu_);
    return stats_;
}

// -------------------------------------------------------------------
// TaskGroup
// -------------------------------------------------------------------

TaskGroup::~TaskGroup()
{
    // Outstanding tasks reference this group; they must finish (or
    // be skipped) before the group's storage goes away.
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            if (pending_ == 0)
                return;
        }
        if (pool_.helpOne())
            continue;
        std::unique_lock<std::mutex> lk(mu_);
        if (pending_ == 0)
            return;
        cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
}

void
TaskGroup::run(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> g(mu_);
        ++pending_;
    }
    pool_.submit([this, fn = std::move(fn)] {
        if (!cancelled()) {
            try {
                fn();
            } catch (...) {
                std::lock_guard<std::mutex> g(mu_);
                if (!error_)
                    error_ = std::current_exception();
                cancelled_.store(true, std::memory_order_release);
            }
        } else {
            pool_.noteCancelled();
        }
        std::lock_guard<std::mutex> g(mu_);
        if (--pending_ == 0)
            cv_.notify_all();
    });
}

void
TaskGroup::wait()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            if (pending_ == 0)
                break;
        }
        if (pool_.helpOne())
            continue;
        // Nothing claimable right now (our remaining tasks are
        // in flight on workers, or queued behind other groups'
        // work): sleep briefly, then look again.  The timed wait
        // keeps a waiter live even when the finish notification
        // cannot reach it (e.g. dependents submitted by a nested
        // graph while every worker is busy elsewhere).
        std::unique_lock<std::mutex> lk(mu_);
        if (pending_ == 0)
            break;
        cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
    std::lock_guard<std::mutex> g(mu_);
    if (error_)
        std::rethrow_exception(error_);
}

// -------------------------------------------------------------------
// TaskGraph
// -------------------------------------------------------------------

TaskGraph::NodeId
TaskGraph::add(std::function<void()> fn,
               const std::vector<NodeId> &deps)
{
    if (running_)
        WSEL_FATAL("TaskGraph::add while the graph is running");
    auto node = std::make_unique<Node>();
    node->fn = std::move(fn);
    node->waits = deps.size();
    const NodeId id = nodes_.size();
    for (NodeId d : deps) {
        if (d >= id)
            WSEL_FATAL("TaskGraph dependency " << d
                       << " is not an earlier node of the graph");
        nodes_[d]->dependents.push_back(id);
    }
    nodes_.push_back(std::move(node));
    return id;
}

void
TaskGraph::release(TaskGroup &group, NodeId id)
{
    group.run([this, &group, id] {
        nodes_[id]->fn();
        // Release dependents before this task reports completion,
        // so the group's pending count can never reach zero while
        // runnable nodes remain.
        std::vector<NodeId> ready;
        {
            std::lock_guard<std::mutex> g(mu_);
            ++executed_;
            for (NodeId dep : nodes_[id]->dependents) {
                if (--nodes_[dep]->waits == 0)
                    ready.push_back(dep);
            }
        }
        for (NodeId r : ready)
            release(group, r);
    });
}

void
TaskGraph::run()
{
    if (running_)
        WSEL_FATAL("TaskGraph::run called twice");
    running_ = true;
    TaskGroup group(pool_);
    // Collect the initially ready nodes before submitting any of
    // them: once a node runs, workers decrement dependents' waits
    // concurrently, and reading waits here unsynchronized could
    // observe a dependent hitting zero mid-scan and release it a
    // second time.
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id]->waits == 0)
            ready.push_back(id);
    }
    for (NodeId id : ready)
        release(group, id);
    group.wait(); // rethrows the first node error
    std::lock_guard<std::mutex> g(mu_);
    if (executed_ != nodes_.size())
        WSEL_FATAL("TaskGraph has a dependency cycle: "
                   << executed_ << " of " << nodes_.size()
                   << " nodes runnable");
}

} // namespace wsel::exec
