#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "stats/logging.hh"

namespace wsel
{

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::mean() const
{
    return n_ ? mean_ : std::numeric_limits<double>::quiet_NaN();
}

double
RunningStats::variancePopulation() const
{
    return n_ ? m2_ / static_cast<double>(n_)
              : std::numeric_limits<double>::quiet_NaN();
}

double
RunningStats::varianceSample() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1)
                   : std::numeric_limits<double>::quiet_NaN();
}

double
RunningStats::stddevPopulation() const
{
    return std::sqrt(variancePopulation());
}

double
RunningStats::stddevSample() const
{
    return std::sqrt(varianceSample());
}

double
RunningStats::coefficientOfVariation() const
{
    if (n_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double sigma = stddevPopulation();
    if (mean_ == 0.0) {
        return sigma == 0.0 ? std::numeric_limits<double>::quiet_NaN()
                            : std::numeric_limits<double>::infinity();
    }
    return sigma / mean_;
}

RunningStats
summarize(std::span<const double> xs)
{
    RunningStats s;
    for (double x : xs)
        s.add(x);
    return s;
}

double
arithmeticMean(std::span<const double> xs)
{
    return summarize(xs).mean();
}

double
harmonicMean(std::span<const double> xs)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double inv_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            WSEL_FATAL("harmonic mean requires positive values, got "
                       << x);
        inv_sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv_sum;
}

double
geometricMean(std::span<const double> xs)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            WSEL_FATAL("geometric mean requires positive values, got "
                       << x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
weightedArithmeticMean(std::span<const double> xs,
                       std::span<const double> ws)
{
    if (xs.size() != ws.size())
        WSEL_FATAL("weighted mean: " << xs.size() << " values but "
                                     << ws.size() << " weights");
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (ws[i] < 0.0)
            WSEL_FATAL("negative weight " << ws[i]);
        num += ws[i] * xs[i];
        den += ws[i];
    }
    if (den == 0.0)
        WSEL_FATAL("weighted mean: all weights are zero");
    return num / den;
}

double
weightedHarmonicMean(std::span<const double> xs,
                     std::span<const double> ws)
{
    if (xs.size() != ws.size())
        WSEL_FATAL("weighted mean: " << xs.size() << " values but "
                                     << ws.size() << " weights");
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (ws[i] < 0.0)
            WSEL_FATAL("negative weight " << ws[i]);
        if (xs[i] <= 0.0)
            WSEL_FATAL("weighted harmonic mean requires positive "
                       "values, got " << xs[i]);
        num += ws[i];
        den += ws[i] / xs[i];
    }
    if (num == 0.0)
        WSEL_FATAL("weighted mean: all weights are zero");
    return num / den;
}

double
pearsonCorrelation(std::span<const double> xs,
                   std::span<const double> ys)
{
    if (xs.size() != ys.size())
        WSEL_FATAL("correlation needs equal-length series, got "
                   << xs.size() << " and " << ys.size());
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    const RunningStats sx = summarize(xs);
    const RunningStats sy = summarize(ys);
    const double denom =
        sx.stddevPopulation() * sy.stddevPopulation();
    if (denom == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    double cov = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
    cov /= static_cast<double>(xs.size());
    return cov / denom;
}

QuantileSketch::QuantileSketch(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        WSEL_FATAL("quantile sketch needs capacity >= 1");
    entries_.reserve(capacity_);
}

namespace
{

std::uint64_t
mixKey(std::uint64_t key)
{
    // FNV-1a over the 8 little-endian key bytes.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (key >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

void
QuantileSketch::push(const Entry &e)
{
    if (entries_.size() < capacity_) {
        entries_.push_back(e);
        std::push_heap(entries_.begin(), entries_.end());
        return;
    }
    if (!(e < entries_.front()))
        return; // hashes at or above the current worst: drop.
    std::pop_heap(entries_.begin(), entries_.end());
    entries_.back() = e;
    std::push_heap(entries_.begin(), entries_.end());
}

void
QuantileSketch::add(std::uint64_t key, double value)
{
    ++population_;
    push(Entry{mixKey(key), key, value});
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (capacity_ != other.capacity_)
        WSEL_FATAL("merging sketches with capacities "
                   << capacity_ << " and " << other.capacity_);
    population_ += other.population_;
    for (const Entry &e : other.entries_)
        push(e);
}

double
QuantileSketch::quantile(double q) const
{
    std::vector<double> vals = sortedValues();
    if (vals.empty())
        return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0 || q > 1.0)
        WSEL_FATAL("quantile " << q << " outside [0, 1]");
    const double pos = q * static_cast<double>(vals.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, vals.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return vals[lo] + frac * (vals[hi] - vals[lo]);
}

std::vector<double>
QuantileSketch::sortedValues() const
{
    std::vector<double> vals;
    vals.reserve(entries_.size());
    for (const Entry &e : entries_)
        vals.push_back(e.value);
    std::sort(vals.begin(), vals.end());
    return vals;
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0 || q > 1.0)
        WSEL_FATAL("quantile " << q << " outside [0, 1]");
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

} // namespace wsel
