#include "stats/persist_v3.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::persist
{

namespace
{

constexpr char kManifestMagic[8] = {'W', 'S', 'V', '3',
                                    'M', 'A', 'N', 'I'};
constexpr char kShardMagic[8] = {'W', 'S', 'V', '3',
                                 'S', 'H', 'R', 'D'};

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendF64(std::string &out, double v)
{
    appendU64(out, std::bit_cast<std::uint64_t>(v));
}

void
appendString(std::string &out, const std::string &s)
{
    appendU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

void
appendChecksum(std::string &out)
{
    const std::uint64_t sum = fnv1a(out);
    appendU64(out, sum);
}

/** Bounds-checked little-endian reader over a loaded file. */
class Reader
{
  public:
    Reader(std::string_view data, const std::string &what)
        : data_(data), what_(what)
    {
    }

    void
    expectMagic(const char (&magic)[8])
    {
        char got[8];
        bytes(got, 8);
        if (std::memcmp(got, magic, 8) != 0)
            throw CacheInvalid(what_ + ": bad magic");
    }

    std::uint32_t
    u32()
    {
        unsigned char b[4];
        bytes(b, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        unsigned char b[8];
        bytes(b, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (n > remaining())
            throw CacheInvalid(what_ + ": truncated string");
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return data_.size() - pos_; }
    std::size_t pos() const { return pos_; }

    void
    bytes(void *out, std::size_t n)
    {
        if (n > remaining())
            throw CacheInvalid(what_ + ": truncated");
        std::memcpy(out, data_.data() + pos_, n);
        pos_ += n;
    }

  private:
    std::string_view data_;
    std::string what_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path, const std::string &what)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CacheInvalid(what + ": cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        throw CacheInvalid(what + ": read error on " + path);
    return data;
}

/** Split off and verify the trailing checksum; returns the body. */
std::string_view
checkedBody(const std::string &data, const std::string &what)
{
    if (data.size() < 8)
        throw CacheInvalid(what + ": too short for a checksum");
    const std::string_view body(data.data(), data.size() - 8);
    Reader tail(
        std::string_view(data.data() + body.size(), 8), what);
    const std::uint64_t want = tail.u64();
    if (fnv1a(body) != want)
        throw CacheInvalid(what + ": checksum mismatch");
    return body;
}

} // namespace

std::uint64_t
V3Manifest::shardCount() const
{
    if (shardRows == 0)
        WSEL_FATAL("v3 manifest with zero shard rows");
    return (rows() + shardRows - 1) / shardRows;
}

std::uint64_t
V3Manifest::rowsInShard(std::uint64_t shard) const
{
    const std::uint64_t begin = shard * shardRows;
    if (begin >= rows())
        WSEL_FATAL("shard " << shard << " outside campaign of "
                            << rows() << " rows");
    return std::min(shardRows, rows() - begin);
}

std::string
v3ShardName(std::uint64_t shard)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "shard-%06llu.bin",
                  static_cast<unsigned long long>(shard));
    return buf;
}

std::string
v3ManifestPath(const std::string &dir)
{
    return dir + "/manifest.bin";
}

std::string
v3ShardPath(const std::string &dir, std::uint64_t shard)
{
    return dir + "/" + v3ShardName(shard);
}

bool
isV3CampaignDir(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::is_directory(path, ec) &&
           std::filesystem::is_regular_file(v3ManifestPath(path),
                                            ec);
}

void
writeV3Manifest(const std::string &dir, const V3Manifest &m)
{
    if (m.lastRank < m.firstRank)
        WSEL_FATAL("v3 manifest rank range inverted");
    if (m.shardRows == 0)
        WSEL_FATAL("v3 manifest with zero shard rows");
    if (m.refIpc.size() != m.benchmarks.size())
        WSEL_FATAL("v3 manifest refIpc/benchmark size mismatch");
    std::string out;
    out.reserve(256 + 16 * (m.policies.size() +
                            m.benchmarks.size()));
    out.append(kManifestMagic, 8);
    appendU32(out, kV3Version);
    appendU64(out, m.fingerprint);
    appendString(out, m.simulator);
    appendU32(out, m.cores);
    appendU64(out, m.targetUops);
    appendF64(out, m.simSeconds);
    appendU64(out, m.instructions);
    appendU32(out, static_cast<std::uint32_t>(m.policies.size()));
    for (const std::string &p : m.policies)
        appendString(out, p);
    appendU32(out, static_cast<std::uint32_t>(m.benchmarks.size()));
    for (const std::string &b : m.benchmarks)
        appendString(out, b);
    for (double r : m.refIpc)
        appendF64(out, r);
    appendU32(out, m.popBenchmarks);
    appendU32(out, m.popCores);
    appendU64(out, m.firstRank);
    appendU64(out, m.lastRank);
    appendU64(out, m.shardRows);
    appendChecksum(out);
    atomicWriteFile(v3ManifestPath(dir), out);
}

V3Manifest
readV3Manifest(const std::string &dir)
{
    const std::string what = "campaign_v3 manifest";
    const std::string data = slurp(v3ManifestPath(dir), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kManifestMagic);
    const std::uint32_t version = r.u32();
    if (version != kV3Version)
        throw CacheInvalid(what + ": unsupported version " +
                           std::to_string(version));
    // Every size below is bounds-checked *before* it drives an
    // allocation or a multiplication: a manifest is untrusted disk
    // input (truncation, bit rot, a hostile write), so a damaged
    // count must surface as CacheInvalid — quarantine and
    // regenerate — never as a giant reserve() or an overflowed
    // payload-size computation.
    const auto checkCount = [&](std::uint64_t v, std::uint64_t max,
                                const char *field) {
        if (v > max)
            throw CacheInvalid(
                what + ": implausible " + field + " " +
                std::to_string(v) + " (max " + std::to_string(max) +
                ")");
    };
    V3Manifest m;
    m.fingerprint = r.u64();
    m.simulator = r.str();
    checkCount(m.simulator.size(), 64, "simulator-name length");
    m.cores = r.u32();
    checkCount(m.cores, 1024, "core count");
    m.targetUops = r.u64();
    m.simSeconds = r.f64();
    m.instructions = r.u64();
    const std::uint32_t np = r.u32();
    checkCount(np, 4096, "policy count");
    m.policies.reserve(np);
    for (std::uint32_t i = 0; i < np; ++i) {
        m.policies.push_back(r.str());
        checkCount(m.policies.back().size(), 256,
                   "policy-name length");
    }
    const std::uint32_t nb = r.u32();
    checkCount(nb, 1u << 20, "benchmark count");
    m.benchmarks.reserve(nb);
    for (std::uint32_t i = 0; i < nb; ++i) {
        m.benchmarks.push_back(r.str());
        checkCount(m.benchmarks.back().size(), 256,
                   "benchmark-name length");
    }
    m.refIpc.reserve(nb);
    for (std::uint32_t i = 0; i < nb; ++i)
        m.refIpc.push_back(r.f64());
    m.popBenchmarks = r.u32();
    m.popCores = r.u32();
    m.firstRank = r.u64();
    m.lastRank = r.u64();
    m.shardRows = r.u64();
    if (r.remaining() != 0)
        throw CacheInvalid(what + ": trailing bytes");
    if (m.lastRank < m.firstRank || m.shardRows == 0 ||
        m.policies.empty() || m.cores == 0)
        throw CacheInvalid(what + ": inconsistent geometry");
    checkCount(m.popBenchmarks, 1u << 20, "population benchmarks");
    checkCount(m.popCores, 1024, "population cores");
    // Rank range and shard geometry: cap so rows() and every
    // rows-per-shard x policies x cores product fits comfortably
    // in 64 bits (and a single shard's payload in size_t).
    constexpr std::uint64_t kMaxRows = 1ULL << 48;
    checkCount(m.rows(), kMaxRows, "row count");
    checkCount(m.shardRows, kMaxRows, "shard rows");
    const std::uint64_t cells_per_row =
        static_cast<std::uint64_t>(np) * m.cores;
    if (m.shardRows > (1ULL << 32) / std::max<std::uint64_t>(
                                         1, cells_per_row))
        throw CacheInvalid(what +
                           ": shard payload would overflow (" +
                           std::to_string(m.shardRows) + " rows x " +
                           std::to_string(np) + " policies x " +
                           std::to_string(m.cores) + " cores)");
    return m;
}

void
writeV3Shard(const std::string &dir, const V3Manifest &m,
             std::uint64_t shard, std::span<const double> payload)
{
    const std::uint64_t rows = m.rowsInShard(shard);
    const std::size_t want = static_cast<std::size_t>(rows) *
                             m.policies.size() * m.cores;
    if (payload.size() != want)
        WSEL_FATAL("shard " << shard << " payload has "
                            << payload.size() << " cells, expected "
                            << want);
    std::string out;
    out.reserve(44 + payload.size() * 8 + 8);
    out.append(kShardMagic, 8);
    appendU32(out, kV3Version);
    appendU32(out, static_cast<std::uint32_t>(shard));
    appendU64(out, m.fingerprint);
    appendU32(out, m.cores);
    appendU32(out, static_cast<std::uint32_t>(m.policies.size()));
    appendU64(out, m.shardFirstRank(shard));
    appendU32(out, static_cast<std::uint32_t>(rows));
    if constexpr (std::endian::native == std::endian::little) {
        const std::size_t off = out.size();
        out.resize(off + payload.size() * 8);
        std::memcpy(out.data() + off, payload.data(),
                    payload.size() * 8);
    } else {
        for (double v : payload)
            appendF64(out, v);
    }
    appendChecksum(out);
    atomicWriteFile(v3ShardPath(dir, shard), out);
}

std::vector<double>
readV3Shard(const std::string &dir, const V3Manifest &m,
            std::uint64_t shard)
{
    const std::string what = "campaign_v3 " + v3ShardName(shard);
    const std::string data = slurp(v3ShardPath(dir, shard), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kShardMagic);
    if (r.u32() != kV3Version)
        throw CacheInvalid(what + ": unsupported version");
    if (r.u32() != shard)
        throw CacheInvalid(what + ": wrong shard index");
    if (r.u64() != m.fingerprint)
        throw CacheInvalid(what + ": fingerprint mismatch");
    if (r.u32() != m.cores ||
        r.u32() != static_cast<std::uint32_t>(m.policies.size()))
        throw CacheInvalid(what + ": shape mismatch");
    if (r.u64() != m.shardFirstRank(shard))
        throw CacheInvalid(what + ": rank-range mismatch");
    const std::uint64_t rows = r.u32();
    if (rows != m.rowsInShard(shard))
        throw CacheInvalid(what + ": row-count mismatch");
    const std::size_t cells = static_cast<std::size_t>(rows) *
                              m.policies.size() * m.cores;
    if (r.remaining() != cells * 8)
        throw CacheInvalid(what + ": payload size mismatch");
    std::vector<double> payload(cells);
    if constexpr (std::endian::native == std::endian::little) {
        r.bytes(payload.data(), cells * 8);
    } else {
        for (std::size_t i = 0; i < cells; ++i)
            payload[i] = r.f64();
    }
    return payload;
}

} // namespace wsel::persist
