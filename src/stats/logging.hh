/**
 * @file
 * Error-reporting macros, mirroring gem5's fatal/panic distinction.
 *
 * WSEL_FATAL is for conditions that are the user's fault (bad
 * configuration, invalid arguments): it throws wsel::FatalError so
 * that library users (and tests) can catch it.
 *
 * WSEL_PANIC is for conditions that should never happen regardless of
 * what the user does, i.e. an internal bug: it aborts.
 */

#ifndef WSEL_STATS_LOGGING_HH
#define WSEL_STATS_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/dedup.hh"
#include "obs/metrics.hh"

namespace wsel
{

/** Exception thrown for user-caused errors (bad config, bad args). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Build a "file:line: message" string for diagnostics. */
inline std::string
formatMessage(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << file << ":" << line << ": " << msg;
    return os.str();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(formatMessage(file, line, msg));
}

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << formatMessage(file, line, msg)
              << std::endl;
    std::abort();
}

/** Mutex serializing all diagnostic output lines. */
inline std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace detail

/**
 * Emit one diagnostic line to stderr, thread-safely: the text is
 * composed first and issued as a single stream insertion under a
 * global mutex, so concurrent writers (a future parallel campaign
 * runner) cannot interleave characters within a line.
 */
inline void
logLine(const std::string &line)
{
    const std::string out = line + "\n";
    std::lock_guard<std::mutex> g(detail::logMutex());
    std::cerr << out;
}

/**
 * Emit a non-fatal warning to stderr.  Thread-safe (single write
 * per line) and rate-limited: after 20 identical messages, further
 * repeats are suppressed so a hot loop with a persistent problem
 * (e.g. an unwritable cache directory) cannot flood the log.
 *
 * Repeat counting goes through the lock-free table in
 * obs/dedup.hh, so a fully suppressed warning costs one hash plus
 * one relaxed fetch_add and never touches the log mutex — pool
 * workers flooding the same warning no longer serialize on it
 * (tests/test_logging.cc).
 */
inline void
warn(const std::string &msg)
{
    static constexpr std::uint64_t kMaxRepeats = 20;
    static obs::Counter &warns = obs::counter("log.warns");
    warns.inc();
    const std::uint64_t n = obs::noteRepeat(msg);
    if (n > kMaxRepeats)
        return;
    std::string out = "warn: " + msg;
    if (n == kMaxRepeats)
        out += " (suppressing further identical warnings)";
    out += "\n";
    std::lock_guard<std::mutex> g(detail::logMutex());
    std::cerr << out;
}

} // namespace wsel

/** User error: throw wsel::FatalError with a streamed message. */
#define WSEL_FATAL(msg_expr)                                          \
    do {                                                              \
        std::ostringstream wsel_fatal_os_;                            \
        wsel_fatal_os_ << msg_expr;                                   \
        ::wsel::detail::fatalImpl(__FILE__, __LINE__,                 \
                                  wsel_fatal_os_.str());              \
    } while (0)

/** Internal bug: print a message and abort. */
#define WSEL_PANIC(msg_expr)                                          \
    do {                                                              \
        std::ostringstream wsel_panic_os_;                            \
        wsel_panic_os_ << msg_expr;                                   \
        ::wsel::detail::panicImpl(__FILE__, __LINE__,                 \
                                  wsel_panic_os_.str());              \
    } while (0)

/** Panic unless an internal invariant holds. */
#define WSEL_ASSERT(cond, msg_expr)                                   \
    do {                                                              \
        if (!(cond)) {                                                \
            WSEL_PANIC("assertion failed: " #cond ": " << msg_expr);  \
        }                                                             \
    } while (0)

#endif // WSEL_STATS_LOGGING_HH
