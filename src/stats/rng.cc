#include "stats/rng.hh"

#include <cmath>

#include "stats/logging.hh"

namespace wsel
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Avoid the all-zero state, which xoshiro cannot escape.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextInt(std::uint64_t bound)
{
    WSEL_ASSERT(bound > 0, "nextInt bound must be positive");
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextIntRange(std::int64_t lo, std::int64_t hi)
{
    WSEL_ASSERT(lo <= hi, "nextIntRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextInt(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * mul;
    hasSpareGaussian_ = true;
    return u * mul;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    WSEL_ASSERT(p > 0.0 && p <= 1.0, "geometric p out of range");
    if (p >= 1.0)
        return 0;
    const double u = 1.0 - nextDouble(); // u in (0, 1]
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log(1.0 - p)));
}

double
Rng::nextExponential(double rate)
{
    WSEL_ASSERT(rate > 0.0, "exponential rate must be positive");
    return -std::log(1.0 - nextDouble()) / rate;
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    if (k > n)
        WSEL_FATAL("cannot sample " << k << " items from " << n);
    // Floyd's algorithm preserves O(k) memory; we then shuffle to
    // return items in uniform random order.
    std::vector<std::size_t> out;
    out.reserve(k);
    std::vector<bool> seen;
    if (k * 16 >= n) {
        // Dense case: partial Fisher-Yates over an index array.
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = i;
        for (std::size_t i = 0; i < k; ++i) {
            std::size_t j = i + nextInt(n - i);
            std::swap(idx[i], idx[j]);
            out.push_back(idx[i]);
        }
        return out;
    }
    seen.assign(n, false);
    for (std::size_t j = n - k; j < n; ++j) {
        std::size_t t = nextInt(j + 1);
        if (seen[t])
            t = j;
        seen[t] = true;
        out.push_back(t);
    }
    shuffle(out);
    return out;
}

Rng
Rng::split()
{
    return Rng((*this)() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace wsel
