/**
 * @file
 * Sharded binary campaign format (`campaign_v3`) for
 * population-scale runs (docs/PERFORMANCE.md, "Population
 * campaigns").
 *
 * A v3 artifact is a *directory*:
 *
 *     <dir>/manifest.bin        written last (the commit point)
 *     <dir>/shard-000000.bin    fixed-width IPC cells
 *     <dir>/shard-000001.bin
 *     ...
 *
 * Every file is little-endian with a trailing 64-bit FNV-1a of all
 * preceding bytes and is written via atomicWriteFile, so PR 1's
 * checkpoint/resume semantics hold at shard granularity: a crash
 * leaves each shard either absent, complete, or quarantinable, and
 * a resumed run regenerates exactly the missing/invalid shards.
 *
 * Shard s covers workload ranks
 * [firstRank + s*shardRows, firstRank + min((s+1)*shardRows, rows))
 * of the population in rank order.  Its payload is
 * rowsInShard(s) x policies x cores doubles, row-major (workload,
 * then policy, then core) — the order cells are produced in, so
 * writers stream.  Shards carry no wall-clock timing (that lives in
 * the manifest), which is what makes serial and --jobs N runs
 * bitwise identical per shard.
 *
 * campaign_v2 (text, explicit workload list) remains the format for
 * sampled campaigns; Campaign::load dispatches on the path type.
 */

#ifndef WSEL_STATS_PERSIST_V3_HH
#define WSEL_STATS_PERSIST_V3_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wsel::persist
{

inline constexpr std::uint32_t kV3Version = 1;

/** Shard payload geometry and campaign identity (manifest.bin). */
struct V3Manifest
{
    std::uint64_t fingerprint = 0; ///< campaignFingerprint()
    std::string simulator;         ///< "badco" / "detailed"
    std::uint32_t cores = 0;       ///< K (threads per workload)
    std::uint64_t targetUops = 0;
    double simSeconds = 0.0;   ///< CPU seconds across cells
    std::uint64_t instructions = 0;
    std::vector<std::string> policies; ///< toString(PolicyKind)
    std::vector<std::string> benchmarks;
    std::vector<double> refIpc; ///< per benchmark, single-core ref
    std::uint32_t popBenchmarks = 0; ///< population shape B
    std::uint32_t popCores = 0;      ///< population shape K
    std::uint64_t firstRank = 0;     ///< first population rank
    std::uint64_t lastRank = 0;      ///< one past the last rank
    std::uint64_t shardRows = 0;     ///< workload rows per shard

    std::uint64_t rows() const { return lastRank - firstRank; }
    std::uint64_t shardCount() const;
    std::uint64_t rowsInShard(std::uint64_t shard) const;
    std::uint64_t shardFirstRank(std::uint64_t shard) const
    {
        return firstRank + shard * shardRows;
    }
};

/** "shard-000042.bin". */
std::string v3ShardName(std::uint64_t shard);

std::string v3ManifestPath(const std::string &dir);
std::string v3ShardPath(const std::string &dir, std::uint64_t shard);

/** True when @p path is a directory containing a manifest.bin. */
bool isV3CampaignDir(const std::string &path);

/** Atomically write the manifest (call after all shards). */
void writeV3Manifest(const std::string &dir, const V3Manifest &m);

/** Read + validate the manifest; throws CacheInvalid on damage. */
V3Manifest readV3Manifest(const std::string &dir);

/**
 * Atomically write shard @p shard.  @p payload must hold exactly
 * rowsInShard(shard) * policies * cores doubles in row-major
 * (workload, policy, core) order.
 */
void writeV3Shard(const std::string &dir, const V3Manifest &m,
                  std::uint64_t shard,
                  std::span<const double> payload);

/**
 * Read + validate shard @p shard against the manifest geometry;
 * throws CacheInvalid when missing, truncated, checksum-damaged, or
 * mismatched (fingerprint/shape/index).
 */
std::vector<double> readV3Shard(const std::string &dir,
                                const V3Manifest &m,
                                std::uint64_t shard);

} // namespace wsel::persist

#endif // WSEL_STATS_PERSIST_V3_HH
