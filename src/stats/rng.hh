/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments.
 *
 * All randomized components of wsel take an explicit Rng (or a seed)
 * so that every simulation and every sampling experiment is exactly
 * reproducible. The generator is xoshiro256**, seeded via splitmix64,
 * which is fast and has no observable bias for our use cases.
 */

#ifndef WSEL_STATS_RNG_HH
#define WSEL_STATS_RNG_HH

#include <cstdint>
#include <vector>

namespace wsel
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used
 * with standard <random> distributions if desired, but also provides
 * the convenience draws used throughout wsel.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextIntRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Gaussian draw (mean 0, stddev 1) via Marsaglia polar method. */
    double nextGaussian();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Geometric-like draw: number of failures before first success
     * with success probability p (p in (0,1]).
     */
    std::uint64_t nextGeometric(double p);

    /** Exponential draw with the given rate (mean 1/rate). */
    double nextExponential(double rate);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample k distinct indices from [0, n) without replacement,
     * in selection order. Requires k <= n.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace wsel

#endif // WSEL_STATS_RNG_HH
