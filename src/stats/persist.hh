/**
 * @file
 * Crash-safe persistence primitives shared by every on-disk cache
 * writer (campaign CSVs, BADCO model binaries, campaign journals):
 * atomic file replacement, advisory file locking, a streaming
 * checksum, corrupt-artifact quarantine, and test-only fault
 * injection kill-points.
 *
 * The design goal (see docs/ROBUSTNESS.md) is that a reader never
 * observes a half-written cache file: writers prepare the full
 * contents, write them to a temporary file in the same directory,
 * fsync, and atomically rename over the destination.  Concurrent
 * processes sharing a cache directory serialize on an advisory
 * lock file.  Artifacts that fail validation are renamed to
 * `<name>.corrupt[.N]` (never deleted) so they can be inspected.
 */

#ifndef WSEL_STATS_PERSIST_HH
#define WSEL_STATS_PERSIST_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace wsel::persist
{

/**
 * Thrown when a *cached* artifact fails validation (truncated,
 * checksum mismatch, version skew, malformed field).  Distinct from
 * FatalError so cache readers can quarantine and regenerate instead
 * of aborting; strict readers convert it to WSEL_FATAL.
 */
class CacheInvalid : public std::runtime_error
{
  public:
    explicit CacheInvalid(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Streaming FNV-1a 64-bit hash (checksums and fingerprints). */
class Fnv1a
{
  public:
    Fnv1a &
    update(const void *data, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 0x100000001b3ULL;
        }
        return *this;
    }

    Fnv1a &
    update(std::string_view s)
    {
        return update(s.data(), s.size());
    }

    Fnv1a &
    updateU64(std::uint64_t v)
    {
        // Byte-by-byte in a fixed order so the digest is
        // endianness-independent.
        for (int i = 0; i < 8; ++i) {
            const unsigned char b =
                static_cast<unsigned char>(v >> (8 * i));
            update(&b, 1);
        }
        return *this;
    }

    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/** One-shot FNV-1a of a byte string. */
std::uint64_t fnv1a(std::string_view s);

/** Lower-case hex rendering of a 64-bit value (no 0x prefix). */
std::string toHex(std::uint64_t v);

/** Parse toHex output; false on malformed input. */
bool parseHex(std::string_view s, std::uint64_t &out);

/**
 * Atomically replace @p path with @p contents: write a temporary
 * file in the same directory, fsync it, and rename it over the
 * destination (then fsync the directory).  A crash at any point
 * leaves either the old file or the new file, never a mix.
 * WSEL_FATAL on I/O errors.
 *
 * Kill-points: "atomic.begin", "atomic.before-rename",
 * "atomic.after-rename".
 */
void atomicWriteFile(const std::string &path,
                     std::string_view contents);

/**
 * Rename a corrupt cache artifact out of the way, to
 * `<path>.corrupt` (or `.corrupt.N` when that exists).
 *
 * @return The new path, or "" when the rename failed.
 */
std::string quarantineFile(const std::string &path);

/**
 * Create @p dir and every missing parent, tolerating concurrent
 * creation: when several processes race to create the same tree
 * (e.g. the shared result-store root, or .wsel_cache on first
 * use), every one of them succeeds.  Unlike
 * std::filesystem::create_directories, an EEXIST from a component
 * that appeared between our existence check and our mkdir is
 * treated as success, not an error.  WSEL_FATAL when the tree
 * cannot be created (permission, ENOSPC, or a non-directory in the
 * way).
 */
void ensureDirTree(const std::string &dir);

/**
 * RAII advisory file lock (POSIX flock) so concurrent processes
 * sharing a cache directory cannot interleave produce/save cycles.
 * The lock file itself is left in place (removing it would race
 * with other lockers).  On platforms without flock this degrades to
 * a no-op lock that always succeeds.
 */
class FileLock
{
  public:
    FileLock() = default;

    /** Blocking acquire; WSEL_FATAL when the file cannot open. */
    explicit FileLock(const std::string &path);

    /** Non-blocking acquire; `held()` is false on contention. */
    static FileLock tryAcquire(const std::string &path);

    ~FileLock() { release(); }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    FileLock(FileLock &&other) noexcept { *this = std::move(other); }

    FileLock &
    operator=(FileLock &&other) noexcept
    {
        if (this != &other) {
            release();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    bool held() const { return fd_ >= 0; }

    /** Unlock and close; idempotent. */
    void release();

  private:
    int fd_ = -1;
};

/**
 * Test-only fault injection.  Persistence code calls
 * faultPoint("name") at each kill-point; when a hook is installed
 * it receives the point name and the 1-based hit count for that
 * point and may throw to simulate a crash.  No hook installed
 * (production) makes faultPoint a cheap no-op.
 */
using FaultHook =
    std::function<void(const char *point, std::uint64_t hits)>;

/** Install (or with nullptr remove) the global fault hook. */
void setFaultHook(FaultHook hook);

/** Reset all per-point hit counters. */
void resetFaultPoints();

/** Hits recorded for @p point since the last reset. */
std::uint64_t faultPointHits(const char *point);

/** Record a hit on @p point and invoke the hook, if any. */
void faultPoint(const char *point);

} // namespace wsel::persist

#endif // WSEL_STATS_PERSIST_HH
