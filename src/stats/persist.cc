#include "stats/persist.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <system_error>

#include "obs/metrics.hh"
#include "stats/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define WSEL_HAVE_POSIX_IO 1
#endif

namespace wsel::persist
{

namespace
{

std::mutex faultMutex;
FaultHook faultHook;
std::map<std::string, std::uint64_t> faultHits;

/** Directory containing @p path ("." when path has no directory). */
std::string
parentDir(const std::string &path)
{
    const auto pos = path.find_last_of('/');
    return pos == std::string::npos ? std::string(".")
                                    : path.substr(0, pos);
}

#ifdef WSEL_HAVE_POSIX_IO
void
writeAll(int fd, const char *data, std::size_t n,
         const std::string &what)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            const int e = errno;
            ::close(fd);
            WSEL_FATAL("write to '" << what
                                    << "' failed: " << strerror(e));
        }
        off += static_cast<std::size_t>(w);
    }
}
#endif

} // namespace

std::uint64_t
fnv1a(std::string_view s)
{
    return Fnv1a().update(s).digest();
}

std::string
toHex(std::uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string s;
    for (int i = 60; i >= 0; i -= 4)
        s += digits[(v >> i) & 0xf];
    return s;
}

bool
parseHex(std::string_view s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

void
atomicWriteFile(const std::string &path, std::string_view contents)
{
    faultPoint("atomic.begin");
#ifdef WSEL_HAVE_POSIX_IO
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        WSEL_FATAL("cannot open '" << tmp << "' for writing: "
                                   << strerror(errno));
    writeAll(fd, contents.data(), contents.size(), tmp);
    if (::fsync(fd) != 0) {
        const int e = errno;
        ::close(fd);
        WSEL_FATAL("fsync '" << tmp << "' failed: " << strerror(e));
    }
    ::close(fd);
    faultPoint("atomic.before-rename");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int e = errno;
        ::unlink(tmp.c_str());
        WSEL_FATAL("rename '" << tmp << "' -> '" << path
                              << "' failed: " << strerror(e));
    }
    // Persist the rename itself; best-effort (some filesystems
    // reject O_RDONLY directory fsync).
    const int dfd = ::open(parentDir(path).c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
#else
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            WSEL_FATAL("cannot open '" << tmp << "' for writing");
        os.write(contents.data(),
                 static_cast<std::streamsize>(contents.size()));
        if (!os)
            WSEL_FATAL("write to '" << tmp << "' failed");
    }
    faultPoint("atomic.before-rename");
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        WSEL_FATAL("rename '" << tmp << "' -> '" << path
                              << "' failed: " << ec.message());
#endif
    faultPoint("atomic.after-rename");
}

std::string
quarantineFile(const std::string &path)
{
    std::error_code ec;
    std::string target = path + ".corrupt";
    for (int n = 1; std::filesystem::exists(target, ec) && n < 100;
         ++n)
        target = path + ".corrupt." + std::to_string(n);
    std::filesystem::rename(path, target, ec);
    if (!ec)
        obs::counter("persist.cache_quarantine").inc();
    return ec ? std::string() : target;
}

void
ensureDirTree(const std::string &dir)
{
    if (dir.empty())
        return;
#ifdef WSEL_HAVE_POSIX_IO
    // Component-by-component mkdir, treating EEXIST as success:
    // std::filesystem::create_directories can report an error when
    // another process creates a component between its existence
    // probe and its mkdir, which matters for the shared result
    // store and cache roots (several workers start at once).
    std::size_t pos = 0;
    while (pos < dir.size()) {
        std::size_t next = dir.find('/', pos);
        if (next == std::string::npos)
            next = dir.size();
        if (next > pos) { // skip "//" and the leading "/"
            // EEXIST (lost a creation race) is success; any other
            // failure surfaces through the final stat below, which
            // carries the full path in its diagnostic.
            (void)::mkdir(dir.substr(0, next).c_str(), 0777);
        }
        pos = next + 1;
    }
    struct stat st;
    if (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        return;
    WSEL_FATAL("cannot create directory tree '"
               << dir << "': " << std::strerror(errno));
#else
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec && !std::filesystem::is_directory(dir))
        WSEL_FATAL("cannot create directory tree '"
                   << dir << "': " << ec.message());
#endif
}

FileLock::FileLock(const std::string &path)
{
#ifdef WSEL_HAVE_POSIX_IO
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0)
        WSEL_FATAL("cannot open lock file '"
                   << path << "': " << strerror(errno));
    while (::flock(fd_, LOCK_EX) != 0) {
        if (errno == EINTR)
            continue;
        const int e = errno;
        ::close(fd_);
        fd_ = -1;
        WSEL_FATAL("flock '" << path
                             << "' failed: " << strerror(e));
    }
#else
    (void)path;
    fd_ = 0; // no-op lock: always "held"
#endif
}

FileLock
FileLock::tryAcquire(const std::string &path)
{
    FileLock lock;
#ifdef WSEL_HAVE_POSIX_IO
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
        WSEL_FATAL("cannot open lock file '"
                   << path << "': " << strerror(errno));
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        return lock;
    }
    lock.fd_ = fd;
#else
    (void)path;
    lock.fd_ = 0;
#endif
    return lock;
}

void
FileLock::release()
{
#ifdef WSEL_HAVE_POSIX_IO
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
#endif
    fd_ = -1;
}

void
setFaultHook(FaultHook hook)
{
    std::lock_guard<std::mutex> g(faultMutex);
    faultHook = std::move(hook);
}

void
resetFaultPoints()
{
    std::lock_guard<std::mutex> g(faultMutex);
    faultHits.clear();
}

std::uint64_t
faultPointHits(const char *point)
{
    std::lock_guard<std::mutex> g(faultMutex);
    const auto it = faultHits.find(point);
    return it == faultHits.end() ? 0 : it->second;
}

void
faultPoint(const char *point)
{
    FaultHook hook;
    std::uint64_t hits = 0;
    {
        std::lock_guard<std::mutex> g(faultMutex);
        if (!faultHook)
            return;
        hits = ++faultHits[point];
        hook = faultHook;
    }
    // Invoke outside the mutex: the hook may throw (simulated
    // crash) or re-enter the persistence layer.
    hook(point, hits);
}

} // namespace wsel::persist
