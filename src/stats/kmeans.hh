/**
 * @file
 * Small k-means implementation used for automatic benchmark
 * classification (the cluster-analysis alternative to manual MPKI
 * classes discussed in the paper's Section II-B).
 */

#ifndef WSEL_STATS_KMEANS_HH
#define WSEL_STATS_KMEANS_HH

#include <cstddef>
#include <vector>

#include "stats/rng.hh"

namespace wsel
{

/** Result of a k-means run. */
struct KMeansResult
{
    /** Cluster index per input point, in [0, k). */
    std::vector<std::size_t> assignment;
    /** Final centroids, k rows of dim columns. */
    std::vector<std::vector<double>> centroids;
    /** Sum of squared distances to assigned centroids. */
    double inertia = 0.0;
    /** Iterations executed before convergence / cap. */
    std::size_t iterations = 0;
};

/**
 * Lloyd's k-means with k-means++ seeding.
 *
 * @param points Input points; all rows must share one dimension.
 * @param k Number of clusters; must satisfy 1 <= k <= points.size().
 * @param rng Seeding randomness (deterministic given the Rng state).
 * @param max_iterations Iteration cap.
 */
KMeansResult kmeans(const std::vector<std::vector<double>> &points,
                    std::size_t k, Rng &rng,
                    std::size_t max_iterations = 100);

/**
 * Convenience 1-D k-means (e.g. clustering benchmarks by MPKI).
 */
KMeansResult kmeans1d(const std::vector<double> &values, std::size_t k,
                      Rng &rng, std::size_t max_iterations = 100);

} // namespace wsel

#endif // WSEL_STATS_KMEANS_HH
