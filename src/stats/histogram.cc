#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/logging.hh"

namespace wsel
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi)
{
    if (!(hi > lo))
        WSEL_FATAL("histogram range [" << lo << ", " << hi
                                       << "] is empty");
    if (bins == 0)
        WSEL_FATAL("histogram needs at least one bin");
    counts_.assign(bins, 0);
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    double t = (x - lo_) / span;
    t = std::clamp(t, 0.0, 1.0);
    std::size_t bin = static_cast<std::size_t>(
        t * static_cast<double>(counts_.size()));
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
    ++total_;
}

void
Histogram::merge(const Histogram &other)
{
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size())
        WSEL_FATAL("merging histograms with different shapes");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(binCount(i)) /
           static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t len =
            peak ? counts_[i] * width / peak : 0;
        os.setf(std::ios::fixed);
        os.precision(4);
        os << binCenter(i) << " | " << std::string(len, '#') << " "
           << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace wsel
