#include "stats/combinatorics.hh"


#include "stats/logging.hh"

namespace wsel
{

std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return 0;
    if (k > n - k)
        k = n - k;
    // result * (n-k+i) is exactly divisible by i at every step; do
    // the multiply in 128 bits so only the final value must fit.
    __uint128_t result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        result = result * (n - k + i) / i;
        if (result > UINT64_MAX)
            WSEL_FATAL("binomial(" << n << ", " << k
                                   << ") overflows 64 bits");
    }
    return static_cast<std::uint64_t>(result);
}

std::uint64_t
multisetCount(std::uint64_t n, std::uint64_t k)
{
    if (n == 0)
        return k == 0 ? 1 : 0;
    return binomial(n + k - 1, k);
}

} // namespace wsel
