/**
 * @file
 * Fixed-bin histogram for distribution inspection (used by the
 * workload-stratification diagnostics and the bench harnesses).
 */

#ifndef WSEL_STATS_HISTOGRAM_HH
#define WSEL_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace wsel
{

/**
 * Equal-width histogram over [lo, hi] with out-of-range clamping.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin (must exceed lo).
     * @param bins Number of bins (must be >= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation; values outside [lo, hi] clamp. */
    void add(double x);

    /**
     * Merge another histogram (parallel reduction); fatal unless
     * the bounds and bin count match exactly.
     */
    void merge(const Histogram &other);

    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Number of observations added. */
    std::size_t count() const { return total_; }

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Fraction of observations in bin @p i (0 when empty). */
    double binFraction(std::size_t i) const;

    /** Render a terminal-friendly ASCII bar chart. */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace wsel

#endif // WSEL_STATS_HISTOGRAM_HH
