/**
 * @file
 * On-disk format of sequential (adaptive) campaigns
 * (docs/SAMPLING.md).  An adaptive artifact is a directory:
 *
 *     <dir>/adaptive.bin        written last (the commit point):
 *                               the stopping decision + trajectory
 *     <dir>/batch-000000.bin    one file per simulated batch
 *     <dir>/batch-000001.bin
 *     ...
 *
 * A batch file carries the population ranks its schedule positions
 * resolved to and the d(w) value of each — everything a resumed
 * run needs to replay the controller without re-simulating.  Files
 * follow the campaign_v3 conventions: little-endian, a trailing
 * 64-bit FNV-1a of all preceding bytes, written via
 * atomicWriteFile, validated on read with CacheInvalid on damage.
 * Batch files contain no timing and no job-count dependence, so a
 * resumed run's artifact is bitwise identical to an uninterrupted
 * one (tests/test_adaptive.cc).
 *
 * Unlike campaign_v3's manifest, adaptive.bin describes a
 * *stopped* campaign: which batch the stopping rule fired after,
 * why, and the confidence trajectory that led there.  A directory
 * with batch files but no adaptive.bin is an interrupted run; the
 * runner resumes it batch by batch.
 */

#ifndef WSEL_STATS_PERSIST_ADAPTIVE_HH
#define WSEL_STATS_PERSIST_ADAPTIVE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wsel::persist
{

inline constexpr std::uint32_t kAdaptiveVersion = 1;

/** One simulated batch: schedule positions -> (rank, d(w)). */
struct AdaptiveBatch
{
    std::uint64_t fingerprint = 0; ///< campaignFingerprint()
    std::uint64_t index = 0;       ///< batch number, from 0
    std::uint64_t firstPosition = 0; ///< first schedule position
    std::vector<std::uint64_t> ranks; ///< population rank per row
    std::vector<double> d;            ///< d(w) per row
};

/** The stopping decision (adaptive.bin, the commit point). */
struct AdaptiveDecisionRecord
{
    std::uint64_t fingerprint = 0;
    std::uint8_t reason = 0; ///< StopReason
    std::uint8_t yWins = 0;
    std::string method;      ///< "random" / "ranked-set"
    std::uint64_t batches = 0;
    std::uint64_t workloads = 0; ///< simulated draw positions
    double confidence = 0.0;     ///< eq. 5 at the stop
    double cv = 0.0;             ///< signed cv at the stop
    double target = 0.0;         ///< configured target confidence
    std::vector<double> trajectory; ///< confidence after each batch
};

std::string adaptiveBatchName(std::uint64_t index);
std::string adaptiveBatchPath(const std::string &dir,
                              std::uint64_t index);
std::string adaptiveDecisionPath(const std::string &dir);

/** Atomically write one batch file. */
void writeAdaptiveBatch(const std::string &dir,
                        const AdaptiveBatch &b);

/**
 * Read + validate batch @p index; throws CacheInvalid when
 * missing, truncated, checksum-damaged or from another campaign.
 */
AdaptiveBatch readAdaptiveBatch(const std::string &dir,
                                std::uint64_t fingerprint,
                                std::uint64_t index);

/** Atomically write the decision (call after all batches). */
void writeAdaptiveDecision(const std::string &dir,
                           const AdaptiveDecisionRecord &d);

/** True when @p dir holds a committed adaptive.bin. */
bool hasAdaptiveDecision(const std::string &dir);

/** Read + validate the decision; throws CacheInvalid on damage. */
AdaptiveDecisionRecord readAdaptiveDecision(const std::string &dir);

} // namespace wsel::persist

#endif // WSEL_STATS_PERSIST_ADAPTIVE_HH
