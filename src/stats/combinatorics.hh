/**
 * @file
 * Combinatorial helpers for workload-population arithmetic: the
 * population of K-combinations-with-repetition over B benchmarks has
 * size C(B+K-1, K) (paper, Section II).
 */

#ifndef WSEL_STATS_COMBINATORICS_HH
#define WSEL_STATS_COMBINATORICS_HH

#include <cstdint>

namespace wsel
{

/**
 * Binomial coefficient C(n, k) in exact 64-bit arithmetic.
 * Fatal on overflow.
 */
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/**
 * Number of multisets of size @p k over @p n distinct items,
 * i.e. C(n+k-1, k). This is the workload-population size for n
 * benchmarks on k interchangeable cores.
 */
std::uint64_t multisetCount(std::uint64_t n, std::uint64_t k);

} // namespace wsel

#endif // WSEL_STATS_COMBINATORICS_HH
