/**
 * @file
 * Streaming summary statistics used throughout the library: Welford
 * running moments, weighted variants, and the coefficient of
 * variation that drives the paper's sample-size model.
 */

#ifndef WSEL_STATS_SUMMARY_HH
#define WSEL_STATS_SUMMARY_HH

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace wsel
{

/**
 * Single-pass running mean/variance/min/max (Welford's algorithm).
 *
 * Numerically stable; population and sample variance both exposed.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean; NaN when empty. */
    double mean() const;

    /** Population variance (divide by n); NaN when empty. */
    double variancePopulation() const;

    /** Sample variance (divide by n-1); NaN when n < 2. */
    double varianceSample() const;

    /** Population standard deviation. */
    double stddevPopulation() const;

    /** Sample standard deviation. */
    double stddevSample() const;

    /**
     * Coefficient of variation sigma/mu (population sigma), the
     * quantity cv in the paper's eq. (5)/(8). Returns +inf when the
     * mean is zero and sigma nonzero, NaN when empty.
     */
    double coefficientOfVariation() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Compute RunningStats over a span in one call. */
RunningStats summarize(std::span<const double> xs);

/** Arithmetic mean of a span; NaN when empty. */
double arithmeticMean(std::span<const double> xs);

/** Harmonic mean of a span; requires all-positive values. */
double harmonicMean(std::span<const double> xs);

/** Geometric mean of a span; requires all-positive values. */
double geometricMean(std::span<const double> xs);

/** Weighted arithmetic mean; weights need not be normalized. */
double weightedArithmeticMean(std::span<const double> xs,
                              std::span<const double> ws);

/** Weighted harmonic mean; requires positive values and weights. */
double weightedHarmonicMean(std::span<const double> xs,
                            std::span<const double> ws);

/**
 * Empirical quantile with linear interpolation (type-7, the numpy
 * default). @p q must be in [0, 1]; the input is copied and sorted.
 */
double quantile(std::vector<double> xs, double q);

/**
 * Pearson correlation coefficient of two equal-length series; NaN
 * when either series is constant or empty.
 */
double pearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

} // namespace wsel

#endif // WSEL_STATS_SUMMARY_HH
