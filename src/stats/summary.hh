/**
 * @file
 * Streaming summary statistics used throughout the library: Welford
 * running moments, weighted variants, and the coefficient of
 * variation that drives the paper's sample-size model.
 */

#ifndef WSEL_STATS_SUMMARY_HH
#define WSEL_STATS_SUMMARY_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace wsel
{

/**
 * Single-pass running mean/variance/min/max (Welford's algorithm).
 *
 * Numerically stable; population and sample variance both exposed.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean; NaN when empty. */
    double mean() const;

    /** Population variance (divide by n); NaN when empty. */
    double variancePopulation() const;

    /** Sample variance (divide by n-1); NaN when n < 2. */
    double varianceSample() const;

    /** Population standard deviation. */
    double stddevPopulation() const;

    /** Sample standard deviation. */
    double stddevSample() const;

    /**
     * Coefficient of variation sigma/mu (population sigma), the
     * quantity cv in the paper's eq. (5)/(8). Returns +inf when the
     * mean is zero and sigma nonzero, NaN when empty.
     */
    double coefficientOfVariation() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Compute RunningStats over a span in one call. */
RunningStats summarize(std::span<const double> xs);

/** Arithmetic mean of a span; NaN when empty. */
double arithmeticMean(std::span<const double> xs);

/** Harmonic mean of a span; requires all-positive values. */
double harmonicMean(std::span<const double> xs);

/** Geometric mean of a span; requires all-positive values. */
double geometricMean(std::span<const double> xs);

/** Weighted arithmetic mean; weights need not be normalized. */
double weightedArithmeticMean(std::span<const double> xs,
                              std::span<const double> ws);

/** Weighted harmonic mean; requires positive values and weights. */
double weightedHarmonicMean(std::span<const double> xs,
                            std::span<const double> ws);

/**
 * Empirical quantile with linear interpolation (type-7, the numpy
 * default). @p q must be in [0, 1]; the input is copied and sorted.
 */
double quantile(std::vector<double> xs, double q);

/**
 * Pearson correlation coefficient of two equal-length series; NaN
 * when either series is constant or empty.
 */
double pearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/**
 * Deterministic bottom-k quantile sketch: keeps the values whose
 * keys hash smallest (FNV-1a), i.e. a uniform without-replacement
 * sample of up to `capacity` observations that is independent of
 * insertion order and therefore mergeable across parallel shards
 * with a reproducible result. Keys must be unique (e.g. population
 * ranks); quantiles are the empirical quantiles of the kept sample,
 * exact whenever the population fits the capacity.
 */
class QuantileSketch
{
  public:
    explicit QuantileSketch(std::size_t capacity);

    /** Observe @p value under unique @p key. */
    void add(std::uint64_t key, double value);

    /** Merge another sketch (must have the same capacity). */
    void merge(const QuantileSketch &other);

    std::size_t capacity() const { return capacity_; }

    /** Number of observations currently kept (<= capacity). */
    std::size_t sampleSize() const { return entries_.size(); }

    /** Total observations ever offered. */
    std::uint64_t population() const { return population_; }

    /** Empirical quantile of the kept sample; NaN when empty. */
    double quantile(double q) const;

    /** The kept values, sorted ascending. */
    std::vector<double> sortedValues() const;

  private:
    struct Entry
    {
        std::uint64_t hash;
        std::uint64_t key;
        double value;

        bool operator<(const Entry &o) const
        {
            // Max-heap order on (hash, key): the heap top is the
            // entry to evict first.
            return hash != o.hash ? hash < o.hash : key < o.key;
        }
    };

    void push(const Entry &e);

    std::size_t capacity_;
    std::uint64_t population_ = 0;
    std::vector<Entry> entries_; // max-heap by (hash, key)
};

} // namespace wsel

#endif // WSEL_STATS_SUMMARY_HH
