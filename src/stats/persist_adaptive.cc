#include "stats/persist_adaptive.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::persist
{

namespace
{

constexpr char kBatchMagic[8] = {'W', 'S', 'A', 'D',
                                 'B', 'T', 'C', 'H'};
constexpr char kDecisionMagic[8] = {'W', 'S', 'A', 'D',
                                    'D', 'C', 'S', 'N'};

/** Rows per batch / trajectory entries an artifact may claim. */
constexpr std::uint64_t kMaxBatchRows = 1ULL << 26;
constexpr std::uint64_t kMaxTrajectory = 1ULL << 24;

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendF64(std::string &out, double v)
{
    appendU64(out, std::bit_cast<std::uint64_t>(v));
}

void
appendString(std::string &out, const std::string &s)
{
    appendU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

void
appendChecksum(std::string &out)
{
    const std::uint64_t sum = fnv1a(out);
    appendU64(out, sum);
}

/** Bounds-checked little-endian reader (persist_v3 style). */
class Reader
{
  public:
    Reader(std::string_view data, const std::string &what)
        : data_(data), what_(what)
    {
    }

    void
    expectMagic(const char (&magic)[8])
    {
        char got[8];
        bytes(got, 8);
        if (std::memcmp(got, magic, 8) != 0)
            throw CacheInvalid(what_ + ": bad magic");
    }

    std::uint32_t
    u32()
    {
        unsigned char b[4];
        bytes(b, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        unsigned char b[8];
        bytes(b, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (n > remaining())
            throw CacheInvalid(what_ + ": truncated string");
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return data_.size() - pos_; }

    void
    bytes(void *out, std::size_t n)
    {
        if (n > remaining())
            throw CacheInvalid(what_ + ": truncated");
        std::memcpy(out, data_.data() + pos_, n);
        pos_ += n;
    }

  private:
    std::string_view data_;
    std::string what_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path, const std::string &what)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CacheInvalid(what + ": cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        throw CacheInvalid(what + ": read error on " + path);
    return data;
}

std::string_view
checkedBody(const std::string &data, const std::string &what)
{
    if (data.size() < 8)
        throw CacheInvalid(what + ": too short for a checksum");
    const std::string_view body(data.data(), data.size() - 8);
    Reader tail(std::string_view(data.data() + body.size(), 8),
                what);
    const std::uint64_t want = tail.u64();
    if (fnv1a(body) != want)
        throw CacheInvalid(what + ": checksum mismatch");
    return body;
}

} // namespace

std::string
adaptiveBatchName(std::uint64_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "batch-%06llu.bin",
                  static_cast<unsigned long long>(index));
    return buf;
}

std::string
adaptiveBatchPath(const std::string &dir, std::uint64_t index)
{
    return dir + "/" + adaptiveBatchName(index);
}

std::string
adaptiveDecisionPath(const std::string &dir)
{
    return dir + "/adaptive.bin";
}

void
writeAdaptiveBatch(const std::string &dir, const AdaptiveBatch &b)
{
    if (b.ranks.size() != b.d.size())
        WSEL_FATAL("adaptive batch " << b.index << " has "
                   << b.ranks.size() << " ranks for " << b.d.size()
                   << " d values");
    if (b.ranks.empty())
        WSEL_FATAL("adaptive batch " << b.index << " is empty");
    std::string out;
    out.reserve(52 + b.ranks.size() * 16 + 8);
    out.append(kBatchMagic, 8);
    appendU32(out, kAdaptiveVersion);
    appendU64(out, b.fingerprint);
    appendU64(out, b.index);
    appendU64(out, b.firstPosition);
    appendU64(out, b.ranks.size());
    for (std::uint64_t r : b.ranks)
        appendU64(out, r);
    for (double v : b.d)
        appendF64(out, v);
    appendChecksum(out);
    atomicWriteFile(adaptiveBatchPath(dir, b.index), out);
}

AdaptiveBatch
readAdaptiveBatch(const std::string &dir, std::uint64_t fingerprint,
                  std::uint64_t index)
{
    const std::string what = "adaptive " + adaptiveBatchName(index);
    const std::string data =
        slurp(adaptiveBatchPath(dir, index), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kBatchMagic);
    if (r.u32() != kAdaptiveVersion)
        throw CacheInvalid(what + ": unsupported version");
    AdaptiveBatch b;
    b.fingerprint = r.u64();
    if (b.fingerprint != fingerprint)
        throw CacheInvalid(what + ": fingerprint mismatch");
    b.index = r.u64();
    if (b.index != index)
        throw CacheInvalid(what + ": wrong batch index");
    b.firstPosition = r.u64();
    const std::uint64_t rows = r.u64();
    if (rows == 0 || rows > kMaxBatchRows)
        throw CacheInvalid(what + ": implausible row count " +
                           std::to_string(rows));
    if (r.remaining() != rows * 16)
        throw CacheInvalid(what + ": payload size mismatch");
    b.ranks.reserve(rows);
    for (std::uint64_t i = 0; i < rows; ++i)
        b.ranks.push_back(r.u64());
    b.d.reserve(rows);
    for (std::uint64_t i = 0; i < rows; ++i)
        b.d.push_back(r.f64());
    return b;
}

void
writeAdaptiveDecision(const std::string &dir,
                      const AdaptiveDecisionRecord &d)
{
    std::string out;
    out.reserve(128 + d.trajectory.size() * 8);
    out.append(kDecisionMagic, 8);
    appendU32(out, kAdaptiveVersion);
    appendU64(out, d.fingerprint);
    out.push_back(static_cast<char>(d.reason));
    out.push_back(static_cast<char>(d.yWins));
    appendString(out, d.method);
    appendU64(out, d.batches);
    appendU64(out, d.workloads);
    appendF64(out, d.confidence);
    appendF64(out, d.cv);
    appendF64(out, d.target);
    appendU32(out, static_cast<std::uint32_t>(d.trajectory.size()));
    for (double c : d.trajectory)
        appendF64(out, c);
    appendChecksum(out);
    atomicWriteFile(adaptiveDecisionPath(dir), out);
}

bool
hasAdaptiveDecision(const std::string &dir)
{
    std::error_code ec;
    return std::filesystem::is_regular_file(
        adaptiveDecisionPath(dir), ec);
}

AdaptiveDecisionRecord
readAdaptiveDecision(const std::string &dir)
{
    const std::string what = "adaptive decision";
    const std::string data = slurp(adaptiveDecisionPath(dir), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kDecisionMagic);
    if (r.u32() != kAdaptiveVersion)
        throw CacheInvalid(what + ": unsupported version");
    AdaptiveDecisionRecord d;
    d.fingerprint = r.u64();
    std::uint8_t b = 0;
    r.bytes(&b, 1);
    d.reason = b;
    r.bytes(&b, 1);
    d.yWins = b;
    d.method = r.str();
    if (d.method.size() > 64)
        throw CacheInvalid(what + ": implausible method name");
    d.batches = r.u64();
    d.workloads = r.u64();
    d.confidence = r.f64();
    d.cv = r.f64();
    d.target = r.f64();
    const std::uint32_t nt = r.u32();
    if (nt > kMaxTrajectory)
        throw CacheInvalid(what + ": implausible trajectory length");
    if (r.remaining() != static_cast<std::size_t>(nt) * 8)
        throw CacheInvalid(what + ": payload size mismatch");
    d.trajectory.reserve(nt);
    for (std::uint32_t i = 0; i < nt; ++i)
        d.trajectory.push_back(r.f64());
    return d;
}

} // namespace wsel::persist
