#include "stats/kmeans.hh"

#include <cmath>
#include <limits>

#include "stats/logging.hh"

namespace wsel
{

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace

KMeansResult
kmeans(const std::vector<std::vector<double>> &points, std::size_t k,
       Rng &rng, std::size_t max_iterations)
{
    const std::size_t n = points.size();
    if (k == 0 || k > n)
        WSEL_FATAL("kmeans: k=" << k << " invalid for " << n
                                << " points");
    const std::size_t dim = points.front().size();
    for (const auto &p : points) {
        if (p.size() != dim)
            WSEL_FATAL("kmeans: inconsistent point dimensions");
    }

    KMeansResult res;
    res.centroids.reserve(k);

    // k-means++ seeding.
    res.centroids.push_back(points[rng.nextInt(n)]);
    std::vector<double> d2(n);
    while (res.centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto &c : res.centroids)
                best = std::min(best, sqDist(points[i], c));
            d2[i] = best;
            total += best;
        }
        std::size_t pick;
        if (total <= 0.0) {
            pick = rng.nextInt(n);
        } else {
            double r = rng.nextDouble() * total;
            pick = n - 1;
            for (std::size_t i = 0; i < n; ++i) {
                r -= d2[i];
                if (r <= 0.0) {
                    pick = i;
                    break;
                }
            }
        }
        res.centroids.push_back(points[pick]);
    }

    res.assignment.assign(n, 0);
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
        res.iterations = iter + 1;
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < k; ++c) {
                const double d = sqDist(points[i], res.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (res.assignment[i] != best) {
                res.assignment[i] = best;
                changed = true;
            }
        }

        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[res.assignment[i]];
            for (std::size_t d = 0; d < dim; ++d)
                sums[res.assignment[i]][d] += points[i][d];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster on a random point.
                res.centroids[c] = points[rng.nextInt(n)];
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d)
                res.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
        }
        if (!changed)
            break;
    }

    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        res.inertia += sqDist(points[i],
                              res.centroids[res.assignment[i]]);
    return res;
}

KMeansResult
kmeans1d(const std::vector<double> &values, std::size_t k, Rng &rng,
         std::size_t max_iterations)
{
    std::vector<std::vector<double>> pts;
    pts.reserve(values.size());
    for (double v : values)
        pts.push_back({v});
    return kmeans(pts, k, rng, max_iterations);
}

} // namespace wsel
