/**
 * @file
 * The campaign coordinator: a single-threaded poll() loop that
 * owns the lease table, admits campaigns from clients, hands
 * shard leases to worker processes, and commits the campaign
 * manifest once every shard is in the result store.
 *
 * Failure handling (the full matrix is in docs/ROBUSTNESS.md,
 * "Distributed campaigns"):
 *
 *  - worker SIGKILL / crash: its connection EOFs, its leases fail
 *    back to Pending with backoff; the shard is re-leased
 *    elsewhere.  A worker that died *after* committing the shard
 *    file leaves a complete shard the next lease holder detects
 *    and reports as a dedup.
 *  - wedged worker: no heartbeat, the lease deadline passes,
 *    expire() reclaims it (counts as a death).
 *  - poison shard: quarantineAfter deaths on the same shard
 *    quarantine it; the campaign completes as Failed instead of
 *    killing workers forever.
 *  - coordinator kill: nothing in flight is lost — the store holds
 *    every committed shard, and a restarted coordinator's
 *    admission scan marks them done before leasing the rest.
 *  - coordinator stall (synchronous model build at admission): the
 *    loop measures its own gap and extends every outstanding
 *    deadline by it, so workers are not expired for the
 *    coordinator's pause.
 *
 * Admission control is a bounded queue: at most maxQueued
 * campaigns queued or running; beyond that Submit is rejected
 * immediately (`serve.campaigns_rejected`).  SIGTERM (via
 * requestStop(), self-pipe) starts a graceful drain: no new
 * leases, outstanding ones finish, workers get Shutdown, then
 * run() returns.
 */

#ifndef WSEL_SERVE_COORDINATOR_HH
#define WSEL_SERVE_COORDINATOR_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/context.hh"
#include "serve/lease.hh"
#include "serve/protocol.hh"
#include "serve/store.hh"

namespace wsel::serve
{

struct CoordinatorOptions
{
    std::string socketPath;

    /** Content-addressed result store root. */
    std::string storeRoot;

    /** Model cache for context building ("" = memory only). */
    std::string cacheDir;

    /** Max campaigns queued or running (admission bound). */
    std::size_t maxQueued = 8;

    /** Threads for model building at admission. */
    std::size_t jobs = 1;

    LeaseOptions lease;

    /**
     * Exit once every submitted campaign has finished and no
     * client connection remains — the `campaign --distributed`
     * mode, where the coordinator is an ephemeral child of the
     * CLI rather than a daemon.
     */
    bool exitWhenIdle = false;
};

class Coordinator
{
  public:
    explicit Coordinator(const CoordinatorOptions &opts);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Serve until drained (requestStop) or idle (exitWhenIdle).
     * Returns 0 on a clean drain.
     */
    int run();

    /**
     * Begin a graceful drain.  Async-signal-safe (writes one byte
     * to a self-pipe); callable from a SIGTERM handler.
     */
    void requestStop();

    const std::string &socketPath() const;

  private:
    struct Campaign
    {
        CampaignSpec spec;
        CampaignState state = CampaignState::Queued;
        std::string dir;
        std::string message;
        std::unique_ptr<CampaignContext> ctx;
        std::unique_ptr<LeaseTable> table;
        std::uint64_t deduped = 0; ///< shards satisfied by store

        /**
         * Mixed-fidelity escalation (docs/FIDELITY.md): a BADCO
         * campaign with spec.escalateBudget > 0 enters phase 1
         * after its sweep commits — spec/ctx/table/dir are
         * replaced by a detailed-fidelity campaign over just the
         * shards holding suspect rows, and the campaign stays
         * Running until those shards commit too.
         */
        std::uint32_t phase = 0;
        std::string badcoDir;          ///< phase-0 dir
        std::uint64_t escalatedRows = 0;
        std::uint64_t escalatedShards = 0;
    };

    struct Conn
    {
        Fd fd;
        FrameBuffer fb;
        enum class Kind { Unknown, Worker, Client } kind =
            Kind::Unknown;
        std::uint64_t workerPid = 0;
        std::vector<std::uint64_t> leases; ///< held by this worker
    };

    struct LeaseInflight
    {
        std::uint64_t campaignId = 0;
        LeaseClock::time_point granted{};
    };

    void acceptConnection();
    bool handleFrame(Conn &conn, const Frame &f);
    void dropConnection(Conn &conn);
    void activateNext();
    void finalize(std::uint64_t id, Campaign &c);
    bool beginEscalation(std::uint64_t id, Campaign &c);
    void grantOrPark(Conn &conn);
    void noteLeaseClosed(std::uint64_t leaseId, Conn *conn);
    StatusMsg statusOf(std::uint64_t id) const;
    Campaign *active();

    CoordinatorOptions opts_;
    ResultStore store_;
    Fd listenFd_;
    int wakePipe_[2] = {-1, -1};
    std::vector<std::unique_ptr<Conn>> conns_;
    std::map<std::uint64_t, Campaign> campaigns_;
    std::deque<std::uint64_t> queue_; ///< ids awaiting activation
    std::uint64_t activeId_ = 0;      ///< 0 = none
    std::uint64_t nextCampaignId_ = 1;
    std::map<std::uint64_t, LeaseInflight> inflight_;
    bool draining_ = false;
    bool sawClient_ = false; ///< exitWhenIdle arms after first one
};

} // namespace wsel::serve

#endif // WSEL_SERVE_COORDINATOR_HH
