/**
 * @file
 * The wsel_worker process body: connect to the coordinator's Unix
 * socket, lease shards, simulate them via simulatePopulationShard,
 * commit them to the content-addressed result store, repeat until
 * told to shut down.
 *
 * The worker is crash-fodder by design: the coordinator assumes
 * any worker can vanish (SIGKILL, OOM, disk-full abort) at any
 * instruction, and the shard commit protocol (store.hh) makes that
 * safe.  For the fault-injection tests the binary arms the persist
 * fault hook from environment variables so a *deterministic* cell
 * or commit boundary raises SIGKILL on the worker itself:
 *
 *     WSEL_KILL_POINT="population.cell:37"    die at the 37th cell
 *     WSEL_KILL_POINT="serve.shard-start:1"   die picking up work
 *     WSEL_KILL_POINT="serve.shard-committed:1"  die just after
 *         the shard file is durable but before Done is sent (the
 *         zombie-completion window)
 *     WSEL_KILL_SHARD=3   only count hits while holding shard 3
 *
 * Heartbeats ride the row callback of simulatePopulationShard,
 * rate-limited to ttl/4 so a long shard cannot expire its own
 * lease while making steady progress.
 */

#ifndef WSEL_SERVE_WORKER_HH
#define WSEL_SERVE_WORKER_HH

#include <cstdint>
#include <string>

namespace wsel::serve
{

struct WorkerOptions
{
    std::string socketPath;

    /** Model cache directory ("" = in-memory only). */
    std::string cacheDir;

    /** Threads for model building (simulation itself is serial). */
    std::size_t jobs = 1;
};

/**
 * Run the lease loop until the coordinator says Shutdown (returns
 * 0), the coordinator disappears (returns 1), or a spec/config
 * error makes this worker useless (FatalError propagates).
 */
int runWorker(const WorkerOptions &opts);

/**
 * Install a persist fault hook from WSEL_KILL_POINT /
 * WSEL_KILL_SHARD (see file comment); no-op when unset.  Called by
 * the wsel_worker binary before runWorker.
 */
void armKillPointsFromEnv();

} // namespace wsel::serve

#endif // WSEL_SERVE_WORKER_HH
