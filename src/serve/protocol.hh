/**
 * @file
 * Wire protocol of the distributed campaign service
 * (docs/ROBUSTNESS.md, "Distributed campaigns"): length-prefixed
 * binary frames over a Unix-domain stream socket, shared by worker
 * processes (lease traffic) and clients (campaign submission,
 * status, metrics).
 *
 * Frame layout (all integers little-endian):
 *
 *     u32 payload length (type byte + body, <= kMaxFrameBytes)
 *     u8  MsgType
 *     ... body (per-message encoding below)
 *
 * The encoding deliberately mirrors the campaign_v3 style
 * (persist_v3.cc): u32/u64/f64/length-prefixed strings, every read
 * bounds-checked, malformed input raising ProtocolError — a peer
 * can be killed mid-write at any byte, so a receiver must treat
 * every frame as untrusted.
 *
 * Campaign identity travels as a CampaignSpec (suite benchmark
 * *names* resolved against the built-in suite by each process,
 * policies, cores, slice length, seed, rank range, shard
 * geometry); the coordinator also sends its computed
 * campaignFingerprint so a worker whose resolved configuration
 * drifts from the coordinator's refuses the lease instead of
 * silently writing wrong bytes.
 */

#ifndef WSEL_SERVE_PROTOCOL_HH
#define WSEL_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace wsel::serve
{

/** Thrown on malformed, truncated or oversized frames. */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Upper bound on one frame's payload (type byte + body). */
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

enum class MsgType : std::uint8_t
{
    // worker -> coordinator
    HelloWorker = 1, ///< {u64 pid}
    RequestLease,    ///< {}
    Heartbeat,       ///< {u64 leaseId}
    Done,            ///< {u64 leaseId, u64 campaignId, u64 shard,
                     ///<  u8 dedup}
    Failed,          ///< {u64 leaseId, str message}

    // coordinator -> worker
    Lease = 16, ///< LeaseMsg
    NoWork,     ///< {u8 drain}: nothing grantable right now
    Shutdown,   ///< {}: drain complete, exit

    // client <-> coordinator
    HelloClient = 32, ///< {}
    Submit,           ///< CampaignSpec
    SubmitReply,      ///< {u8 accepted, u64 campaignId, str message}
    StatusReq,        ///< {u64 campaignId}
    StatusReply,      ///< StatusMsg
    MetricsReq,       ///< {}
    MetricsReply,     ///< {str json}
    StopReq,          ///< {u64 campaignId}: halt, keep done shards
    StopReply,        ///< {u8 ok, str message}
};

/**
 * Everything that identifies a population campaign's numbers and
 * shard geometry.  Benchmarks are suite names (resolved via
 * findProfile); lastRank 0 means "the full population".
 */
struct CampaignSpec
{
    std::uint32_t cores = 0;
    std::uint64_t targetUops = 0;
    std::uint64_t seed = 1;
    std::uint64_t firstRank = 0;
    std::uint64_t lastRank = 0; ///< 0 = population size
    std::uint64_t shardRows = 0;
    std::vector<std::string> policies;
    std::vector<std::string> benchmarks;

    /**
     * 0 = BADCO, 1 = detailed simulator.  Folded into the store's
     * geometry hash so the two fidelities of the same campaign
     * shape never collide on a result directory.
     */
    std::uint32_t fidelity = 0;

    /**
     * Escalation knobs (docs/FIDELITY.md): a BADCO campaign with
     * escalateBudget > 0 asks the coordinator to re-lease, at
     * detailed fidelity, the shards whose rows' d(w) error
     * interval (policies[0] as X vs policies[1] as Y, under
     * escalateMetric) straddles zero — bounded by this fraction of
     * the population.  Ignored when fidelity = 1.
     */
    double escalateBudget = 0.0;
    double escalateQuantile = 0.9;
    std::string escalateMetric = "IPCT";

    bool operator==(const CampaignSpec &) const = default;
};

/** One lease grant: the work unit plus how to report back. */
struct LeaseMsg
{
    std::uint64_t leaseId = 0;
    std::uint64_t campaignId = 0;
    std::uint64_t shard = 0;
    std::uint64_t ttlMs = 0;       ///< heartbeat before this expires
    std::uint64_t fingerprint = 0; ///< coordinator's, cross-checked
    std::string dir;               ///< result-store campaign dir
    CampaignSpec spec;
};

enum class CampaignState : std::uint8_t
{
    Queued = 0,
    Running,
    Done,
    Failed,
    Stopped, ///< halted by a client Stop; done shards are kept
    Unknown,
};

const char *toString(CampaignState s);

/** Status of one campaign (StatusReply body). */
struct StatusMsg
{
    CampaignState state = CampaignState::Unknown;
    std::uint64_t shardsTotal = 0;
    std::uint64_t shardsDone = 0;
    std::uint64_t shardsDeduped = 0; ///< served from the store
    std::uint64_t shardsQuarantined = 0;
    std::uint64_t leasesActive = 0;
    std::string dir;     ///< result-store campaign dir
    std::string message; ///< failure reason, rejection reason, ...
};

// -------------------------------------------------------------------
// Encoding
// -------------------------------------------------------------------

/** Append-only little-endian encoder (mirrors persist_v3). */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void str(std::string_view s);

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Bounds-checked reader; throws ProtocolError on truncation. */
class WireReader
{
  public:
    explicit WireReader(std::string_view data) : data_(data) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::string str();

    std::size_t remaining() const { return data_.size() - pos_; }

    /** Throws unless the whole payload was consumed. */
    void expectEnd() const;

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
};

/** A parsed frame: type plus its body (after the type byte). */
struct Frame
{
    MsgType type;
    std::string body;
};

/** Render one frame (length prefix + type + body). */
std::string encodeFrame(MsgType type, std::string_view body);

/**
 * Incremental frame parser: feed() raw socket bytes, next() pops
 * complete frames in order.  Throws ProtocolError on an oversized
 * length prefix (a desynchronized or malicious peer).
 */
class FrameBuffer
{
  public:
    void feed(const char *data, std::size_t n);
    std::optional<Frame> next();

  private:
    std::string buf_;
};

void encodeSpec(WireWriter &w, const CampaignSpec &spec);
CampaignSpec decodeSpec(WireReader &r);

std::string encodeLease(const LeaseMsg &m);
LeaseMsg decodeLease(std::string_view body);

std::string encodeStatus(const StatusMsg &m);
StatusMsg decodeStatus(std::string_view body);

// -------------------------------------------------------------------
// Sockets
// -------------------------------------------------------------------

/**
 * RAII fd.  Movable, closes on destruction; -1 means empty.
 */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Fd &operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release()
    {
        const int f = fd_;
        fd_ = -1;
        return f;
    }
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on a Unix-domain stream socket at @p path (an
 * existing socket file is unlinked first — a daemon replacing a
 * stale socket from a crashed predecessor).  WSEL_FATAL on error
 * (path too long for sockaddr_un, permission, ...).
 */
Fd listenUnix(const std::string &path, int backlog = 64);

/**
 * Connect to the Unix-domain socket at @p path, retrying for up to
 * @p timeout_ms (workers often start before the coordinator has
 * bound).  Returns an invalid Fd on timeout.
 */
Fd connectUnix(const std::string &path, int timeout_ms = 5000);

/** Blocking send of a whole buffer; false on EPIPE/error. */
bool sendAll(int fd, std::string_view data);

/** Blocking send of one frame; false on EPIPE/error. */
bool sendFrame(int fd, MsgType type, std::string_view body);

/**
 * Blocking read of the next frame (nullopt on EOF / error /
 * @p timeout_ms elapsed without a complete frame).  @p fb carries
 * partial bytes between calls.
 */
std::optional<Frame> recvFrame(int fd, FrameBuffer &fb,
                               int timeout_ms = -1);

// -------------------------------------------------------------------
// Client
// -------------------------------------------------------------------

/**
 * Blocking client for the coordinator's campaign endpoints: used
 * by `wsel_cli serve submit/status/metrics` and tests.  Every call
 * throws ProtocolError on a malformed reply and FatalError when
 * the daemon is unreachable.
 */
class Client
{
  public:
    /** Connect and introduce ourselves; FATAL on timeout. */
    explicit Client(const std::string &socket_path,
                    int timeout_ms = 5000);

    /**
     * Submit a campaign.  On admission returns the (accepted)
     * status-pollable campaign id; on rejection (bounded queue
     * full, invalid spec) throws FatalError with the daemon's
     * reason.
     */
    std::uint64_t submit(const CampaignSpec &spec);

    /** Status of campaign @p id (state Unknown when never seen). */
    StatusMsg status(std::uint64_t id);

    /** The daemon's metrics snapshot as JSON. */
    std::string metricsJson();

    /**
     * Ask the daemon to halt campaign @p id: a queued campaign is
     * dropped immediately, a running one stops granting leases and
     * lets in-flight shards finish (their results are kept in the
     * store).  Returns the daemon's acknowledgement message;
     * throws FatalError when the id is unknown or already final.
     */
    std::string stop(std::uint64_t id);

    /**
     * Poll status until Done, Failed or Stopped (or @p timeout_ms
     * elapses: FatalError).  Returns the final status.
     */
    StatusMsg waitFinished(std::uint64_t id, int poll_ms = 50,
                           int timeout_ms = 600000);

  private:
    Frame roundTrip(MsgType type, std::string_view body,
                    MsgType expect);

    Fd fd_;
    FrameBuffer fb_;
};

} // namespace wsel::serve

#endif // WSEL_SERVE_PROTOCOL_HH
