/**
 * @file
 * Child-process helpers for the distributed campaign service:
 * spawning `wsel_worker` processes and reaping them.
 *
 * Spawning goes through posix_spawn, not fork+exec: the daemon and
 * the in-process campaign runner both live in (potentially)
 * threaded parents, where a raw fork may deadlock on locks held by
 * other threads between fork and exec — posix_spawn is
 * async-signal-safe by specification and keeps tsan happy.
 *
 * Worker-binary discovery order (findWorkerBinary):
 *   1. $WSEL_WORKER_BIN (tests and odd layouts),
 *   2. `wsel_worker` next to the calling executable
 *      (/proc/self/exe), the build-tree layout for tools,
 *   3. `../tools/wsel_worker` relative to it, the layout seen from
 *      test binaries in build/tests/.
 */

#ifndef WSEL_SERVE_SPAWN_HH
#define WSEL_SERVE_SPAWN_HH

#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace wsel::serve
{

/**
 * Spawn @p argv (argv[0] is the binary path) with the parent's
 * environment plus @p extra_env ("KEY=VALUE" entries, overriding
 * inherited keys of the same name).  WSEL_FATAL when the spawn
 * itself fails; a child that starts and then dies is reported
 * through waitProcess/pollProcess.
 */
pid_t spawnProcess(const std::vector<std::string> &argv,
                   const std::vector<std::string> &extra_env = {});

/**
 * Non-blocking reap: the raw waitpid status when @p pid has
 * exited, nullopt while it is still running.
 */
std::optional<int> pollProcess(pid_t pid);

/** Blocking reap; returns the raw waitpid status. */
int waitProcess(pid_t pid);

/** True when the raw status is a clean exit(0). */
bool exitedCleanly(int raw_status);

/** "exit 3" / "signal 9 (Killed)" for diagnostics. */
std::string describeExit(int raw_status);

/** Directory containing the current executable ("" if unknown). */
std::string selfExeDir();

/**
 * Locate the wsel_worker binary (see file comment); WSEL_FATAL
 * when none of the candidates exists.
 */
std::string findWorkerBinary();

} // namespace wsel::serve

#endif // WSEL_SERVE_SPAWN_HH
