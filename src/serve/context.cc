#include "serve/context.hh"

#include "serve/store.hh"
#include "sim/campaign.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"

namespace wsel::serve
{

namespace
{

std::vector<BenchmarkProfile>
resolveSuite(const CampaignSpec &spec)
{
    if (spec.benchmarks.empty())
        WSEL_FATAL("campaign spec has no benchmarks");
    if (spec.cores == 0)
        WSEL_FATAL("campaign spec has zero cores");
    if (spec.policies.empty())
        WSEL_FATAL("campaign spec has no policies");
    if (spec.shardRows == 0)
        WSEL_FATAL("campaign spec has zero shardRows");
    std::vector<BenchmarkProfile> suite;
    suite.reserve(spec.benchmarks.size());
    for (const std::string &name : spec.benchmarks)
        suite.push_back(findProfile(name)); // FATAL on unknown
    return suite;
}

} // namespace

CampaignContext::CampaignContext(const CampaignSpec &spec,
                                 const std::string &cache_dir,
                                 std::size_t jobs)
    : suite_(resolveSuite(spec)),
      pop_(static_cast<std::uint32_t>(suite_.size()), spec.cores),
      seed_(spec.seed)
{
    std::vector<PolicyKind> policies;
    policies.reserve(spec.policies.size());
    for (const std::string &p : spec.policies)
        policies.push_back(parsePolicyKind(p)); // FATAL on unknown

    const std::uint64_t last =
        spec.lastRank == 0 ? pop_.size() : spec.lastRank;
    if (spec.firstRank >= last || last > pop_.size())
        WSEL_FATAL("campaign spec rank range [" << spec.firstRank
                   << ", " << last << ") invalid for population of "
                   << pop_.size());

    fidelity_ = spec.fidelity;
    const char *sim_name = fidelity_ == 0 ? "badco" : "detailed";
    m_.fingerprint = campaignFingerprint(
        sim_name, spec.cores, spec.targetUops, policies, suite_);
    m_.simulator = sim_name;
    m_.cores = spec.cores;
    m_.targetUops = spec.targetUops;
    for (PolicyKind p : policies)
        m_.policies.push_back(toString(p));
    m_.benchmarks = spec.benchmarks;
    m_.popBenchmarks = static_cast<std::uint32_t>(suite_.size());
    m_.popCores = spec.cores;
    m_.firstRank = spec.firstRank;
    m_.lastRank = last;
    m_.shardRows = spec.shardRows;
    m_.instructions = m_.rows() * policies.size() * spec.cores *
                      spec.targetUops;

    ucfgs_.reserve(policies.size());
    for (PolicyKind p : policies)
        ucfgs_.push_back(UncoreConfig::forCores(spec.cores, p));

    const UncoreConfig ref =
        UncoreConfig::forCores(spec.cores, PolicyKind::LRU);
    if (fidelity_ == 0) {
        store_ = std::make_unique<BadcoModelStore>(
            CoreConfig{}, spec.targetUops, ref.llcHitLatency,
            cache_dir);
        models_ = store_->getSuite(suite_, jobs);
        const BadcoMulticoreSim ref_sim(ref, 1, spec.targetUops,
                                        seed_);
        m_.refIpc = ref_sim.referenceIpcs(models_);
    } else {
        // Detailed fidelity: no models; references come from the
        // cycle-level simulator (as runDetailedCampaign does).
        const DetailedMulticoreSim ref_sim(coreCfg_, ref, 1,
                                           spec.targetUops, seed_);
        m_.refIpc = ref_sim.referenceIpcs(suite_);
    }

    geomHash_ =
        campaignGeometryHash(seed_, m_.firstRank, m_.lastRank,
                             m_.shardRows, fidelity_);
}

} // namespace wsel::serve
