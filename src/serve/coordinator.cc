#include "serve/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/metrics/throughput.hh"
#include "fidelity/error_profile.hh"
#include "fidelity/escalation.hh"
#include "fidelity/persist_fidelity.hh"
#include "obs/metrics.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::serve
{

namespace
{

std::uint64_t
ttlMillis(const LeaseOptions &l)
{
    return static_cast<std::uint64_t>(l.ttl.count());
}

} // namespace

Coordinator::Coordinator(const CoordinatorOptions &opts)
    : opts_(opts), store_(opts.storeRoot),
      listenFd_(listenUnix(opts.socketPath))
{
    if (::pipe(wakePipe_) != 0)
        WSEL_FATAL("pipe: " << std::strerror(errno));
    for (int fd : wakePipe_) {
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
}

Coordinator::~Coordinator()
{
    for (int fd : wakePipe_)
        if (fd >= 0)
            ::close(fd);
    (void)::unlink(opts_.socketPath.c_str());
}

const std::string &
Coordinator::socketPath() const
{
    return opts_.socketPath;
}

void
Coordinator::requestStop()
{
    // Async-signal-safe: one write, no locks, no allocation.
    const char b = 's';
    (void)!::write(wakePipe_[1], &b, 1);
}

Coordinator::Campaign *
Coordinator::active()
{
    if (activeId_ == 0)
        return nullptr;
    auto it = campaigns_.find(activeId_);
    return it == campaigns_.end() ? nullptr : &it->second;
}

void
Coordinator::activateNext()
{
    while (activeId_ == 0 && !queue_.empty() && !draining_) {
        const std::uint64_t id = queue_.front();
        queue_.pop_front();
        Campaign &c = campaigns_.at(id);
        try {
            c.ctx = std::make_unique<CampaignContext>(
                c.spec, opts_.cacheDir, opts_.jobs);
        } catch (const FatalError &e) {
            c.state = CampaignState::Failed;
            c.message = e.what();
            warn("campaign " + std::to_string(id) +
                 " failed at admission: " + c.message);
            continue; // try the next queued campaign
        }
        const persist::V3Manifest &m = c.ctx->manifest();
        c.dir = store_.campaignDir(m.fingerprint,
                                   c.ctx->geometryHash());
        store_.ensureCampaignDir(c.dir);
        c.table = std::make_unique<LeaseTable>(m.shardCount(),
                                               opts_.lease);
        // Shards already in the store — from an earlier overlapping
        // campaign or from a previous coordinator's interrupted run
        // — are done before the first lease is granted.
        for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
            if (ResultStore::hasShard(c.dir, m, s)) {
                c.table->markDone(s);
                ++c.deduped;
            }
        }
        if (c.deduped > 0)
            obs::counter("serve.dedup_hits").inc(c.deduped);
        c.state = CampaignState::Running;
        activeId_ = id;
        if (c.table->finished())
            finalize(id, c); // fully dedup'd: zero recomputation
    }
}

bool
Coordinator::beginEscalation(std::uint64_t id, Campaign &c)
{
    const persist::V3Manifest &m = c.ctx->manifest();
    if (opts_.cacheDir.empty()) {
        warn("campaign " + std::to_string(id) +
             ": escalation requested but the daemon has no cache "
             "dir to hold an error profile; finishing at BADCO "
             "fidelity");
        return false;
    }
    const std::string ppath =
        fidelity::errorProfilePath(opts_.cacheDir);
    fidelity::ErrorProfile profile;
    try {
        profile = fidelity::readErrorProfile(ppath);
    } catch (const persist::CacheInvalid &e) {
        warn("campaign " + std::to_string(id) +
             ": cannot load error profile " + ppath + " (" +
             e.what() + "); finishing at BADCO fidelity");
        return false;
    }
    if (profile.suiteHash() !=
        fidelity::ErrorProfile::hashSuite(c.ctx->suite())) {
        warn("campaign " + std::to_string(id) +
             ": error profile was calibrated for a different "
             "suite; finishing at BADCO fidelity");
        return false;
    }

    ThroughputMetric metric;
    try {
        metric = parseMetric(c.spec.escalateMetric);
    } catch (const FatalError &e) {
        warn("campaign " + std::to_string(id) + ": " + e.what() +
             "; finishing at BADCO fidelity");
        return false;
    }
    if (!(c.spec.escalateQuantile > 0.0 &&
          c.spec.escalateQuantile < 1.0) ||
        !(c.spec.escalateBudget <= 1.0)) {
        warn("campaign " + std::to_string(id) +
             ": escalation knobs out of range; finishing at BADCO "
             "fidelity");
        return false;
    }

    // Per-row d(w) intervals over the committed sweep; rows whose
    // interval straddles zero are suspects, budget-capped.
    const std::uint64_t rows = m.rows();
    std::vector<fidelity::CellInterval> cells(
        static_cast<std::size_t>(rows));
    {
        fidelity::EscalationOracle oracle(
            metric, profile, c.spec.escalateQuantile, m.refIpc);
        const std::size_t np = m.policies.size();
        const std::uint32_t k = m.cores;
        for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
            const std::vector<double> payload =
                persist::readV3Shard(c.dir, m, s);
            const std::uint64_t first = m.shardFirstRank(s);
            WorkloadCursor cur(c.ctx->population(), first);
            const std::uint64_t n = m.rowsInShard(s);
            for (std::uint64_t r = 0; r < n; ++r, cur.next()) {
                const double *row = payload.data() + r * np * k;
                cells[static_cast<std::size_t>(
                    first - m.firstRank + r)] =
                    oracle.interval(cur.benchmarks(), {row, k},
                                    {row + k, k});
            }
        }
    }
    const std::vector<std::uint8_t> flags =
        fidelity::selectEscalations(cells, 0.0,
                                    c.spec.escalateBudget);

    // Phase-1 campaign: same geometry, detailed fidelity.
    CampaignSpec dspec = c.spec;
    dspec.fidelity = 1;
    dspec.escalateBudget = 0.0;
    std::unique_ptr<CampaignContext> dctx;
    try {
        dctx = std::make_unique<CampaignContext>(
            dspec, opts_.cacheDir, opts_.jobs);
    } catch (const FatalError &e) {
        warn("campaign " + std::to_string(id) +
             ": detailed-phase context failed: " + e.what() +
             "; finishing at BADCO fidelity");
        return false;
    }
    const persist::V3Manifest &dm = dctx->manifest();
    const std::string ddir =
        store_.campaignDir(dm.fingerprint, dctx->geometryHash());
    store_.ensureCampaignDir(ddir);

    fidelity::EscalationRecord rec;
    rec.badcoFingerprint = m.fingerprint;
    rec.detailedFingerprint = dm.fingerprint;
    rec.seed = c.spec.seed;
    rec.metric = c.spec.escalateMetric;
    rec.policyX = m.policies[0];
    rec.policyY = m.policies[1];
    rec.quantile = c.spec.escalateQuantile;
    rec.budgetFraction = c.spec.escalateBudget;
    rec.threshold = 0.0;
    rec.firstRank = m.firstRank;
    rec.lastRank = m.lastRank;
    rec.resizeBitmap();
    for (std::uint64_t r = 0; r < rows; ++r) {
        if (flags[static_cast<std::size_t>(r)]) {
            rec.setEscalated(r);
            ++rec.escalatedCount;
        }
    }
    fidelity::writeEscalationRecord(ddir, rec);

    auto table =
        std::make_unique<LeaseTable>(dm.shardCount(), opts_.lease);
    std::uint64_t flagged_shards = 0;
    for (std::uint64_t s = 0; s < dm.shardCount(); ++s) {
        const std::uint64_t first = dm.shardFirstRank(s);
        const std::uint64_t n = dm.rowsInShard(s);
        bool flagged = false;
        for (std::uint64_t r = 0; r < n && !flagged; ++r)
            flagged = rec.escalated(first - dm.firstRank + r);
        if (!flagged) {
            table->markDone(s);
        } else if (ResultStore::hasShard(ddir, dm, s)) {
            table->markDone(s);
            ++c.deduped;
            obs::counter("serve.dedup_hits").inc();
        } else {
            ++flagged_shards;
        }
    }

    c.badcoDir = c.dir;
    c.escalatedRows = rec.escalatedCount;
    c.escalatedShards = flagged_shards;
    c.phase = 1;
    c.spec = std::move(dspec);
    c.ctx = std::move(dctx);
    c.table = std::move(table);
    c.dir = ddir;
    obs::counter("serve.escalations_started").inc();
    if (obs::metricsEnabled())
        obs::gauge("serve.escalated_rows")
            .set(static_cast<double>(rec.escalatedCount));
    logLine("campaign " + std::to_string(id) + ": escalating " +
            std::to_string(rec.escalatedCount) + " row(s) in " +
            std::to_string(flagged_shards) +
            " shard(s) to detailed fidelity -> " + ddir);
    if (c.table->finished()) {
        finalize(id, c);
        return c.state == CampaignState::Running;
    }
    return true;
}

void
Coordinator::finalize(std::uint64_t id, Campaign &c)
{
    if (c.table->succeeded()) {
        if (c.phase == 0) {
            ResultStore::commitManifest(c.dir, c.ctx->manifest());
            if (c.spec.fidelity == 0 &&
                c.spec.escalateBudget > 0.0 &&
                c.spec.policies.size() >= 2 &&
                beginEscalation(id, c))
                return; // now Running in the detailed phase
        }
        if (c.phase == 1) {
            // The detailed dir holds only escalated shards (the
            // fidelity-bitmap sidecar names them), so no manifest:
            // a manifest claims a complete campaign.
            c.message =
                "escalated " + std::to_string(c.escalatedRows) +
                " row(s) at detailed fidelity; badco " +
                c.badcoDir + "; detailed " + c.dir;
        }
        c.state = CampaignState::Done;
    } else if (c.table->halted()) {
        // A client Stop: no manifest (the campaign is partial),
        // but every completed shard stays in the store for dedup.
        c.state = CampaignState::Stopped;
        c.message = "stopped by client after " +
                    std::to_string(c.table->doneCount()) + "/" +
                    std::to_string(c.table->shards()) + " shard(s)";
    } else {
        c.state = CampaignState::Failed;
        c.message = std::to_string(c.table->quarantinedCount()) +
                    " shard(s) quarantined as poison";
        warn("campaign " + std::to_string(id) + " failed: " +
             c.message);
    }
    c.ctx.reset(); // models are the heavy part; the table stays
                   // for status queries
    if (activeId_ == id)
        activeId_ = 0;
}

StatusMsg
Coordinator::statusOf(std::uint64_t id) const
{
    StatusMsg s;
    auto it = campaigns_.find(id);
    if (it == campaigns_.end())
        return s; // Unknown
    const Campaign &c = it->second;
    s.state = c.state;
    s.dir = c.dir;
    s.message = c.message;
    s.shardsDeduped = c.deduped;
    if (c.table) {
        s.shardsTotal = c.table->shards();
        s.shardsDone = c.table->doneCount();
        s.shardsQuarantined = c.table->quarantinedCount();
        s.leasesActive = c.table->activeLeases();
    }
    return s;
}

void
Coordinator::grantOrPark(Conn &conn)
{
    if (draining_) {
        (void)sendFrame(conn.fd.get(), MsgType::Shutdown, {});
        return;
    }
    Campaign *c = active();
    if (c && c->table) {
        const auto now = LeaseClock::now();
        if (std::optional<LeaseGrant> g = c->table->acquire(
                now, static_cast<std::int64_t>(conn.workerPid))) {
            LeaseMsg lm;
            lm.leaseId = g->leaseId;
            lm.campaignId = activeId_;
            lm.shard = g->shard;
            lm.ttlMs = ttlMillis(opts_.lease);
            lm.fingerprint = c->ctx->manifest().fingerprint;
            lm.dir = c->dir;
            lm.spec = c->spec;
            conn.leases.push_back(g->leaseId);
            inflight_[g->leaseId] =
                LeaseInflight{activeId_, now};
            obs::counter("serve.leases_granted").inc();
            if (!sendFrame(conn.fd.get(), MsgType::Lease,
                           encodeLease(lm)))
                dropConnection(conn);
            return;
        }
    }
    WireWriter w;
    w.u8(0);
    (void)sendFrame(conn.fd.get(), MsgType::NoWork, w.bytes());
}

void
Coordinator::noteLeaseClosed(std::uint64_t leaseId, Conn *conn)
{
    auto it = inflight_.find(leaseId);
    if (it != inflight_.end()) {
        const auto dur = LeaseClock::now() - it->second.granted;
        obs::histogram("serve.lease_ns")
            .recordNs(static_cast<std::uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(dur)
                    .count()));
        inflight_.erase(it);
    }
    if (conn) {
        auto &v = conn->leases;
        v.erase(std::remove(v.begin(), v.end(), leaseId), v.end());
    }
}

bool
Coordinator::handleFrame(Conn &conn, const Frame &f)
{
    switch (f.type) {
    case MsgType::HelloWorker: {
        WireReader r(f.body);
        conn.kind = Conn::Kind::Worker;
        conn.workerPid = r.u64();
        obs::gauge("serve.workers_active").add(1.0);
        return true;
    }
    case MsgType::HelloClient:
        conn.kind = Conn::Kind::Client;
        sawClient_ = true;
        return true;
    case MsgType::RequestLease:
        grantOrPark(conn);
        return true;
    case MsgType::Heartbeat: {
        WireReader r(f.body);
        const std::uint64_t leaseId = r.u64();
        auto it = inflight_.find(leaseId);
        if (it == inflight_.end())
            return true; // expired & reclaimed; worker will learn
        auto cit = campaigns_.find(it->second.campaignId);
        if (cit != campaigns_.end() && cit->second.table)
            (void)cit->second.table->heartbeat(leaseId,
                                              LeaseClock::now());
        return true;
    }
    case MsgType::Done: {
        WireReader r(f.body);
        const std::uint64_t leaseId = r.u64();
        (void)r.u64(); // campaignId: inflight_ is authoritative
        const std::uint64_t shard = r.u64();
        const bool dedup = r.u8() != 0;
        auto it = inflight_.find(leaseId);
        if (it == inflight_.end()) {
            // A zombie (lease expired, maybe re-run elsewhere).
            // The store already holds the shard bytes either way;
            // nothing to update.
            obs::counter("serve.duplicate_completions").inc();
            return true;
        }
        const std::uint64_t cid = it->second.campaignId;
        Campaign &c = campaigns_.at(cid);
        const CompleteResult res =
            c.table->complete(leaseId, shard);
        noteLeaseClosed(leaseId, &conn);
        if (res == CompleteResult::Committed && dedup) {
            ++c.deduped;
            obs::counter("serve.dedup_hits").inc();
        }
        if (res == CompleteResult::Duplicate)
            obs::counter("serve.duplicate_completions").inc();
        if (c.state == CampaignState::Running &&
            c.table->finished())
            finalize(cid, c);
        return true;
    }
    case MsgType::Failed: {
        WireReader r(f.body);
        const std::uint64_t leaseId = r.u64();
        const std::string msg = r.str();
        auto it = inflight_.find(leaseId);
        if (it == inflight_.end())
            return true;
        const std::uint64_t cid = it->second.campaignId;
        Campaign &c = campaigns_.at(cid);
        const std::uint64_t qBefore =
            c.table->quarantinedCount();
        c.table->fail(leaseId, LeaseClock::now());
        noteLeaseClosed(leaseId, &conn);
        const std::uint64_t qAfter = c.table->quarantinedCount();
        if (qAfter > qBefore)
            obs::counter("serve.shards_quarantined")
                .inc(qAfter - qBefore);
        else
            obs::counter("serve.leases_requeued").inc();
        warn("lease " + std::to_string(leaseId) + " failed: " +
             msg);
        if (c.state == CampaignState::Running &&
            c.table->finished())
            finalize(cid, c);
        return true;
    }
    case MsgType::Submit: {
        WireReader r(f.body);
        CampaignSpec spec = decodeSpec(r);
        r.expectEnd();
        WireWriter w;
        const std::size_t pending =
            queue_.size() + (activeId_ != 0 ? 1 : 0);
        if (draining_) {
            w.u8(0);
            w.u64(0);
            w.str("daemon is draining");
            obs::counter("serve.campaigns_rejected").inc();
        } else if (pending >= opts_.maxQueued) {
            w.u8(0);
            w.u64(0);
            w.str("admission queue full (" +
                  std::to_string(pending) + "/" +
                  std::to_string(opts_.maxQueued) + ")");
            obs::counter("serve.campaigns_rejected").inc();
        } else {
            const std::uint64_t id = nextCampaignId_++;
            Campaign c;
            c.spec = std::move(spec);
            campaigns_.emplace(id, std::move(c));
            queue_.push_back(id);
            obs::counter("serve.campaigns_submitted").inc();
            w.u8(1);
            w.u64(id);
            w.str("");
        }
        return sendFrame(conn.fd.get(), MsgType::SubmitReply,
                         w.bytes());
    }
    case MsgType::StatusReq: {
        WireReader r(f.body);
        const std::uint64_t id = r.u64();
        return sendFrame(conn.fd.get(), MsgType::StatusReply,
                         encodeStatus(statusOf(id)));
    }
    case MsgType::MetricsReq: {
        WireWriter w;
        w.str(obs::metricsSnapshot().toJson());
        return sendFrame(conn.fd.get(), MsgType::MetricsReply,
                         w.bytes());
    }
    case MsgType::StopReq: {
        WireReader r(f.body);
        const std::uint64_t cid = r.u64();
        r.expectEnd();
        WireWriter w;
        auto it = campaigns_.find(cid);
        if (it == campaigns_.end()) {
            w.u8(0);
            w.str("unknown campaign " + std::to_string(cid));
        } else if (it->second.state == CampaignState::Queued) {
            Campaign &c = it->second;
            std::erase(queue_, cid);
            c.state = CampaignState::Stopped;
            c.message = "stopped before activation";
            obs::counter("serve.campaigns_stopped").inc();
            w.u8(1);
            w.str(c.message);
        } else if (it->second.state == CampaignState::Running) {
            Campaign &c = it->second;
            // Stop granting leases; in-flight shards finish and
            // their results stay in the store, so a later
            // re-submission dedups everything already paid for.
            c.table->halt();
            obs::counter("serve.campaigns_stopped").inc();
            w.u8(1);
            w.str("halting; " +
                  std::to_string(c.table->activeLeases()) +
                  " lease(s) in flight will finish");
            if (c.table->finished())
                finalize(cid, c);
        } else {
            w.u8(0);
            w.str("campaign already " +
                  std::string(toString(it->second.state)));
        }
        return sendFrame(conn.fd.get(), MsgType::StopReply,
                         w.bytes());
    }
    default:
        warn("coordinator: unexpected frame type " +
             std::to_string(static_cast<int>(f.type)));
        return false;
    }
}

void
Coordinator::dropConnection(Conn &conn)
{
    if (!conn.fd.valid())
        return;
    // A dead worker's leases fail back to the table (counted as
    // deaths; the backoff/quarantine path).
    const std::vector<std::uint64_t> leases = conn.leases;
    for (std::uint64_t leaseId : leases) {
        auto it = inflight_.find(leaseId);
        if (it == inflight_.end())
            continue;
        const std::uint64_t cid = it->second.campaignId;
        Campaign &c = campaigns_.at(cid);
        const std::uint64_t qBefore =
            c.table->quarantinedCount();
        c.table->fail(leaseId, LeaseClock::now());
        noteLeaseClosed(leaseId, nullptr);
        const std::uint64_t qAfter = c.table->quarantinedCount();
        if (qAfter > qBefore)
            obs::counter("serve.shards_quarantined")
                .inc(qAfter - qBefore);
        else
            obs::counter("serve.leases_requeued").inc();
        if (c.state == CampaignState::Running &&
            c.table->finished())
            finalize(cid, c);
    }
    conn.leases.clear();
    if (conn.kind == Conn::Kind::Worker)
        obs::gauge("serve.workers_active").add(-1.0);
    conn.kind = Conn::Kind::Unknown;
    conn.fd.reset();
}

void
Coordinator::acceptConnection()
{
    const int fd = ::accept(listenFd_.get(), nullptr, nullptr);
    if (fd < 0)
        return;
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    auto conn = std::make_unique<Conn>();
    conn->fd = Fd(fd);
    conns_.push_back(std::move(conn));
}

int
Coordinator::run()
{
    auto lastLoop = LeaseClock::now();
    for (;;) {
        std::vector<pollfd> pfds;
        pfds.push_back({listenFd_.get(), POLLIN, 0});
        pfds.push_back({wakePipe_[0], POLLIN, 0});
        for (const auto &c : conns_)
            pfds.push_back({c->fd.get(), POLLIN, 0});

        int timeout_ms = 100;
        if (Campaign *c = active(); c && c->table) {
            if (auto next = c->table->nextEvent()) {
                const auto d = std::chrono::duration_cast<
                    std::chrono::milliseconds>(*next -
                                               LeaseClock::now());
                timeout_ms = std::clamp<int>(
                    static_cast<int>(d.count()) + 1, 1, 100);
            }
        }
        const int pr =
            ::poll(pfds.data(),
                   static_cast<nfds_t>(pfds.size()), timeout_ms);
        if (pr < 0 && errno != EINTR)
            WSEL_FATAL("poll: " << std::strerror(errno));

        // Loop-stall compensation: if this iteration arrives much
        // later than the last (synchronous admission work, swap,
        // ptrace...), push every deadline out by the stall instead
        // of expiring workers that heartbeated into our buffer.
        const auto now = LeaseClock::now();
        const auto gap = now - lastLoop;
        lastLoop = now;
        if (gap > opts_.lease.ttl / 2) {
            if (Campaign *c = active(); c && c->table)
                c->table->extendAll(gap);
        }

        if (pfds[1].revents & POLLIN) {
            char buf[64];
            while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
            }
            draining_ = true;
        }
        if (pfds[0].revents & POLLIN)
            acceptConnection();

        // conns_ indices line up with pfds[2..]; handle reads and
        // hangups.  dropConnection only closes the fd — erasure
        // happens below so indices stay stable.
        for (std::size_t i = 0; i < conns_.size() &&
                                i + 2 < pfds.size();
             ++i) {
            Conn &conn = *conns_[i];
            if (!(pfds[i + 2].revents & (POLLIN | POLLHUP)))
                continue;
            char chunk[4096];
            const ssize_t n =
                ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
            if (n <= 0) {
                dropConnection(conn);
                continue;
            }
            conn.fb.feed(chunk, static_cast<std::size_t>(n));
            try {
                while (std::optional<Frame> f = conn.fb.next()) {
                    if (!handleFrame(conn, *f)) {
                        dropConnection(conn);
                        break;
                    }
                }
            } catch (const ProtocolError &e) {
                warn(std::string(
                         "coordinator: dropping malformed "
                         "connection: ") +
                     e.what());
                dropConnection(conn);
            }
        }
        std::erase_if(conns_, [](const std::unique_ptr<Conn> &c) {
            return !c->fd.valid();
        });

        // Reclaim overdue leases.
        if (Campaign *c = active(); c && c->table) {
            const std::uint64_t qBefore =
                c->table->quarantinedCount();
            const std::vector<std::uint64_t> expired =
                c->table->expire(now);
            for (std::uint64_t leaseId : expired) {
                obs::counter("serve.leases_expired").inc();
                for (auto &cp : conns_)
                    if (std::count(cp->leases.begin(),
                                   cp->leases.end(), leaseId))
                        noteLeaseClosed(leaseId, cp.get());
                noteLeaseClosed(leaseId, nullptr);
            }
            const std::uint64_t qAfter =
                c->table->quarantinedCount();
            if (qAfter > qBefore)
                obs::counter("serve.shards_quarantined")
                    .inc(qAfter - qBefore);
            if (!expired.empty())
                obs::counter("serve.leases_requeued")
                    .inc(expired.size() - (qAfter - qBefore));
            if (c->state == CampaignState::Running &&
                c->table->finished())
                finalize(activeId_, *c);
        }

        activateNext();

        if (draining_ && inflight_.empty()) {
            for (auto &c : conns_)
                if (c->kind == Conn::Kind::Worker)
                    (void)sendFrame(c->fd.get(),
                                    MsgType::Shutdown, {});
            return 0;
        }
        if (opts_.exitWhenIdle && sawClient_ && activeId_ == 0 &&
            queue_.empty()) {
            const bool clients_left = std::any_of(
                conns_.begin(), conns_.end(),
                [](const std::unique_ptr<Conn> &c) {
                    return c->kind == Conn::Kind::Client;
                });
            if (!clients_left) {
                for (auto &c : conns_)
                    if (c->kind == Conn::Kind::Worker)
                        (void)sendFrame(c->fd.get(),
                                        MsgType::Shutdown, {});
                return 0;
            }
        }
    }
}

} // namespace wsel::serve
