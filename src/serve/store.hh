/**
 * @file
 * Content-addressed campaign result store: the disk layout that
 * makes distributed shard completion idempotent and overlapping
 * campaigns free.
 *
 * Every campaign lands in
 *
 *     <root>/c-<fingerprint hex>-<geometry hex>/
 *
 * where the fingerprint is campaignFingerprint() (simulator, cores,
 * slice length, policies, suite — everything that shapes a cell's
 * value except the seed) and the geometry hash covers what the
 * fingerprint does not: base seed, rank range, and shard rows.  Two
 * submissions with identical physics and geometry therefore map to
 * the SAME directory, and a shard file present there satisfies both
 * without recomputation (`serve.dedup_hits`).  The V3Manifest
 * deliberately omits the base seed, which is why the seed must be
 * folded in here — without it two campaigns differing only in seed
 * would collide on bitwise-different cell values.
 *
 * Commit protocol per shard: simulate into memory, then
 * persist::writeV3Shard (atomic rename, trailing FNV-1a).  The
 * rename IS the commit point — a worker SIGKILLed before it leaves
 * nothing (or a quarantinable temp file), a worker killed after it
 * leaves a complete shard that any later lease holder detects via
 * hasShard() and reports as a dedup.  Duplicate commits are
 * harmless: both writers produce bitwise-identical bytes (the
 * determinism contract of campaignCellSeed), so whichever rename
 * lands last changes nothing.
 *
 * The campaign directory is created with
 * persist::ensureDirTree, so two workers (or two daemons) racing to
 * create it both succeed.
 */

#ifndef WSEL_SERVE_STORE_HH
#define WSEL_SERVE_STORE_HH

#include <cstdint>
#include <span>
#include <string>

#include "stats/persist_v3.hh"

namespace wsel::serve
{

/**
 * The seed + geometry complement of campaignFingerprint (see file
 * comment).  @p fidelity (CampaignSpec::fidelity: 0 BADCO, 1
 * detailed) is folded in so the two fidelities of one campaign
 * shape land in distinct directories — their cell values differ,
 * and the dedup rule "same directory = same bytes" must hold.
 */
std::uint64_t campaignGeometryHash(std::uint64_t seed,
                                   std::uint64_t firstRank,
                                   std::uint64_t lastRank,
                                   std::uint64_t shardRows,
                                   std::uint32_t fidelity = 0);

class ResultStore
{
  public:
    /** @p root is created (race-tolerantly) on first use. */
    explicit ResultStore(std::string root);

    const std::string &root() const { return root_; }

    /** The campaign directory for this identity (not created). */
    std::string campaignDir(std::uint64_t fingerprint,
                            std::uint64_t geometryHash) const;

    /** Create @p dir (EEXIST-tolerant); FATAL on failure. */
    void ensureCampaignDir(const std::string &dir) const;

    // The shard-level operations are addressed by the campaign
    // directory alone (a worker gets that directory in its lease
    // and never sees the root), hence static.

    /**
     * True when shard @p shard of @p dir exists and validates
     * against @p m (geometry + checksum).  A present-but-corrupt
     * shard is quarantined to `*.corrupt` and reported absent, so
     * the caller re-simulates it.
     */
    static bool hasShard(const std::string &dir,
                         const persist::V3Manifest &m,
                         std::uint64_t shard);

    /**
     * Commit shard @p shard.  No-op (returns false) when a valid
     * copy already exists — the idempotent-completion path for
     * zombie workers and overlapping campaigns; true when this
     * call wrote the shard.
     */
    static bool commitShard(const std::string &dir,
                            const persist::V3Manifest &m,
                            std::uint64_t shard,
                            std::span<const double> payload);

    /**
     * Write the manifest — the campaign-level commit point; only
     * call once every shard is present.  Idempotent (a valid
     * identical manifest is left alone).
     */
    static void commitManifest(const std::string &dir,
                               const persist::V3Manifest &m);

    /** True when @p dir holds a complete, committed campaign. */
    static bool isComplete(const std::string &dir);

  private:
    std::string root_;
};

} // namespace wsel::serve

#endif // WSEL_SERVE_STORE_HH
