#include "serve/protocol.hh"

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "stats/logging.hh"

namespace wsel::serve
{

namespace
{

/** Sane upper bounds for decoded containers (untrusted peers). */
constexpr std::uint32_t kMaxStringBytes = 1u << 20;
constexpr std::uint32_t kMaxListEntries = 1u << 20;

std::uint32_t
checkedCount(WireReader &r, const char *what,
             std::uint32_t max = kMaxListEntries)
{
    const std::uint32_t n = r.u32();
    if (n > max)
        throw ProtocolError(std::string("implausible ") + what +
                            " count " + std::to_string(n));
    return n;
}

} // namespace

const char *
toString(CampaignState s)
{
    switch (s) {
    case CampaignState::Queued:
        return "queued";
    case CampaignState::Running:
        return "running";
    case CampaignState::Done:
        return "done";
    case CampaignState::Failed:
        return "failed";
    case CampaignState::Stopped:
        return "stopped";
    case CampaignState::Unknown:
        break;
    }
    return "unknown";
}

// -------------------------------------------------------------------
// WireWriter / WireReader
// -------------------------------------------------------------------

void
WireWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
WireWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
WireWriter::str(std::string_view s)
{
    if (s.size() > kMaxStringBytes)
        throw ProtocolError("refusing to encode " +
                            std::to_string(s.size()) +
                            " byte string");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
}

std::uint8_t
WireReader::u8()
{
    if (remaining() < 1)
        throw ProtocolError("truncated frame (u8)");
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t
WireReader::u32()
{
    if (remaining() < 4)
        throw ProtocolError("truncated frame (u32)");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
WireReader::u64()
{
    if (remaining() < 8)
        throw ProtocolError("truncated frame (u64)");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t n = u32();
    if (n > kMaxStringBytes)
        throw ProtocolError("implausible string length " +
                            std::to_string(n));
    if (remaining() < n)
        throw ProtocolError("truncated frame (string)");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
}

void
WireReader::expectEnd() const
{
    if (remaining() != 0)
        throw ProtocolError(std::to_string(remaining()) +
                            " trailing bytes in frame");
}

// -------------------------------------------------------------------
// Frames
// -------------------------------------------------------------------

std::string
encodeFrame(MsgType type, std::string_view body)
{
    const std::uint64_t payload = 1 + body.size();
    if (payload > kMaxFrameBytes)
        throw ProtocolError("frame payload too large: " +
                            std::to_string(payload));
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(payload));
    w.u8(static_cast<std::uint8_t>(type));
    std::string out = w.take();
    out.append(body.data(), body.size());
    return out;
}

void
FrameBuffer::feed(const char *data, std::size_t n)
{
    buf_.append(data, n);
}

std::optional<Frame>
FrameBuffer::next()
{
    if (buf_.size() < 4)
        return std::nullopt;
    WireReader r(buf_);
    const std::uint32_t len = r.u32();
    if (len == 0 || len > kMaxFrameBytes)
        throw ProtocolError("bad frame length " +
                            std::to_string(len));
    if (buf_.size() < 4u + len)
        return std::nullopt;
    Frame f;
    f.type = static_cast<MsgType>(
        static_cast<std::uint8_t>(buf_[4]));
    f.body.assign(buf_, 5, len - 1);
    buf_.erase(0, 4u + len);
    return f;
}

// -------------------------------------------------------------------
// Message bodies
// -------------------------------------------------------------------

void
encodeSpec(WireWriter &w, const CampaignSpec &spec)
{
    w.u32(spec.cores);
    w.u64(spec.targetUops);
    w.u64(spec.seed);
    w.u64(spec.firstRank);
    w.u64(spec.lastRank);
    w.u64(spec.shardRows);
    w.u32(static_cast<std::uint32_t>(spec.policies.size()));
    for (const std::string &p : spec.policies)
        w.str(p);
    w.u32(static_cast<std::uint32_t>(spec.benchmarks.size()));
    for (const std::string &b : spec.benchmarks)
        w.str(b);
    w.u32(spec.fidelity);
    w.u64(std::bit_cast<std::uint64_t>(spec.escalateBudget));
    w.u64(std::bit_cast<std::uint64_t>(spec.escalateQuantile));
    w.str(spec.escalateMetric);
}

CampaignSpec
decodeSpec(WireReader &r)
{
    CampaignSpec s;
    s.cores = r.u32();
    s.targetUops = r.u64();
    s.seed = r.u64();
    s.firstRank = r.u64();
    s.lastRank = r.u64();
    s.shardRows = r.u64();
    const std::uint32_t np = checkedCount(r, "policy", 4096);
    s.policies.reserve(np);
    for (std::uint32_t i = 0; i < np; ++i)
        s.policies.push_back(r.str());
    const std::uint32_t nb = checkedCount(r, "benchmark");
    s.benchmarks.reserve(nb);
    for (std::uint32_t i = 0; i < nb; ++i)
        s.benchmarks.push_back(r.str());
    s.fidelity = r.u32();
    if (s.fidelity > 1)
        throw ProtocolError("campaign spec fidelity " +
                            std::to_string(s.fidelity) +
                            " out of range");
    s.escalateBudget = std::bit_cast<double>(r.u64());
    s.escalateQuantile = std::bit_cast<double>(r.u64());
    s.escalateMetric = r.str();
    return s;
}

std::string
encodeLease(const LeaseMsg &m)
{
    WireWriter w;
    w.u64(m.leaseId);
    w.u64(m.campaignId);
    w.u64(m.shard);
    w.u64(m.ttlMs);
    w.u64(m.fingerprint);
    w.str(m.dir);
    encodeSpec(w, m.spec);
    return w.take();
}

LeaseMsg
decodeLease(std::string_view body)
{
    WireReader r(body);
    LeaseMsg m;
    m.leaseId = r.u64();
    m.campaignId = r.u64();
    m.shard = r.u64();
    m.ttlMs = r.u64();
    m.fingerprint = r.u64();
    m.dir = r.str();
    m.spec = decodeSpec(r);
    r.expectEnd();
    return m;
}

std::string
encodeStatus(const StatusMsg &m)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(m.state));
    w.u64(m.shardsTotal);
    w.u64(m.shardsDone);
    w.u64(m.shardsDeduped);
    w.u64(m.shardsQuarantined);
    w.u64(m.leasesActive);
    w.str(m.dir);
    w.str(m.message);
    return w.take();
}

StatusMsg
decodeStatus(std::string_view body)
{
    WireReader r(body);
    StatusMsg m;
    const std::uint8_t st = r.u8();
    m.state = st > static_cast<std::uint8_t>(CampaignState::Unknown)
                  ? CampaignState::Unknown
                  : static_cast<CampaignState>(st);
    m.shardsTotal = r.u64();
    m.shardsDone = r.u64();
    m.shardsDeduped = r.u64();
    m.shardsQuarantined = r.u64();
    m.leasesActive = r.u64();
    m.dir = r.str();
    m.message = r.str();
    r.expectEnd();
    return m;
}

// -------------------------------------------------------------------
// Sockets
// -------------------------------------------------------------------

void
Fd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

Fd
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        WSEL_FATAL("socket path too long ("
                   << path.size() << " bytes, max "
                   << sizeof(addr.sun_path) - 1 << "): " << path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        WSEL_FATAL("socket(AF_UNIX): " << std::strerror(errno));
    // A stale socket file from a crashed predecessor would make
    // bind fail with EADDRINUSE even though nobody is listening.
    (void)::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        WSEL_FATAL("bind(" << path
                   << "): " << std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        WSEL_FATAL("listen(" << path
                   << "): " << std::strerror(errno));
    return fd;
}

Fd
connectUnix(const std::string &path, int timeout_ms)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        WSEL_FATAL("socket path too long ("
                   << path.size() << " bytes, max "
                   << sizeof(addr.sun_path) - 1 << "): " << path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (!fd.valid())
            WSEL_FATAL("socket(AF_UNIX): "
                       << std::strerror(errno));
        if (::connect(fd.get(),
                      reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        if (std::chrono::steady_clock::now() >= deadline)
            return Fd();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

bool
sendAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not as
        // SIGPIPE killing this process.
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendFrame(int fd, MsgType type, std::string_view body)
{
    return sendAll(fd, encodeFrame(type, body));
}

std::optional<Frame>
recvFrame(int fd, FrameBuffer &fb, int timeout_ms)
{
    if (std::optional<Frame> f = fb.next())
        return f;
    const auto deadline =
        timeout_ms < 0
            ? std::chrono::steady_clock::time_point::max()
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    for (;;) {
        if (timeout_ms >= 0) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline)
                return std::nullopt;
            pollfd pfd{fd, POLLIN, 0};
            const int wait = static_cast<int>(
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(deadline - now)
                    .count());
            const int pr = ::poll(&pfd, 1, std::max(1, wait));
            if (pr < 0 && errno != EINTR)
                return std::nullopt;
            if (pr <= 0)
                continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0)
            return std::nullopt; // EOF
        fb.feed(chunk, static_cast<std::size_t>(n));
        if (std::optional<Frame> f = fb.next())
            return f;
    }
}

// -------------------------------------------------------------------
// Client
// -------------------------------------------------------------------

Client::Client(const std::string &socket_path, int timeout_ms)
    : fd_(connectUnix(socket_path, timeout_ms))
{
    if (!fd_.valid())
        WSEL_FATAL("cannot reach campaign daemon at "
                   << socket_path << " within " << timeout_ms
                   << " ms");
    if (!sendFrame(fd_.get(), MsgType::HelloClient, {}))
        WSEL_FATAL("campaign daemon hung up during hello");
}

Frame
Client::roundTrip(MsgType type, std::string_view body,
                  MsgType expect)
{
    if (!sendFrame(fd_.get(), type, body))
        WSEL_FATAL("campaign daemon hung up mid-request");
    std::optional<Frame> f = recvFrame(fd_.get(), fb_, 30000);
    if (!f)
        WSEL_FATAL("no reply from campaign daemon");
    if (f->type != expect)
        throw ProtocolError(
            "unexpected reply type " +
            std::to_string(static_cast<int>(f->type)));
    return std::move(*f);
}

std::uint64_t
Client::submit(const CampaignSpec &spec)
{
    WireWriter w;
    encodeSpec(w, spec);
    const Frame f =
        roundTrip(MsgType::Submit, w.bytes(), MsgType::SubmitReply);
    WireReader r(f.body);
    const bool accepted = r.u8() != 0;
    const std::uint64_t id = r.u64();
    const std::string message = r.str();
    r.expectEnd();
    if (!accepted)
        WSEL_FATAL("campaign rejected: " << message);
    return id;
}

StatusMsg
Client::status(std::uint64_t id)
{
    WireWriter w;
    w.u64(id);
    const Frame f = roundTrip(MsgType::StatusReq, w.bytes(),
                              MsgType::StatusReply);
    return decodeStatus(f.body);
}

std::string
Client::metricsJson()
{
    const Frame f =
        roundTrip(MsgType::MetricsReq, {}, MsgType::MetricsReply);
    WireReader r(f.body);
    std::string json = r.str();
    r.expectEnd();
    return json;
}

std::string
Client::stop(std::uint64_t id)
{
    WireWriter w;
    w.u64(id);
    const Frame f = roundTrip(MsgType::StopReq, w.bytes(),
                              MsgType::StopReply);
    WireReader r(f.body);
    const bool ok = r.u8() != 0;
    std::string message = r.str();
    r.expectEnd();
    if (!ok)
        WSEL_FATAL("cannot stop campaign " << id << ": "
                   << message);
    return message;
}

StatusMsg
Client::waitFinished(std::uint64_t id, int poll_ms, int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const StatusMsg s = status(id);
        if (s.state == CampaignState::Done ||
            s.state == CampaignState::Failed ||
            s.state == CampaignState::Stopped)
            return s;
        if (s.state == CampaignState::Unknown)
            WSEL_FATAL("campaign " << id
                       << " unknown to the daemon");
        if (std::chrono::steady_clock::now() >= deadline)
            WSEL_FATAL("campaign " << id << " still "
                       << toString(s.state) << " after "
                       << timeout_ms << " ms");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms));
    }
}

} // namespace wsel::serve
