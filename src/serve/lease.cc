#include "serve/lease.hh"

#include "stats/logging.hh"

namespace wsel::serve
{

LeaseTable::LeaseTable(std::uint64_t shards,
                       const LeaseOptions &opts)
    : opts_(opts), shards_(shards)
{
    if (opts_.quarantineAfter == 0)
        WSEL_FATAL("quarantineAfter must be >= 1");
}

std::optional<LeaseGrant>
LeaseTable::acquire(LeaseClock::time_point now,
                    std::int64_t workerPid)
{
    if (halted_)
        return std::nullopt;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard &s = shards_[i];
        if (s.state != ShardState::Pending || now < s.notBefore)
            continue;
        const std::uint64_t id = nextLeaseId_++;
        s.state = ShardState::Leased;
        s.leaseId = id;
        leases_[id] = Lease{i, workerPid, now + opts_.ttl};
        return LeaseGrant{id, i, now + opts_.ttl};
    }
    return std::nullopt;
}

bool
LeaseTable::heartbeat(std::uint64_t leaseId,
                      LeaseClock::time_point now)
{
    auto it = leases_.find(leaseId);
    if (it == leases_.end())
        return false;
    it->second.deadline = now + opts_.ttl;
    return true;
}

CompleteResult
LeaseTable::complete(std::uint64_t leaseId, std::uint64_t shard)
{
    if (shard >= shards_.size())
        return CompleteResult::Stale;
    auto it = leases_.find(leaseId);
    if (it == leases_.end())
        return shards_[shard].state == ShardState::Done
                   ? CompleteResult::Duplicate
                   : CompleteResult::Stale;
    const std::uint64_t held = it->second.shard;
    leases_.erase(it);
    if (held != shard) {
        // A confused worker reporting the wrong shard: release the
        // one it actually held so it gets re-run.
        requeue(held, LeaseClock::time_point{});
        return CompleteResult::Stale;
    }
    Shard &s = shards_[shard];
    if (s.state == ShardState::Done)
        return CompleteResult::Duplicate;
    s.state = ShardState::Done;
    s.leaseId = 0;
    ++done_;
    return CompleteResult::Committed;
}

bool
LeaseTable::markDone(std::uint64_t shard)
{
    if (shard >= shards_.size())
        return false;
    Shard &s = shards_[shard];
    if (s.state == ShardState::Done)
        return false;
    if (s.state == ShardState::Leased) {
        leases_.erase(s.leaseId);
        s.leaseId = 0;
    }
    if (s.state == ShardState::Quarantined)
        --quarantined_;
    s.state = ShardState::Done;
    ++done_;
    return true;
}

void
LeaseTable::requeue(std::uint64_t shard_idx,
                    LeaseClock::time_point now)
{
    Shard &s = shards_[shard_idx];
    if (s.state != ShardState::Leased)
        return;
    s.leaseId = 0;
    ++s.deaths;
    if (s.deaths >= opts_.quarantineAfter) {
        s.state = ShardState::Quarantined;
        ++quarantined_;
        return;
    }
    // Exponential backoff: base * 2^(deaths-1), capped.  Shifting
    // by the death count directly would overflow for a shard that
    // somehow died 64 times; clamp the exponent instead.
    const std::uint32_t exp =
        s.deaths > 16 ? 16 : s.deaths - 1;
    auto backoff = opts_.backoffBase * (1u << exp);
    if (backoff > opts_.backoffCap)
        backoff = opts_.backoffCap;
    s.state = ShardState::Pending;
    s.notBefore = now + backoff;
}

void
LeaseTable::fail(std::uint64_t leaseId, LeaseClock::time_point now)
{
    auto it = leases_.find(leaseId);
    if (it == leases_.end())
        return;
    const std::uint64_t shard_idx = it->second.shard;
    leases_.erase(it);
    requeue(shard_idx, now);
}

std::vector<std::uint64_t>
LeaseTable::expire(LeaseClock::time_point now)
{
    std::vector<std::uint64_t> expired;
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.deadline <= now) {
            expired.push_back(it->first);
            const std::uint64_t shard_idx = it->second.shard;
            it = leases_.erase(it);
            requeue(shard_idx, now);
        } else {
            ++it;
        }
    }
    return expired;
}

void
LeaseTable::extendAll(LeaseClock::duration stall)
{
    for (auto &[id, l] : leases_)
        l.deadline += stall;
    for (Shard &s : shards_)
        if (s.state == ShardState::Pending)
            s.notBefore += stall;
}

void
LeaseTable::halt()
{
    halted_ = true;
}

std::optional<LeaseClock::time_point>
LeaseTable::nextEvent() const
{
    std::optional<LeaseClock::time_point> next;
    for (const auto &[id, l] : leases_)
        if (!next || l.deadline < *next)
            next = l.deadline;
    for (const Shard &s : shards_)
        if (s.state == ShardState::Pending &&
            s.notBefore != LeaseClock::time_point{} &&
            (!next || s.notBefore < *next))
            next = s.notBefore;
    return next;
}

ShardState
LeaseTable::shardState(std::uint64_t shard) const
{
    if (shard >= shards_.size())
        WSEL_FATAL("shard " << shard << " out of range (table has "
                   << shards_.size() << ")");
    return shards_[shard].state;
}

} // namespace wsel::serve
