#include "serve/spawn.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "stats/logging.hh"

extern char **environ;

namespace wsel::serve
{

namespace fs = std::filesystem;

pid_t
spawnProcess(const std::vector<std::string> &argv,
             const std::vector<std::string> &extra_env)
{
    if (argv.empty())
        WSEL_FATAL("spawnProcess needs at least argv[0]");

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    // Inherited environment with extra_env overriding same-name
    // keys; the strings must outlive posix_spawn, so keep the
    // overridden copies alive in `own`.
    std::vector<char *> cenv;
    std::vector<std::string> own(extra_env);
    for (char **e = environ; e && *e; ++e) {
        const std::string_view entry(*e);
        const std::size_t eq = entry.find('=');
        const std::string_view key = entry.substr(0, eq);
        bool overridden = false;
        for (const std::string &x : extra_env)
            if (x.size() > key.size() && x[key.size()] == '=' &&
                x.compare(0, key.size(), key) == 0) {
                overridden = true;
                break;
            }
        if (!overridden)
            cenv.push_back(*e);
    }
    for (std::string &x : own)
        cenv.push_back(x.data());
    cenv.push_back(nullptr);

    pid_t pid = -1;
    const int rc =
        ::posix_spawn(&pid, argv[0].c_str(), nullptr, nullptr,
                      cargv.data(), cenv.data());
    if (rc != 0)
        WSEL_FATAL("posix_spawn(" << argv[0]
                   << "): " << std::strerror(rc));
    return pid;
}

std::optional<int>
pollProcess(pid_t pid)
{
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid)
        return status;
    if (r < 0 && errno != EINTR && errno != ECHILD)
        WSEL_FATAL("waitpid(" << pid
                   << "): " << std::strerror(errno));
    return std::nullopt;
}

int
waitProcess(pid_t pid)
{
    for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return status;
        if (r < 0 && errno == EINTR)
            continue;
        WSEL_FATAL("waitpid(" << pid
                   << "): " << std::strerror(errno));
    }
}

bool
exitedCleanly(int raw_status)
{
    return WIFEXITED(raw_status) && WEXITSTATUS(raw_status) == 0;
}

std::string
describeExit(int raw_status)
{
    if (WIFEXITED(raw_status))
        return "exit " + std::to_string(WEXITSTATUS(raw_status));
    if (WIFSIGNALED(raw_status)) {
        const int sig = WTERMSIG(raw_status);
        const char *name = strsignal(sig);
        return "signal " + std::to_string(sig) +
               (name ? std::string(" (") + name + ")" : "");
    }
    return "status " + std::to_string(raw_status);
}

std::string
selfExeDir()
{
    std::error_code ec;
    const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
    if (ec)
        return "";
    return exe.parent_path().string();
}

std::string
findWorkerBinary()
{
    if (const char *env = std::getenv("WSEL_WORKER_BIN");
        env && *env)
        return env;
    const std::string dir = selfExeDir();
    if (!dir.empty()) {
        for (const std::string &cand :
             {dir + "/wsel_worker",
              dir + "/../tools/wsel_worker"}) {
            std::error_code ec;
            if (fs::exists(cand, ec))
                return cand;
        }
    }
    WSEL_FATAL("cannot locate the wsel_worker binary (looked next "
               "to " << (dir.empty() ? "<unknown exe>" : dir)
               << " and in ../tools); set WSEL_WORKER_BIN");
}

} // namespace wsel::serve
