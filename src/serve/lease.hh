/**
 * @file
 * Shard lease table of the distributed campaign coordinator: the
 * state machine that decides which shard a worker simulates next
 * and what happens when that worker stalls, crashes, or reports
 * twice.
 *
 * Per-shard states:
 *
 *     Pending ──acquire──▶ Leased ──complete──▶ Done
 *        ▲                   │
 *        └──expiry/death─────┘   (requeue with exponential
 *                                 backoff; after quarantineAfter
 *                                 deaths on the SAME shard the
 *                                 shard is Quarantined instead —
 *                                 a poison shard that keeps
 *                                 killing workers must not take
 *                                 the whole fleet down with it)
 *
 * Leases carry a deadline; Heartbeat renews it, and expire()
 * reclaims overdue leases, counting each expiry as a death
 * against the shard (the worker may be alive but wedged — either
 * way the shard must move).  Completion is idempotent: a zombie
 * worker finishing a shard that was already re-run elsewhere gets
 * Duplicate, not an error, because the content-addressed result
 * store (store.hh) — not the lease table — is the source of truth
 * for shard bytes.
 *
 * The table is single-owner (the coordinator's poll loop) and
 * takes every `now` as a parameter instead of reading a clock, so
 * the lifecycle edge cases (expiry during a final write, restart
 * resume, backoff scheduling) are unit-testable without sleeps
 * (tests/test_serve.cc, LeaseTable suite).
 */

#ifndef WSEL_SERVE_LEASE_HH
#define WSEL_SERVE_LEASE_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace wsel::serve
{

using LeaseClock = std::chrono::steady_clock;

struct LeaseOptions
{
    /** Lease lifetime; a heartbeat resets the remaining TTL. */
    std::chrono::milliseconds ttl{2000};

    /** Backoff after the n-th death: base * 2^(n-1), capped. */
    std::chrono::milliseconds backoffBase{50};
    std::chrono::milliseconds backoffCap{2000};

    /** Deaths on one shard before it is quarantined as poison. */
    std::uint32_t quarantineAfter = 2;
};

/** One granted lease (what goes into a LeaseMsg). */
struct LeaseGrant
{
    std::uint64_t leaseId = 0;
    std::uint64_t shard = 0;
    LeaseClock::time_point deadline{};
};

enum class ShardState : std::uint8_t
{
    Pending = 0,
    Leased,
    Done,
    Quarantined,
};

/** Outcome of a completion report. */
enum class CompleteResult : std::uint8_t
{
    Committed, ///< this lease finished its shard
    Duplicate, ///< shard already Done (zombie / dedup re-report)
    Stale,     ///< unknown or expired lease, shard not Done
};

class LeaseTable
{
  public:
    LeaseTable(std::uint64_t shards, const LeaseOptions &opts = {});

    /**
     * Grant the lowest eligible Pending shard (deterministic
     * order) to @p workerPid, or nullopt when nothing is grantable
     * right now (all shards done/leased/quarantined or backing
     * off).
     */
    std::optional<LeaseGrant> acquire(LeaseClock::time_point now,
                                      std::int64_t workerPid = 0);

    /**
     * Renew @p leaseId's deadline to now + ttl.  False when the
     * lease is unknown (already expired and reclaimed): the worker
     * should abandon the shard.
     */
    bool heartbeat(std::uint64_t leaseId,
                   LeaseClock::time_point now);

    /**
     * Report shard completion through @p leaseId.  Committed when
     * this lease closed its shard; Duplicate when the shard was
     * already Done (idempotent — the store holds one copy either
     * way); Stale when the lease is unknown and the shard is still
     * open (the caller should NOT trust the report: the lease
     * expired and the shard may be mid-re-run elsewhere, but a
     * Stale report whose shard file is already committed in the
     * store is harmless by construction).
     */
    CompleteResult complete(std::uint64_t leaseId,
                            std::uint64_t shard);

    /**
     * Mark @p shard Done without a lease — a dedup hit against the
     * result store, or coordinator-restart resume of shards whose
     * files already exist.  False when it was already Done.
     */
    bool markDone(std::uint64_t shard);

    /**
     * Report that @p leaseId's worker failed (Failed message or
     * connection death).  The shard goes back to Pending with
     * backoff, or Quarantined after quarantineAfter deaths.
     */
    void fail(std::uint64_t leaseId, LeaseClock::time_point now);

    /**
     * Reclaim every lease whose deadline has passed (counts as a
     * death, same path as fail()).  Returns the reclaimed lease
     * ids.
     */
    std::vector<std::uint64_t> expire(LeaseClock::time_point now);

    /**
     * Push every active deadline and backoff out by @p stall: the
     * coordinator ran a long synchronous step (model building,
     * admission) and must not punish workers for its own pause.
     */
    void extendAll(LeaseClock::duration stall);

    /**
     * Halt the campaign: stop granting new leases and let the
     * in-flight ones finish (their completions still commit, so
     * nothing already paid for is thrown away).  Idempotent.
     * finished() becomes true once the last active lease resolves.
     */
    void halt();

    bool halted() const { return halted_; }

    /**
     * Earliest instant at which expire()/acquire() could change
     * state (a lease deadline or a backoff expiry); nullopt when
     * nothing is time-driven.  Drives the poll() timeout.
     */
    std::optional<LeaseClock::time_point> nextEvent() const;

    ShardState shardState(std::uint64_t shard) const;
    std::uint64_t shards() const { return shards_.size(); }
    std::uint64_t doneCount() const { return done_; }
    std::uint64_t quarantinedCount() const { return quarantined_; }
    std::uint64_t activeLeases() const { return leases_.size(); }
    bool finished() const
    {
        return done_ + quarantined_ == shards_.size() ||
               (halted_ && leases_.empty());
    }
    /** True when every shard completed (none poisoned). */
    bool succeeded() const
    {
        return done_ == shards_.size();
    }

  private:
    struct Shard
    {
        ShardState state = ShardState::Pending;
        std::uint32_t deaths = 0;
        LeaseClock::time_point notBefore{}; ///< backoff gate
        std::uint64_t leaseId = 0;          ///< valid when Leased
    };

    struct Lease
    {
        std::uint64_t shard = 0;
        std::int64_t workerPid = 0;
        LeaseClock::time_point deadline{};
    };

    void requeue(std::uint64_t shard_idx,
                 LeaseClock::time_point now);

    LeaseOptions opts_;
    std::vector<Shard> shards_;
    std::unordered_map<std::uint64_t, Lease> leases_;
    std::uint64_t nextLeaseId_ = 1;
    std::uint64_t done_ = 0;
    std::uint64_t quarantined_ = 0;
    bool halted_ = false;
};

} // namespace wsel::serve

#endif // WSEL_SERVE_LEASE_HH
