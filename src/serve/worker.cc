#include "serve/worker.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "serve/context.hh"
#include "serve/protocol.hh"
#include "serve/store.hh"
#include "sim/population.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::serve
{

namespace
{

/** Shard currently being simulated (-1 = none); kill-point gate. */
std::atomic<std::int64_t> g_current_shard{-1};

struct CachedContext
{
    std::uint64_t fingerprint = 0;
    std::uint64_t geomHash = 0;
    std::unique_ptr<CampaignContext> ctx;
};

/**
 * One lease's work.  Returns the dedup flag for the Done message,
 * or nullopt when the lease must be Failed instead (message in
 * @p error).
 */
std::optional<bool>
runLease(const LeaseMsg &lease, CachedContext &cached,
         const WorkerOptions &opts, int fd, std::string &error)
{
    // Rebuilding models is the expensive part; campaigns send many
    // leases, so keep the last context and reuse it when the next
    // lease is for the same campaign (the common case: one worker
    // fleet serves one campaign at a time).
    const std::uint64_t geom = campaignGeometryHash(
        lease.spec.seed, lease.spec.firstRank, lease.spec.lastRank,
        lease.spec.shardRows, lease.spec.fidelity);
    if (!cached.ctx || cached.fingerprint != lease.fingerprint ||
        cached.geomHash != geom) {
        std::unique_ptr<CampaignContext> ctx;
        try {
            ctx = std::make_unique<CampaignContext>(
                lease.spec, opts.cacheDir, opts.jobs);
        } catch (const FatalError &e) {
            error = std::string("bad campaign spec: ") + e.what();
            return std::nullopt;
        }
        if (ctx->manifest().fingerprint != lease.fingerprint) {
            // Config drift between daemon and worker builds: our
            // cells would be wrong bytes under the lease's name.
            error = "campaign fingerprint mismatch (worker " +
                    persist::toHex(ctx->manifest().fingerprint) +
                    " vs lease " +
                    persist::toHex(lease.fingerprint) +
                    "); refusing to simulate";
            return std::nullopt;
        }
        cached = CachedContext{lease.fingerprint, geom,
                               std::move(ctx)};
    }
    const CampaignContext &ctx = *cached.ctx;
    const persist::V3Manifest &m = ctx.manifest();
    if (lease.shard >= m.shardCount()) {
        error = "lease for shard " + std::to_string(lease.shard) +
                " of a " + std::to_string(m.shardCount()) +
                "-shard campaign";
        return std::nullopt;
    }

    g_current_shard.store(static_cast<std::int64_t>(lease.shard),
                          std::memory_order_relaxed);
    persist::faultPoint("serve.shard-start");

    // The coordinator created this directory at admission, but a
    // worker racing a brand-new daemon must tolerate its absence.
    persist::ensureDirTree(lease.dir);
    if (ResultStore::hasShard(lease.dir, m, lease.shard)) {
        g_current_shard.store(-1, std::memory_order_relaxed);
        return true; // dedup: someone already produced it
    }

    // Heartbeat from the row callback, at most every ttl/4.
    const auto hb_interval = std::chrono::milliseconds(
        std::max<std::uint64_t>(1, lease.ttlMs / 4));
    auto last_hb = std::chrono::steady_clock::now();
    const auto tick = [&] {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_hb < hb_interval)
            return;
        last_hb = now;
        WireWriter w;
        w.u64(lease.leaseId);
        (void)sendFrame(fd, MsgType::Heartbeat, w.bytes());
    };

    std::vector<double> payload;
    try {
        if (ctx.fidelity() == 0)
            // Batch and wave sizes from WSEL_BATCH_CELLS /
            // WSEL_BATCH_WAVE (resolver defaults otherwise);
            // neither ever changes shard bytes, so mixed worker
            // fleets stay coherent.
            simulatePopulationShardBatched(
                m, ctx.population(), ctx.uncores(), ctx.models(),
                ctx.seed(), lease.shard, 0, 0, payload, tick);
        else
            simulateDetailedPopulationShard(
                m, ctx.population(), ctx.coreConfig(),
                ctx.uncores(), ctx.suite(), ctx.seed(),
                lease.shard, payload, tick);
    } catch (const std::exception &e) {
        g_current_shard.store(-1, std::memory_order_relaxed);
        error = std::string("shard simulation failed: ") + e.what();
        return std::nullopt;
    }

    const bool wrote =
        ResultStore::commitShard(lease.dir, m, lease.shard,
                                 {payload.data(), payload.size()});
    persist::faultPoint("serve.shard-committed");
    g_current_shard.store(-1, std::memory_order_relaxed);
    return !wrote; // a lost commit race is a dedup, same as above
}

} // namespace

int
runWorker(const WorkerOptions &opts)
{
    Fd fd = connectUnix(opts.socketPath);
    if (!fd.valid()) {
        warn("worker: no coordinator at " + opts.socketPath);
        return 1;
    }
    FrameBuffer fb;
    {
        WireWriter w;
        w.u64(static_cast<std::uint64_t>(::getpid()));
        if (!sendFrame(fd.get(), MsgType::HelloWorker, w.bytes()))
            return 1;
    }

    CachedContext cached;
    for (;;) {
        if (!sendFrame(fd.get(), MsgType::RequestLease, {}))
            return 1;
        std::optional<Frame> f = recvFrame(fd.get(), fb, 60000);
        if (!f)
            return 1; // coordinator died or wedged
        switch (f->type) {
        case MsgType::Shutdown:
            return 0;
        case MsgType::NoWork: {
            // Backoff before asking again; leases may free up when
            // another worker dies or a backoff gate opens.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            continue;
        }
        case MsgType::Lease: {
            LeaseMsg lease;
            try {
                lease = decodeLease(f->body);
            } catch (const ProtocolError &e) {
                warn(std::string("worker: bad lease frame: ") +
                     e.what());
                return 1;
            }
            std::string error;
            const std::optional<bool> dedup =
                runLease(lease, cached, opts, fd.get(), error);
            WireWriter w;
            if (dedup) {
                w.u64(lease.leaseId);
                w.u64(lease.campaignId);
                w.u64(lease.shard);
                w.u8(*dedup ? 1 : 0);
                if (!sendFrame(fd.get(), MsgType::Done, w.bytes()))
                    return 1;
            } else {
                w.u64(lease.leaseId);
                w.str(error);
                warn("worker: lease " +
                     std::to_string(lease.leaseId) + " failed: " +
                     error);
                if (!sendFrame(fd.get(), MsgType::Failed,
                               w.bytes()))
                    return 1;
            }
            continue;
        }
        default:
            warn("worker: unexpected frame type " +
                 std::to_string(static_cast<int>(f->type)));
            return 1;
        }
    }
}

void
armKillPointsFromEnv()
{
    const char *spec = std::getenv("WSEL_KILL_POINT");
    if (!spec || !*spec)
        return;
    const std::string s(spec);
    const std::size_t colon = s.rfind(':');
    std::string point = s;
    std::uint64_t nth = 1;
    if (colon != std::string::npos) {
        point = s.substr(0, colon);
        nth = std::strtoull(s.c_str() + colon + 1, nullptr, 10);
        if (nth == 0)
            nth = 1;
    }
    std::int64_t only_shard = -1;
    if (const char *ks = std::getenv("WSEL_KILL_SHARD"); ks && *ks)
        only_shard = std::strtoll(ks, nullptr, 10);

    // The persist hook reports global per-point hit counts, but
    // with a shard filter we want "the nth hit *while holding that
    // shard*" — count locally.  shared_ptr keeps the counter alive
    // inside the std::function.
    auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
    persist::setFaultHook(
        [point, nth, only_shard, counter](const char *p,
                                          std::uint64_t) {
            if (point != p)
                return;
            if (only_shard >= 0 &&
                g_current_shard.load(std::memory_order_relaxed) !=
                    only_shard)
                return;
            if (counter->fetch_add(1) + 1 == nth) {
                // SIGKILL, not exit(): the test contract is a
                // worker that vanishes without destructors,
                // flushes, or goodbye messages.
                ::raise(SIGKILL);
            }
        });
}

} // namespace wsel::serve
