#include "serve/store.hh"

#include <filesystem>

#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::serve
{

namespace fs = std::filesystem;

std::uint64_t
campaignGeometryHash(std::uint64_t seed, std::uint64_t firstRank,
                     std::uint64_t lastRank,
                     std::uint64_t shardRows,
                     std::uint32_t fidelity)
{
    persist::Fnv1a h;
    h.update("wsel-serve-geom-2");
    h.updateU64(seed);
    h.updateU64(firstRank);
    h.updateU64(lastRank);
    h.updateU64(shardRows);
    h.updateU64(fidelity);
    return h.digest();
}

ResultStore::ResultStore(std::string root) : root_(std::move(root))
{
    if (root_.empty())
        WSEL_FATAL("result store needs a root directory");
    persist::ensureDirTree(root_);
}

std::string
ResultStore::campaignDir(std::uint64_t fingerprint,
                         std::uint64_t geometryHash) const
{
    return root_ + "/c-" + persist::toHex(fingerprint) + "-" +
           persist::toHex(geometryHash);
}

void
ResultStore::ensureCampaignDir(const std::string &dir) const
{
    persist::ensureDirTree(dir);
}

bool
ResultStore::hasShard(const std::string &dir,
                      const persist::V3Manifest &m,
                      std::uint64_t shard)
{
    const std::string path = persist::v3ShardPath(dir, shard);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return false;
    try {
        (void)persist::readV3Shard(dir, m, shard);
        return true;
    } catch (const persist::CacheInvalid &e) {
        const std::string moved = persist::quarantineFile(path);
        warn("corrupt result-store shard " + path + " (" +
             e.what() + ")" +
             (moved.empty() ? "" : "; quarantined to " + moved));
        return false;
    }
}

bool
ResultStore::commitShard(const std::string &dir,
                         const persist::V3Manifest &m,
                         std::uint64_t shard,
                         std::span<const double> payload)
{
    if (hasShard(dir, m, shard))
        return false;
    persist::writeV3Shard(dir, m, shard, payload);
    return true;
}

void
ResultStore::commitManifest(const std::string &dir,
                            const persist::V3Manifest &m)
{
    try {
        const persist::V3Manifest have =
            persist::readV3Manifest(dir);
        if (have.fingerprint == m.fingerprint &&
            have.firstRank == m.firstRank &&
            have.lastRank == m.lastRank &&
            have.shardRows == m.shardRows)
            return; // already committed by an earlier campaign
    } catch (const persist::CacheInvalid &) {
        // absent or damaged: (re)write below
    }
    persist::writeV3Manifest(dir, m);
}

bool
ResultStore::isComplete(const std::string &dir)
{
    if (!persist::isV3CampaignDir(dir))
        return false;
    try {
        const persist::V3Manifest m =
            persist::readV3Manifest(dir);
        const std::uint64_t shards = m.shardCount();
        for (std::uint64_t s = 0; s < shards; ++s) {
            std::error_code ec;
            if (!fs::exists(persist::v3ShardPath(dir, s), ec))
                return false;
        }
        return true;
    } catch (const persist::CacheInvalid &) {
        return false;
    }
}

} // namespace wsel::serve
