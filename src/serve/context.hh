/**
 * @file
 * Reconstruction of a full campaign context from a wire-level
 * CampaignSpec — the piece that lets a worker *process*, started
 * with nothing but a socket path, produce shard bytes identical to
 * the coordinator's idea of the campaign.
 *
 * A spec carries only names and numbers (benchmark names, policy
 * names, geometry).  Both coordinator and worker resolve the names
 * against the built-in suite, rebuild the BADCO models (through the
 * shared on-disk model cache, so this is cheap after the first
 * process), and recompute campaignFingerprint; a worker then
 * cross-checks its fingerprint against the one in the lease and
 * refuses to simulate on mismatch — version drift between a daemon
 * and its workers must fail loudly, not corrupt the store.
 */

#ifndef WSEL_SERVE_CONTEXT_HH
#define WSEL_SERVE_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "core/workload/workload.hh"
#include "mem/uncore_config.hh"
#include "serve/protocol.hh"
#include "sim/model_store.hh"
#include "stats/persist_v3.hh"
#include "trace/benchmark_profile.hh"

namespace wsel::serve
{

/**
 * Everything needed to simulate shards of one campaign.  Built
 * once per campaign per process and reused across leases; owns the
 * model store the `models` pointers live in.
 */
class CampaignContext
{
  public:
    /**
     * Resolve and validate @p spec (WSEL_FATAL on unknown
     * benchmark/policy names, bad rank range, zero geometry) and
     * build the models with @p jobs threads through the cache at
     * @p cache_dir.
     */
    CampaignContext(const CampaignSpec &spec,
                    const std::string &cache_dir,
                    std::size_t jobs = 1);

    CampaignContext(const CampaignContext &) = delete;
    CampaignContext &operator=(const CampaignContext &) = delete;

    /** Complete manifest (refIpc included; simSeconds zero). */
    const persist::V3Manifest &manifest() const { return m_; }
    const WorkloadPopulation &population() const { return pop_; }
    const std::vector<UncoreConfig> &uncores() const
    {
        return ucfgs_;
    }
    /** BADCO models; empty for a detailed-fidelity campaign. */
    const std::vector<const BadcoModel *> &models() const
    {
        return models_;
    }
    const std::vector<BenchmarkProfile> &suite() const
    {
        return suite_;
    }
    const CoreConfig &coreConfig() const { return coreCfg_; }
    std::uint64_t seed() const { return seed_; }

    /** CampaignSpec::fidelity: 0 BADCO, 1 detailed. */
    std::uint32_t fidelity() const { return fidelity_; }

    /** campaignGeometryHash of the spec (store addressing). */
    std::uint64_t geometryHash() const { return geomHash_; }

  private:
    std::unique_ptr<BadcoModelStore> store_;
    std::vector<BenchmarkProfile> suite_;
    std::vector<const BadcoModel *> models_;
    std::vector<UncoreConfig> ucfgs_;
    WorkloadPopulation pop_;
    persist::V3Manifest m_;
    CoreConfig coreCfg_{};
    std::uint64_t seed_ = 1;
    std::uint64_t geomHash_ = 0;
    std::uint32_t fidelity_ = 0;
};

} // namespace wsel::serve

#endif // WSEL_SERVE_CONTEXT_HH
