#include "core/sampling/sampling.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

std::size_t
Sample::totalSize() const
{
    std::size_t n = 0;
    for (const Stratum &s : strata)
        n += s.indices.size();
    return n;
}

std::vector<std::size_t>
Sample::flatten() const
{
    std::vector<std::size_t> out;
    out.reserve(totalSize());
    for (const Stratum &s : strata)
        out.insert(out.end(), s.indices.begin(), s.indices.end());
    return out;
}

double
sampleThroughput(const Sample &sample, ThroughputMetric m,
                 std::span<const double> t)
{
    if (sample.strata.empty())
        WSEL_FATAL("empty sample");
    std::vector<double> means;
    std::vector<double> weights;
    means.reserve(sample.strata.size());
    weights.reserve(sample.strata.size());
    std::vector<double> vals;
    for (const Sample::Stratum &s : sample.strata) {
        if (s.indices.empty())
            continue;
        vals.clear();
        vals.reserve(s.indices.size());
        for (std::size_t idx : s.indices) {
            WSEL_ASSERT(idx < t.size(),
                        "sample index beyond throughput vector");
            vals.push_back(t[idx]);
        }
        means.push_back(wsel::sampleThroughput(m, vals));
        weights.push_back(s.weight);
    }
    if (means.empty())
        WSEL_FATAL("sample has no workloads");
    if (means.size() == 1)
        return means.front();
    return stratifiedThroughput(m, means, weights);
}

namespace
{

/**
 * Largest-remainder allocation of @p total draws over strata with
 * the given allocation weights, capped by stratum size (samples are
 * drawn without replacement within a stratum).
 */
std::vector<std::size_t>
weightedAllocation(const std::vector<std::size_t> &sizes,
                   const std::vector<double> &alloc_weight,
                   std::size_t total, Rng &rng)
{
    const std::size_t population =
        std::accumulate(sizes.begin(), sizes.end(),
                        static_cast<std::size_t>(0));
    if (total > population)
        WSEL_FATAL("sample of " << total
                                << " exceeds stratified population of "
                                << population);
    double weight_sum = 0.0;
    for (double w : alloc_weight)
        weight_sum += w;
    if (weight_sum <= 0.0)
        WSEL_FATAL("allocation weights must not all be zero");
    const std::size_t n = sizes.size();
    std::vector<std::size_t> alloc(n, 0);
    std::vector<double> frac(n, 0.0);
    std::size_t assigned = 0;
    for (std::size_t h = 0; h < n; ++h) {
        const double quota = static_cast<double>(total) *
                             alloc_weight[h] / weight_sum;
        alloc[h] = std::min(static_cast<std::size_t>(quota),
                            sizes[h]);
        frac[h] = quota - std::floor(quota);
        assigned += alloc[h];
    }
    // Distribute the remainder by descending fractional part,
    // skipping saturated strata; loop until everything is placed.
    // Ties are broken RANDOMLY: with W below the stratum count all
    // fractions are equal, and a deterministic tie-break would
    // always pick the lowest-indexed strata — for d(w)-sorted
    // strata that is the most extreme tail, which would bias the
    // estimator catastrophically.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return frac[a] > frac[b];
                     });
    while (assigned < total) {
        bool progressed = false;
        for (std::size_t h : order) {
            if (assigned == total)
                break;
            if (alloc[h] < sizes[h]) {
                ++alloc[h];
                ++assigned;
                progressed = true;
            }
        }
        WSEL_ASSERT(progressed, "allocation failed to converge");
    }
    return alloc;
}

class RandomSampler : public Sampler
{
  public:
    explicit RandomSampler(std::size_t population_size)
        : n_(population_size)
    {
        if (n_ == 0)
            WSEL_FATAL("cannot sample an empty population");
    }

    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        Sample s;
        s.strata.resize(1);
        s.strata[0].weight = 1.0;
        s.strata[0].indices.reserve(size);
        for (std::size_t i = 0; i < size; ++i)
            s.strata[0].indices.push_back(rng.nextInt(n_));
        return s;
    }

    std::string name() const override { return "random"; }

  private:
    std::size_t n_;
};

class BalancedRandomSampler : public Sampler
{
  public:
    BalancedRandomSampler(const WorkloadPopulation &population,
                          std::vector<std::size_t> index_of_rank)
        : pop_(population), indexOfRank_(std::move(index_of_rank))
    {
        if (indexOfRank_.size() != pop_.size())
            WSEL_FATAL("index map covers " << indexOfRank_.size()
                                           << " of " << pop_.size()
                                           << " workloads");
    }

    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        const std::uint32_t b = pop_.numBenchmarks();
        const std::uint32_t k = pop_.cores();
        const std::size_t slots = size * k;

        // Every benchmark gets floor(slots/B) occurrences; a random
        // subset of benchmarks absorbs the remainder.
        std::vector<std::uint32_t> pool;
        pool.reserve(slots);
        const std::size_t base = slots / b;
        for (std::uint32_t bench = 0; bench < b; ++bench)
            for (std::size_t i = 0; i < base; ++i)
                pool.push_back(bench);
        const std::size_t rem = slots % b;
        if (rem > 0) {
            const auto extra = rng.sampleWithoutReplacement(b, rem);
            for (std::size_t bench : extra)
                pool.push_back(static_cast<std::uint32_t>(bench));
        }
        rng.shuffle(pool);

        Sample s;
        s.strata.resize(1);
        s.strata[0].weight = 1.0;
        s.strata[0].indices.reserve(size);
        for (std::size_t w = 0; w < size; ++w) {
            std::vector<std::uint32_t> benches(
                pool.begin() + static_cast<std::ptrdiff_t>(w * k),
                pool.begin() +
                    static_cast<std::ptrdiff_t>((w + 1) * k));
            const Workload wl(std::move(benches));
            s.strata[0].indices.push_back(
                indexOfRank_[pop_.rank(wl)]);
        }
        return s;
    }

    std::string name() const override { return "bal-random"; }

  private:
    const WorkloadPopulation pop_;
    std::vector<std::size_t> indexOfRank_;
};

/** Common machinery for the stratified samplers. */
class StratifiedSamplerBase : public Sampler
{
  public:
    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        std::vector<std::size_t> sizes;
        sizes.reserve(groups_.size());
        for (const auto &g : groups_)
            sizes.push_back(g.size());
        std::vector<double> weights;
        if (allocWeights_.empty()) {
            for (std::size_t sz : sizes)
                weights.push_back(static_cast<double>(sz));
        } else {
            weights = allocWeights_;
        }
        const std::vector<std::size_t> alloc =
            weightedAllocation(sizes, weights, size, rng);

        Sample s;
        for (std::size_t h = 0; h < groups_.size(); ++h) {
            if (alloc[h] == 0)
                continue; // unsampled stratum (W below L)
            Sample::Stratum st;
            st.weight = static_cast<double>(groups_[h].size());
            const auto picks = rng.sampleWithoutReplacement(
                groups_[h].size(), alloc[h]);
            st.indices.reserve(picks.size());
            for (std::size_t p : picks)
                st.indices.push_back(groups_[h][p]);
            s.strata.push_back(std::move(st));
        }
        return s;
    }

    /** Number of strata this sampler defines. */
    std::size_t strataCount() const { return groups_.size(); }

  protected:
    /** Strata as lists of population positions. */
    std::vector<std::vector<std::size_t>> groups_;

    /**
     * Per-stratum allocation weights; empty means proportional
     * (weight = stratum size).
     */
    std::vector<double> allocWeights_;
};

class BenchmarkStratifiedSampler : public StratifiedSamplerBase
{
  public:
    BenchmarkStratifiedSampler(
        const std::vector<Workload> &workloads,
        const std::vector<std::uint32_t> &benchmark_class,
        std::uint32_t num_classes)
    {
        if (num_classes == 0)
            WSEL_FATAL("need at least one benchmark class");
        for (std::uint32_t c : benchmark_class) {
            if (c >= num_classes)
                WSEL_FATAL("benchmark class " << c << " out of range");
        }
        // Stratum signature: occurrences of each class (c1..cM).
        std::map<std::vector<std::uint32_t>, std::size_t> sig_to_id;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            std::vector<std::uint32_t> sig(num_classes, 0);
            for (std::uint32_t bench : workloads[i].benchmarks()) {
                if (bench >= benchmark_class.size())
                    WSEL_FATAL("workload references benchmark "
                               << bench << " outside the suite");
                ++sig[benchmark_class[bench]];
            }
            auto [it, inserted] =
                sig_to_id.emplace(std::move(sig), groups_.size());
            if (inserted)
                groups_.emplace_back();
            groups_[it->second].push_back(i);
        }
    }

    std::string name() const override { return "bench-strata"; }
};

class WorkloadStratifiedSampler : public StratifiedSamplerBase
{
  public:
    WorkloadStratifiedSampler(std::span<const double> d,
                              const WorkloadStrataConfig &cfg)
    {
        if (d.empty())
            WSEL_FATAL("workload stratification needs d(w) values");
        if (cfg.wt == 0)
            WSEL_FATAL("minimum stratum size cannot be zero");

        // Sort population positions by d(w) (§VI-B2 step 2).
        std::vector<std::size_t> order(d.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return d[a] < d[b];
                         });

        // Grow strata in ascending d(w) order (§VI-B2 steps 3-4).
        std::vector<std::size_t> cur;
        RunningStats stats;
        for (std::size_t idx : order) {
            cur.push_back(idx);
            stats.add(d[idx]);
            if (cur.size() >= cfg.wt &&
                stats.stddevPopulation() > cfg.tsd) {
                groups_.push_back(std::move(cur));
                cur = {};
                stats = RunningStats{};
            }
        }
        if (!cur.empty())
            groups_.push_back(std::move(cur));

        if (cfg.allocation == Allocation::Neyman) {
            // W_h proportional to N_h * sigma_h; strata built to be
            // internally homogeneous get few draws, heterogeneous
            // tails get more. Floor sigma at a tiny value so
            // perfectly homogeneous strata keep a nonzero chance.
            for (const auto &g : groups_) {
                RunningStats st;
                for (std::size_t idx : g)
                    st.add(d[idx]);
                const double sigma =
                    std::max(st.stddevPopulation(), 1e-12);
                allocWeights_.push_back(
                    static_cast<double>(g.size()) * sigma);
            }
        }
    }

    std::string name() const override { return "workload-strata"; }
};

} // namespace

std::unique_ptr<Sampler>
makeRandomSampler(std::size_t population_size)
{
    return std::make_unique<RandomSampler>(population_size);
}

std::unique_ptr<Sampler>
makeBalancedRandomSampler(const WorkloadPopulation &population,
                          std::vector<std::size_t> index_of_rank)
{
    return std::make_unique<BalancedRandomSampler>(
        population, std::move(index_of_rank));
}

std::unique_ptr<Sampler>
makeBenchmarkStratifiedSampler(
    const std::vector<Workload> &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes)
{
    return std::make_unique<BenchmarkStratifiedSampler>(
        workloads, benchmark_class, num_classes);
}

std::unique_ptr<Sampler>
makeWorkloadStratifiedSampler(std::span<const double> d,
                              const WorkloadStrataConfig &cfg)
{
    return std::make_unique<WorkloadStratifiedSampler>(d, cfg);
}

std::size_t
countWorkloadStrata(std::span<const double> d,
                    const WorkloadStrataConfig &cfg)
{
    WorkloadStratifiedSampler s(d, cfg);
    return s.strataCount();
}

double
empiricalConfidence(const Sampler &sampler, std::size_t size,
                    std::size_t draws, ThroughputMetric m,
                    std::span<const double> t_x,
                    std::span<const double> t_y, Rng &rng)
{
    if (draws == 0)
        WSEL_FATAL("need at least one draw");
    if (t_x.size() != t_y.size())
        WSEL_FATAL("X and Y throughput vectors differ in length");
    std::size_t wins = 0;
    for (std::size_t i = 0; i < draws; ++i) {
        const Sample s = sampler.draw(size, rng);
        const double tx = sampleThroughput(s, m, t_x);
        const double ty = sampleThroughput(s, m, t_y);
        if (ty > tx)
            ++wins;
    }
    return static_cast<double>(wins) / static_cast<double>(draws);
}

} // namespace wsel
