#include "core/sampling/sampling.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

std::size_t
Sample::totalSize() const
{
    std::size_t n = 0;
    for (const Stratum &s : strata)
        n += s.indices.size();
    return n;
}

std::vector<std::size_t>
Sample::flatten() const
{
    std::vector<std::size_t> out;
    flattenInto(out);
    return out;
}

void
Sample::flattenInto(std::vector<std::size_t> &out) const
{
    out.clear();
    out.reserve(totalSize());
    for (const Stratum &s : strata)
        out.insert(out.end(), s.indices.begin(), s.indices.end());
}

double
sampleThroughput(const Sample &sample, ThroughputMetric m,
                 std::span<const double> t)
{
    ThroughputScratch scratch;
    return sampleThroughput(sample, m, t, scratch);
}

double
sampleThroughput(const Sample &sample, ThroughputMetric m,
                 std::span<const double> t,
                 ThroughputScratch &scratch)
{
    if (sample.strata.empty())
        WSEL_FATAL("empty sample");
    std::vector<double> &means = scratch.means;
    std::vector<double> &weights = scratch.weights;
    std::vector<double> &vals = scratch.vals;
    means.clear();
    weights.clear();
    means.reserve(sample.strata.size());
    weights.reserve(sample.strata.size());
    for (const Sample::Stratum &s : sample.strata) {
        if (s.indices.empty())
            continue;
        vals.clear();
        vals.reserve(s.indices.size());
        for (std::size_t idx : s.indices) {
            WSEL_ASSERT(idx < t.size(),
                        "sample index beyond throughput vector");
            vals.push_back(t[idx]);
        }
        means.push_back(wsel::sampleThroughput(m, vals));
        weights.push_back(s.weight);
    }
    if (means.empty())
        WSEL_FATAL("sample has no workloads");
    if (means.size() == 1)
        return means.front();
    return stratifiedThroughput(m, means, weights);
}

namespace
{

/**
 * Largest-remainder allocation of @p total draws over strata with
 * the given allocation weights, capped by stratum size (samples are
 * drawn without replacement within a stratum).
 */
std::vector<std::size_t>
weightedAllocation(const std::vector<std::size_t> &sizes,
                   const std::vector<double> &alloc_weight,
                   std::size_t total, Rng &rng)
{
    const std::size_t population =
        std::accumulate(sizes.begin(), sizes.end(),
                        static_cast<std::size_t>(0));
    if (total > population) {
        // Without-replacement draws cannot exceed the population;
        // clamping (instead of fatalling or silently repeating
        // indices) keeps sweeps that overshoot small populations
        // meaningful.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("stratified sample of " + std::to_string(total) +
                 " exceeds the population of " +
                 std::to_string(population) +
                 "; clamping (warned once)");
        total = population;
    }
    double weight_sum = 0.0;
    for (double w : alloc_weight)
        weight_sum += w;
    if (weight_sum <= 0.0)
        WSEL_FATAL("allocation weights must not all be zero");
    const std::size_t n = sizes.size();
    std::vector<std::size_t> alloc(n, 0);
    std::vector<double> frac(n, 0.0);
    std::size_t assigned = 0;
    for (std::size_t h = 0; h < n; ++h) {
        const double quota = static_cast<double>(total) *
                             alloc_weight[h] / weight_sum;
        alloc[h] = std::min(static_cast<std::size_t>(quota),
                            sizes[h]);
        frac[h] = quota - std::floor(quota);
        assigned += alloc[h];
    }
    // Distribute the remainder by descending fractional part,
    // skipping saturated strata; loop until everything is placed.
    // Ties are broken RANDOMLY: with W below the stratum count all
    // fractions are equal, and a deterministic tie-break would
    // always pick the lowest-indexed strata — for d(w)-sorted
    // strata that is the most extreme tail, which would bias the
    // estimator catastrophically.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return frac[a] > frac[b];
                     });
    while (assigned < total) {
        bool progressed = false;
        for (std::size_t h : order) {
            if (assigned == total)
                break;
            if (alloc[h] < sizes[h]) {
                ++alloc[h];
                ++assigned;
                progressed = true;
            }
        }
        WSEL_ASSERT(progressed, "allocation failed to converge");
    }
    return alloc;
}

class RandomSampler : public Sampler
{
  public:
    explicit RandomSampler(std::size_t population_size)
        : n_(population_size)
    {
        if (n_ == 0)
            WSEL_FATAL("cannot sample an empty population");
    }

    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        Sample s;
        drawInto(s, size, rng);
        return s;
    }

    void
    drawInto(Sample &out, std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        out.strata.resize(1);
        out.strata[0].weight = 1.0;
        auto &idx = out.strata[0].indices;
        idx.clear();
        idx.reserve(size);
        for (std::size_t i = 0; i < size; ++i)
            idx.push_back(rng.nextInt(n_));
    }

    std::string name() const override { return "random"; }

  private:
    std::size_t n_;
};

class BalancedRandomSampler : public Sampler
{
  public:
    BalancedRandomSampler(const WorkloadPopulation &population,
                          std::vector<std::size_t> index_of_rank)
        : pop_(population), indexOfRank_(std::move(index_of_rank))
    {
        if (indexOfRank_.size() != pop_.size())
            WSEL_FATAL("index map covers " << indexOfRank_.size()
                                           << " of " << pop_.size()
                                           << " workloads");
    }

    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        const std::uint32_t b = pop_.numBenchmarks();
        const std::uint32_t k = pop_.cores();
        const std::size_t slots = size * k;

        // Every benchmark gets floor(slots/B) occurrences; a random
        // subset of benchmarks absorbs the remainder.
        std::vector<std::uint32_t> pool;
        pool.reserve(slots);
        const std::size_t base = slots / b;
        for (std::uint32_t bench = 0; bench < b; ++bench)
            for (std::size_t i = 0; i < base; ++i)
                pool.push_back(bench);
        const std::size_t rem = slots % b;
        if (rem > 0) {
            const auto extra = rng.sampleWithoutReplacement(b, rem);
            for (std::size_t bench : extra)
                pool.push_back(static_cast<std::uint32_t>(bench));
        }
        rng.shuffle(pool);

        Sample s;
        s.strata.resize(1);
        s.strata[0].weight = 1.0;
        s.strata[0].indices.reserve(size);
        for (std::size_t w = 0; w < size; ++w) {
            std::vector<std::uint32_t> benches(
                pool.begin() + static_cast<std::ptrdiff_t>(w * k),
                pool.begin() +
                    static_cast<std::ptrdiff_t>((w + 1) * k));
            const Workload wl(std::move(benches));
            s.strata[0].indices.push_back(
                indexOfRank_[pop_.rank(wl)]);
        }
        return s;
    }

    std::string name() const override { return "bal-random"; }

  private:
    const WorkloadPopulation pop_;
    std::vector<std::size_t> indexOfRank_;
};

/** Common machinery for the stratified samplers. */
class StratifiedSamplerBase : public Sampler
{
  public:
    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        Sample s;
        drawInto(s, size, rng);
        return s;
    }

    void
    drawInto(Sample &out, std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        std::vector<std::size_t> sizes;
        sizes.reserve(groups_.size());
        for (const auto &g : groups_)
            sizes.push_back(g.size());
        std::vector<double> weights;
        if (allocWeights_.empty()) {
            for (std::size_t sz : sizes)
                weights.push_back(static_cast<double>(sz));
        } else {
            weights = allocWeights_;
        }
        const std::vector<std::size_t> alloc =
            weightedAllocation(sizes, weights, size, rng);

        std::size_t used = 0;
        for (std::size_t h = 0; h < groups_.size(); ++h) {
            if (alloc[h] == 0)
                continue; // unsampled stratum (W below L)
            if (used == out.strata.size())
                out.strata.emplace_back();
            Sample::Stratum &st = out.strata[used++];
            st.weight = static_cast<double>(groups_[h].size());
            const auto picks = rng.sampleWithoutReplacement(
                groups_[h].size(), alloc[h]);
            st.indices.clear();
            st.indices.reserve(picks.size());
            for (std::size_t p : picks)
                st.indices.push_back(groups_[h][p]);
        }
        out.strata.resize(used);
    }

    /** Number of strata this sampler defines. */
    std::size_t strataCount() const { return groups_.size(); }

  protected:
    /** Strata as lists of population positions. */
    std::vector<std::vector<std::size_t>> groups_;

    /**
     * Per-stratum allocation weights; empty means proportional
     * (weight = stratum size).
     */
    std::vector<double> allocWeights_;
};

class BenchmarkStratifiedSampler : public StratifiedSamplerBase
{
  public:
    BenchmarkStratifiedSampler(
        const std::vector<Workload> &workloads,
        const std::vector<std::uint32_t> &benchmark_class,
        std::uint32_t num_classes)
    {
        validate(benchmark_class, num_classes);
        std::map<std::vector<std::uint32_t>, std::size_t> sig_to_id;
        std::vector<std::uint32_t> sig;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const auto &b = workloads[i].benchmarks();
            classify(sig_to_id, sig,
                     {b.data(), b.size()}, i,
                     benchmark_class, num_classes);
        }
    }

    BenchmarkStratifiedSampler(
        const WorkloadSet &workloads,
        const std::vector<std::uint32_t> &benchmark_class,
        std::uint32_t num_classes)
    {
        validate(benchmark_class, num_classes);
        std::map<std::vector<std::uint32_t>, std::size_t> sig_to_id;
        std::vector<std::uint32_t> sig;
        workloads.forEach(
            [&](std::size_t i,
                std::span<const std::uint32_t> benches) {
                classify(sig_to_id, sig, benches, i,
                         benchmark_class, num_classes);
            });
    }

    std::string name() const override { return "bench-strata"; }

  private:
    static void
    validate(const std::vector<std::uint32_t> &benchmark_class,
             std::uint32_t num_classes)
    {
        if (num_classes == 0)
            WSEL_FATAL("need at least one benchmark class");
        for (std::uint32_t c : benchmark_class) {
            if (c >= num_classes)
                WSEL_FATAL("benchmark class " << c
                                              << " out of range");
        }
    }

    /** Stratum signature: occurrences of each class (c1..cM). */
    void
    classify(std::map<std::vector<std::uint32_t>, std::size_t>
                 &sig_to_id,
             std::vector<std::uint32_t> &sig,
             std::span<const std::uint32_t> benches, std::size_t i,
             const std::vector<std::uint32_t> &benchmark_class,
             std::uint32_t num_classes)
    {
        sig.assign(num_classes, 0);
        for (std::uint32_t bench : benches) {
            if (bench >= benchmark_class.size())
                WSEL_FATAL("workload references benchmark "
                           << bench << " outside the suite");
            ++sig[benchmark_class[bench]];
        }
        auto [it, inserted] =
            sig_to_id.emplace(sig, groups_.size());
        if (inserted)
            groups_.emplace_back();
        groups_[it->second].push_back(i);
    }
};

class WorkloadStratifiedSampler : public StratifiedSamplerBase
{
  public:
    WorkloadStratifiedSampler(std::span<const double> d,
                              const WorkloadStrataConfig &cfg)
    {
        if (d.empty())
            WSEL_FATAL("workload stratification needs d(w) values");
        if (cfg.wt == 0)
            WSEL_FATAL("minimum stratum size cannot be zero");

        // Sort population positions by d(w) (§VI-B2 step 2).
        std::vector<std::size_t> order(d.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return d[a] < d[b];
                         });

        // Grow strata in ascending d(w) order (§VI-B2 steps 3-4).
        std::vector<std::size_t> cur;
        RunningStats stats;
        for (std::size_t idx : order) {
            cur.push_back(idx);
            stats.add(d[idx]);
            if (cur.size() >= cfg.wt &&
                stats.stddevPopulation() > cfg.tsd) {
                groups_.push_back(std::move(cur));
                cur = {};
                stats = RunningStats{};
            }
        }
        if (!cur.empty())
            groups_.push_back(std::move(cur));

        if (cfg.allocation == Allocation::Neyman) {
            // W_h proportional to N_h * sigma_h; strata built to be
            // internally homogeneous get few draws, heterogeneous
            // tails get more. Floor sigma at a tiny value so
            // perfectly homogeneous strata keep a nonzero chance.
            for (const auto &g : groups_) {
                RunningStats st;
                for (std::size_t idx : g)
                    st.add(d[idx]);
                const double sigma =
                    std::max(st.stddevPopulation(), 1e-12);
                allocWeights_.push_back(
                    static_cast<double>(g.size()) * sigma);
            }
        }
    }

    std::string name() const override { return "workload-strata"; }
};

/**
 * A stratified sampler over strata built elsewhere (e.g. by
 * StreamedWorkloadStrata).  Reports the same name as the exact
 * workload-stratified sampler: it implements the same method, just
 * from streamed inputs.
 */
class PrebuiltStratifiedSampler : public StratifiedSamplerBase
{
  public:
    PrebuiltStratifiedSampler(
        std::vector<std::vector<std::size_t>> groups,
        std::vector<double> alloc_weights, std::string name)
        : name_(std::move(name))
    {
        groups_ = std::move(groups);
        allocWeights_ = std::move(alloc_weights);
    }

    std::string name() const override { return name_; }

  private:
    std::string name_;
};

} // namespace

std::unique_ptr<Sampler>
makeRandomSampler(std::size_t population_size)
{
    return std::make_unique<RandomSampler>(population_size);
}

std::unique_ptr<Sampler>
makeBalancedRandomSampler(const WorkloadPopulation &population,
                          std::vector<std::size_t> index_of_rank)
{
    return std::make_unique<BalancedRandomSampler>(
        population, std::move(index_of_rank));
}

std::unique_ptr<Sampler>
makeBenchmarkStratifiedSampler(
    const std::vector<Workload> &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes)
{
    return std::make_unique<BenchmarkStratifiedSampler>(
        workloads, benchmark_class, num_classes);
}

std::unique_ptr<Sampler>
makeBenchmarkStratifiedSampler(
    const WorkloadSet &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes)
{
    return std::make_unique<BenchmarkStratifiedSampler>(
        workloads, benchmark_class, num_classes);
}

std::unique_ptr<Sampler>
makeWorkloadStratifiedSampler(std::span<const double> d,
                              const WorkloadStrataConfig &cfg)
{
    return std::make_unique<WorkloadStratifiedSampler>(d, cfg);
}

std::size_t
countWorkloadStrata(std::span<const double> d,
                    const WorkloadStrataConfig &cfg)
{
    WorkloadStratifiedSampler s(d, cfg);
    return s.strataCount();
}

StreamedWorkloadStrata::StreamedWorkloadStrata(
    const QuantileSketch &sketch, std::uint64_t population_size,
    const WorkloadStrataConfig &cfg)
    : cfg_(cfg)
{
    if (sketch.sampleSize() == 0)
        WSEL_FATAL("workload stratification needs d(w) values");
    if (cfg_.wt == 0)
        WSEL_FATAL("minimum stratum size cannot be zero");
    if (population_size == 0)
        WSEL_FATAL("cannot stratify an empty population");

    // Replay the §VI-B2 growth rule on the sketch's kept sample,
    // scaling every kept value up to scale population workloads, so
    // "stratum size >= wt" means wt *population* workloads.  The
    // value at which a stratum closes becomes its upper boundary in
    // d-space.
    const std::vector<double> vals = sketch.sortedValues();
    const double scale = static_cast<double>(population_size) /
                         static_cast<double>(vals.size());
    RunningStats stats;
    std::size_t count = 0;
    for (double v : vals) {
        stats.add(v);
        ++count;
        if (static_cast<double>(count) * scale >=
                static_cast<double>(cfg_.wt) &&
            stats.stddevPopulation() > cfg_.tsd) {
            boundaries_.push_back(v);
            stats = RunningStats{};
            count = 0;
        }
    }
    // The last (possibly still-open) stratum catches everything
    // above the final boundary.
    boundaries_.push_back(
        std::numeric_limits<double>::infinity());
    groups_.resize(boundaries_.size());
    groupStats_.resize(boundaries_.size());
}

void
StreamedWorkloadStrata::add(std::size_t index, double d)
{
    // First boundary >= d: values equal to a closing value stay in
    // the stratum that closed on it, matching the growth replay.
    const std::size_t h = static_cast<std::size_t>(
        std::lower_bound(boundaries_.begin(), boundaries_.end(), d) -
        boundaries_.begin());
    groups_[h].push_back(index);
    groupStats_[h].add(d);
    ++added_;
}

std::unique_ptr<Sampler>
StreamedWorkloadStrata::build() const
{
    if (added_ == 0)
        WSEL_FATAL("no workloads were added to the streamed strata");
    std::vector<std::vector<std::size_t>> groups;
    std::vector<double> weights;
    for (std::size_t h = 0; h < groups_.size(); ++h) {
        if (groups_[h].empty())
            continue;
        groups.push_back(groups_[h]);
        if (cfg_.allocation == Allocation::Neyman) {
            const double sigma = std::max(
                groupStats_[h].stddevPopulation(), 1e-12);
            weights.push_back(
                static_cast<double>(groups_[h].size()) * sigma);
        }
    }
    return std::make_unique<PrebuiltStratifiedSampler>(
        std::move(groups), std::move(weights), "workload-strata");
}

double
empiricalConfidence(const Sampler &sampler, std::size_t size,
                    std::size_t draws, ThroughputMetric m,
                    std::span<const double> t_x,
                    std::span<const double> t_y, Rng &rng)
{
    if (draws == 0)
        WSEL_FATAL("need at least one draw");
    if (t_x.size() != t_y.size())
        WSEL_FATAL("X and Y throughput vectors differ in length");
    if (size > t_x.size()) {
        // A without-replacement sampler cannot honour more draws
        // than the population holds; clamp (once, loudly) so size
        // sweeps that overshoot a small population degrade to the
        // full-population answer instead of dying or repeating.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("empirical confidence asked for samples of " +
                 std::to_string(size) + " from a population of " +
                 std::to_string(t_x.size()) +
                 "; clamping (warned once)");
        size = t_x.size();
    }
    // One Sample and one scratch for the whole experiment: at the
    // paper's 10^4 draws the per-draw allocations of draw() +
    // sampleThroughput() dominate the loop (bench/
    // fig7_actual_confidence.cc measures this path).
    std::size_t wins = 0;
    Sample s;
    ThroughputScratch scratch;
    for (std::size_t i = 0; i < draws; ++i) {
        sampler.drawInto(s, size, rng);
        const double tx = sampleThroughput(s, m, t_x, scratch);
        const double ty = sampleThroughput(s, m, t_y, scratch);
        if (ty > tx)
            ++wins;
    }
    return static_cast<double>(wins) / static_cast<double>(draws);
}

} // namespace wsel
