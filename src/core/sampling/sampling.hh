/**
 * @file
 * Workload-sampling methods (paper Sections III and VI):
 *
 *  - simple random sampling (with replacement);
 *  - balanced random sampling (§VI-A): every benchmark occurs
 *    (as nearly as divisibility allows) equally often in the sample;
 *  - benchmark stratification (§VI-B1): strata are class-count
 *    tuples derived from benchmark classes (e.g. Table IV MPKI
 *    classes), with proportional allocation and the eq. (9)
 *    weighted estimator;
 *  - workload stratification (§VI-B2): strata are runs of the
 *    population sorted by the approximate per-workload difference
 *    d(w), grown until size >= WT and stddev > TSD.
 *
 * A sample is represented as strata of population indices with
 * weights so one estimator (eq. 9) serves all methods (simple
 * methods use a single stratum of weight 1, making eq. 9 collapse
 * to eq. 2).
 */

#ifndef WSEL_CORE_SAMPLING_SAMPLING_HH
#define WSEL_CORE_SAMPLING_SAMPLING_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metrics/throughput.hh"
#include "core/workload/workload.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace wsel
{

/** A drawn sample: strata of indices into a population list. */
struct Sample
{
    struct Stratum
    {
        std::vector<std::size_t> indices; ///< population positions
        double weight = 1.0;              ///< N_h / N
    };

    std::vector<Stratum> strata;

    /** Total number of workloads in the sample. */
    std::size_t totalSize() const;

    /** Flatten all indices (for handing to a detailed simulator). */
    std::vector<std::size_t> flatten() const;

    /**
     * flatten() into a caller buffer (cleared first), so tight
     * draw loops reuse one allocation across draws.
     */
    void flattenInto(std::vector<std::size_t> &out) const;
};

/**
 * Reusable buffers for sampleThroughput in tight draw loops (e.g.
 * the paper's 10^4-draw confidence experiments): per-stratum value,
 * mean and weight vectors that would otherwise be reallocated for
 * every draw.
 */
struct ThroughputScratch
{
    std::vector<double> vals;
    std::vector<double> means;
    std::vector<double> weights;
};

/**
 * Evaluate a sample's throughput for one configuration (eq. 9;
 * eq. 2 when there is a single stratum of weight 1).
 *
 * @param t Per-workload throughput of the whole population list,
 *        indexed consistently with the sample's indices.
 */
double sampleThroughput(const Sample &sample, ThroughputMetric m,
                        std::span<const double> t);

/** Allocation-free variant; @p scratch is clobbered. */
double sampleThroughput(const Sample &sample, ThroughputMetric m,
                        std::span<const double> t,
                        ThroughputScratch &scratch);

/**
 * Abstract sampling method.
 */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /** Draw a sample of @p size workloads. */
    virtual Sample draw(std::size_t size, Rng &rng) const = 0;

    /**
     * Draw into @p out, reusing its vectors where the method
     * supports it (the built-in samplers do).  Consumes the same
     * RNG stream as draw(), so the two are interchangeable in
     * seeded experiments.  The default copies through draw().
     */
    virtual void
    drawInto(Sample &out, std::size_t size, Rng &rng) const
    {
        out = draw(size, rng);
    }

    /** Method name for reports ("random", "workload-strata", ...). */
    virtual std::string name() const = 0;
};

/**
 * Simple random sampling over a population list of @p population_size
 * workloads (selection with replacement, paper §VI-A).
 */
std::unique_ptr<Sampler> makeRandomSampler(
    std::size_t population_size);

/**
 * Balanced random sampling (§VI-A): the sample's W*K benchmark slots
 * are filled with each benchmark occurring floor/ceil(W*K/B) times,
 * shuffled, and cut into workloads of K. Requires the population
 * list to locate each generated workload, so it is constructed from
 * a population enumeration.
 *
 * @param population The workload population (for ranking).
 * @param index_of_rank Maps population rank -> position in the
 *        population list the throughput vectors are indexed by
 *        (identity when the list is the full enumeration).
 */
std::unique_ptr<Sampler> makeBalancedRandomSampler(
    const WorkloadPopulation &population,
    std::vector<std::size_t> index_of_rank);

/**
 * Benchmark stratification (§VI-B1) from explicit benchmark classes.
 *
 * @param workloads The population list.
 * @param benchmark_class Class index per benchmark, in [0, M).
 * @param num_classes M.
 */
std::unique_ptr<Sampler> makeBenchmarkStratifiedSampler(
    const std::vector<Workload> &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes);

/**
 * Benchmark stratification over a WorkloadSet (rank-based sets
 * stream through the set's cursor; no Workload vector is
 * materialized).
 */
std::unique_ptr<Sampler> makeBenchmarkStratifiedSampler(
    const WorkloadSet &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes);

/** How stratified samplers allocate draws across strata. */
enum class Allocation : std::uint8_t
{
    /** W_h proportional to N_h (the paper's implicit choice). */
    Proportional,
    /**
     * Neyman-optimal: W_h proportional to N_h * sigma_h, which
     * minimizes the estimator variance (Cochran, "Sampling
     * Techniques"). Requires per-workload values to compute
     * sigma_h, so it is available for workload stratification.
     */
    Neyman,
};

/** Tunables for workload stratification (§VI-B2). */
struct WorkloadStrataConfig
{
    double tsd = 0.001;      ///< stratum stddev threshold T_SD
    std::size_t wt = 50;     ///< minimum stratum size W_T
    Allocation allocation = Allocation::Proportional;
};

/**
 * Workload stratification (§VI-B2): sort the population by the
 * approximate d(w), then grow strata until size >= wt and stddev >
 * tsd. Valid only for the (X, Y, metric) pair that produced d.
 *
 * @param d Approximate per-workload difference, aligned with the
 *        population list.
 */
std::unique_ptr<Sampler> makeWorkloadStratifiedSampler(
    std::span<const double> d,
    const WorkloadStrataConfig &cfg = WorkloadStrataConfig{});

/**
 * Count strata a workload-stratified sampler would create (for
 * reports like the paper's §VI-B2 stratum counts).
 */
std::size_t countWorkloadStrata(
    std::span<const double> d,
    const WorkloadStrataConfig &cfg = WorkloadStrataConfig{});

/**
 * Two-pass workload stratification for populations too large to
 * hold d(w) in memory (§VI-B2 at population scale):
 *
 *  1. A campaign streams d(w) into a QuantileSketch (e.g. the
 *     population runner's per-pair sketch).  The constructor sorts
 *     the sketch's kept sample and replays the §VI-B2 growth rule
 *     on it with every count scaled by N / sample-size, yielding
 *     approximate stratum boundaries in d-space.
 *  2. The caller streams d(w) once more (or the part of it being
 *     sampled), calling add(index, d) for every workload; each
 *     observation is binned into its boundary interval.
 *
 * build() then produces the same kind of sampler as
 * makeWorkloadStratifiedSampler (name "workload-strata", optional
 * Neyman allocation from the per-stratum streamed sigmas).  With a
 * sketch that kept the whole population (capacity >= N) and
 * tie-free d values the strata are identical to the exact ones;
 * otherwise boundaries are approximate but the weights (real
 * stratum sizes) are exact, so the eq. 9 estimator stays unbiased.
 */
class StreamedWorkloadStrata
{
  public:
    StreamedWorkloadStrata(
        const QuantileSketch &sketch, std::uint64_t population_size,
        const WorkloadStrataConfig &cfg = WorkloadStrataConfig{});

    /** Phase 2: assign workload @p index with difference @p d. */
    void add(std::size_t index, double d);

    /** Strata defined by the boundaries (before dropping empties). */
    std::size_t strataCount() const { return groups_.size(); }

    /** Workloads added so far. */
    std::size_t population() const { return added_; }

    /**
     * Finish: a stratified sampler over everything add()ed.
     * Empty strata are dropped.  Fatal when nothing was added.
     */
    std::unique_ptr<Sampler> build() const;

  private:
    WorkloadStrataConfig cfg_;
    std::vector<double> boundaries_; ///< upper d per stratum
    std::vector<std::vector<std::size_t>> groups_;
    std::vector<RunningStats> groupStats_; ///< for Neyman sigmas
    std::size_t added_ = 0;
};

/**
 * Experimental degree of confidence (paper §V-A/§VI): the fraction
 * of @p draws samples of size @p size on which Y's sample
 * throughput exceeds X's. X and Y are evaluated on the same drawn
 * workloads (paired simulation, as in the paper).  A @p size larger
 * than the population is clamped to it (warned once), as are
 * stratified draws whose total exceeds the strata.
 */
double empiricalConfidence(const Sampler &sampler, std::size_t size,
                           std::size_t draws, ThroughputMetric m,
                           std::span<const double> t_x,
                           std::span<const double> t_y, Rng &rng);

} // namespace wsel

#endif // WSEL_CORE_SAMPLING_SAMPLING_HH
