#include "core/confidence/confidence.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

double
DifferenceStats::inverseCv() const
{
    if (sigma == 0.0) {
        if (mu == 0.0)
            return std::numeric_limits<double>::quiet_NaN();
        return mu > 0.0 ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
    }
    return mu / sigma;
}

std::vector<double>
perWorkloadDifferences(ThroughputMetric m, std::span<const double> t_x,
                       std::span<const double> t_y)
{
    if (t_x.size() != t_y.size())
        WSEL_FATAL("X and Y cover different workload counts ("
                   << t_x.size() << " vs " << t_y.size() << ")");
    if (t_x.empty())
        WSEL_FATAL("no workloads to difference");
    std::vector<double> d(t_x.size());
    for (std::size_t w = 0; w < t_x.size(); ++w)
        d[w] = perWorkloadDifference(m, t_x[w], t_y[w]);
    return d;
}

DifferenceStats
differenceStats(std::span<const double> d)
{
    const RunningStats s = summarize(d);
    DifferenceStats out;
    out.mu = s.mean();
    out.sigma = s.stddevPopulation();
    out.n = s.count();
    if (out.mu == 0.0) {
        out.cv = out.sigma == 0.0
                     ? std::numeric_limits<double>::quiet_NaN()
                     : std::numeric_limits<double>::infinity();
    } else {
        out.cv = out.sigma / out.mu;
    }
    return out;
}

DifferenceStats
differenceStats(ThroughputMetric m, std::span<const double> t_x,
                std::span<const double> t_y)
{
    const std::vector<double> d = perWorkloadDifferences(m, t_x, t_y);
    return differenceStats(d);
}

double
confidenceFromX(double x)
{
    return 0.5 * (1.0 + std::erf(x));
}

double
modelConfidence(double cv, std::size_t sample_size)
{
    if (sample_size == 0)
        WSEL_FATAL("confidence of an empty sample is undefined");
    if (std::isnan(cv))
        return 0.5;
    if (cv == 0.0) {
        // sigma == 0 with mu != 0: outcome is deterministic; the
        // sign convention puts mu > 0 at confidence 1.
        return 1.0;
    }
    if (std::isinf(cv))
        return 0.5;
    const double x = (1.0 / cv) *
                     std::sqrt(static_cast<double>(sample_size) / 2.0);
    return confidenceFromX(x);
}

std::size_t
requiredSampleSize(double cv)
{
    if (std::isnan(cv) || std::isinf(cv))
        WSEL_FATAL("required sample size undefined for cv=" << cv);
    const double w = 8.0 * cv * cv;
    return static_cast<std::size_t>(std::max(1.0, std::ceil(w)));
}

namespace
{

/** Map a per-workload value into the metric's CLT domain. */
double
toDomain(ThroughputMetric m, double t)
{
    switch (m) {
      case ThroughputMetric::IPCT:
      case ThroughputMetric::WSU:
        return t;
      case ThroughputMetric::HSU:
        if (t <= 0.0)
            WSEL_FATAL("HSU needs positive throughputs");
        return 1.0 / t;
      case ThroughputMetric::GSU:
        if (t <= 0.0)
            WSEL_FATAL("GSU needs positive throughputs");
        return std::log(t);
    }
    WSEL_PANIC("invalid metric");
}

/** Map a CLT-domain value back to throughput units. */
double
fromDomain(ThroughputMetric m, double x)
{
    switch (m) {
      case ThroughputMetric::IPCT:
      case ThroughputMetric::WSU:
        return x;
      case ThroughputMetric::HSU:
        return 1.0 / x;
      case ThroughputMetric::GSU:
        return std::exp(x);
    }
    WSEL_PANIC("invalid metric");
}

} // namespace

ThroughputEstimate
estimateThroughput(const Sample &sample, ThroughputMetric m,
                   std::span<const double> t)
{
    if (sample.strata.empty())
        WSEL_FATAL("empty sample");

    // Work in the metric's CLT domain: plain values for A-mean
    // metrics, reciprocals for HSU, logs for GSU. In that domain
    // every metric's estimator is a weighted arithmetic mean, so
    // one variance formula serves all.
    double wsum = 0.0;
    for (const auto &st : sample.strata) {
        if (!st.indices.empty())
            wsum += st.weight;
    }
    if (wsum <= 0.0)
        WSEL_FATAL("sample has no weighted strata");

    double mean = 0.0;
    double var = 0.0;
    for (const auto &st : sample.strata) {
        if (st.indices.empty())
            continue;
        RunningStats s;
        for (std::size_t idx : st.indices) {
            if (idx >= t.size())
                WSEL_FATAL("sample index " << idx
                           << " beyond throughput vector");
            s.add(toDomain(m, t[idx]));
        }
        const double wh = st.weight / wsum;
        mean += wh * s.mean();
        // Stratified variance: (N_h/N)^2 s_h^2 / W_h, with the
        // single-observation stratum contributing its population
        // variance of 0 (no better information available).
        const double sh2 =
            s.count() >= 2 ? s.varianceSample() : 0.0;
        var += wh * wh * sh2 / static_cast<double>(s.count());
    }

    ThroughputEstimate est;
    const double se = std::sqrt(var);
    est.value = fromDomain(m, mean);
    est.lo = fromDomain(m, mean - 1.96 * se);
    est.hi = fromDomain(m, mean + 1.96 * se);
    if (est.lo > est.hi)
        std::swap(est.lo, est.hi); // reciprocal domain flips order
    est.stderror = se;
    return est;
}

CvRegime
classifyCv(double cv)
{
    const double a = std::abs(cv);
    if (std::isnan(cv) || a > 10.0)
        return CvRegime::Equivalent;
    if (a < 2.0)
        return CvRegime::RandomSampling;
    return CvRegime::Stratification;
}

} // namespace wsel
