/**
 * @file
 * The paper's random-sampling confidence model (Section III).
 *
 * For two microarchitectures X and Y compared on W random workloads,
 * the per-sample difference D is approximately normal (CLT), and the
 * degree of confidence that Y outperforms X is
 *
 *   Pr(D >= 0) = 1/2 * [1 + erf( (1/cv) * sqrt(W/2) )]      (eq. 5)
 *
 * where cv = sigma/mu is the (signed) coefficient of variation of
 * the per-workload difference d(w). Confidence saturates near
 * |(1/cv) sqrt(W/2)| = 2, giving the required sample size
 *
 *   W = 8 * cv^2                                             (eq. 8)
 */

#ifndef WSEL_CORE_CONFIDENCE_CONFIDENCE_HH
#define WSEL_CORE_CONFIDENCE_CONFIDENCE_HH

#include <cstddef>
#include <span>
#include <vector>

#include "core/metrics/throughput.hh"
#include "core/sampling/sampling.hh"

namespace wsel
{

/** Moments of the per-workload difference d(w). */
struct DifferenceStats
{
    double mu = 0.0;    ///< mean of d(w)
    double sigma = 0.0; ///< population standard deviation of d(w)
    double cv = 0.0;    ///< sigma / mu (signed; +-inf when mu == 0)
    std::size_t n = 0;  ///< number of workloads

    /** 1/cv = mu/sigma, the paper's Figure 4/5 quantity. */
    double inverseCv() const;
};

/**
 * Compute d(w) for every workload from per-workload throughputs of
 * X and Y under metric @p m (eq. 4 / eq. 7 / footnote 3).
 */
std::vector<double> perWorkloadDifferences(
    ThroughputMetric m, std::span<const double> t_x,
    std::span<const double> t_y);

/** Moments of a precomputed d(w) vector. */
DifferenceStats differenceStats(std::span<const double> d);

/** Convenience: moments of d(w) straight from throughputs. */
DifferenceStats differenceStats(ThroughputMetric m,
                                std::span<const double> t_x,
                                std::span<const double> t_y);

/**
 * Eq. (5) as a function of x = (1/cv) * sqrt(W/2) (Figure 1's
 * x-axis).
 */
double confidenceFromX(double x);

/**
 * Degree of confidence that Y outperforms X with a random sample of
 * @p sample_size workloads (eq. 5). @p cv is signed.
 */
double modelConfidence(double cv, std::size_t sample_size);

/**
 * Required random-sample size W = 8*cv^2 (eq. 8), rounded up and at
 * least 1.
 */
std::size_t requiredSampleSize(double cv);

/**
 * The paper's §VII decision thresholds on |cv| estimated from a
 * large approximate-simulation sample.
 */
enum class CvRegime
{
    Equivalent,      ///< |cv| > 10: same average throughput
    RandomSampling,  ///< |cv| < 2: a few tens of random workloads
    Stratification,  ///< 2 <= |cv| <= 10: use workload stratification
};

/** Classify a cv per the paper's practical guideline (§VII). */
CvRegime classifyCv(double cv);

/**
 * A throughput estimate with a CLT confidence interval. The paper's
 * conclusion notes that "defining workload samples that provide
 * accurate speedups with high probability is still open"; this is
 * the standard-statistics building block for that problem.
 */
struct ThroughputEstimate
{
    double value = 0.0;    ///< point estimate of T
    double stderror = 0.0; ///< standard error of the estimate
    double lo = 0.0;       ///< 95% confidence bound (lower)
    double hi = 0.0;       ///< 95% confidence bound (upper)
};

/**
 * Estimate the population throughput from a (possibly stratified)
 * sample with a 95% confidence interval.
 *
 * For A-mean metrics (IPCT, WSU) the estimator is eq. (9) and the
 * variance is the stratified-sampling variance
 * sum_h (N_h/N)^2 s_h^2 / W_h (Cochran). HSU and GSU are handled in
 * their transform domains (reciprocal / log) and mapped back, so
 * their intervals are asymmetric.
 *
 * @param sample The drawn sample (strata + weights).
 * @param m Throughput metric.
 * @param t Per-workload throughputs aligned with the sample's
 *        population indices.
 */
ThroughputEstimate estimateThroughput(const Sample &sample,
                                      ThroughputMetric m,
                                      std::span<const double> t);

} // namespace wsel

#endif // WSEL_CORE_CONFIDENCE_CONFIDENCE_HH
