/**
 * @file
 * Multiprogram throughput metrics (paper §II-D and [Michaud,
 * "Demystifying multicore throughput metrics", CAL 2012]).
 *
 * All metrics are instances of one formula: the per-workload
 * throughput is an X-mean over cores of IPC_wk / IPCref[b_wk]
 * (eq. 1) and the sample throughput is an X-mean over workloads
 * (eq. 2). IPCT uses A-mean with IPCref = 1; WSU uses A-mean with
 * single-thread reference IPCs; HSU uses H-mean; GSU (footnote 3)
 * uses the geometric mean.
 */

#ifndef WSEL_CORE_METRICS_THROUGHPUT_HH
#define WSEL_CORE_METRICS_THROUGHPUT_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wsel
{

/** The throughput metrics considered in the paper. */
enum class ThroughputMetric : std::uint8_t
{
    IPCT, ///< IPC throughput (A-mean of raw IPCs)
    WSU,  ///< weighted speedup (A-mean of speedups)
    HSU,  ///< harmonic mean of speedups
    GSU,  ///< geometric mean of speedups (footnote 3 extension)
};

/** Short metric name ("IPCT", "WSU", "HSU", "GSU"). */
std::string toString(ThroughputMetric m);

/** Parse a metric name; fatal on unknown names. */
ThroughputMetric parseMetric(const std::string &name);

/** The three paper metrics, in paper order. */
const std::vector<ThroughputMetric> &paperMetrics();

/**
 * Per-workload throughput t(w) (eq. 1).
 *
 * @param ipcs IPC of the thread on each core.
 * @param ref_ipcs Single-thread reference IPC of the benchmark on
 *        each core (ignored for IPCT).
 */
double perWorkloadThroughput(ThroughputMetric m,
                             std::span<const double> ipcs,
                             std::span<const double> ref_ipcs);

/**
 * Sample throughput T (eq. 2): X-mean over per-workload values.
 */
double sampleThroughput(ThroughputMetric m,
                        std::span<const double> t_values);

/**
 * Stratified throughput estimate (eq. 9): weighted X-mean over
 * per-stratum X-means.
 *
 * @param stratum_means X-mean of t(w) within each stratum.
 * @param weights Stratum weights N_h / N.
 */
double stratifiedThroughput(ThroughputMetric m,
                            std::span<const double> stratum_means,
                            std::span<const double> weights);

/**
 * Per-workload difference d(w) between configurations Y and X, in
 * the form to which the CLT applies for this metric (paper §III):
 * t_Y - t_X for IPCT/WSU (eq. 4), 1/t_X - 1/t_Y for HSU (eq. 7),
 * log t_Y - log t_X for GSU (footnote 3).
 */
double perWorkloadDifference(ThroughputMetric m, double t_x,
                             double t_y);

} // namespace wsel

#endif // WSEL_CORE_METRICS_THROUGHPUT_HH
