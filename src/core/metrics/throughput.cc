#include "core/metrics/throughput.hh"

#include <cmath>

#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

std::string
toString(ThroughputMetric m)
{
    switch (m) {
      case ThroughputMetric::IPCT:
        return "IPCT";
      case ThroughputMetric::WSU:
        return "WSU";
      case ThroughputMetric::HSU:
        return "HSU";
      case ThroughputMetric::GSU:
        return "GSU";
    }
    WSEL_PANIC("invalid metric " << static_cast<int>(m));
}

ThroughputMetric
parseMetric(const std::string &name)
{
    for (ThroughputMetric m :
         {ThroughputMetric::IPCT, ThroughputMetric::WSU,
          ThroughputMetric::HSU, ThroughputMetric::GSU}) {
        if (toString(m) == name)
            return m;
    }
    WSEL_FATAL("unknown throughput metric '" << name << "'");
}

const std::vector<ThroughputMetric> &
paperMetrics()
{
    static const std::vector<ThroughputMetric> v = {
        ThroughputMetric::IPCT,
        ThroughputMetric::WSU,
        ThroughputMetric::HSU,
    };
    return v;
}

namespace
{

/** The X-mean of eq. (1)/(2) for each metric. */
double
xMean(ThroughputMetric m, std::span<const double> xs)
{
    switch (m) {
      case ThroughputMetric::IPCT:
      case ThroughputMetric::WSU:
        return arithmeticMean(xs);
      case ThroughputMetric::HSU:
        return harmonicMean(xs);
      case ThroughputMetric::GSU:
        return geometricMean(xs);
    }
    WSEL_PANIC("invalid metric " << static_cast<int>(m));
}

/** The weighted X-mean of eq. (9) for each metric. */
double
weightedXMean(ThroughputMetric m, std::span<const double> xs,
              std::span<const double> ws)
{
    switch (m) {
      case ThroughputMetric::IPCT:
      case ThroughputMetric::WSU:
        return weightedArithmeticMean(xs, ws);
      case ThroughputMetric::HSU:
        return weightedHarmonicMean(xs, ws);
      case ThroughputMetric::GSU: {
        // Weighted geometric mean via the log domain.
        double num = 0.0, den = 0.0;
        if (xs.size() != ws.size())
            WSEL_FATAL("weighted mean size mismatch");
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (xs[i] <= 0.0)
                WSEL_FATAL("geometric mean requires positive values");
            num += ws[i] * std::log(xs[i]);
            den += ws[i];
        }
        if (den == 0.0)
            WSEL_FATAL("all weights are zero");
        return std::exp(num / den);
      }
    }
    WSEL_PANIC("invalid metric " << static_cast<int>(m));
}

} // namespace

double
perWorkloadThroughput(ThroughputMetric m, std::span<const double> ipcs,
                      std::span<const double> ref_ipcs)
{
    if (ipcs.empty())
        WSEL_FATAL("workload with no threads");
    if (m != ThroughputMetric::IPCT &&
        ref_ipcs.size() != ipcs.size()) {
        WSEL_FATAL("need one reference IPC per core for "
                   << toString(m));
    }
    std::vector<double> ratios(ipcs.size());
    for (std::size_t k = 0; k < ipcs.size(); ++k) {
        if (ipcs[k] <= 0.0)
            WSEL_FATAL("non-positive IPC " << ipcs[k] << " on core "
                                           << k);
        if (m == ThroughputMetric::IPCT) {
            ratios[k] = ipcs[k]; // IPCref = 1
        } else {
            if (ref_ipcs[k] <= 0.0)
                WSEL_FATAL("non-positive reference IPC on core "
                           << k);
            ratios[k] = ipcs[k] / ref_ipcs[k];
        }
    }
    return xMean(m, ratios);
}

double
sampleThroughput(ThroughputMetric m, std::span<const double> t_values)
{
    if (t_values.empty())
        WSEL_FATAL("empty workload sample");
    return xMean(m, t_values);
}

double
stratifiedThroughput(ThroughputMetric m,
                     std::span<const double> stratum_means,
                     std::span<const double> weights)
{
    if (stratum_means.empty())
        WSEL_FATAL("empty stratified sample");
    return weightedXMean(m, stratum_means, weights);
}

double
perWorkloadDifference(ThroughputMetric m, double t_x, double t_y)
{
    switch (m) {
      case ThroughputMetric::IPCT:
      case ThroughputMetric::WSU:
        return t_y - t_x; // eq. (4)
      case ThroughputMetric::HSU:
        if (t_x <= 0.0 || t_y <= 0.0)
            WSEL_FATAL("HSU difference needs positive throughputs");
        return 1.0 / t_x - 1.0 / t_y; // eq. (7)
      case ThroughputMetric::GSU:
        if (t_x <= 0.0 || t_y <= 0.0)
            WSEL_FATAL("GSU difference needs positive throughputs");
        return std::log(t_y) - std::log(t_x); // footnote 3
    }
    WSEL_PANIC("invalid metric " << static_cast<int>(m));
}

} // namespace wsel
