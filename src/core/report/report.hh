/**
 * @file
 * Markdown report generation: turn a Campaign-shaped result (a set
 * of per-workload throughputs per configuration) into the analysis
 * tables the paper's workflow produces — per-pair cv, 1/cv, eq. (8)
 * sample sizes, §VII regimes, and stratification previews.
 *
 * Kept simulator-agnostic: the input is configuration names plus
 * per-workload throughput vectors, so any simulator (or external
 * measurements) can feed it.
 */

#ifndef WSEL_CORE_REPORT_REPORT_HH
#define WSEL_CORE_REPORT_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics/throughput.hh"

namespace wsel
{

/** Input to the report generator. */
struct ReportInput
{
    /** Study title (rendered as the top heading). */
    std::string title = "wsel study";

    /** Configuration (e.g. policy) names. */
    std::vector<std::string> configs;

    /**
     * Per-configuration per-workload throughput, one inner vector
     * per config, all of equal length, under each metric to be
     * reported.
     */
    struct MetricBlock
    {
        ThroughputMetric metric = ThroughputMetric::IPCT;
        std::vector<std::vector<double>> t; ///< [config][workload]
    };

    std::vector<MetricBlock> metrics;

    /** Workload-stratification preview parameters (§VI-B2). */
    double tsd = 0.001;
    std::size_t wt = 50;
};

/**
 * Render the analysis as markdown: one section per metric with a
 * pairwise table (mean difference, cv, 1/cv, eq. (8) W, §VII
 * regime, workload-strata count), plus per-config population
 * means with 95% confidence intervals.
 */
void writeMarkdownReport(const ReportInput &input, std::ostream &os);

/** Convenience file wrapper; fatal when the file cannot be opened. */
void writeMarkdownReport(const ReportInput &input,
                         const std::string &path);

} // namespace wsel

#endif // WSEL_CORE_REPORT_REPORT_HH
