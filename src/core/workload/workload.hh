/**
 * @file
 * Multiprogrammed workloads and the workload population.
 *
 * A workload is a combination of K benchmarks (with repetition,
 * order-free since cores are identical and interchangeable) out of B
 * benchmarks. The population has C(B+K-1, K) members (paper §II):
 * 253 for B=22, K=2 and 12650 for B=22, K=4.
 *
 * Large populations (4.3M workloads at 8 cores) are never
 * materialized: WorkloadCursor / WorkloadPopulation::forEach stream
 * the population in lexicographic (rank) order, and WorkloadSet
 * describes a campaign's workload list either explicitly or as a
 * rank range over a population shape.
 */

#ifndef WSEL_CORE_WORKLOAD_WORKLOAD_HH
#define WSEL_CORE_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "stats/rng.hh"

namespace wsel
{

/**
 * One workload: a sorted multiset of benchmark indices in [0, B).
 */
class Workload
{
  public:
    Workload() = default;

    /** Construct from benchmark indices (sorted internally). */
    explicit Workload(std::vector<std::uint32_t> benchmarks);

    /** Benchmark index on core @p k. */
    std::uint32_t operator[](std::size_t k) const
    {
        return benchmarks_[k];
    }

    /** Number of cores / threads. */
    std::size_t size() const { return benchmarks_.size(); }

    const std::vector<std::uint32_t> &benchmarks() const
    {
        return benchmarks_;
    }

    /** Count occurrences of benchmark @p b. */
    std::uint32_t count(std::uint32_t b) const;

    /** "b0+b3+b3+b17"-style key (also used in result caches). */
    std::string key() const;

    /** Append key() to @p out without a temporary string. */
    void keyInto(std::string &out) const;

    bool operator==(const Workload &o) const = default;
    auto operator<=>(const Workload &o) const = default;

  private:
    std::vector<std::uint32_t> benchmarks_;
};

/** Append the "b0+b3+..." key of @p benches to @p out. */
void workloadKeyInto(std::span<const std::uint32_t> benches,
                     std::string &out);

/**
 * The full population of K-combinations-with-repetition over B
 * benchmarks, with O(K log B) ranking/unranking so huge populations
 * (e.g. 8 cores: 4.3M workloads) can be sampled uniformly without
 * enumeration.
 */
class WorkloadPopulation
{
  public:
    /**
     * @param num_benchmarks B, the benchmark-suite size.
     * @param cores K, the core count.
     */
    WorkloadPopulation(std::uint32_t num_benchmarks,
                       std::uint32_t cores);

    /** Population size N = C(B+K-1, K). */
    std::uint64_t size() const { return size_; }

    std::uint32_t numBenchmarks() const { return b_; }
    std::uint32_t cores() const { return k_; }

    /** The @p index-th workload in lexicographic order. */
    Workload unrank(std::uint64_t index) const;

    /**
     * Unrank @p index into @p out (resized to K) without
     * constructing a Workload; the streaming building block.
     */
    void unrankInto(std::uint64_t index,
                    std::vector<std::uint32_t> &out) const;

    /** Lexicographic index of @p w; fatal if w is out of domain. */
    std::uint64_t rank(const Workload &w) const;

    /** Lexicographic index of a sorted benchmark multiset. */
    std::uint64_t rank(std::span<const std::uint32_t> benches) const;

    /** A uniformly random workload. */
    Workload sampleUniform(Rng &rng) const;

    /**
     * Visit ranks [first, last) in order without materializing the
     * population: fn(rank, span-of-K-sorted-benchmark-indices).
     * The span is only valid during the callback.
     */
    template <typename Fn>
    void forEach(std::uint64_t first, std::uint64_t last,
                 Fn &&fn) const;

    /** Visit the whole population in rank order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        forEach(0, size_, std::forward<Fn>(fn));
    }

    /**
     * Enumerate the whole population in lexicographic order; fatal
     * when the population exceeds @p limit (guards against
     * accidentally materializing the 8-core population).
     */
    std::vector<Workload> enumerateAll(
        std::uint64_t limit = 2'000'000) const;

    /**
     * How often each benchmark occurs across the whole population;
     * uniform by symmetry (paper §VI-A). Exposed for tests.
     */
    std::uint64_t occurrencesPerBenchmark() const;

  private:
    friend class WorkloadCursor;
    friend class WorkloadSet;

    void checkRange(std::uint64_t first, std::uint64_t last) const;

    std::uint32_t b_;
    std::uint32_t k_;
    std::uint64_t size_;
};

/**
 * Unranking iterator over a WorkloadPopulation: seeks to a rank in
 * O(K·B) and then steps to the lexicographic successor in amortized
 * O(1), holding only the current K-element composition.
 */
class WorkloadCursor
{
  public:
    WorkloadCursor(const WorkloadPopulation &pop,
                   std::uint64_t first_rank);

    std::uint64_t rank() const { return rank_; }
    bool atEnd() const { return rank_ >= size_; }

    /** The current sorted benchmark multiset (valid until next()). */
    std::span<const std::uint32_t> benchmarks() const
    {
        return {cur_.data(), cur_.size()};
    }

    /** Materialize the current position as a Workload. */
    Workload workload() const { return Workload(cur_); }

    /** Advance to the lexicographic successor. */
    void next();

  private:
    std::uint32_t b_ = 0;
    std::uint64_t rank_ = 0;
    std::uint64_t size_ = 0;
    std::vector<std::uint32_t> cur_;
};

template <typename Fn>
void
WorkloadPopulation::forEach(std::uint64_t first, std::uint64_t last,
                            Fn &&fn) const
{
    checkRange(first, last);
    WorkloadCursor cur(*this, first);
    for (; cur.rank() < last; cur.next())
        fn(cur.rank(), cur.benchmarks());
}

/**
 * A campaign's workload list: either an explicit list of Workload
 * objects (sampled campaigns, campaign_v2 files) or a rank range /
 * rank list over a population shape (population campaigns), which
 * costs O(1) / O(n ranks) memory instead of O(n·K) Workloads.
 *
 * Implicitly constructible from std::vector<Workload> so the
 * explicit-list call sites read unchanged. operator[] returns a
 * Workload by value (materialized on demand in rank-based modes);
 * use forEach() on hot paths to stream benchmark spans with no
 * per-element allocation.
 */
class WorkloadSet
{
  public:
    WorkloadSet() = default;

    /** Explicit list (implicit: keeps old call sites compiling). */
    WorkloadSet(std::vector<Workload> list)
        : mode_(Mode::Explicit), list_(std::move(list))
    {
    }

    /** Ranks [first, last) of @p pop. */
    static WorkloadSet populationRange(const WorkloadPopulation &pop,
                                       std::uint64_t first,
                                       std::uint64_t last);

    /** The whole population of @p pop. */
    static WorkloadSet fullPopulation(const WorkloadPopulation &pop)
    {
        return populationRange(pop, 0, pop.size());
    }

    /** An explicit list of ranks of @p pop. */
    static WorkloadSet fromRanks(const WorkloadPopulation &pop,
                                 std::vector<std::uint64_t> ranks);

    std::size_t size() const;
    bool empty() const { return size() == 0; }

    /** Threads per workload (0 for an empty explicit set). */
    std::uint32_t cores() const;

    /** The @p i-th workload, materialized on demand. */
    Workload operator[](std::size_t i) const;

    /** True when backed by ranks over a population shape. */
    bool rankBased() const { return mode_ != Mode::Explicit; }

    /** True when backed by a contiguous population rank range. */
    bool isPopulationRange() const { return mode_ == Mode::Range; }

    /** The population shape (fatal unless rankBased()). */
    const WorkloadPopulation &population() const;

    /** First rank of a population range (fatal otherwise). */
    std::uint64_t firstRank() const;

    /** Population rank of element @p i (fatal unless rankBased()). */
    std::uint64_t rankAt(std::size_t i) const;

    /** Append the "b0+b3+..." key of element @p i to @p out. */
    void keyInto(std::size_t i, std::string &out) const;

    /**
     * Visit elements [first, last) in order:
     * fn(index, span-of-sorted-benchmark-indices). Streams with no
     * per-element allocation in Range mode; the span is only valid
     * during the callback.
     */
    template <typename Fn>
    void forEach(std::size_t first, std::size_t last, Fn &&fn) const;

    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        forEach(0, size(), std::forward<Fn>(fn));
    }

    /** Input iterator materializing Workloads (for range-for). */
    class const_iterator
    {
      public:
        using value_type = Workload;
        using difference_type = std::ptrdiff_t;

        const_iterator(const WorkloadSet *set, std::size_t i)
            : set_(set), i_(i)
        {
        }

        Workload operator*() const { return (*set_)[i_]; }
        const_iterator &operator++()
        {
            ++i_;
            return *this;
        }
        bool operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }

      private:
        const WorkloadSet *set_;
        std::size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }

    /** Element-wise equality (across storage modes). */
    bool operator==(const WorkloadSet &o) const;

  private:
    enum class Mode { Explicit, Range, Ranks };

    void checkIndexRange(std::size_t first, std::size_t last) const;

    Mode mode_ = Mode::Explicit;
    std::vector<Workload> list_;
    std::optional<WorkloadPopulation> pop_;
    std::uint64_t first_ = 0;
    std::uint64_t last_ = 0;
    std::vector<std::uint64_t> ranks_;
};

template <typename Fn>
void
WorkloadSet::forEach(std::size_t first, std::size_t last,
                     Fn &&fn) const
{
    checkIndexRange(first, last);
    switch (mode_) {
      case Mode::Explicit:
        for (std::size_t i = first; i < last; ++i) {
            const auto &b = list_[i].benchmarks();
            fn(i, std::span<const std::uint32_t>(b.data(), b.size()));
        }
        break;
      case Mode::Range: {
        WorkloadCursor cur(*pop_, first_ + first);
        for (std::size_t i = first; i < last; ++i, cur.next())
            fn(i, cur.benchmarks());
        break;
      }
      case Mode::Ranks: {
        std::vector<std::uint32_t> scratch;
        for (std::size_t i = first; i < last; ++i) {
            pop_->unrankInto(ranks_[i], scratch);
            fn(i, std::span<const std::uint32_t>(scratch.data(),
                                                 scratch.size()));
        }
        break;
      }
    }
}

} // namespace wsel

#endif // WSEL_CORE_WORKLOAD_WORKLOAD_HH
