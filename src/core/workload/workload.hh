/**
 * @file
 * Multiprogrammed workloads and the workload population.
 *
 * A workload is a combination of K benchmarks (with repetition,
 * order-free since cores are identical and interchangeable) out of B
 * benchmarks. The population has C(B+K-1, K) members (paper §II):
 * 253 for B=22, K=2 and 12650 for B=22, K=4.
 */

#ifndef WSEL_CORE_WORKLOAD_WORKLOAD_HH
#define WSEL_CORE_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/rng.hh"

namespace wsel
{

/**
 * One workload: a sorted multiset of benchmark indices in [0, B).
 */
class Workload
{
  public:
    Workload() = default;

    /** Construct from benchmark indices (sorted internally). */
    explicit Workload(std::vector<std::uint32_t> benchmarks);

    /** Benchmark index on core @p k. */
    std::uint32_t operator[](std::size_t k) const
    {
        return benchmarks_[k];
    }

    /** Number of cores / threads. */
    std::size_t size() const { return benchmarks_.size(); }

    const std::vector<std::uint32_t> &benchmarks() const
    {
        return benchmarks_;
    }

    /** Count occurrences of benchmark @p b. */
    std::uint32_t count(std::uint32_t b) const;

    /** "b0+b3+b3+b17"-style key (also used in result caches). */
    std::string key() const;

    bool operator==(const Workload &o) const = default;
    auto operator<=>(const Workload &o) const = default;

  private:
    std::vector<std::uint32_t> benchmarks_;
};

/**
 * The full population of K-combinations-with-repetition over B
 * benchmarks, with O(K log B) ranking/unranking so huge populations
 * (e.g. 8 cores: 4.3M workloads) can be sampled uniformly without
 * enumeration.
 */
class WorkloadPopulation
{
  public:
    /**
     * @param num_benchmarks B, the benchmark-suite size.
     * @param cores K, the core count.
     */
    WorkloadPopulation(std::uint32_t num_benchmarks,
                       std::uint32_t cores);

    /** Population size N = C(B+K-1, K). */
    std::uint64_t size() const { return size_; }

    std::uint32_t numBenchmarks() const { return b_; }
    std::uint32_t cores() const { return k_; }

    /** The @p index-th workload in lexicographic order. */
    Workload unrank(std::uint64_t index) const;

    /** Lexicographic index of @p w; fatal if w is out of domain. */
    std::uint64_t rank(const Workload &w) const;

    /** A uniformly random workload. */
    Workload sampleUniform(Rng &rng) const;

    /**
     * Enumerate the whole population in lexicographic order; fatal
     * when the population exceeds @p limit (guards against
     * accidentally materializing the 8-core population).
     */
    std::vector<Workload> enumerateAll(
        std::uint64_t limit = 2'000'000) const;

    /**
     * How often each benchmark occurs across the whole population;
     * uniform by symmetry (paper §VI-A). Exposed for tests.
     */
    std::uint64_t occurrencesPerBenchmark() const;

  private:
    std::uint32_t b_;
    std::uint32_t k_;
    std::uint64_t size_;
};

} // namespace wsel

#endif // WSEL_CORE_WORKLOAD_WORKLOAD_HH
