#include "core/workload/workload.hh"

#include <algorithm>

#include "stats/combinatorics.hh"
#include "stats/logging.hh"

namespace wsel
{

Workload::Workload(std::vector<std::uint32_t> benchmarks)
    : benchmarks_(std::move(benchmarks))
{
    if (benchmarks_.empty())
        WSEL_FATAL("a workload needs at least one benchmark");
    std::sort(benchmarks_.begin(), benchmarks_.end());
}

std::uint32_t
Workload::count(std::uint32_t b) const
{
    return static_cast<std::uint32_t>(
        std::count(benchmarks_.begin(), benchmarks_.end(), b));
}

void
workloadKeyInto(std::span<const std::uint32_t> benches,
                std::string &out)
{
    // "b" + up-to-10-digit index + "+" separator per entry.
    out.reserve(out.size() + benches.size() * 12);
    char buf[16];
    for (std::size_t i = 0; i < benches.size(); ++i) {
        if (i)
            out.push_back('+');
        out.push_back('b');
        char *p = buf + sizeof(buf);
        std::uint32_t v = benches[i];
        do {
            *--p = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v);
        out.append(p, buf + sizeof(buf));
    }
}

std::string
Workload::key() const
{
    std::string out;
    keyInto(out);
    return out;
}

void
Workload::keyInto(std::string &out) const
{
    workloadKeyInto({benchmarks_.data(), benchmarks_.size()}, out);
}

WorkloadPopulation::WorkloadPopulation(std::uint32_t num_benchmarks,
                                       std::uint32_t cores)
    : b_(num_benchmarks), k_(cores)
{
    if (b_ == 0 || k_ == 0)
        WSEL_FATAL("population needs benchmarks and cores");
    size_ = multisetCount(b_, k_);
}

void
WorkloadPopulation::unrankInto(std::uint64_t index,
                               std::vector<std::uint32_t> &out) const
{
    if (index >= size_)
        WSEL_FATAL("workload index " << index
                                     << " out of population of "
                                     << size_);
    out.resize(k_);
    std::uint32_t min_val = 0;
    for (std::uint32_t j = 0; j < k_; ++j) {
        const std::uint32_t remaining = k_ - j - 1;
        for (std::uint32_t val = min_val;; ++val) {
            WSEL_ASSERT(val < b_, "unrank walked off the suite");
            // Sequences with position j equal to val: the remaining
            // slots draw from [val, B).
            const std::uint64_t block =
                multisetCount(b_ - val, remaining);
            if (index < block) {
                out[j] = val;
                min_val = val;
                break;
            }
            index -= block;
        }
    }
}

Workload
WorkloadPopulation::unrank(std::uint64_t index) const
{
    std::vector<std::uint32_t> v;
    unrankInto(index, v);
    return Workload(std::move(v));
}

std::uint64_t
WorkloadPopulation::rank(std::span<const std::uint32_t> benches) const
{
    if (benches.size() != k_)
        WSEL_FATAL("workload has " << benches.size()
                                   << " threads, expected " << k_);
    std::uint64_t index = 0;
    std::uint32_t min_val = 0;
    for (std::uint32_t j = 0; j < k_; ++j) {
        const std::uint32_t val = benches[j];
        if (val >= b_ || val < min_val)
            WSEL_FATAL("workload outside population domain");
        const std::uint32_t remaining = k_ - j - 1;
        for (std::uint32_t x = min_val; x < val; ++x)
            index += multisetCount(b_ - x, remaining);
        min_val = val;
    }
    return index;
}

std::uint64_t
WorkloadPopulation::rank(const Workload &w) const
{
    const auto &b = w.benchmarks();
    return rank(std::span<const std::uint32_t>(b.data(), b.size()));
}

Workload
WorkloadPopulation::sampleUniform(Rng &rng) const
{
    return unrank(rng.nextInt(size_));
}

void
WorkloadPopulation::checkRange(std::uint64_t first,
                               std::uint64_t last) const
{
    if (first > last || last > size_)
        WSEL_FATAL("rank range [" << first << ", " << last
                                  << ") outside population of "
                                  << size_);
}

std::vector<Workload>
WorkloadPopulation::enumerateAll(std::uint64_t limit) const
{
    if (size_ > limit)
        WSEL_FATAL("population of " << size_
                                    << " exceeds enumeration limit "
                                    << limit);
    std::vector<Workload> out;
    out.reserve(size_);
    forEach([&](std::uint64_t,
                std::span<const std::uint32_t> benches) {
        out.push_back(Workload(
            std::vector<std::uint32_t>(benches.begin(),
                                       benches.end())));
    });
    WSEL_ASSERT(out.size() == size_, "enumeration miscounted");
    return out;
}

std::uint64_t
WorkloadPopulation::occurrencesPerBenchmark() const
{
    return size_ * k_ / b_;
}

WorkloadCursor::WorkloadCursor(const WorkloadPopulation &pop,
                               std::uint64_t first_rank)
    : b_(pop.b_), rank_(first_rank), size_(pop.size_)
{
    if (first_rank > size_)
        WSEL_FATAL("cursor rank " << first_rank
                                  << " outside population of "
                                  << size_);
    if (first_rank < size_)
        pop.unrankInto(first_rank, cur_);
    else
        cur_.assign(pop.k_, 0); // one-past-the-end; benchmarks()
                                // meaningless but sized.
}

void
WorkloadCursor::next()
{
    WSEL_ASSERT(rank_ < size_, "advancing a cursor past the end");
    ++rank_;
    // Lexicographic successor of a nondecreasing sequence: bump the
    // rightmost element below B-1 and level everything after it.
    std::size_t j = cur_.size();
    while (j > 0 && cur_[j - 1] == b_ - 1)
        --j;
    if (j == 0)
        return; // was the last sequence; rank_ == size_ now.
    const std::uint32_t v = cur_[j - 1] + 1;
    for (std::size_t i = j - 1; i < cur_.size(); ++i)
        cur_[i] = v;
}

// -------------------------------------------------------------------
// WorkloadSet
// -------------------------------------------------------------------

WorkloadSet
WorkloadSet::populationRange(const WorkloadPopulation &pop,
                             std::uint64_t first, std::uint64_t last)
{
    pop.checkRange(first, last);
    WorkloadSet s;
    s.mode_ = Mode::Range;
    s.pop_ = pop;
    s.first_ = first;
    s.last_ = last;
    return s;
}

WorkloadSet
WorkloadSet::fromRanks(const WorkloadPopulation &pop,
                       std::vector<std::uint64_t> ranks)
{
    for (std::uint64_t r : ranks)
        if (r >= pop.size())
            WSEL_FATAL("rank " << r << " outside population of "
                               << pop.size());
    WorkloadSet s;
    s.mode_ = Mode::Ranks;
    s.pop_ = pop;
    s.ranks_ = std::move(ranks);
    return s;
}

std::size_t
WorkloadSet::size() const
{
    switch (mode_) {
      case Mode::Explicit:
        return list_.size();
      case Mode::Range:
        return static_cast<std::size_t>(last_ - first_);
      case Mode::Ranks:
        return ranks_.size();
    }
    return 0;
}

std::uint32_t
WorkloadSet::cores() const
{
    if (mode_ != Mode::Explicit)
        return pop_->cores();
    if (list_.empty())
        return 0;
    return static_cast<std::uint32_t>(list_[0].size());
}

Workload
WorkloadSet::operator[](std::size_t i) const
{
    switch (mode_) {
      case Mode::Explicit:
        return list_[i];
      case Mode::Range:
        return pop_->unrank(first_ + i);
      case Mode::Ranks:
        return pop_->unrank(ranks_[i]);
    }
    WSEL_FATAL("bad workload-set mode");
}

const WorkloadPopulation &
WorkloadSet::population() const
{
    if (!pop_)
        WSEL_FATAL("explicit workload set has no population shape");
    return *pop_;
}

std::uint64_t
WorkloadSet::firstRank() const
{
    if (mode_ != Mode::Range)
        WSEL_FATAL("workload set is not a population range");
    return first_;
}

std::uint64_t
WorkloadSet::rankAt(std::size_t i) const
{
    switch (mode_) {
      case Mode::Range:
        return first_ + i;
      case Mode::Ranks:
        return ranks_[i];
      case Mode::Explicit:
        WSEL_FATAL("explicit workload set has no ranks");
    }
    WSEL_FATAL("bad workload-set mode");
}

void
WorkloadSet::keyInto(std::size_t i, std::string &out) const
{
    forEach(i, i + 1,
            [&](std::size_t, std::span<const std::uint32_t> b) {
                workloadKeyInto(b, out);
            });
}

void
WorkloadSet::checkIndexRange(std::size_t first,
                             std::size_t last) const
{
    if (first > last || last > size())
        WSEL_FATAL("index range [" << first << ", " << last
                                   << ") outside workload set of "
                                   << size());
}

bool
WorkloadSet::operator==(const WorkloadSet &o) const
{
    if (size() != o.size() || cores() != o.cores())
        return false;
    bool equal = true;
    forEach([&](std::size_t i, std::span<const std::uint32_t> a) {
        if (!equal)
            return;
        o.forEach(i, i + 1,
                  [&](std::size_t,
                      std::span<const std::uint32_t> b) {
                      equal = std::equal(a.begin(), a.end(),
                                         b.begin(), b.end());
                  });
    });
    return equal;
}

} // namespace wsel
