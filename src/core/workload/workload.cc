#include "core/workload/workload.hh"

#include <algorithm>
#include <sstream>

#include "stats/combinatorics.hh"
#include "stats/logging.hh"

namespace wsel
{

Workload::Workload(std::vector<std::uint32_t> benchmarks)
    : benchmarks_(std::move(benchmarks))
{
    if (benchmarks_.empty())
        WSEL_FATAL("a workload needs at least one benchmark");
    std::sort(benchmarks_.begin(), benchmarks_.end());
}

std::uint32_t
Workload::count(std::uint32_t b) const
{
    return static_cast<std::uint32_t>(
        std::count(benchmarks_.begin(), benchmarks_.end(), b));
}

std::string
Workload::key() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < benchmarks_.size(); ++i) {
        if (i)
            os << "+";
        os << "b" << benchmarks_[i];
    }
    return os.str();
}

WorkloadPopulation::WorkloadPopulation(std::uint32_t num_benchmarks,
                                       std::uint32_t cores)
    : b_(num_benchmarks), k_(cores)
{
    if (b_ == 0 || k_ == 0)
        WSEL_FATAL("population needs benchmarks and cores");
    size_ = multisetCount(b_, k_);
}

Workload
WorkloadPopulation::unrank(std::uint64_t index) const
{
    if (index >= size_)
        WSEL_FATAL("workload index " << index
                                     << " out of population of "
                                     << size_);
    std::vector<std::uint32_t> v(k_);
    std::uint32_t min_val = 0;
    for (std::uint32_t j = 0; j < k_; ++j) {
        const std::uint32_t remaining = k_ - j - 1;
        for (std::uint32_t val = min_val;; ++val) {
            WSEL_ASSERT(val < b_, "unrank walked off the suite");
            // Sequences with position j equal to val: the remaining
            // slots draw from [val, B).
            const std::uint64_t block =
                multisetCount(b_ - val, remaining);
            if (index < block) {
                v[j] = val;
                min_val = val;
                break;
            }
            index -= block;
        }
    }
    return Workload(std::move(v));
}

std::uint64_t
WorkloadPopulation::rank(const Workload &w) const
{
    if (w.size() != k_)
        WSEL_FATAL("workload has " << w.size() << " threads, expected "
                                   << k_);
    std::uint64_t index = 0;
    std::uint32_t min_val = 0;
    for (std::uint32_t j = 0; j < k_; ++j) {
        const std::uint32_t val = w[j];
        if (val >= b_ || val < min_val)
            WSEL_FATAL("workload " << w.key()
                                   << " outside population domain");
        const std::uint32_t remaining = k_ - j - 1;
        for (std::uint32_t x = min_val; x < val; ++x)
            index += multisetCount(b_ - x, remaining);
        min_val = val;
    }
    return index;
}

Workload
WorkloadPopulation::sampleUniform(Rng &rng) const
{
    return unrank(rng.nextInt(size_));
}

std::vector<Workload>
WorkloadPopulation::enumerateAll(std::uint64_t limit) const
{
    if (size_ > limit)
        WSEL_FATAL("population of " << size_
                                    << " exceeds enumeration limit "
                                    << limit);
    std::vector<Workload> out;
    out.reserve(size_);
    std::vector<std::uint32_t> cur(k_, 0);
    while (true) {
        out.push_back(Workload(cur));
        // Next nondecreasing sequence.
        std::int64_t j = static_cast<std::int64_t>(k_) - 1;
        while (j >= 0 && cur[j] == b_ - 1)
            --j;
        if (j < 0)
            break;
        const std::uint32_t v = cur[j] + 1;
        for (std::size_t i = static_cast<std::size_t>(j); i < k_; ++i)
            cur[i] = v;
    }
    WSEL_ASSERT(out.size() == size_, "enumeration miscounted");
    return out;
}

std::uint64_t
WorkloadPopulation::occurrencesPerBenchmark() const
{
    return size_ * k_ / b_;
}

} // namespace wsel
