/**
 * @file
 * Ranked-set sampling and repeated subsampling (docs/SAMPLING.md),
 * the Ekman-style adaptive methods the ROADMAP names: rank
 * candidate workloads with a *cheap* approximate model, spend the
 * detailed-simulation budget on rank-selected workloads, and
 * re-draw subsamples from cells already simulated to tighten the
 * confidence estimate without new simulation.
 *
 * The ranked-set draw of one workload inspects m random candidates
 * (the "set"), orders them by the approximate d(w), and keeps one
 * order statistic; consecutive draws cycle through the m order
 * statistics, so a full cycle covers every rank stratum once.  The
 * sample mean stays unbiased for the population mean while its
 * variance drops by the between-order-statistic spread — the same
 * reason workload stratification beats random sampling in fig. 6,
 * but requiring only *relative* cheap-model accuracy, never strata
 * materialization.
 */

#ifndef WSEL_CORE_ADAPTIVE_ADAPTIVE_HH
#define WSEL_CORE_ADAPTIVE_ADAPTIVE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/metrics/throughput.hh"
#include "core/sampling/sampling.hh"

namespace wsel
{

/**
 * Cheap per-workload d(w) proxy from per-benchmark IPCs: the
 * approximate model of the ranked-set pre-pass.  Instead of
 * simulating the B-over-K workload cross-product, the pre-pass
 * simulates each benchmark once per policy (homogeneous K-copy
 * runs, B x 2 cells) and scores any workload by composing those
 * per-benchmark IPCs through the metric — O(K) per score, no
 * workload materialization (the caller walks a WorkloadCursor and
 * passes its benchmark span).
 */
class ApproxRanker
{
  public:
    /**
     * @param m Metric the campaign compares under.
     * @param ipc_x Per-benchmark IPC under policy X.
     * @param ipc_y Per-benchmark IPC under policy Y.
     * @param ref_ipc Per-benchmark single-thread reference IPC
     *        (speedup metrics; pass 1.0s for IPCT).
     */
    ApproxRanker(ThroughputMetric m, std::vector<double> ipc_x,
                 std::vector<double> ipc_y,
                 std::vector<double> ref_ipc);

    /**
     * Approximate d(w) of the workload whose sorted benchmark
     * multiset is @p benches.  Not thread-safe (scratch reuse).
     */
    double score(std::span<const std::uint32_t> benches) const;

    std::size_t numBenchmarks() const { return ipcX_.size(); }

  private:
    ThroughputMetric metric_;
    std::vector<double> ipcX_;
    std::vector<double> ipcY_;
    std::vector<double> refIpc_;
    mutable std::vector<double> sx_, sy_, sr_; ///< score scratch
};

/** Tunables of the ranked-set draw. */
struct RankedSetConfig
{
    /**
     * Candidates ranked per draw (the paper literature's m).
     * Larger sets stratify harder but lean more on the cheap
     * model's ordering; 4-6 is the classical sweet spot.
     */
    std::size_t setSize = 5;
};

/**
 * Ranked-set sampler over a population list: Sampler-compatible so
 * fig. 6 compares it head-to-head with the paper's four methods.
 *
 * @param d Approximate per-workload difference (the cheap-model
 *        ranking key), aligned with the population list.
 */
std::unique_ptr<Sampler> makeRankedSetSampler(
    std::span<const double> d,
    const RankedSetConfig &cfg = RankedSetConfig{});

/**
 * Repeated-subsampling estimate over already-simulated cells: how
 * the controller squeezes extra certainty out of cells it has
 * already paid for.
 */
struct SubsampleEstimate
{
    /** Fraction of redraws on which the subsample mean d > 0. */
    double confidence = 0.5;

    /** Mean over redraws of the subsample mean difference. */
    double meanD = 0.0;

    /** Stddev over redraws of the subsample mean difference. */
    double stddevOfMeans = 0.0;

    std::size_t subsampleSize = 0;
    std::size_t redraws = 0;
};

/**
 * Re-draw @p redraws subsamples of @p subsample workloads (without
 * replacement per redraw) from the simulated d(w) values and
 * measure how often Y leads and how spread the subsample means
 * are.  No new simulation: the estimate prices what a *smaller*
 * detailed campaign would have concluded, and its dispersion
 * cross-checks the analytic eq. 5 stop (docs/SAMPLING.md).
 */
SubsampleEstimate repeatedSubsample(std::span<const double> d,
                                    std::size_t subsample,
                                    std::size_t redraws, Rng &rng);

} // namespace wsel

#endif // WSEL_CORE_ADAPTIVE_ADAPTIVE_HH
