/**
 * @file
 * Live sequential stopping for campaign-driving (docs/SAMPLING.md):
 * instead of fixing the sample size W up front (eq. 8) and asking
 * "how confident are we after W workloads?", the controller watches
 * the streamed d(w) statistics batch by batch and answers "can we
 * stop *now*?" — the Pac-Sim-style online decision the ROADMAP
 * names.
 *
 * After each batch the controller evaluates eq. 5 on the observed
 * sample: with cv estimated from the n workloads simulated so far,
 *
 *     Pr(D >= 0) = 1/2 * [1 + erf((1/cv) * sqrt(n/2))]
 *
 * and stops once the confidence in the *leading* design
 * (max(conf, 1 - conf)) crosses the target, or a workload budget /
 * the population itself is exhausted.  The decision is a pure
 * function of the fed batch statistics, which is what makes an
 * interrupted-and-resumed adaptive campaign replay to the identical
 * stopping point (tests/test_adaptive.cc).
 *
 * The deterministic batch *schedule* lives here too: position i of
 * the sequential draw maps to a population rank through an FNV-1a
 * hash of (fingerprint, seed, i), so the schedule needs no stored
 * permutation, any suffix can be regenerated from the campaign
 * identity alone, and per-cell seeds stay keyed by absolute rank
 * exactly as in fixed-size population campaigns.
 */

#ifndef WSEL_CORE_ADAPTIVE_CONTROLLER_HH
#define WSEL_CORE_ADAPTIVE_CONTROLLER_HH

#include <cstdint>
#include <string>

#include "stats/summary.hh"

namespace wsel
{

/** Why a sequential campaign stopped (or has not). */
enum class StopReason : std::uint8_t
{
    None = 0,            ///< keep simulating
    TargetReached,       ///< confidence crossed the target
    BudgetExhausted,     ///< workload budget spent
    PopulationExhausted, ///< observed as many draws as workloads
    WallClock,           ///< wall-clock budget spent (non-replayable)
};

const char *toString(StopReason r);

/** Tunables of the sequential stopping rule. */
struct SequentialConfig
{
    /**
     * Stop once the confidence in the leading design reaches this.
     * The paper's fig. 1 saturation point |x| = 2 corresponds to
     * erf(sqrt(2)) ~ 0.977.
     */
    double targetConfidence = 0.977;

    /**
     * Never decide before this many workloads: a two-workload cv
     * estimate is noise, and an early lucky batch must not stop the
     * campaign (the sequential-testing peeking hazard).
     */
    std::uint64_t minWorkloads = 32;

    /**
     * Workload budget; 0 means bounded only by the population size
     * passed to the controller.
     */
    std::uint64_t maxWorkloads = 0;
};

/** The controller's verdict after a batch. */
struct SequentialDecision
{
    StopReason reason = StopReason::None;
    bool yWins = false;      ///< direction of the current leader
    double confidence = 0.5; ///< eq. 5 confidence in the leader
    double cv = 0.0;         ///< signed cv of observed d(w)
    std::uint64_t workloads = 0; ///< observed so far

    bool stop() const { return reason != StopReason::None; }
};

/**
 * Streamed eq. 5 stopping rule.  Feed one RunningStats per batch
 * (merged in batch order); read the decision after each feed.
 * Observing more batches after a stop is allowed and keeps the
 * first stop (replay of a finished artifact is idempotent).
 */
class SequentialController
{
  public:
    /**
     * @param cfg The stopping rule.
     * @param population_size Draw positions available; sampling is
     *        with replacement, so this bounds the *schedule*, not
     *        distinct workloads.
     */
    SequentialController(const SequentialConfig &cfg,
                         std::uint64_t population_size);

    /**
     * Merge @p batch into the observed statistics and re-evaluate
     * the stopping rule.  Returns the (possibly already stopped)
     * decision.
     */
    const SequentialDecision &observeBatch(const RunningStats &batch);

    /**
     * Record that the wall-clock budget expired; overrides a
     * continue decision but never an earlier stop.  Kept separate
     * from observeBatch so replay-from-artifact stays deterministic
     * (docs/SAMPLING.md).
     */
    const SequentialDecision &observeWallClockExpired();

    const SequentialDecision &decision() const { return decision_; }
    const RunningStats &observed() const { return observed_; }
    std::uint64_t batches() const { return batches_; }

    /** Effective workload cap (budget or population). */
    std::uint64_t budgetWorkloads() const;

  private:
    void evaluate();

    SequentialConfig cfg_;
    std::uint64_t populationSize_;
    RunningStats observed_;
    SequentialDecision decision_;
    std::uint64_t batches_ = 0;
};

/**
 * Deterministic sequential schedule: the population rank simulated
 * at draw position @p position.  Uniform over [0, population) with
 * replacement, keyed by campaign identity — no permutation is
 * stored, so any run (fresh, resumed, distributed) regenerates the
 * identical schedule.
 */
std::uint64_t adaptiveScheduleRank(std::uint64_t fingerprint,
                                   std::uint64_t seed,
                                   std::uint64_t position,
                                   std::uint64_t population);

/**
 * Candidate @p slot of the ranked-set draw at @p position: the
 * ranked-set schedule inspects setSize such candidates per
 * position, ranks them with the cheap model, and keeps the
 * (position mod setSize)-th order statistic.
 */
std::uint64_t adaptiveCandidateRank(std::uint64_t fingerprint,
                                    std::uint64_t seed,
                                    std::uint64_t position,
                                    std::uint64_t slot,
                                    std::uint64_t population);

} // namespace wsel

#endif // WSEL_CORE_ADAPTIVE_CONTROLLER_HH
