#include "core/adaptive/controller.hh"

#include <algorithm>
#include <cmath>

#include "core/confidence/confidence.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel
{

const char *
toString(StopReason r)
{
    switch (r) {
    case StopReason::None:
        return "none";
    case StopReason::TargetReached:
        return "target-reached";
    case StopReason::BudgetExhausted:
        return "budget-exhausted";
    case StopReason::PopulationExhausted:
        return "population-exhausted";
    case StopReason::WallClock:
        return "wall-clock";
    }
    return "unknown";
}

SequentialController::SequentialController(
    const SequentialConfig &cfg, std::uint64_t population_size)
    : cfg_(cfg), populationSize_(population_size)
{
    if (population_size == 0)
        WSEL_FATAL("sequential controller needs a population");
    if (cfg_.targetConfidence <= 0.5 || cfg_.targetConfidence >= 1.0)
        WSEL_FATAL("target confidence " << cfg_.targetConfidence
                   << " must lie in (0.5, 1)");
    if (cfg_.minWorkloads < 2)
        WSEL_FATAL("sequential stopping needs minWorkloads >= 2 "
                   "(a variance estimate)");
}

std::uint64_t
SequentialController::budgetWorkloads() const
{
    return cfg_.maxWorkloads == 0
               ? populationSize_
               : std::min(cfg_.maxWorkloads, populationSize_);
}

void
SequentialController::evaluate()
{
    const std::uint64_t n = observed_.count();
    decision_.workloads = n;
    decision_.cv = observed_.coefficientOfVariation();
    // Signed eq. 5: Pr(D >= 0).  > 0.5 means Y leads, < 0.5 means
    // X leads; the confidence in the *leader* is the larger tail.
    const double pr_y =
        modelConfidence(decision_.cv, static_cast<std::size_t>(n));
    decision_.yWins = pr_y >= 0.5;
    decision_.confidence = std::max(pr_y, 1.0 - pr_y);

    if (n >= cfg_.minWorkloads &&
        decision_.confidence >= cfg_.targetConfidence) {
        decision_.reason = StopReason::TargetReached;
        return;
    }
    if (n >= budgetWorkloads()) {
        decision_.reason = cfg_.maxWorkloads != 0 &&
                                   n >= cfg_.maxWorkloads
                               ? StopReason::BudgetExhausted
                               : StopReason::PopulationExhausted;
    }
}

const SequentialDecision &
SequentialController::observeBatch(const RunningStats &batch)
{
    ++batches_;
    observed_.merge(batch);
    if (!decision_.stop())
        evaluate();
    return decision_;
}

const SequentialDecision &
SequentialController::observeWallClockExpired()
{
    if (!decision_.stop()) {
        decision_.reason = StopReason::WallClock;
        decision_.workloads = observed_.count();
    }
    return decision_;
}

namespace
{

std::uint64_t
scheduleHash(std::uint64_t fingerprint, std::uint64_t seed,
             std::uint64_t position, std::uint64_t slot)
{
    persist::Fnv1a h;
    h.update("wsel.adaptive.schedule");
    h.updateU64(fingerprint);
    h.updateU64(seed);
    h.updateU64(position);
    h.updateU64(slot);
    return h.digest();
}

} // namespace

std::uint64_t
adaptiveScheduleRank(std::uint64_t fingerprint, std::uint64_t seed,
                     std::uint64_t position,
                     std::uint64_t population)
{
    WSEL_ASSERT(population > 0, "empty population in schedule");
    return scheduleHash(fingerprint, seed, position, 0) % population;
}

std::uint64_t
adaptiveCandidateRank(std::uint64_t fingerprint, std::uint64_t seed,
                      std::uint64_t position, std::uint64_t slot,
                      std::uint64_t population)
{
    WSEL_ASSERT(population > 0, "empty population in schedule");
    return scheduleHash(fingerprint, seed, position, slot + 1) %
           population;
}

} // namespace wsel
