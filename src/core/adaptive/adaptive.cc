#include "core/adaptive/adaptive.hh"

#include <algorithm>
#include <numeric>

#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

ApproxRanker::ApproxRanker(ThroughputMetric m,
                           std::vector<double> ipc_x,
                           std::vector<double> ipc_y,
                           std::vector<double> ref_ipc)
    : metric_(m), ipcX_(std::move(ipc_x)), ipcY_(std::move(ipc_y)),
      refIpc_(std::move(ref_ipc))
{
    if (ipcX_.empty() || ipcX_.size() != ipcY_.size() ||
        ipcX_.size() != refIpc_.size())
        WSEL_FATAL("approx ranker needs equal-length per-benchmark "
                   "IPC vectors (got " << ipcX_.size() << "/"
                   << ipcY_.size() << "/" << refIpc_.size() << ")");
}

double
ApproxRanker::score(std::span<const std::uint32_t> benches) const
{
    sx_.clear();
    sy_.clear();
    sr_.clear();
    for (std::uint32_t b : benches) {
        WSEL_ASSERT(b < ipcX_.size(),
                    "benchmark index beyond the pre-pass table");
        sx_.push_back(ipcX_[b]);
        sy_.push_back(ipcY_[b]);
        sr_.push_back(refIpc_[b]);
    }
    const double tx = perWorkloadThroughput(metric_, sx_, sr_);
    const double ty = perWorkloadThroughput(metric_, sy_, sr_);
    return perWorkloadDifference(metric_, tx, ty);
}

namespace
{

class RankedSetSampler : public Sampler
{
  public:
    RankedSetSampler(std::span<const double> d,
                     const RankedSetConfig &cfg)
        : d_(d.begin(), d.end()), setSize_(cfg.setSize)
    {
        if (d_.empty())
            WSEL_FATAL("ranked-set sampling needs d(w) values");
        if (setSize_ < 2)
            WSEL_FATAL("ranked-set size must be at least 2");
    }

    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        Sample s;
        drawInto(s, size, rng);
        return s;
    }

    void
    drawInto(Sample &out, std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        out.strata.resize(1);
        out.strata[0].weight = 1.0;
        auto &idx = out.strata[0].indices;
        idx.clear();
        idx.reserve(size);
        std::vector<std::size_t> set(setSize_);
        for (std::size_t i = 0; i < size; ++i) {
            // One set of m uniform candidates, ranked by the cheap
            // d(w); draw i keeps the (i mod m)-th order statistic,
            // so a full cycle visits every rank once.
            for (std::size_t j = 0; j < setSize_; ++j)
                set[j] = rng.nextInt(d_.size());
            // Ties broken by population index so the order is
            // total and the draw deterministic under one seed.
            std::sort(set.begin(), set.end(),
                      [&](std::size_t a, std::size_t b) {
                          return d_[a] != d_[b] ? d_[a] < d_[b]
                                                : a < b;
                      });
            idx.push_back(set[i % setSize_]);
        }
    }

    std::string name() const override { return "ranked-set"; }

  private:
    std::vector<double> d_;
    std::size_t setSize_;
};

} // namespace

std::unique_ptr<Sampler>
makeRankedSetSampler(std::span<const double> d,
                     const RankedSetConfig &cfg)
{
    return std::make_unique<RankedSetSampler>(d, cfg);
}

SubsampleEstimate
repeatedSubsample(std::span<const double> d, std::size_t subsample,
                  std::size_t redraws, Rng &rng)
{
    if (d.empty())
        WSEL_FATAL("repeated subsampling needs simulated d(w)");
    if (redraws == 0)
        WSEL_FATAL("need at least one redraw");
    const std::size_t n = d.size();
    const std::size_t w = std::min(std::max<std::size_t>(
                                       subsample, 1),
                                   n);
    SubsampleEstimate est;
    est.subsampleSize = w;
    est.redraws = redraws;
    RunningStats means;
    std::size_t wins = 0;
    for (std::size_t r = 0; r < redraws; ++r) {
        const auto picks = rng.sampleWithoutReplacement(n, w);
        double sum = 0.0;
        for (std::size_t p : picks)
            sum += d[p];
        const double mean = sum / static_cast<double>(w);
        means.add(mean);
        if (mean > 0.0)
            ++wins;
    }
    est.confidence =
        static_cast<double>(wins) / static_cast<double>(redraws);
    est.meanD = means.mean();
    est.stddevOfMeans = means.stddevPopulation();
    return est;
}

} // namespace wsel
