/**
 * @file
 * Automatic classification — the paper's §II-B alternatives to
 * manual benchmark classes:
 *
 *  - benchmark classification by cluster analysis on feature
 *    vectors (Vandierendonck & Seznec used cluster analysis to
 *    define 4 classes among SPEC CPU2000);
 *  - workload clustering (Van Biesbrouck, Eeckhout & Calder apply
 *    cluster analysis directly on workloads), exposed here as a
 *    fifth sampling method: cluster workloads on feature vectors
 *    and treat the clusters as strata.
 *
 * This module is pure math over feature matrices; feature
 * *extraction* by simulation lives in sim/characterize.hh.
 */

#ifndef WSEL_CORE_CLASSIFY_CLASSIFY_HH
#define WSEL_CORE_CLASSIFY_CLASSIFY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sampling/sampling.hh"
#include "stats/rng.hh"

namespace wsel
{

/**
 * Z-normalize the columns of a feature matrix (rows = items,
 * columns = features). Constant columns become all-zero. Fatal on
 * ragged input.
 */
std::vector<std::vector<double>> normalizeFeatures(
    const std::vector<std::vector<double>> &features);

/**
 * Cluster items into @p k classes on z-normalized features, with
 * multiple k-means restarts, and relabel classes in increasing
 * order of the mean of column @p order_by (so class 0 is e.g. the
 * lowest-MPKI class, like Table IV's Low).
 *
 * @return class index per item, in [0, k).
 */
std::vector<std::uint32_t> classifyByFeatures(
    const std::vector<std::vector<double>> &features, std::uint32_t k,
    std::size_t order_by, Rng &rng, std::size_t restarts = 10);

/**
 * Workload-cluster sampling (the Van Biesbrouck-style §II-B method):
 * cluster workloads on per-workload feature vectors and use the
 * clusters as strata for the eq. (9) estimator.
 *
 * @param workload_features One feature vector per population-list
 *        position (e.g. per-class benchmark counts, or approximate
 *        throughputs under the baseline).
 * @param clusters Number of clusters/strata.
 * @param rng Clustering seed.
 */
std::unique_ptr<Sampler> makeWorkloadClusterSampler(
    const std::vector<std::vector<double>> &workload_features,
    std::uint32_t clusters, Rng &rng);

/**
 * Convenience feature builder: the class-count signature of each
 * workload (how many of its benchmarks fall in each class), a
 * microarchitecture-independent workload descriptor.
 */
std::vector<std::vector<double>> classCountFeatures(
    const std::vector<Workload> &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes);

/** WorkloadSet variant (streams rank-based sets; no Workloads). */
std::vector<std::vector<double>> classCountFeatures(
    const WorkloadSet &workloads,
    const std::vector<std::uint32_t> &benchmark_class,
    std::uint32_t num_classes);

} // namespace wsel

#endif // WSEL_CORE_CLASSIFY_CLASSIFY_HH
