#include "core/classify/classify.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/kmeans.hh"
#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

std::vector<std::vector<double>>
normalizeFeatures(const std::vector<std::vector<double>> &features)
{
    if (features.empty())
        WSEL_FATAL("no feature rows to normalize");
    const std::size_t dim = features.front().size();
    if (dim == 0)
        WSEL_FATAL("feature rows are empty");
    for (const auto &row : features) {
        if (row.size() != dim)
            WSEL_FATAL("ragged feature matrix: row of " << row.size()
                       << " columns, expected " << dim);
    }
    std::vector<std::vector<double>> out = features;
    for (std::size_t c = 0; c < dim; ++c) {
        RunningStats st;
        for (const auto &row : features)
            st.add(row[c]);
        const double mu = st.mean();
        const double sigma = st.stddevPopulation();
        for (auto &row : out) {
            row[c] = sigma > 0.0 ? (row[c] - mu) / sigma : 0.0;
        }
    }
    return out;
}

std::vector<std::uint32_t>
classifyByFeatures(const std::vector<std::vector<double>> &features,
                   std::uint32_t k, std::size_t order_by, Rng &rng,
                   std::size_t restarts)
{
    if (order_by >= features.front().size())
        WSEL_FATAL("order_by column " << order_by
                                      << " out of range");
    const auto norm = normalizeFeatures(features);

    KMeansResult best;
    double best_inertia = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < std::max<std::size_t>(restarts, 1);
         ++r) {
        Rng child = rng.split();
        KMeansResult res = kmeans(norm, k, child);
        if (res.inertia < best_inertia) {
            best_inertia = res.inertia;
            best = std::move(res);
        }
    }

    // Relabel clusters by ascending mean of the ordering column
    // (in the original, un-normalized units).
    std::vector<double> key(k, 0.0);
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < features.size(); ++i) {
        key[best.assignment[i]] += features[i][order_by];
        ++count[best.assignment[i]];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
        key[c] = count[c]
                     ? key[c] / static_cast<double>(count[c])
                     : std::numeric_limits<double>::infinity();
    }
    std::vector<std::uint32_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return key[a] < key[b];
                     });
    std::vector<std::uint32_t> relabel(k);
    for (std::uint32_t rank = 0; rank < k; ++rank)
        relabel[order[rank]] = rank;

    std::vector<std::uint32_t> out(features.size());
    for (std::size_t i = 0; i < features.size(); ++i)
        out[i] = relabel[best.assignment[i]];
    return out;
}

namespace
{

/** Stratified sampler whose strata come from workload clusters. */
class WorkloadClusterSampler : public Sampler
{
  public:
    WorkloadClusterSampler(
        const std::vector<std::vector<double>> &features,
        std::uint32_t clusters, Rng &rng)
    {
        if (clusters == 0 || clusters > features.size())
            WSEL_FATAL("cannot build " << clusters
                       << " clusters from " << features.size()
                       << " workloads");
        const auto norm = normalizeFeatures(features);
        KMeansResult best;
        double best_inertia =
            std::numeric_limits<double>::infinity();
        for (int r = 0; r < 10; ++r) {
            Rng child = rng.split();
            KMeansResult res = kmeans(norm, clusters, child);
            if (res.inertia < best_inertia) {
                best_inertia = res.inertia;
                best = std::move(res);
            }
        }
        groups_.resize(clusters);
        for (std::size_t i = 0; i < features.size(); ++i)
            groups_[best.assignment[i]].push_back(i);
        // Drop clusters the re-seeding left empty.
        std::erase_if(groups_,
                      [](const auto &g) { return g.empty(); });
    }

    Sample
    draw(std::size_t size, Rng &rng) const override
    {
        if (size == 0)
            WSEL_FATAL("cannot draw an empty sample");
        std::size_t population = 0;
        for (const auto &g : groups_)
            population += g.size();
        if (size > population)
            WSEL_FATAL("sample of " << size
                       << " exceeds clustered population of "
                       << population);

        // Proportional largest-remainder allocation, capped by
        // cluster sizes.
        const std::size_t n = groups_.size();
        std::vector<std::size_t> alloc(n, 0);
        std::vector<double> frac(n, 0.0);
        std::size_t assigned = 0;
        for (std::size_t h = 0; h < n; ++h) {
            const double quota =
                static_cast<double>(size) *
                static_cast<double>(groups_[h].size()) /
                static_cast<double>(population);
            alloc[h] = std::min(static_cast<std::size_t>(quota),
                                groups_[h].size());
            frac[h] = quota - std::floor(quota);
            assigned += alloc[h];
        }
        // Random tie-break (see core/sampling): a deterministic
        // order would systematically favor low-indexed clusters.
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return frac[a] > frac[b];
                         });
        while (assigned < size) {
            bool progressed = false;
            for (std::size_t h : order) {
                if (assigned == size)
                    break;
                if (alloc[h] < groups_[h].size()) {
                    ++alloc[h];
                    ++assigned;
                    progressed = true;
                }
            }
            WSEL_ASSERT(progressed,
                        "cluster allocation failed to converge");
        }

        Sample s;
        for (std::size_t h = 0; h < n; ++h) {
            if (alloc[h] == 0)
                continue;
            Sample::Stratum st;
            st.weight = static_cast<double>(groups_[h].size());
            const auto picks = rng.sampleWithoutReplacement(
                groups_[h].size(), alloc[h]);
            for (std::size_t p : picks)
                st.indices.push_back(groups_[h][p]);
            s.strata.push_back(std::move(st));
        }
        return s;
    }

    std::string name() const override { return "workload-cluster"; }

  private:
    std::vector<std::vector<std::size_t>> groups_;
};

} // namespace

std::unique_ptr<Sampler>
makeWorkloadClusterSampler(
    const std::vector<std::vector<double>> &workload_features,
    std::uint32_t clusters, Rng &rng)
{
    return std::make_unique<WorkloadClusterSampler>(
        workload_features, clusters, rng);
}

std::vector<std::vector<double>>
classCountFeatures(const std::vector<Workload> &workloads,
                   const std::vector<std::uint32_t> &benchmark_class,
                   std::uint32_t num_classes)
{
    if (num_classes == 0)
        WSEL_FATAL("need at least one class");
    std::vector<std::vector<double>> out;
    out.reserve(workloads.size());
    for (const Workload &w : workloads) {
        std::vector<double> sig(num_classes, 0.0);
        for (std::uint32_t b : w.benchmarks()) {
            if (b >= benchmark_class.size() ||
                benchmark_class[b] >= num_classes)
                WSEL_FATAL("benchmark " << b
                           << " has no valid class");
            sig[benchmark_class[b]] += 1.0;
        }
        out.push_back(std::move(sig));
    }
    return out;
}

std::vector<std::vector<double>>
classCountFeatures(const WorkloadSet &workloads,
                   const std::vector<std::uint32_t> &benchmark_class,
                   std::uint32_t num_classes)
{
    if (num_classes == 0)
        WSEL_FATAL("need at least one class");
    std::vector<std::vector<double>> out;
    out.reserve(workloads.size());
    workloads.forEach(
        [&](std::size_t, std::span<const std::uint32_t> benches) {
            std::vector<double> sig(num_classes, 0.0);
            for (std::uint32_t b : benches) {
                if (b >= benchmark_class.size() ||
                    benchmark_class[b] >= num_classes)
                    WSEL_FATAL("benchmark "
                               << b << " has no valid class");
                sig[benchmark_class[b]] += 1.0;
            }
            out.push_back(std::move(sig));
        });
    return out;
}

} // namespace wsel
