/**
 * @file
 * Umbrella header: pulls in the whole public wsel API.
 *
 * Fine-grained includes are preferred inside the library itself;
 * this header is a convenience for applications and examples.
 */

#ifndef WSEL_WSEL_HH
#define WSEL_WSEL_HH

// Statistics substrate.
#include "stats/combinatorics.hh"
#include "stats/histogram.hh"
#include "stats/kmeans.hh"
#include "stats/logging.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

// Synthetic benchmarks and traces.
#include "trace/benchmark_profile.hh"
#include "trace/microop.hh"
#include "trace/trace_generator.hh"

// Cache hierarchy building blocks.
#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "cache/replacement.hh"
#include "cache/tlb.hh"

// Shared uncore.
#include "mem/uncore.hh"
#include "mem/uncore_config.hh"

// Detailed core model.
#include "cpu/core_config.hh"
#include "cpu/core_observer.hh"
#include "cpu/detailed_core.hh"
#include "cpu/tage.hh"

// BADCO behavioural model.
#include "badco/badco_machine.hh"
#include "badco/badco_model.hh"

// Simulation harnesses.
#include "sim/campaign.hh"
#include "sim/characterize.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"

// The paper's contribution.
#include "core/classify/classify.hh"
#include "core/confidence/confidence.hh"
#include "core/metrics/throughput.hh"
#include "core/report/report.hh"
#include "core/sampling/sampling.hh"
#include "core/workload/workload.hh"

#endif // WSEL_WSEL_HH
