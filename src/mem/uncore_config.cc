#include "mem/uncore_config.hh"

#include <sstream>

#include "stats/logging.hh"

namespace wsel
{

UncoreConfig
UncoreConfig::forCores(std::uint32_t cores, PolicyKind policy)
{
    UncoreConfig cfg;
    cfg.policy = policy;
    switch (cores) {
      case 1:
      case 2:
        cfg.llc.sizeBytes = 64 * 1024;
        cfg.llcHitLatency = 5;
        break;
      case 4:
        cfg.llc.sizeBytes = 128 * 1024;
        cfg.llcHitLatency = 6;
        break;
      case 8:
        cfg.llc.sizeBytes = 256 * 1024;
        cfg.llcHitLatency = 7;
        break;
      default:
        WSEL_FATAL("no Table II uncore configuration for " << cores
                                                           << " cores");
    }
    return cfg;
}

std::string
UncoreConfig::describe() const
{
    std::ostringstream os;
    os << "LLC " << llc.sizeBytes / 1024 << "kB/" << llc.ways
       << "-way/" << llc.lineBytes << "B, " << llcHitLatency
       << "-cycle hit, " << toString(policy) << ", " << mshrs
       << " MSHRs, " << writeBufferEntries << "-entry WB, FSB "
       << fsbCyclesPerTransfer << " cyc/line, DRAM " << dramLatency
       << " cyc";
    return os.str();
}

} // namespace wsel
