#include "mem/uncore.hh"

#include <algorithm>
#include <bit>

#include "stats/logging.hh"

namespace wsel
{

Uncore::Uncore(const UncoreConfig &cfg, std::uint32_t num_cores,
               std::uint64_t seed)
    : cfg_(cfg), numCores_(num_cores),
      llc_(cfg.llc, cfg.policy, seed, "llc"), coreStats_(num_cores)
{
    if (num_cores == 0)
        WSEL_FATAL("uncore needs at least one core");
    if (cfg.mshrs == 0 || cfg.writeBufferEntries == 0)
        WSEL_FATAL("uncore needs MSHRs and write-buffer entries");
    mshrs_.reserve(cfg.mshrs);
    writeBuffer_.reserve(cfg.writeBufferEntries);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        std::vector<std::unique_ptr<Prefetcher>> parts;
        if (cfg.ipStridePrefetch)
            parts.push_back(
                makeIpStridePrefetcher(64, cfg.prefetchDegree));
        if (cfg.streamPrefetch)
            parts.push_back(
                makeStreamPrefetcher(8, cfg.prefetchDegree));
        if (parts.empty())
            prefetchers_.push_back(makeNullPrefetcher());
        else
            prefetchers_.push_back(
                makeCompositePrefetcher(std::move(parts)));
    }
}

std::uint32_t
Uncore::hitLatency() const
{
    return cfg_.llcHitLatency;
}

const UncoreCoreStats &
Uncore::coreStats(std::uint32_t core_id) const
{
    WSEL_ASSERT(core_id < numCores_, "core id out of range");
    return coreStats_[core_id];
}

std::uint64_t
Uncore::translate(std::uint32_t core_id, std::uint64_t vaddr)
{
    const std::uint64_t page_shift =
        std::countr_zero(static_cast<std::uint64_t>(cfg_.pageBytes));
    const std::uint64_t vpn = vaddr >> page_shift;
    // Key combines core and VPN: threads do not share pages.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(core_id) << 52) ^ vpn;
    auto it = pageTable_.find(key);
    std::uint64_t ppn;
    if (it == pageTable_.end()) {
        // First touch: allocate the next physical page (the paper's
        // BADCO "allocates a new physical page" on a page miss).
        ppn = nextPpn_++;
        pageTable_.emplace(key, ppn);
    } else {
        ppn = it->second;
    }
    return (ppn << page_shift) |
           (vaddr & (cfg_.pageBytes - 1));
}

std::uint64_t
Uncore::busTransfer(std::uint64_t earliest)
{
    const std::uint64_t start = std::max(earliest, fsbNextFree_);
    fsbNextFree_ = start + cfg_.fsbCyclesPerTransfer;
    fsbBusy_ += cfg_.fsbCyclesPerTransfer;
    return start;
}

void
Uncore::expireMshrs(std::uint64_t now)
{
    std::erase_if(mshrs_,
                  [now](const Mshr &m) { return m.completion <= now; });
}

std::uint64_t
Uncore::missPath(std::uint64_t start, std::uint64_t paddr,
                 bool is_write, bool is_prefetch)
{
    const std::uint64_t line = llc_.lineAddr(paddr);

    // MSHR merge: an outstanding miss to the same line completes
    // both requests at once.
    expireMshrs(start);
    for (const Mshr &m : mshrs_) {
        if (m.lineAddr == line)
            return m.completion;
    }

    // MSHR structural hazard: wait for the earliest completion.
    std::uint64_t t = start;
    if (mshrs_.size() >= cfg_.mshrs) {
        std::uint64_t earliest = UINT64_MAX;
        for (const Mshr &m : mshrs_)
            earliest = std::min(earliest, m.completion);
        t = std::max(t, earliest);
        expireMshrs(t);
    }

    // Fetch the line: FSB request + DRAM access + FSB transfer.
    const std::uint64_t bus_start = busTransfer(t);
    const std::uint64_t completion =
        bus_start + cfg_.dramLatency + cfg_.fsbCyclesPerTransfer;

    mshrs_.push_back(Mshr{line, completion});

    // Fill the LLC now (tag state is updated in request order).
    const Cache::Result fill =
        llc_.access(paddr, is_write, is_prefetch);
    WSEL_ASSERT(!fill.hit, "missPath called on an LLC hit");
    if (fill.evicted.valid && fill.evicted.dirty) {
        // The dirty victim leaves eagerly through the write buffer:
        // it may use the FSB as soon as a buffer slot and the bus
        // are free (it must not wait for the fill to return, or the
        // single bus timeline would block for a full DRAM round
        // trip per eviction).
        std::uint64_t wb_start = t;
        std::erase_if(writeBuffer_, [wb_start](std::uint64_t c) {
            return c <= wb_start;
        });
        if (writeBuffer_.size() >= cfg_.writeBufferEntries) {
            std::uint64_t earliest = UINT64_MAX;
            for (std::uint64_t c : writeBuffer_)
                earliest = std::min(earliest, c);
            wb_start = std::max(wb_start, earliest);
            std::erase_if(writeBuffer_,
                          [wb_start](std::uint64_t c) {
                              return c <= wb_start;
                          });
        }
        const std::uint64_t wb_done =
            busTransfer(wb_start) + cfg_.fsbCyclesPerTransfer;
        writeBuffer_.push_back(wb_done);
    }
    return completion;
}

std::uint64_t
Uncore::access(std::uint64_t cycle, std::uint32_t core_id,
               std::uint64_t vaddr, bool is_write, std::uint64_t pc,
               bool is_prefetch)
{
    WSEL_ASSERT(core_id < numCores_, "core id out of range");
    UncoreCoreStats &cs = coreStats_[core_id];
    if (!is_prefetch) {
        if (is_write)
            ++cs.writes;
        else
            ++cs.reads;
    }

    const std::uint64_t paddr = translate(core_id, vaddr);

    // One request occupies the LLC port per cycle.
    const std::uint64_t start = std::max(cycle, portNextFree_);
    portNextFree_ = start + 1;

    const bool hit = llc_.probe(paddr);

    std::uint64_t completion;
    if (hit) {
        const Cache::Result r =
            llc_.access(paddr, is_write, is_prefetch);
        WSEL_ASSERT(r.hit, "probe/access disagreement");
        completion = start + cfg_.llcHitLatency;
        // The tags fill at request time, so a "hit" may target a
        // line whose data is still in flight: wait for its MSHR.
        const std::uint64_t line = llc_.lineAddr(paddr);
        for (const Mshr &m : mshrs_) {
            if (m.lineAddr == line)
                completion = std::max(completion, m.completion);
        }
    } else {
        if (!is_prefetch)
            ++cs.demandMisses;
        completion = missPath(start + cfg_.llcHitLatency, paddr,
                              is_write, is_prefetch);
    }

    // Core prefetches train the LLC prefetchers like demand traffic;
    // their own proposals are not re-observed.
    if (!is_prefetch) {
        cs.totalDemandLatency += completion - cycle;
        maybePrefetch(start, core_id, pc, paddr, !hit);
    }
    return completion;
}

void
Uncore::maybePrefetch(std::uint64_t start, std::uint32_t core_id,
                      std::uint64_t pc, std::uint64_t paddr,
                      bool was_miss)
{
    std::vector<std::uint64_t> proposals;
    prefetchers_[core_id]->observe(pc, llc_.lineAddr(paddr), was_miss,
                                   proposals);
    for (std::uint64_t line : proposals) {
        const std::uint64_t byte_addr = line * cfg_.llc.lineBytes;
        if (llc_.probe(byte_addr))
            continue;
        missPath(start + cfg_.llcHitLatency, byte_addr, false, true);
    }
}

void
Uncore::writeback(std::uint64_t cycle, std::uint32_t core_id,
                  std::uint64_t vaddr)
{
    WSEL_ASSERT(core_id < numCores_, "core id out of range");
    ++coreStats_[core_id].writebacksIn;

    const std::uint64_t paddr = translate(core_id, vaddr);
    const std::uint64_t start = std::max(cycle, portNextFree_);
    portNextFree_ = start + 1;

    const Cache::Result r = llc_.writeback(paddr);
    if (!r.hit && r.evicted.valid && r.evicted.dirty) {
        const std::uint64_t wb_done =
            busTransfer(start) + cfg_.fsbCyclesPerTransfer;
        writeBuffer_.push_back(wb_done);
        if (writeBuffer_.size() > cfg_.writeBufferEntries)
            writeBuffer_.erase(writeBuffer_.begin());
    }
}

} // namespace wsel
