#include "mem/uncore.hh"

#include <algorithm>
#include <bit>

#include "cache/tagscan.hh"
#include "stats/logging.hh"

namespace wsel
{

Uncore::Uncore(const UncoreConfig &cfg, std::uint32_t num_cores,
               std::uint64_t seed)
    : cfg_(cfg), numCores_(num_cores),
      llc_(cfg.llc, cfg.policy, seed, "llc"), coreStats_(num_cores)
{
    if (num_cores == 0)
        WSEL_FATAL("uncore needs at least one core");
    if (cfg.mshrs == 0 || cfg.writeBufferEntries == 0)
        WSEL_FATAL("uncore needs MSHRs and write-buffer entries");
    pageShift_ =
        std::countr_zero(static_cast<std::uint64_t>(cfg.pageBytes));
    xlate_.resize(static_cast<std::size_t>(num_cores) *
                  kXlateEntries);
    mshrs_.reserve(cfg.mshrs);
    writeBuffer_.reserve(cfg.writeBufferEntries);
    // Head off growth churn from first-touch allocation bursts; the
    // slot count is unobservable in results.
    pageSlots_.resize(4096);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        if (cfg.ipStridePrefetch && cfg.streamPrefetch) {
            // The standard pairing gets the fused, statically
            // dispatched implementation (identical behaviour).
            prefetchers_.push_back(makeIpStrideStreamPrefetcher(
                64, 8, cfg.prefetchDegree));
            continue;
        }
        std::vector<std::unique_ptr<Prefetcher>> parts;
        if (cfg.ipStridePrefetch)
            parts.push_back(
                makeIpStridePrefetcher(64, cfg.prefetchDegree));
        if (cfg.streamPrefetch)
            parts.push_back(
                makeStreamPrefetcher(8, cfg.prefetchDegree));
        if (parts.empty())
            prefetchers_.push_back(makeNullPrefetcher());
        else
            prefetchers_.push_back(
                makeCompositePrefetcher(std::move(parts)));
    }
}

std::uint32_t
Uncore::hitLatency() const
{
    return cfg_.llcHitLatency;
}

const UncoreCoreStats &
Uncore::coreStats(std::uint32_t core_id) const
{
    WSEL_ASSERT(core_id < numCores_, "core id out of range");
    return coreStats_[core_id];
}

std::uint64_t
Uncore::translate(std::uint32_t core_id, std::uint64_t vaddr)
{
    const std::uint64_t vpn = vaddr >> pageShift_;
    // Key combines core and VPN: threads do not share pages.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(core_id) << 52) ^ vpn;
    XlateEntry &slot =
        xlate_[static_cast<std::size_t>(core_id) * kXlateEntries +
               (vpn & (kXlateEntries - 1))];
    std::uint64_t ppn;
    if (slot.key == key) {
        ppn = slot.ppn;
    } else {
        ppn = pageLookupOrAssign(key);
        slot.key = key;
        slot.ppn = ppn;
    }
    return (ppn << pageShift_) |
           (vaddr & (cfg_.pageBytes - 1));
}

std::uint64_t
Uncore::pageLookupOrAssign(std::uint64_t key)
{
    const std::size_t mask = pageSlots_.size() - 1;
    // Fibonacci hashing spreads the core/VPN key; linear probing
    // keeps collision runs on the same host cache lines.
    std::size_t idx =
        static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ull);
    for (;; ++idx) {
        PageSlot &s = pageSlots_[idx & mask];
        if (s.ppn == kEmptyPage) {
            // First touch: allocate the next physical page (the
            // paper's BADCO "allocates a new physical page" on a
            // page miss).
            const std::uint64_t ppn = nextPpn_++;
            s.key = key;
            s.ppn = ppn;
            if (++pageCount_ * 4 > pageSlots_.size() * 3)
                growPageTable();
            return ppn;
        }
        if (s.key == key)
            return s.ppn;
    }
}

void
Uncore::growPageTable()
{
    std::vector<PageSlot> old = std::move(pageSlots_);
    pageSlots_.assign(old.size() * 2, PageSlot{});
    const std::size_t mask = pageSlots_.size() - 1;
    for (const PageSlot &s : old) {
        if (s.ppn == kEmptyPage)
            continue;
        std::size_t idx = static_cast<std::size_t>(
            s.key * 0x9E3779B97F4A7C15ull);
        while (pageSlots_[idx & mask].ppn != kEmptyPage)
            ++idx;
        pageSlots_[idx & mask] = s;
    }
}

std::uint64_t
Uncore::busTransfer(std::uint64_t earliest)
{
    const std::uint64_t start = std::max(earliest, fsbNextFree_);
    fsbNextFree_ = start + cfg_.fsbCyclesPerTransfer;
    fsbBusy_ += cfg_.fsbCyclesPerTransfer;
    return start;
}

void
Uncore::expireMshrs(std::uint64_t now)
{
    if (mshrMin_ > now)
        return; // no entry can have completed: nothing to erase
    // Stable one-pass compaction (same surviving order as
    // erase_if) that recomputes the minimum as it goes.
    std::uint64_t min = UINT64_MAX;
    std::size_t n = 0;
    for (const Mshr &m : mshrs_) {
        if (m.completion > now) {
            mshrs_[n++] = m;
            min = std::min(min, m.completion);
        }
    }
    mshrs_.resize(n);
    mshrMin_ = min;
}

std::uint64_t
Uncore::missPath(std::uint64_t start, std::uint64_t paddr,
                 bool is_write, bool is_prefetch)
{
    const std::uint64_t line = llc_.lineAddr(paddr);

    // MSHR merge: an outstanding miss to the same line completes
    // both requests at once.
    expireMshrs(start);
    for (const Mshr &m : mshrs_) {
        if (m.lineAddr == line)
            return m.completion;
    }

    // MSHR structural hazard: wait for the earliest completion
    // (the cached minimum — the value the old full scan computed).
    std::uint64_t t = start;
    if (mshrs_.size() >= cfg_.mshrs) {
        t = std::max(t, mshrMin_);
        expireMshrs(t);
    }

    // Fetch the line: FSB request + DRAM access + FSB transfer.
    const std::uint64_t bus_start = busTransfer(t);
    const std::uint64_t completion =
        bus_start + cfg_.dramLatency + cfg_.fsbCyclesPerTransfer;

    mshrs_.push_back(Mshr{line, completion});
    mshrMin_ = std::min(mshrMin_, completion);

    // Fill the LLC now (tag state is updated in request order).
    // Every caller observed the miss with no intervening fill, so
    // the tag scan inside access() is skipped.
    const Cache::Result fill =
        llc_.missFill(paddr, is_write, is_prefetch);
    if (fill.evicted.valid && fill.evicted.dirty) {
        // The dirty victim leaves eagerly through the write buffer:
        // it may use the FSB as soon as a buffer slot and the bus
        // are free (it must not wait for the fill to return, or the
        // single bus timeline would block for a full DRAM round
        // trip per eviction).
        std::uint64_t wb_start = t;
        std::erase_if(writeBuffer_, [wb_start](std::uint64_t c) {
            return c <= wb_start;
        });
        if (writeBuffer_.size() >= cfg_.writeBufferEntries) {
            std::uint64_t earliest = UINT64_MAX;
            for (std::uint64_t c : writeBuffer_)
                earliest = std::min(earliest, c);
            wb_start = std::max(wb_start, earliest);
            std::erase_if(writeBuffer_,
                          [wb_start](std::uint64_t c) {
                              return c <= wb_start;
                          });
        }
        const std::uint64_t wb_done =
            busTransfer(wb_start) + cfg_.fsbCyclesPerTransfer;
        writeBuffer_.push_back(wb_done);
    }
    return completion;
}

Uncore::PendingAccess
Uncore::accessBegin(std::uint64_t cycle, std::uint32_t core_id,
                    std::uint64_t vaddr, bool is_write,
                    std::uint64_t pc, bool is_prefetch)
{
    WSEL_ASSERT(core_id < numCores_, "core id out of range");
    UncoreCoreStats &cs = coreStats_[core_id];
    if (!is_prefetch) {
        if (is_write)
            ++cs.writes;
        else
            ++cs.reads;
    }

    const std::uint64_t paddr = translate(core_id, vaddr);

    // One request occupies the LLC port per cycle.
    const std::uint64_t start = std::max(cycle, portNextFree_);
    portNextFree_ = start + 1;

    return PendingAccess{cycle, pc,       paddr,      start,
                         core_id, is_write, is_prefetch};
}

std::uint64_t
Uncore::accessFinish(const PendingAccess &pa, std::uint32_t way)
{
    // Hit-side effects from the already-performed scan; the miss
    // path defers its accounting to missFill() (an MSHR-merged
    // miss is never accounted, exactly as before).
    const bool hit = llc_.finishAccessAt(pa.paddr, way, pa.isWrite,
                                         pa.isPrefetch);

    std::uint64_t completion;
    if (hit) {
        completion = pa.start + cfg_.llcHitLatency;
        // The tags fill at request time, so a "hit" may target a
        // line whose data is still in flight: wait for its MSHR.
        const std::uint64_t line = llc_.lineAddr(pa.paddr);
        for (const Mshr &m : mshrs_) {
            if (m.lineAddr == line)
                completion = std::max(completion, m.completion);
        }
    } else {
        if (!pa.isPrefetch)
            ++coreStats_[pa.core].demandMisses;
        completion = missPath(pa.start + cfg_.llcHitLatency,
                              pa.paddr, pa.isWrite, pa.isPrefetch);
    }

    // Core prefetches train the LLC prefetchers like demand traffic;
    // their own proposals are not re-observed.
    if (!pa.isPrefetch) {
        coreStats_[pa.core].totalDemandLatency +=
            completion - pa.cycle;
        maybePrefetch(pa.start, pa.core, pa.pc, pa.paddr, !hit);
    }
    return completion;
}

std::uint64_t
Uncore::access(std::uint64_t cycle, std::uint32_t core_id,
               std::uint64_t vaddr, bool is_write, std::uint64_t pc,
               bool is_prefetch)
{
    // The begin / scan / finish composition IS the access path —
    // the wavefront engine interposes a gathered sweep between the
    // same halves, so the two can never diverge.
    const PendingAccess pa = accessBegin(cycle, core_id, vaddr,
                                         is_write, pc, is_prefetch);
    const tagscan::Probe p = llcProbe(pa);
    return accessFinish(pa, tagscan::find(p.tags, p.n, p.want));
}

void
Uncore::maybePrefetch(std::uint64_t start, std::uint32_t core_id,
                      std::uint64_t pc, std::uint64_t paddr,
                      bool was_miss)
{
    prefetchScratch_.clear();
    std::vector<std::uint64_t> &proposals = prefetchScratch_;
    prefetchers_[core_id]->observe(pc, llc_.lineAddr(paddr), was_miss,
                                   proposals);

    // A degree-N prefetcher emits its proposals at once, so their
    // presence probes can share one gathered sweep instead of N
    // dispatched scans. Correctness caveat: an earlier proposal's
    // missPath() fill can mutate a set a later proposal's probe
    // already scanned, so any proposal whose set a fill of this
    // sweep touched is re-probed scalar at its turn — conservative
    // (fills touch only their own set) and therefore identical to
    // the probe-then-fill-one-at-a-time order.
    constexpr std::size_t kMaxGather = 16;
    if (gatherPrefetchProbes_ && proposals.size() >= 2 &&
        proposals.size() <= kMaxGather) {
        tagscan::Probe probes[kMaxGather];
        std::uint32_t ways[kMaxGather];
        std::uint32_t sets[kMaxGather];
        const std::size_t n = proposals.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t byte_addr =
                proposals[i] * cfg_.llc.lineBytes;
            probes[i] = llc_.scanProbe(byte_addr);
            sets[i] = llc_.setOf(byte_addr);
        }
        tagscan::findMany(probes, n, ways);
        std::uint32_t filled_sets[kMaxGather];
        std::size_t filled = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t byte_addr =
                proposals[i] * cfg_.llc.lineBytes;
            bool stale = false;
            for (std::size_t j = 0; j < filled; ++j)
                stale = stale || filled_sets[j] == sets[i];
            const bool present = stale ? llc_.probe(byte_addr)
                                       : ways[i] < probes[i].n;
            if (present)
                continue;
            missPath(start + cfg_.llcHitLatency, byte_addr, false,
                     true);
            filled_sets[filled++] = sets[i];
        }
        return;
    }

    for (std::uint64_t line : proposals) {
        const std::uint64_t byte_addr = line * cfg_.llc.lineBytes;
        if (llc_.probe(byte_addr))
            continue;
        missPath(start + cfg_.llcHitLatency, byte_addr, false, true);
    }
}

void
Uncore::writeback(std::uint64_t cycle, std::uint32_t core_id,
                  std::uint64_t vaddr)
{
    WSEL_ASSERT(core_id < numCores_, "core id out of range");
    ++coreStats_[core_id].writebacksIn;

    const std::uint64_t paddr = translate(core_id, vaddr);
    const std::uint64_t start = std::max(cycle, portNextFree_);
    portNextFree_ = start + 1;

    const Cache::Result r = llc_.writeback(paddr);
    if (!r.hit && r.evicted.valid && r.evicted.dirty) {
        const std::uint64_t wb_done =
            busTransfer(start) + cfg_.fsbCyclesPerTransfer;
        writeBuffer_.push_back(wb_done);
        if (writeBuffer_.size() > cfg_.writeBufferEntries)
            writeBuffer_.erase(writeBuffer_.begin());
    }
}

} // namespace wsel
