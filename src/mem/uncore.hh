/**
 * @file
 * The shared uncore: LLC + write buffer + MSHRs + FSB + DRAM, plus a
 * first-touch page allocator, behind a timing interface shared by the
 * detailed and the approximate core models (the paper stresses that
 * "BADCO and Zesto use the exact same uncore model").
 *
 * Timing is request-driven: a caller presents a request at a core
 * cycle and receives the completion cycle. Shared-resource
 * contention (LLC port, MSHRs, FSB bandwidth) is modelled with
 * next-free-cycle bookkeeping, which approximates the paper's
 * round-robin arbitration with first-come-first-served order.
 */

#ifndef WSEL_MEM_UNCORE_HH
#define WSEL_MEM_UNCORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "mem/uncore_config.hh"

namespace wsel
{

/** Per-core uncore counters. */
struct UncoreCoreStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t writebacksIn = 0;
    std::uint64_t totalDemandLatency = 0; ///< sum of request latencies

    /** Mean demand-request latency in cycles. */
    double
    meanDemandLatency() const
    {
        const std::uint64_t n = reads + writes;
        return n ? static_cast<double>(totalDemandLatency) /
                       static_cast<double>(n)
                 : 0.0;
    }
};

/**
 * Abstract uncore seen by a core model: request in, completion
 * cycle out.
 */
class UncoreIf
{
  public:
    virtual ~UncoreIf() = default;

    /**
     * A demand request from core @p core_id (an L1 miss).
     *
     * @param cycle Core cycle at which the request leaves the core.
     * @param core_id Requesting core.
     * @param vaddr Virtual byte address.
     * @param is_write True for a store-miss refill.
     * @param pc PC of the triggering instruction (prefetch training).
     * @param is_prefetch Request issued by an L1 prefetcher.
     * @return Cycle at which the data is available to the core.
     */
    virtual std::uint64_t access(std::uint64_t cycle,
                                 std::uint32_t core_id,
                                 std::uint64_t vaddr, bool is_write,
                                 std::uint64_t pc,
                                 bool is_prefetch = false) = 0;

    /**
     * A dirty L1 eviction pushed down to the uncore
     * (fire-and-forget; does not stall the core).
     */
    virtual void writeback(std::uint64_t cycle, std::uint32_t core_id,
                           std::uint64_t vaddr) = 0;

    /** Latency of the fastest possible (LLC-hit) access. */
    virtual std::uint32_t hitLatency() const = 0;
};

/**
 * Ideal uncore where every request hits in the LLC. Used to build
 * BADCO behavioural models (intrinsic core time between requests)
 * and as a timing bound in tests.
 */
class PerfectUncore : public UncoreIf
{
  public:
    explicit PerfectUncore(std::uint32_t hit_latency)
        : hitLatency_(hit_latency)
    {}

    std::uint64_t
    access(std::uint64_t cycle, std::uint32_t, std::uint64_t, bool,
           std::uint64_t, bool) override
    {
        return cycle + hitLatency_;
    }

    void
    writeback(std::uint64_t, std::uint32_t, std::uint64_t) override
    {}

    std::uint32_t hitLatency() const override { return hitLatency_; }

  private:
    const std::uint32_t hitLatency_;
};

/**
 * The real shared uncore. final so callers holding a concrete
 * Uncore (the batched cell engine's per-cell instances) get
 * devirtualized access()/writeback() calls in their hot loops.
 */
class Uncore final : public UncoreIf
{
  public:
    /**
     * @param cfg Uncore parameters (Table II).
     * @param num_cores Number of attached cores.
     * @param seed Determinism seed (randomized policies, dueling).
     */
    Uncore(const UncoreConfig &cfg, std::uint32_t num_cores,
           std::uint64_t seed);

    std::uint64_t access(std::uint64_t cycle, std::uint32_t core_id,
                         std::uint64_t vaddr, bool is_write,
                         std::uint64_t pc,
                         bool is_prefetch = false) override;

    /**
     * An access() split at its LLC tag scan, for the wavefront
     * batch engine (sim/batch.hh): accessBegin() performs the
     * pre-scan half (demand counters, translation, LLC port
     * scheduling), llcProbe() names the scan as a gather
     * descriptor, and accessFinish() — given the way index the
     * sweep returned — performs the post-scan half (hit/miss
     * resolution, MSHRs, prefetch training) and yields the
     * completion cycle. access() IS this composition with a
     * single-probe sweep, so interposing a gathered sweep between
     * the halves cannot change any result. Between accessBegin()
     * and accessFinish() no other operation may touch this uncore
     * (the wave engine parks the whole cell).
     */
    struct PendingAccess
    {
        std::uint64_t cycle;  ///< request cycle, pre-port
        std::uint64_t pc;     ///< training PC
        std::uint64_t paddr;  ///< translated address
        std::uint64_t start;  ///< LLC port grant cycle
        std::uint32_t core;
        bool isWrite;
        bool isPrefetch;
    };

    /** Pre-scan half of access(). */
    PendingAccess accessBegin(std::uint64_t cycle,
                              std::uint32_t core_id,
                              std::uint64_t vaddr, bool is_write,
                              std::uint64_t pc, bool is_prefetch);

    /** The LLC tag scan @p pa performs, for a gathered sweep. */
    tagscan::Probe
    llcProbe(const PendingAccess &pa) const
    {
        return llc_.scanProbe(pa.paddr);
    }

    /** Post-scan half of access(); @p way from the sweep. */
    std::uint64_t accessFinish(const PendingAccess &pa,
                               std::uint32_t way);

    void writeback(std::uint64_t cycle, std::uint32_t core_id,
                   std::uint64_t vaddr) override;

    std::uint32_t hitLatency() const override;

    /** Per-core counters. */
    const UncoreCoreStats &coreStats(std::uint32_t core_id) const;

    /** LLC counters. */
    const CacheStats &llcStats() const { return llc_.stats(); }

    /** Total cycles the FSB was occupied. */
    std::uint64_t fsbBusyCycles() const { return fsbBusy_; }

    const UncoreConfig &config() const { return cfg_; }
    std::uint32_t numCores() const { return numCores_; }

    /**
     * Diagnostic hook: force multi-proposal prefetch probes back to
     * one scan per line instead of the gathered sweep. Contractually
     * behaviour-identical — tests/test_uncore.cc drives both modes
     * over the same request stream and compares every completion.
     */
    void
    setGatheredPrefetchProbes(bool on)
    {
        gatherPrefetchProbes_ = on;
    }

  private:
    /** Translate with first-touch page allocation. */
    std::uint64_t translate(std::uint32_t core_id,
                            std::uint64_t vaddr);

    /** Occupy the FSB for one line transfer from @p earliest. */
    std::uint64_t busTransfer(std::uint64_t earliest);

    /** Handle an LLC miss: DRAM fetch + fill + possible eviction. */
    std::uint64_t missPath(std::uint64_t start, std::uint64_t paddr,
                           bool is_write, bool is_prefetch);

    /** Run prefetchers after a demand access. */
    void maybePrefetch(std::uint64_t start, std::uint32_t core_id,
                       std::uint64_t pc, std::uint64_t paddr,
                       bool was_miss);

    /** Drop completed entries from the MSHR list. */
    void expireMshrs(std::uint64_t now);

    const UncoreConfig cfg_;
    const std::uint32_t numCores_;

    Cache llc_;

    /**
     * First-touch page table: (core, vpn) -> ppn as an
     * open-addressing linear-probe table.  The mapping is identical
     * to a node-based hash map — ppn still counts first touches in
     * request order — but a lookup is one multiplicative hash plus
     * a short probe run over a contiguous slot array instead of a
     * bucket-chain pointer chase, and growth never allocates per
     * page.  A slot with ppn == kEmptyPage is free (ppns count up
     * from 1 and can never reach the sentinel).
     */
    struct PageSlot
    {
        std::uint64_t key = 0;
        std::uint64_t ppn = kEmptyPage;
    };
    static constexpr std::uint64_t kEmptyPage = UINT64_MAX;
    std::uint64_t pageLookupOrAssign(std::uint64_t key);
    void growPageTable();
    std::vector<PageSlot> pageSlots_;
    std::size_t pageCount_ = 0;
    std::uint64_t nextPpn_ = 1;
    std::uint64_t pageShift_ = 12;

    /**
     * Per-core direct-mapped translation cache (indexed by low VPN
     * bits): working sets touch a handful of pages between misses,
     * so this skips the page-table hash on the vast majority of
     * requests. Pure cache — the (core, vpn) -> ppn mapping is
     * immutable once created, so any hit is exact.
     */
    static constexpr std::uint32_t kXlateEntries = 512;
    struct XlateEntry
    {
        std::uint64_t key = UINT64_MAX;
        std::uint64_t ppn = 0;
    };
    std::vector<XlateEntry> xlate_;

    /** LLC port: accepts one request per cycle. */
    std::uint64_t portNextFree_ = 0;

    /** FSB: busy until this cycle. */
    std::uint64_t fsbNextFree_ = 0;
    std::uint64_t fsbBusy_ = 0;

    /** Outstanding misses: line address -> completion cycle. */
    struct Mshr
    {
        std::uint64_t lineAddr;
        std::uint64_t completion;
    };
    std::vector<Mshr> mshrs_;

    /**
     * Min completion over mshrs_ (UINT64_MAX when empty): lets
     * expireMshrs() skip its scan while nothing can have completed
     * — the erased set is unchanged, since no entry's completion
     * can precede the minimum.
     */
    std::uint64_t mshrMin_ = UINT64_MAX;

    /** Pending write buffer slots: completion cycles. */
    std::vector<std::uint64_t> writeBuffer_;

    /** Per-core prefetchers. */
    std::vector<std::unique_ptr<Prefetcher>> prefetchers_;

    /** Reused proposal buffer for maybePrefetch(). */
    std::vector<std::uint64_t> prefetchScratch_;

    /** See setGatheredPrefetchProbes(). */
    bool gatherPrefetchProbes_ = true;

    std::vector<UncoreCoreStats> coreStats_;
};

} // namespace wsel

#endif // WSEL_MEM_UNCORE_HH
