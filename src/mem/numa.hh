/**
 * @file
 * NUMA-aware placement hints for the big simulation slabs.
 *
 * The batch engine's SoA lane slabs and the trace store's µop
 * chunks are resized (and therefore first-touched) on the worker
 * thread that will step them, so under the kernel's default local
 * allocation policy they already land on that worker's node — the
 * right placement for `--jobs N` campaigns where each shard's
 * working set is private to one worker. That *first-touch* mode is
 * the default and costs nothing.
 *
 * `WSEL_NUMA=interleave` instead spreads each slab's pages
 * round-robin across all nodes (for single-shard runs whose one
 * working set exceeds a node, or measurement runs chasing
 * bandwidth rather than latency), applied via a raw mbind(2) so no
 * libnuma dependency is taken. `WSEL_NUMA=off` suppresses even the
 * hinting bookkeeping. On single-node hosts — and any host where
 * the node topology cannot be read — every mode is a no-op, and
 * placement hints never affect simulation results, only where the
 * host kernel puts the pages.
 */

#ifndef WSEL_MEM_NUMA_HH
#define WSEL_MEM_NUMA_HH

#include <cstddef>
#include <cstdint>

namespace wsel::numa
{

/** Resolved placement policy for simulation slabs. */
enum class Mode : std::uint8_t
{
    FirstTouch = 0, ///< kernel default: pages follow the toucher
    Interleave = 1, ///< round-robin pages across all nodes
    Off = 2,        ///< no hints at all
};

/** "firsttouch" / "interleave" / "off". */
const char *toString(Mode mode);

/**
 * The process-wide mode: WSEL_NUMA (firsttouch | interleave | off),
 * default firsttouch, warning once on unknown values. Resolved on
 * first use and fixed afterwards.
 */
Mode mode();

/**
 * NUMA nodes the host exposes (from
 * /sys/devices/system/node/online); 1 when unreadable or
 * non-Linux. Cached after the first read.
 */
int nodeCount();

/**
 * Apply the resolved placement to a freshly (re)allocated slab.
 * Interleave binds the whole-page span inside [ptr, ptr+bytes)
 * across all nodes; every other mode — and every failure — is a
 * silent no-op (placement is advisory, never load-bearing).
 */
void placeSlab(void *ptr, std::size_t bytes);

} // namespace wsel::numa

#endif // WSEL_MEM_NUMA_HH
