#include "mem/numa.hh"

#include <cstdlib>
#include <fstream>
#include <string>

#include "stats/logging.hh"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace wsel::numa
{

const char *
toString(Mode mode)
{
    switch (mode) {
      case Mode::FirstTouch:
        return "firsttouch";
      case Mode::Interleave:
        return "interleave";
      case Mode::Off:
        return "off";
    }
    return "firsttouch";
}

namespace
{

Mode
resolveMode()
{
    const char *env = std::getenv("WSEL_NUMA");
    if (!env || !*env)
        return Mode::FirstTouch;
    const std::string v(env);
    if (v == "firsttouch" || v == "local")
        return Mode::FirstTouch;
    if (v == "interleave")
        return Mode::Interleave;
    if (v == "off")
        return Mode::Off;
    warn("ignoring unknown WSEL_NUMA '" + v +
         "' (want firsttouch|interleave|off)");
    return Mode::FirstTouch;
}

int
readNodeCount()
{
#if defined(__linux__)
    // "0" on single-node hosts, "0-3" (or a list ending in the
    // highest node) on NUMA hosts; the highest id bounds the count.
    std::ifstream in("/sys/devices/system/node/online");
    std::string text;
    if (!in || !std::getline(in, text) || text.empty())
        return 1;
    std::size_t pos = text.find_last_of("-,");
    const std::string last =
        pos == std::string::npos ? text : text.substr(pos + 1);
    char *end = nullptr;
    const long hi = std::strtol(last.c_str(), &end, 10);
    if (end == last.c_str() || hi < 0 || hi > 1023)
        return 1;
    return static_cast<int>(hi) + 1;
#else
    return 1;
#endif
}

} // namespace

Mode
mode()
{
    static const Mode m = resolveMode();
    return m;
}

int
nodeCount()
{
    static const int n = readNodeCount();
    return n;
}

void
placeSlab(void *ptr, std::size_t bytes)
{
#if defined(__linux__) && defined(SYS_mbind)
    if (mode() != Mode::Interleave || nodeCount() < 2 ||
        ptr == nullptr)
        return;
    // Align inward to whole pages: mbind wants a page-aligned span
    // and the slab's partial head/tail pages stay wherever first
    // touch put them.
    const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(ptr);
    std::uintptr_t hi = lo + bytes;
    lo = (lo + page - 1) & ~(page - 1);
    hi &= ~(page - 1);
    if (hi <= lo)
        return;
    constexpr int kMpolInterleave = 3;
    constexpr unsigned kMpolMfMove = 2; // migrate already-touched pages
    unsigned long nodemask[16] = {0};
    const int nodes = nodeCount() < 1024 ? nodeCount() : 1024;
    for (int n = 0; n < nodes; ++n)
        nodemask[n / (8 * sizeof(unsigned long))] |=
            1ul << (n % (8 * sizeof(unsigned long)));
    // Advisory: failures (old kernels, cpuset restrictions) are
    // ignored — pages simply stay where first touch left them.
    (void)::syscall(SYS_mbind, reinterpret_cast<void *>(lo),
                    hi - lo, kMpolInterleave, nodemask,
                    static_cast<unsigned long>(nodes + 1),
                    kMpolMfMove);
#else
    (void)ptr;
    (void)bytes;
#endif
}

} // namespace wsel::numa
