/**
 * @file
 * Uncore configuration (paper Table II), scaled for synthetic
 * 100k-instruction traces.
 *
 * The paper's uncore: shared LLC (1/2/4 MB for 2/4/8 cores, 16-way,
 * 64 B lines, write-back, 8-entry write buffer, 16 MSHRs, IP-stride
 * + stream prefetchers), 800 MHz 8-byte FSB, 200-cycle DRAM.
 * We keep associativity, line size, MSHRs, bus and DRAM parameters
 * and scale LLC capacity by 16x (64/128/256 kB) to match the 1000x
 * shorter traces; see DESIGN.md for the substitution rationale.
 */

#ifndef WSEL_MEM_UNCORE_CONFIG_HH
#define WSEL_MEM_UNCORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "cache/replacement.hh"

namespace wsel
{

/** Shared-uncore parameters. */
struct UncoreConfig
{
    /** LLC shape. */
    CacheGeometry llc{128 * 1024, 16, 64};

    /** LLC hit latency in core cycles (Table II: 5/6/7 cycles). */
    std::uint32_t llcHitLatency = 6;

    /** LLC replacement policy (the case-study variable). */
    PolicyKind policy = PolicyKind::LRU;

    /** Outstanding-miss registers (Table II: 16). */
    std::uint32_t mshrs = 16;

    /** LLC write buffer entries (Table II: 8). */
    std::uint32_t writeBufferEntries = 8;

    /**
     * Core cycles the FSB is occupied per 64-byte transfer.
     * Paper: 3 GHz core, 800 MHz x 8 B FSB => 8 bus cycles x 3.75
     * core cycles = 30 core cycles per line. Our scaled traces carry
     * ~4x the paper's per-instruction line traffic (the same factor
     * by which the Table IV MPKI class thresholds are scaled), so
     * the default bandwidth is scaled by 4x to keep the
     * demand/bandwidth ratio at the paper's operating point.
     */
    std::uint32_t fsbCyclesPerTransfer = 8;

    /** DRAM access latency in core cycles (Table II: 200). */
    std::uint32_t dramLatency = 200;

    /** Enable the LLC stream prefetcher. */
    bool streamPrefetch = true;

    /** Enable the LLC IP-stride prefetcher. */
    bool ipStridePrefetch = true;

    /** Prefetch degree for both LLC prefetchers. */
    std::uint32_t prefetchDegree = 1;

    /** Page size for the uncore's first-touch page allocator. */
    std::uint32_t pageBytes = 4096;

    /**
     * Scaled Table II configuration for a given core count
     * (2, 4 or 8) and LLC policy.
     */
    static UncoreConfig forCores(std::uint32_t cores,
                                 PolicyKind policy);

    /** One-line description for reports. */
    std::string describe() const;
};

} // namespace wsel

#endif // WSEL_MEM_UNCORE_CONFIG_HH
