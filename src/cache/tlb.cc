#include "cache/tlb.hh"

#include <bit>

#include "stats/logging.hh"

namespace wsel
{

Tlb::Tlb(std::uint32_t entries, std::uint32_t ways,
         std::uint32_t page_bytes)
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        WSEL_FATAL("bad TLB shape: " << entries << " entries, "
                                     << ways << " ways");
    sets_ = entries / ways;
    ways_ = ways;
    if (!std::has_single_bit(sets_))
        WSEL_FATAL("TLB set count " << sets_
                                    << " is not a power of two");
    if (!std::has_single_bit(page_bytes))
        WSEL_FATAL("page size " << page_bytes
                                << " is not a power of two");
    pageShift_ = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(page_bytes)));
    entries_.assign(static_cast<std::size_t>(sets_) * ways_, Entry{});
}

bool
Tlb::access(std::uint64_t vaddr)
{
    ++accesses_;
    const std::uint64_t vpn = vaddr >> pageShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(vpn) & (sets_ - 1);
    Entry *e = &entries_[static_cast<std::size_t>(set) * ways_];

    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (e[w].valid && e[w].vpn == vpn) {
            const std::uint8_t old = e[w].lru;
            for (std::uint32_t x = 0; x < ways_; ++x) {
                if (e[x].lru < old)
                    ++e[x].lru;
            }
            e[w].lru = 0;
            return true;
        }
    }

    ++misses_;
    // Victim: invalid way first, else LRU.
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!e[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways_) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (e[w].lru == ways_ - 1) {
                victim = w;
                break;
            }
        }
    }
    WSEL_ASSERT(victim < ways_, "TLB LRU state corrupted");
    const std::uint8_t old = e[victim].valid
                                 ? e[victim].lru
                                 : static_cast<std::uint8_t>(ways_ - 1);
    for (std::uint32_t x = 0; x < ways_; ++x) {
        if (e[x].lru < old)
            ++e[x].lru;
    }
    e[victim].vpn = vpn;
    e[victim].valid = true;
    e[victim].lru = 0;
    return false;
}

void
Tlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace wsel
