#include "cache/cache.hh"

#include <algorithm>
#include <bit>

#include "cache/tagscan.hh"
#include "stats/logging.hh"

namespace wsel
{

std::uint32_t
CacheGeometry::sets() const
{
    return static_cast<std::uint32_t>(
        sizeBytes / (static_cast<std::uint64_t>(ways) * lineBytes));
}

void
CacheGeometry::validate() const
{
    if (lineBytes == 0 || !std::has_single_bit(lineBytes))
        WSEL_FATAL("cache line size " << lineBytes
                                      << " is not a power of two");
    if (ways == 0)
        WSEL_FATAL("cache associativity cannot be zero");
    const std::uint64_t line_capacity =
        static_cast<std::uint64_t>(ways) * lineBytes;
    if (sizeBytes == 0 || sizeBytes % line_capacity != 0)
        WSEL_FATAL("cache size " << sizeBytes
                                 << " not divisible by ways*line ("
                                 << line_capacity << ")");
    const std::uint32_t s = sets();
    if (s == 0 || !std::has_single_bit(s))
        WSEL_FATAL("cache set count " << s
                                      << " is not a power of two");
}

Cache::Cache(const CacheGeometry &geom, PolicyKind policy,
             std::uint64_t seed, std::string name)
    : Cache(geom,
            [geom, policy, seed]() {
                return makePolicy(policy, geom.sets(), geom.ways,
                                  seed);
            },
            std::move(name))
{}

Cache::Cache(const CacheGeometry &geom, PolicyFactory factory,
             std::string name)
    : geom_(geom), name_(std::move(name)),
      factory_(std::move(factory))
{
    geom_.validate();
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(geom_.lineBytes)));
    setMask_ = geom_.sets() - 1;
    const std::size_t n =
        static_cast<std::size_t>(geom_.sets()) * geom_.ways;
    tags_.assign(n, 0);
    dirty_.assign(n, 0);
    policy_ = factory_();
    if (!policy_)
        WSEL_FATAL("policy factory returned null for cache '"
                   << name_ << "'");
    if (policy_->sets() != geom_.sets() ||
        policy_->ways() != geom_.ways)
        WSEL_FATAL("policy shape " << policy_->sets() << "x"
                   << policy_->ways() << " does not match cache '"
                   << name_ << "'");
}

std::uint32_t
Cache::setIndex(std::uint64_t line_addr) const
{
    return static_cast<std::uint32_t>(line_addr) & setMask_;
}

Cache::Result
Cache::access(std::uint64_t byte_addr, bool is_write,
              bool is_prefetch)
{
    const std::uint64_t la = lineAddr(byte_addr);
    const std::uint32_t set = setIndex(la);
    const std::size_t base =
        static_cast<std::size_t>(set) * geom_.ways;
    const std::uint32_t *tags = &tags_[base];
    const std::uint32_t want = tagFor(la);

    if (is_prefetch)
        ++stats_.prefetchAccesses;
    else
        ++stats_.demandAccesses;

    const std::uint32_t w = tagscan::find(tags, geom_.ways, want);
    if (w < geom_.ways) {
        policy_->onHit(set, w);
        if (is_write)
            dirty_[base + w] = 1;
        if (is_prefetch)
            ++stats_.prefetchHits;
        else
            ++stats_.demandHits;
        return Result{true, {}};
    }

    if (is_prefetch)
        ++stats_.prefetchMisses;
    else
        ++stats_.demandMisses;
    policy_->onMiss(set);
    return fill(la, is_write);
}

Cache::Result
Cache::fill(std::uint64_t line_addr, bool is_write)
{
    const std::uint32_t set = setIndex(line_addr);
    const std::size_t base =
        static_cast<std::size_t>(set) * geom_.ways;
    std::uint32_t *tags = &tags_[base];

    // Lowest invalid way (tag 0), if any; all tagscan paths agree
    // on the lowest-index pick, keeping replacement path-invariant.
    std::uint32_t victim = tagscan::find(tags, geom_.ways, 0u);
    Result res;
    res.hit = false;
    if (victim == geom_.ways) {
        victim = policy_->selectVictim(set);
        WSEL_ASSERT(victim < geom_.ways,
                    "policy returned way " << victim);
        const std::uint64_t old_la = tags[victim] >> 1;
        if (dirty_[base + victim]) {
            res.evicted = Evicted{true, true, old_la};
            ++stats_.writebacksOut;
        } else {
            res.evicted = Evicted{true, false, old_la};
        }
    }
    tags[victim] = tagFor(line_addr);
    dirty_[base + victim] = is_write ? 1 : 0;
    policy_->onFill(set, victim);
    return res;
}

bool
Cache::accessIfHit(std::uint64_t byte_addr, bool is_write,
                   bool is_prefetch)
{
    const tagscan::Probe p = scanProbe(byte_addr);
    return finishAccessAt(byte_addr,
                          tagscan::find(p.tags, p.n, p.want),
                          is_write, is_prefetch);
}

bool
Cache::finishAccessAt(std::uint64_t byte_addr, std::uint32_t way,
                      bool is_write, bool is_prefetch)
{
    const std::uint64_t la = lineAddr(byte_addr);
    const std::uint32_t set = setIndex(la);
    const std::size_t base =
        static_cast<std::size_t>(set) * geom_.ways;
    const std::uint32_t w = way;
    if (w < geom_.ways) {
        if (is_prefetch) {
            ++stats_.prefetchAccesses;
            ++stats_.prefetchHits;
        } else {
            ++stats_.demandAccesses;
            ++stats_.demandHits;
        }
        policy_->onHit(set, w);
        if (is_write)
            dirty_[base + w] = 1;
        return true;
    }
    return false;
}

Cache::Result
Cache::missFill(std::uint64_t byte_addr, bool is_write,
                bool is_prefetch)
{
    const std::uint64_t la = lineAddr(byte_addr);
    if (is_prefetch) {
        ++stats_.prefetchAccesses;
        ++stats_.prefetchMisses;
    } else {
        ++stats_.demandAccesses;
        ++stats_.demandMisses;
    }
    policy_->onMiss(setIndex(la));
    return fill(la, is_write);
}

bool
Cache::probe(std::uint64_t byte_addr) const
{
    const std::uint64_t la = lineAddr(byte_addr);
    const std::uint32_t set = setIndex(la);
    const std::uint32_t *tags =
        &tags_[static_cast<std::size_t>(set) * geom_.ways];
    const std::uint32_t want = tagFor(la);
    return tagscan::find(tags, geom_.ways, want) < geom_.ways;
}

Cache::Result
Cache::writeback(std::uint64_t byte_addr)
{
    const std::uint64_t la = lineAddr(byte_addr);
    const std::uint32_t set = setIndex(la);
    const std::size_t base =
        static_cast<std::size_t>(set) * geom_.ways;
    const std::uint32_t *tags = &tags_[base];
    const std::uint32_t want = tagFor(la);
    const std::uint32_t w = tagscan::find(tags, geom_.ways, want);
    if (w < geom_.ways) {
        dirty_[base + w] = 1;
        // Writebacks do not update replacement state: they are
        // not program references.
        return Result{true, {}};
    }
    return fill(la, true);
}

void
Cache::reset()
{
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    policy_ = factory_();
    stats_ = CacheStats{};
}

} // namespace wsel
