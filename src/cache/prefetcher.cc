#include "cache/prefetcher.hh"

#include <bit>
#include <cstdlib>

#include "stats/logging.hh"

namespace wsel
{

namespace
{

class NullPrefetcher : public Prefetcher
{
  public:
    void
    observe(std::uint64_t, std::uint64_t, bool,
            std::vector<std::uint64_t> &) override
    {}

    void reset() override {}
    std::string name() const override { return "none"; }
};

class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(std::uint32_t degree)
        : degree_(degree)
    {
        if (degree == 0)
            WSEL_FATAL("next-line prefetch degree cannot be zero");
    }

    void
    observe(std::uint64_t, std::uint64_t line_addr, bool was_miss,
            std::vector<std::uint64_t> &out) override
    {
        if (!was_miss)
            return;
        for (std::uint32_t d = 1; d <= degree_; ++d)
            out.push_back(line_addr + d);
    }

    void reset() override {}
    std::string name() const override { return "next-line"; }

  private:
    const std::uint32_t degree_;
};

class IpStridePrefetcher : public Prefetcher
{
  public:
    IpStridePrefetcher(std::uint32_t entries, std::uint32_t degree)
        : entries_(entries), degree_(degree), table_(entries)
    {
        if (entries == 0 || !std::has_single_bit(entries))
            WSEL_FATAL("IP-stride table size " << entries
                       << " is not a power of two");
        if (degree == 0)
            WSEL_FATAL("IP-stride degree cannot be zero");
    }

    void
    observe(std::uint64_t pc, std::uint64_t line_addr, bool,
            std::vector<std::uint64_t> &out) override
    {
        if (pc == 0)
            return;
        Entry &e = table_[hashPc(pc)];
        if (e.pc != pc) {
            e.pc = pc;
            e.lastLine = line_addr;
            e.stride = 0;
            e.confidence = 0;
            return;
        }
        const std::int64_t stride =
            static_cast<std::int64_t>(line_addr) -
            static_cast<std::int64_t>(e.lastLine);
        if (stride == e.stride && stride != 0) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
        }
        e.lastLine = line_addr;
        if (e.confidence >= 2 && e.stride != 0) {
            for (std::uint32_t d = 1; d <= degree_; ++d) {
                const std::int64_t target =
                    static_cast<std::int64_t>(line_addr) +
                    e.stride * static_cast<std::int64_t>(d);
                if (target > 0)
                    out.push_back(static_cast<std::uint64_t>(target));
            }
        }
    }

    void
    reset() override
    {
        table_.assign(entries_, Entry{});
    }

    std::string name() const override { return "ip-stride"; }

  private:
    struct Entry
    {
        std::uint64_t pc = 0;
        std::uint64_t lastLine = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
    };

    std::size_t
    hashPc(std::uint64_t pc) const
    {
        return (pc >> 2) & (entries_ - 1);
    }

    const std::uint32_t entries_;
    const std::uint32_t degree_;
    std::vector<Entry> table_;
};

class StreamPrefetcher : public Prefetcher
{
  public:
    StreamPrefetcher(std::uint32_t streams, std::uint32_t degree)
        : streams_(streams), degree_(degree), table_(streams)
    {
        if (streams == 0 || degree == 0)
            WSEL_FATAL("stream prefetcher needs streams and degree");
    }

    void
    observe(std::uint64_t, std::uint64_t line_addr, bool was_miss,
            std::vector<std::uint64_t> &out) override
    {
        if (!was_miss)
            return;
        // Look for a stream this miss extends.
        for (auto &s : table_) {
            if (!s.live)
                continue;
            const std::int64_t delta =
                static_cast<std::int64_t>(line_addr) -
                static_cast<std::int64_t>(s.lastLine);
            if (delta == s.dir) {
                // Confirmed continuation: run ahead.
                s.lastLine = line_addr;
                ++s.confidence;
                for (std::uint32_t d = 1; d <= degree_; ++d) {
                    const std::int64_t target =
                        static_cast<std::int64_t>(line_addr) +
                        s.dir * static_cast<std::int64_t>(d);
                    if (target > 0)
                        out.push_back(
                            static_cast<std::uint64_t>(target));
                }
                return;
            }
            if (delta == 2 * s.dir) {
                // One line was skipped (e.g. already prefetched).
                s.lastLine = line_addr;
                return;
            }
        }
        // Try to pair with a trainee.
        for (auto &s : table_) {
            if (!s.training)
                continue;
            const std::int64_t delta =
                static_cast<std::int64_t>(line_addr) -
                static_cast<std::int64_t>(s.lastLine);
            if (delta == 1 || delta == -1) {
                s.live = true;
                s.training = false;
                s.dir = delta;
                s.lastLine = line_addr;
                s.confidence = 1;
                return;
            }
        }
        // Allocate a trainee, replacing the stalest slot.
        Slot *victim = &table_[nextVictim_];
        nextVictim_ = (nextVictim_ + 1) % streams_;
        *victim = Slot{};
        victim->training = true;
        victim->lastLine = line_addr;
    }

    void
    reset() override
    {
        table_.assign(streams_, Slot{});
        nextVictim_ = 0;
    }

    std::string name() const override { return "stream"; }

  private:
    struct Slot
    {
        bool live = false;
        bool training = false;
        std::int64_t dir = 0;
        std::uint64_t lastLine = 0;
        std::uint32_t confidence = 0;
    };

    const std::uint32_t streams_;
    const std::uint32_t degree_;
    std::vector<Slot> table_;
    std::uint32_t nextVictim_ = 0;
};

class CompositePrefetcher : public Prefetcher
{
  public:
    explicit CompositePrefetcher(
        std::vector<std::unique_ptr<Prefetcher>> parts)
        : parts_(std::move(parts))
    {}

    void
    observe(std::uint64_t pc, std::uint64_t line_addr, bool was_miss,
            std::vector<std::uint64_t> &out) override
    {
        for (auto &p : parts_)
            p->observe(pc, line_addr, was_miss, out);
    }

    void
    reset() override
    {
        for (auto &p : parts_)
            p->reset();
    }

    std::string
    name() const override
    {
        std::string n = "composite(";
        for (std::size_t i = 0; i < parts_.size(); ++i) {
            if (i)
                n += "+";
            n += parts_[i]->name();
        }
        return n + ")";
    }

  private:
    std::vector<std::unique_ptr<Prefetcher>> parts_;
};

/**
 * The ip-stride + stream pair the standard uncore config enables,
 * fused into one object: identical training state and proposal
 * order to CompositePrefetcher{IpStride, Stream}, but the two
 * observe() calls dispatch statically (the members are concrete),
 * removing three virtual hops from every demand access.
 */
class IpStrideStreamPrefetcher : public Prefetcher
{
  public:
    IpStrideStreamPrefetcher(std::uint32_t table_entries,
                             std::uint32_t streams,
                             std::uint32_t degree)
        : ip_(table_entries, degree), stream_(streams, degree)
    {}

    void
    observe(std::uint64_t pc, std::uint64_t line_addr, bool was_miss,
            std::vector<std::uint64_t> &out) override
    {
        ip_.observe(pc, line_addr, was_miss, out);
        stream_.observe(pc, line_addr, was_miss, out);
    }

    void
    reset() override
    {
        ip_.reset();
        stream_.reset();
    }

    std::string
    name() const override
    {
        return "composite(ip-stride+stream)";
    }

  private:
    IpStridePrefetcher ip_;
    StreamPrefetcher stream_;
};

} // namespace

std::unique_ptr<Prefetcher>
makeNextLinePrefetcher(std::uint32_t degree)
{
    return std::make_unique<NextLinePrefetcher>(degree);
}

std::unique_ptr<Prefetcher>
makeIpStridePrefetcher(std::uint32_t table_entries,
                       std::uint32_t degree)
{
    return std::make_unique<IpStridePrefetcher>(table_entries, degree);
}

std::unique_ptr<Prefetcher>
makeStreamPrefetcher(std::uint32_t streams, std::uint32_t degree)
{
    return std::make_unique<StreamPrefetcher>(streams, degree);
}

std::unique_ptr<Prefetcher>
makeIpStrideStreamPrefetcher(std::uint32_t table_entries,
                             std::uint32_t streams,
                             std::uint32_t degree)
{
    return std::make_unique<IpStrideStreamPrefetcher>(
        table_entries, streams, degree);
}

std::unique_ptr<Prefetcher>
makeCompositePrefetcher(std::vector<std::unique_ptr<Prefetcher>> parts)
{
    return std::make_unique<CompositePrefetcher>(std::move(parts));
}

std::unique_ptr<Prefetcher>
makeNullPrefetcher()
{
    return std::make_unique<NullPrefetcher>();
}

} // namespace wsel
