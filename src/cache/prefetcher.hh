/**
 * @file
 * Hardware prefetchers: next-line, IP-based stride, and stream.
 *
 * Table I/II of the paper attach a next-line + IP-stride prefetcher
 * to the L1s and an IP-stride + stream prefetcher to the LLC. A
 * prefetcher observes demand accesses and proposes line addresses to
 * fetch; the owning cache level issues them.
 */

#ifndef WSEL_CACHE_PREFETCHER_HH
#define WSEL_CACHE_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wsel
{

/**
 * Prefetcher interface. Addresses are line addresses (byte address
 * divided by the line size) so proposals are line-granular.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe a demand access and append prefetch proposals.
     *
     * @param pc Program counter of the access (0 if unknown).
     * @param line_addr Line address accessed.
     * @param was_miss Whether the demand access missed.
     * @param out Receives proposed line addresses.
     */
    virtual void observe(std::uint64_t pc, std::uint64_t line_addr,
                         bool was_miss,
                         std::vector<std::uint64_t> &out) = 0;

    /** Clear learned state. */
    virtual void reset() = 0;

    /** Diagnostic name. */
    virtual std::string name() const = 0;
};

/** Always proposes the next sequential line on a miss. */
std::unique_ptr<Prefetcher> makeNextLinePrefetcher(
    std::uint32_t degree = 1);

/**
 * Classic IP-indexed stride prefetcher with 2-bit confidence.
 *
 * @param table_entries Tracking-table size (power of two).
 * @param degree Lines prefetched ahead once confident.
 */
std::unique_ptr<Prefetcher> makeIpStridePrefetcher(
    std::uint32_t table_entries = 64, std::uint32_t degree = 2);

/**
 * Stream prefetcher: detects ascending or descending line streams
 * near recent misses and runs @p degree lines ahead.
 *
 * @param streams Number of concurrently tracked streams.
 * @param degree Prefetch distance in lines.
 */
std::unique_ptr<Prefetcher> makeStreamPrefetcher(
    std::uint32_t streams = 8, std::uint32_t degree = 2);

/** Composite prefetcher running several engines in sequence. */
std::unique_ptr<Prefetcher> makeCompositePrefetcher(
    std::vector<std::unique_ptr<Prefetcher>> parts);

/**
 * The ip-stride + stream pair fused into one statically dispatched
 * object: training state and proposal order are identical to
 * composite(ip-stride, stream), without the per-observe virtual
 * hops. Used by the uncore when both engines are enabled.
 */
std::unique_ptr<Prefetcher> makeIpStrideStreamPrefetcher(
    std::uint32_t table_entries, std::uint32_t streams,
    std::uint32_t degree);

/** No-op prefetcher. */
std::unique_ptr<Prefetcher> makeNullPrefetcher();

} // namespace wsel

#endif // WSEL_CACHE_PREFETCHER_HH
