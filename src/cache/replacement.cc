#include "cache/replacement.hh"

#include <algorithm>
#include <cstring>

#include "stats/logging.hh"

namespace wsel
{

std::string
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::LRU:
        return "LRU";
      case PolicyKind::Random:
        return "RND";
      case PolicyKind::FIFO:
        return "FIFO";
      case PolicyKind::DIP:
        return "DIP";
      case PolicyKind::DRRIP:
        return "DRRIP";
      case PolicyKind::SRRIP:
        return "SRRIP";
      case PolicyKind::BRRIP:
        return "BRRIP";
      case PolicyKind::BIP:
        return "BIP";
      case PolicyKind::LIP:
        return "LIP";
      case PolicyKind::NRU:
        return "NRU";
      case PolicyKind::PLRU:
        return "PLRU";
    }
    WSEL_PANIC("invalid PolicyKind " << static_cast<int>(kind));
}

PolicyKind
parsePolicyKind(const std::string &name)
{
    static const std::vector<PolicyKind> all = {
        PolicyKind::LRU,   PolicyKind::Random, PolicyKind::FIFO,
        PolicyKind::DIP,   PolicyKind::DRRIP,  PolicyKind::SRRIP,
        PolicyKind::BRRIP, PolicyKind::BIP,    PolicyKind::LIP,
        PolicyKind::NRU,   PolicyKind::PLRU,
    };
    for (PolicyKind k : all) {
        if (toString(k) == name)
            return k;
    }
    if (name == "RANDOM")
        return PolicyKind::Random;
    WSEL_FATAL("unknown replacement policy '" << name << "'");
}

const std::vector<PolicyKind> &
paperPolicies()
{
    static const std::vector<PolicyKind> v = {
        PolicyKind::LRU, PolicyKind::Random, PolicyKind::FIFO,
        PolicyKind::DIP, PolicyKind::DRRIP,
    };
    return v;
}

namespace
{

/**
 * True-LRU recency stack; rank 0 is MRU, ways-1 is LRU.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), rank_(sets * ways)
    {
        // Every set starts with the same 0..ways-1 stack: write it
        // once and replicate with doubling copies (policies are
        // constructed per campaign cell, so this runs hot).
        for (std::uint32_t w = 0; w < ways; ++w)
            rank_[w] = static_cast<std::uint8_t>(w);
        const std::size_t total =
            static_cast<std::size_t>(sets) * ways;
        for (std::size_t filled = ways; filled < total;) {
            const std::size_t chunk =
                std::min(filled, total - filled);
            std::memcpy(&rank_[filled], rank_.data(), chunk);
            filled += chunk;
        }
    }

    void
    onHit(std::uint32_t set, std::uint32_t way) override
    {
        touch(set, way);
    }

    void
    onFill(std::uint32_t set, std::uint32_t way) override
    {
        touch(set, way);
    }

    std::uint32_t
    selectVictim(std::uint32_t set) override
    {
        const std::uint8_t *r = &rank_[set * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (r[w] == ways_ - 1)
                return w;
        }
        WSEL_PANIC("LRU rank state corrupted in set " << set);
    }

    PolicyKind kind() const override { return PolicyKind::LRU; }

  protected:
    /**
     * Promote @p way to MRU.  The rank row is adjusted eight ways
     * at a time with byte-parallel (SWAR) arithmetic: ranks are
     * < ways_ ≤ 127, so per-byte `x + (128 - old)` sets a byte's
     * high bit exactly when x >= old, with no inter-byte carry —
     * the complement, shifted down, is the per-byte increment.
     * Behaviour is identical to the scalar loop.
     */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        std::uint8_t *r = &rank_[set * ways_];
        const std::uint8_t old = r[way];
        if (old == 0)
            return; // already MRU: nothing outranks it
        constexpr std::uint64_t kLo = 0x0101010101010101ULL;
        constexpr std::uint64_t kHi = 0x8080808080808080ULL;
        const std::uint64_t bias =
            (0x80ULL - old) * kLo;
        std::uint32_t w = 0;
        for (; w + 8 <= ways_; w += 8) {
            std::uint64_t x;
            std::memcpy(&x, r + w, 8);
            x += (~(x + bias) & kHi) >> 7;
            std::memcpy(r + w, &x, 8);
        }
        for (; w < ways_; ++w) {
            if (r[w] < old)
                ++r[w];
        }
        r[way] = 0;
    }

    /** Demote @p way to LRU (used by BIP-style insertion). */
    void
    demote(std::uint32_t set, std::uint32_t way)
    {
        std::uint8_t *r = &rank_[set * ways_];
        const std::uint8_t old = r[way];
        if (old == ways_ - 1)
            return; // already LRU
        // SWAR mirror of touch(): decrement every rank > old,
        // i.e. every byte with x >= old + 1.
        constexpr std::uint64_t kLo = 0x0101010101010101ULL;
        constexpr std::uint64_t kHi = 0x8080808080808080ULL;
        const std::uint64_t bias =
            (0x80ULL - (old + 1ULL)) * kLo;
        std::uint32_t w = 0;
        for (; w + 8 <= ways_; w += 8) {
            std::uint64_t x;
            std::memcpy(&x, r + w, 8);
            x -= ((x + bias) & kHi) >> 7;
            std::memcpy(r + w, &x, 8);
        }
        for (; w < ways_; ++w) {
            if (r[w] > old)
                --r[w];
        }
        r[way] = static_cast<std::uint8_t>(ways_ - 1);
    }

  private:
    std::vector<std::uint8_t> rank_;
};

/**
 * Random replacement.
 */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t sets, std::uint32_t ways,
                 std::uint64_t seed)
        : ReplacementPolicy(sets, ways), rng_(seed)
    {}

    void onHit(std::uint32_t, std::uint32_t) override {}
    void onFill(std::uint32_t, std::uint32_t) override {}

    std::uint32_t
    selectVictim(std::uint32_t) override
    {
        return static_cast<std::uint32_t>(rng_.nextInt(ways_));
    }

    PolicyKind kind() const override { return PolicyKind::Random; }

  private:
    Rng rng_;
};

/**
 * FIFO: evict the line that was filled first; hits do not refresh.
 */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::uint32_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), age_(sets * ways)
    {
        for (std::uint32_t s = 0; s < sets; ++s)
            for (std::uint32_t w = 0; w < ways; ++w)
                age_[s * ways + w] = static_cast<std::uint8_t>(w);
    }

    void onHit(std::uint32_t, std::uint32_t) override {}

    void
    onFill(std::uint32_t set, std::uint32_t way) override
    {
        std::uint8_t *a = &age_[set * ways_];
        const std::uint8_t old = a[way];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (a[w] < old)
                ++a[w];
        }
        a[way] = 0;
    }

    std::uint32_t
    selectVictim(std::uint32_t set) override
    {
        const std::uint8_t *a = &age_[set * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (a[w] == ways_ - 1)
                return w;
        }
        WSEL_PANIC("FIFO age state corrupted in set " << set);
    }

    PolicyKind kind() const override { return PolicyKind::FIFO; }

  private:
    std::vector<std::uint8_t> age_;
};

/**
 * NRU: one reference bit per line.
 */
class NruPolicy : public ReplacementPolicy
{
  public:
    NruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), ref_(sets * ways, 0)
    {}

    void
    onHit(std::uint32_t set, std::uint32_t way) override
    {
        ref_[set * ways_ + way] = 1;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way) override
    {
        ref_[set * ways_ + way] = 1;
    }

    std::uint32_t
    selectVictim(std::uint32_t set) override
    {
        std::uint8_t *r = &ref_[set * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (r[w] == 0)
                return w;
        }
        // All referenced: clear and evict way 0.
        for (std::uint32_t w = 0; w < ways_; ++w)
            r[w] = 0;
        return 0;
    }

    PolicyKind kind() const override { return PolicyKind::NRU; }

  private:
    std::vector<std::uint8_t> ref_;
};

/**
 * Tree-PLRU; associativity must be a power of two.
 */
class PlruPolicy : public ReplacementPolicy
{
  public:
    PlruPolicy(std::uint32_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), bits_(sets * (ways - 1), 0)
    {
        if ((ways & (ways - 1)) != 0)
            WSEL_FATAL("PLRU requires power-of-two associativity, got "
                       << ways);
    }

    void
    onHit(std::uint32_t set, std::uint32_t way) override
    {
        touch(set, way);
    }

    void
    onFill(std::uint32_t set, std::uint32_t way) override
    {
        touch(set, way);
    }

    std::uint32_t
    selectVictim(std::uint32_t set) override
    {
        std::uint8_t *b = &bits_[set * (ways_ - 1)];
        std::uint32_t node = 0;
        while (node < ways_ - 1)
            node = 2 * node + 1 + b[node];
        return node - (ways_ - 1);
    }

    PolicyKind kind() const override { return PolicyKind::PLRU; }

  private:
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        std::uint8_t *b = &bits_[set * (ways_ - 1)];
        std::uint32_t node = way + (ways_ - 1);
        while (node != 0) {
            const std::uint32_t parent = (node - 1) / 2;
            // Point away from the accessed child.
            b[parent] = (node == 2 * parent + 1) ? 1 : 0;
            node = parent;
        }
    }

    std::vector<std::uint8_t> bits_;
};

/**
 * LRU-stack family with configurable insertion: LIP inserts at LRU,
 * BIP inserts at MRU 1-in-epsilon fills, and DIP set-duels LRU
 * insertion against BIP insertion with a PSEL counter
 * (Qureshi et al., "Adaptive insertion policies for high performance
 * caching", ISCA 2007).
 */
class DipPolicy : public LruPolicy
{
  public:
    DipPolicy(std::uint32_t sets, std::uint32_t ways,
              std::uint64_t seed, const DuelingConfig &cfg,
              bool always_bip, bool lip_only = false)
        : LruPolicy(sets, ways), rng_(seed), cfg_(cfg),
          alwaysBip_(always_bip), lipOnly_(lip_only),
          pselMax_((1u << cfg.pselBits) - 1),
          psel_(1u << (cfg.pselBits - 1))
    {}

    void
    onMiss(std::uint32_t set) override
    {
        if (alwaysBip_)
            return;
        // A miss in a leader set is a strike against its team.
        if (isLruLeader(set))
            psel_ = std::min(psel_ + 1, pselMax_);
        else if (isBipLeader(set))
            psel_ = (psel_ > 0) ? psel_ - 1 : 0;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way) override
    {
        bool use_bip;
        if (alwaysBip_) {
            use_bip = true;
        } else if (isLruLeader(set)) {
            use_bip = false;
        } else if (isBipLeader(set)) {
            use_bip = true;
        } else {
            // Followers pick the team with fewer leader misses:
            // PSEL high means LRU missed more, so use BIP.
            use_bip = psel_ >= (1u << (cfg_.pselBits - 1));
        }
        if (!use_bip) {
            touch(set, way); // MRU insertion (plain LRU behaviour)
            return;
        }
        // BIP: MRU insertion only 1 in bimodalEpsilon fills; LIP is
        // the epsilon -> infinity limit (never insert at MRU).
        if (!lipOnly_ && rng_.nextInt(cfg_.bimodalEpsilon) == 0)
            touch(set, way);
        else
            demote(set, way);
    }

    PolicyKind
    kind() const override
    {
        if (lipOnly_)
            return PolicyKind::LIP;
        return alwaysBip_ ? PolicyKind::BIP : PolicyKind::DIP;
    }

    /** Current PSEL value (for tests/ablations). */
    std::uint32_t psel() const { return psel_; }

  private:
    bool
    isLruLeader(std::uint32_t set) const
    {
        return set % cfg_.leaderSpacing == 0;
    }

    bool
    isBipLeader(std::uint32_t set) const
    {
        return set % cfg_.leaderSpacing == cfg_.leaderSpacing / 2;
    }

    Rng rng_;
    const DuelingConfig cfg_;
    const bool alwaysBip_;
    const bool lipOnly_ = false;
    const std::uint32_t pselMax_;
    std::uint32_t psel_;
};

/**
 * RRIP family (Jaleel et al., "High performance cache replacement
 * using re-reference interval prediction", ISCA 2010). SRRIP inserts
 * with a long re-reference prediction, BRRIP with a distant one most
 * of the time, and DRRIP set-duels between the two.
 */
class RripPolicy : public ReplacementPolicy
{
  public:
    enum class Mode { SRRIP, BRRIP, DRRIP };

    RripPolicy(std::uint32_t sets, std::uint32_t ways,
               std::uint64_t seed, const DuelingConfig &cfg,
               std::uint32_t rrpv_bits, Mode mode)
        : ReplacementPolicy(sets, ways), rng_(seed), cfg_(cfg),
          mode_(mode), rrpvMax_((1u << rrpv_bits) - 1),
          rrpv_(sets * ways, static_cast<std::uint8_t>(rrpvMax_)),
          pselMax_((1u << cfg.pselBits) - 1),
          psel_(1u << (cfg.pselBits - 1))
    {
        if (rrpv_bits == 0 || rrpv_bits > 8)
            WSEL_FATAL("RRIP rrpv_bits must be in [1, 8], got "
                       << rrpv_bits);
    }

    void
    onHit(std::uint32_t set, std::uint32_t way) override
    {
        // Hit promotion: predict near-immediate re-reference.
        rrpv_[set * ways_ + way] = 0;
    }

    void
    onMiss(std::uint32_t set) override
    {
        if (mode_ != Mode::DRRIP)
            return;
        if (isSrripLeader(set))
            psel_ = std::min(psel_ + 1, pselMax_);
        else if (isBrripLeader(set))
            psel_ = (psel_ > 0) ? psel_ - 1 : 0;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way) override
    {
        bool use_brrip;
        switch (mode_) {
          case Mode::SRRIP:
            use_brrip = false;
            break;
          case Mode::BRRIP:
            use_brrip = true;
            break;
          case Mode::DRRIP:
          default:
            if (isSrripLeader(set))
                use_brrip = false;
            else if (isBrripLeader(set))
                use_brrip = true;
            else
                use_brrip = psel_ >= (1u << (cfg_.pselBits - 1));
            break;
        }
        std::uint8_t ins;
        if (!use_brrip) {
            // SRRIP: long re-reference interval.
            ins = static_cast<std::uint8_t>(rrpvMax_ - 1);
        } else {
            // BRRIP: distant interval, long 1-in-epsilon fills.
            ins = (rng_.nextInt(cfg_.bimodalEpsilon) == 0)
                      ? static_cast<std::uint8_t>(rrpvMax_ - 1)
                      : static_cast<std::uint8_t>(rrpvMax_);
        }
        rrpv_[set * ways_ + way] = ins;
    }

    std::uint32_t
    selectVictim(std::uint32_t set) override
    {
        std::uint8_t *r = &rrpv_[set * ways_];
        while (true) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                if (r[w] == rrpvMax_)
                    return w;
            }
            for (std::uint32_t w = 0; w < ways_; ++w)
                ++r[w];
        }
    }

    PolicyKind
    kind() const override
    {
        switch (mode_) {
          case Mode::SRRIP:
            return PolicyKind::SRRIP;
          case Mode::BRRIP:
            return PolicyKind::BRRIP;
          case Mode::DRRIP:
          default:
            return PolicyKind::DRRIP;
        }
    }

    /** Current PSEL value (for tests/ablations). */
    std::uint32_t psel() const { return psel_; }

  private:
    bool
    isSrripLeader(std::uint32_t set) const
    {
        return set % cfg_.leaderSpacing == 0;
    }

    bool
    isBrripLeader(std::uint32_t set) const
    {
        return set % cfg_.leaderSpacing == cfg_.leaderSpacing / 2;
    }

    Rng rng_;
    const DuelingConfig cfg_;
    const Mode mode_;
    const std::uint32_t rrpvMax_;
    std::vector<std::uint8_t> rrpv_;
    const std::uint32_t pselMax_;
    std::uint32_t psel_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::uint32_t sets, std::uint32_t ways,
           std::uint64_t seed)
{
    if (sets == 0 || ways == 0 || ways > 255)
        WSEL_FATAL("bad cache geometry: " << sets << " sets x "
                                          << ways << " ways");
    DuelingConfig cfg;
    switch (kind) {
      case PolicyKind::LRU:
        return std::make_unique<LruPolicy>(sets, ways);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
      case PolicyKind::FIFO:
        return std::make_unique<FifoPolicy>(sets, ways);
      case PolicyKind::DIP:
        return makeDip(sets, ways, seed, cfg);
      case PolicyKind::BIP:
        return std::make_unique<DipPolicy>(sets, ways, seed, cfg,
                                           true);
      case PolicyKind::LIP:
        // LRU-insertion policy (Qureshi et al.): every fill lands
        // at the LRU position; hits promote normally.
        return std::make_unique<DipPolicy>(sets, ways, seed, cfg,
                                           true, true);
      case PolicyKind::DRRIP:
        return makeDrrip(sets, ways, seed, cfg);
      case PolicyKind::SRRIP:
        return std::make_unique<RripPolicy>(sets, ways, seed, cfg, 2,
                                            RripPolicy::Mode::SRRIP);
      case PolicyKind::BRRIP:
        return std::make_unique<RripPolicy>(sets, ways, seed, cfg, 2,
                                            RripPolicy::Mode::BRRIP);
      case PolicyKind::NRU:
        return std::make_unique<NruPolicy>(sets, ways);
      case PolicyKind::PLRU:
        return std::make_unique<PlruPolicy>(sets, ways);
    }
    WSEL_PANIC("invalid PolicyKind " << static_cast<int>(kind));
}

std::unique_ptr<ReplacementPolicy>
makeDip(std::uint32_t sets, std::uint32_t ways, std::uint64_t seed,
        const DuelingConfig &cfg)
{
    return std::make_unique<DipPolicy>(sets, ways, seed, cfg, false);
}

std::unique_ptr<ReplacementPolicy>
makeDrrip(std::uint32_t sets, std::uint32_t ways, std::uint64_t seed,
          const DuelingConfig &cfg, std::uint32_t rrpvBits)
{
    return std::make_unique<RripPolicy>(sets, ways, seed, cfg,
                                        rrpvBits,
                                        RripPolicy::Mode::DRRIP);
}

} // namespace wsel
