/**
 * @file
 * Vectorized scans over packed 32-bit cache tags.
 *
 * PR 4 packed tags to 32 bits so a 16-way set occupies one host
 * cache line; this header turns the way-probe loop over that line
 * into a single data-parallel compare. Three implementations share
 * one contract — return the lowest way index holding @p want, or
 * @p n when absent:
 *
 *  - findScalar: the reference loop;
 *  - findSwar: branch-free SWAR over two tags per 64-bit word
 *    (portable, no intrinsics);
 *  - findSse2 / findAvx2 (x86-64 only): explicit 4- and 8-wide
 *    compares with a movemask + countr_zero pick.
 *
 * All paths are exact drop-ins: a valid tag ((lineAddr << 1) | 1)
 * appears in at most one way of a set, and for the fill path's
 * invalid-way search (want == 0) every path picks the lowest index,
 * so replacement decisions are bit-for-bit independent of the path.
 *
 * The active path is resolved once per process: WSEL_SIMD
 * (scalar | swar | sse2 | avx2 | auto) overrides, "auto" (the
 * default) picks the widest supported implementation. The choice is
 * observable via the batch.simd_path gauge and microbenchmarked by
 * BM_SwarTagCompare (docs/PERFORMANCE.md).
 */

#ifndef WSEL_CACHE_TAGSCAN_HH
#define WSEL_CACHE_TAGSCAN_HH

#include <bit>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define WSEL_TAGSCAN_X86 1
#include <immintrin.h>
#endif

namespace wsel::tagscan
{

/** Selectable tag-compare implementations, widest last. */
enum class Path : std::uint8_t
{
    Scalar = 0,
    Swar = 1,
    Sse2 = 2,
    Avx2 = 3,
};

/** "scalar" / "swar" / "sse2" / "avx2". */
const char *toString(Path path);

/**
 * The process-wide path: WSEL_SIMD override, else the widest
 * implementation this CPU supports. Resolved once; never changes
 * afterwards.
 */
Path activePath();

/** Reference implementation: lowest way holding @p want, else n. */
inline std::uint32_t
findScalar(const std::uint32_t *tags, std::uint32_t n,
           std::uint32_t want)
{
    for (std::uint32_t w = 0; w < n; ++w) {
        if (tags[w] == want)
            return w;
    }
    return n;
}

/**
 * SWAR: two tags per 64-bit word; a zero 32-bit half of
 * word ^ broadcast(want) marks a match. The zero test
 * (x - kLo) & ~x & kHi is exact for 32-bit fields because the
 * borrow of the low half cannot reach the high half's top bit
 * unless the low half itself is zero.
 */
inline std::uint32_t
findSwar(const std::uint32_t *tags, std::uint32_t n,
         std::uint32_t want)
{
    constexpr std::uint64_t kLo = 0x0000000100000001ULL;
    constexpr std::uint64_t kHi = 0x8000000080000000ULL;
    const std::uint64_t pattern =
        kLo * static_cast<std::uint64_t>(want);
    std::uint32_t w = 0;
    for (; w + 2 <= n; w += 2) {
        std::uint64_t x;
        std::memcpy(&x, tags + w, 8);
        x ^= pattern;
        const std::uint64_t zero = (x - kLo) & ~x & kHi;
        if (zero != 0) {
            // Bit 31 set => low (first) tag matched; prefer it.
            return w + ((zero & 0x80000000ULL) ? 0 : 1);
        }
    }
    if (w < n && tags[w] == want)
        return w;
    return n;
}

#ifdef WSEL_TAGSCAN_X86

/** SSE2: four tags per compare (baseline on x86-64). */
inline std::uint32_t
findSse2(const std::uint32_t *tags, std::uint32_t n,
         std::uint32_t want)
{
    const __m128i pat = _mm_set1_epi32(static_cast<int>(want));
    std::uint32_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + w));
        const int mask =
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, pat)));
        if (mask != 0)
            return w + static_cast<std::uint32_t>(
                           std::countr_zero(
                               static_cast<unsigned>(mask)));
    }
    for (; w < n; ++w) {
        if (tags[w] == want)
            return w;
    }
    return n;
}

/**
 * AVX2: eight tags per compare — a 16-way set resolves in two
 * compares. Compiled with a target attribute so the translation
 * unit needs no global -mavx2; activePath() only selects it when
 * the CPU reports AVX2.
 */
__attribute__((target("avx2"))) inline std::uint32_t
findAvx2(const std::uint32_t *tags, std::uint32_t n,
         std::uint32_t want)
{
    const __m256i pat = _mm256_set1_epi32(static_cast<int>(want));
    std::uint32_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(x, pat)));
        if (mask != 0)
            return w + static_cast<std::uint32_t>(
                           std::countr_zero(
                               static_cast<unsigned>(mask)));
    }
    for (; w < n; ++w) {
        if (tags[w] == want)
            return w;
    }
    return n;
}

#endif // WSEL_TAGSCAN_X86

/** @name Internal dispatch state (read via find()). */
/** @{ */
namespace detail
{
extern const Path gPath; ///< resolved once at first use of find()
}
/** @} */

/**
 * Dispatched scan: the active path's implementation. The dispatch
 * is a predictable two-branch switch on a constant — no indirect
 * call, so the scalar/SWAR bodies still inline into the cache's
 * probe sites.
 */
inline std::uint32_t
find(const std::uint32_t *tags, std::uint32_t n, std::uint32_t want)
{
    switch (detail::gPath) {
#ifdef WSEL_TAGSCAN_X86
      case Path::Avx2:
        // The target attribute keeps findAvx2 out of line, so at a
        // 16-way set (the Table II LLC) its two 256-bit compares
        // cannot recover the call that up to four inlined 128-bit
        // compares with their early exits avoid — narrow sets take
        // the SSE2 body even when the resolved path is AVX2.
        // Identical result either way.
        if (n > 16)
            return findAvx2(tags, n, want);
        [[fallthrough]];
      case Path::Sse2:
        return findSse2(tags, n, want);
#endif
      case Path::Swar:
        return findSwar(tags, n, want);
      default:
        return findScalar(tags, n, want);
    }
}

} // namespace wsel::tagscan

#endif // WSEL_CACHE_TAGSCAN_HH
