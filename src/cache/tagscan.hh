/**
 * @file
 * Vectorized scans over packed 32-bit cache tags.
 *
 * PR 4 packed tags to 32 bits so a 16-way set occupies one host
 * cache line; this header turns the way-probe loop over that line
 * into a single data-parallel compare. Three implementations share
 * one contract — return the lowest way index holding @p want, or
 * @p n when absent:
 *
 *  - findScalar: the reference loop;
 *  - findSwar: branch-free SWAR over two tags per 64-bit word
 *    (portable, no intrinsics);
 *  - findSse2 / findAvx2 (x86-64 only): explicit 4- and 8-wide
 *    compares with a movemask + countr_zero pick.
 *
 * All paths are exact drop-ins: a valid tag ((lineAddr << 1) | 1)
 * appears in at most one way of a set, and for the fill path's
 * invalid-way search (want == 0) every path picks the lowest index,
 * so replacement decisions are bit-for-bit independent of the path.
 *
 * The active path is resolved once per process: WSEL_SIMD
 * (scalar | swar | sse2 | avx2 | auto) overrides, "auto" (the
 * default) picks the widest supported implementation. The choice is
 * observable via the batch.simd_path gauge and microbenchmarked by
 * BM_SwarTagCompare (docs/PERFORMANCE.md).
 *
 * Multi-probe entry points (findMany*) scan several independent
 * sets per call for the wavefront batch engine (sim/batch.hh):
 * each Probe names a tag row, its way count and the wanted tag, and
 * the result slot receives exactly what the single-probe path of
 * the same tier would return — per-probe results never depend on
 * the other probes in the sweep, so gathering is invisible to
 * replacement decisions. What gathering buys is amortization: one
 * call, one dispatched switch and one pattern broadcast per tier
 * cover a whole wave of pending probes whose tag rows the hardware
 * can fetch in parallel (BM_GatheredTagScan).
 */

#ifndef WSEL_CACHE_TAGSCAN_HH
#define WSEL_CACHE_TAGSCAN_HH

#include <bit>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define WSEL_TAGSCAN_X86 1
#include <immintrin.h>
#endif

namespace wsel::tagscan
{

/** Selectable tag-compare implementations, widest last. */
enum class Path : std::uint8_t
{
    Scalar = 0,
    Swar = 1,
    Sse2 = 2,
    Avx2 = 3,
};

/** "scalar" / "swar" / "sse2" / "avx2". */
const char *toString(Path path);

/**
 * The process-wide path: WSEL_SIMD override, else the widest
 * implementation this CPU supports. Resolved once; never changes
 * afterwards.
 */
Path activePath();

/** Reference implementation: lowest way holding @p want, else n. */
inline std::uint32_t
findScalar(const std::uint32_t *tags, std::uint32_t n,
           std::uint32_t want)
{
    for (std::uint32_t w = 0; w < n; ++w) {
        if (tags[w] == want)
            return w;
    }
    return n;
}

/**
 * SWAR: two tags per 64-bit word; a zero 32-bit half of
 * word ^ broadcast(want) marks a match. The zero test
 * (x - kLo) & ~x & kHi is exact for 32-bit fields because the
 * borrow of the low half cannot reach the high half's top bit
 * unless the low half itself is zero.
 */
inline std::uint32_t
findSwar(const std::uint32_t *tags, std::uint32_t n,
         std::uint32_t want)
{
    constexpr std::uint64_t kLo = 0x0000000100000001ULL;
    constexpr std::uint64_t kHi = 0x8000000080000000ULL;
    const std::uint64_t pattern =
        kLo * static_cast<std::uint64_t>(want);
    std::uint32_t w = 0;
    for (; w + 2 <= n; w += 2) {
        std::uint64_t x;
        std::memcpy(&x, tags + w, 8);
        x ^= pattern;
        const std::uint64_t zero = (x - kLo) & ~x & kHi;
        if (zero != 0) {
            // Bit 31 set => low (first) tag matched; prefer it.
            return w + ((zero & 0x80000000ULL) ? 0 : 1);
        }
    }
    if (w < n && tags[w] == want)
        return w;
    return n;
}

#ifdef WSEL_TAGSCAN_X86

/** SSE2: four tags per compare (baseline on x86-64). */
inline std::uint32_t
findSse2(const std::uint32_t *tags, std::uint32_t n,
         std::uint32_t want)
{
    const __m128i pat = _mm_set1_epi32(static_cast<int>(want));
    std::uint32_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + w));
        const int mask =
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, pat)));
        if (mask != 0)
            return w + static_cast<std::uint32_t>(
                           std::countr_zero(
                               static_cast<unsigned>(mask)));
    }
    for (; w < n; ++w) {
        if (tags[w] == want)
            return w;
    }
    return n;
}

/**
 * AVX2: eight tags per compare — a 16-way set resolves in two
 * compares. Compiled with a target attribute so the translation
 * unit needs no global -mavx2; activePath() only selects it when
 * the CPU reports AVX2.
 */
__attribute__((target("avx2"))) inline std::uint32_t
findAvx2(const std::uint32_t *tags, std::uint32_t n,
         std::uint32_t want)
{
    const __m256i pat = _mm256_set1_epi32(static_cast<int>(want));
    std::uint32_t w = 0;
    for (; w + 8 <= n; w += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(x, pat)));
        if (mask != 0)
            return w + static_cast<std::uint32_t>(
                           std::countr_zero(
                               static_cast<unsigned>(mask)));
    }
    for (; w < n; ++w) {
        if (tags[w] == want)
            return w;
    }
    return n;
}

#endif // WSEL_TAGSCAN_X86

/**
 * One pending tag lookup of a gathered sweep: scan @p n ways at
 * @p tags for @p want. Cache::scanProbe() builds these.
 */
struct Probe
{
    const std::uint32_t *tags;
    std::uint32_t n;
    std::uint32_t want;
};

/** Gathered reference sweep: out[i] = findScalar(probes[i]). */
inline void
findManyScalar(const Probe *probes, std::size_t count,
               std::uint32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = findScalar(probes[i].tags, probes[i].n,
                            probes[i].want);
}

/** Gathered SWAR sweep: per-probe results match findSwar. */
inline void
findManySwar(const Probe *probes, std::size_t count,
             std::uint32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = findSwar(probes[i].tags, probes[i].n,
                          probes[i].want);
}

#ifdef WSEL_TAGSCAN_X86

/**
 * Gathered SSE2 sweep. A 16-way probe (the Table II LLC) resolves
 * branch-free: all four 128-bit compares run unconditionally and
 * their movemasks OR into one 16-bit mask whose lowest set bit is
 * the lowest matching way — identical to the early-exit scalar
 * pick, because a valid tag occupies at most one way and the
 * invalid-search (want == 0) pick is lowest-index by construction.
 * Dropping the per-chunk branches lets consecutive probes' loads
 * overlap instead of serializing on four predictions each.
 */
inline void
findManySse2(const Probe *probes, std::size_t count,
             std::uint32_t *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const Probe &p = probes[i];
        if (p.n == 16) {
            const __m128i pat =
                _mm_set1_epi32(static_cast<int>(p.want));
            unsigned mask = 0;
            for (std::uint32_t j = 0; j < 4; ++j) {
                const __m128i x = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(p.tags +
                                                      4 * j));
                mask |= static_cast<unsigned>(_mm_movemask_ps(
                            _mm_castsi128_ps(
                                _mm_cmpeq_epi32(x, pat))))
                        << (4 * j);
            }
            out[i] = mask != 0
                         ? static_cast<std::uint32_t>(
                               std::countr_zero(mask))
                         : 16u;
        } else {
            out[i] = findSse2(p.tags, p.n, p.want);
        }
    }
}

/**
 * Gathered AVX2 sweep: two probes in flight per iteration, each
 * 16-way set in two 256-bit compares with the masks combined as in
 * findManySse2. (The single-probe dispatcher routes 16-way sets to
 * SSE2 because the target-attribute call isn't worth one probe;
 * here the call is already amortized over the sweep.)
 */
__attribute__((target("avx2"))) inline void
findManyAvx2(const Probe *probes, std::size_t count,
             std::uint32_t *out)
{
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        const Probe &a = probes[i];
        const Probe &b = probes[i + 1];
        if (a.n != 16 || b.n != 16) {
            out[i] = findScalar(a.tags, a.n, a.want);
            out[i + 1] = findScalar(b.tags, b.n, b.want);
            continue;
        }
        const __m256i pa =
            _mm256_set1_epi32(static_cast<int>(a.want));
        const __m256i pb =
            _mm256_set1_epi32(static_cast<int>(b.want));
        const __m256i a0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.tags));
        const __m256i a1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.tags + 8));
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.tags));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.tags + 8));
        const unsigned ma =
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(a0, pa)))) |
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(a1, pa))))
                << 8;
        const unsigned mb =
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(b0, pb)))) |
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(b1, pb))))
                << 8;
        out[i] = ma != 0 ? static_cast<std::uint32_t>(
                               std::countr_zero(ma))
                         : 16u;
        out[i + 1] = mb != 0 ? static_cast<std::uint32_t>(
                                   std::countr_zero(mb))
                             : 16u;
    }
    for (; i < count; ++i) {
        const Probe &p = probes[i];
        if (p.n == 16) {
            const __m256i pat =
                _mm256_set1_epi32(static_cast<int>(p.want));
            const __m256i x0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p.tags));
            const __m256i x1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p.tags + 8));
            const unsigned m =
                static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_castsi256_ps(
                        _mm256_cmpeq_epi32(x0, pat)))) |
                static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_castsi256_ps(
                        _mm256_cmpeq_epi32(x1, pat))))
                    << 8;
            out[i] = m != 0 ? static_cast<std::uint32_t>(
                                  std::countr_zero(m))
                            : 16u;
        } else {
            out[i] = findScalar(p.tags, p.n, p.want);
        }
    }
}

#endif // WSEL_TAGSCAN_X86

/** @name Internal dispatch state (read via find()). */
/** @{ */
namespace detail
{
extern const Path gPath; ///< resolved once at first use of find()
}
/** @} */

/**
 * Dispatched scan: the active path's implementation. The dispatch
 * is a predictable two-branch switch on a constant — no indirect
 * call, so the scalar/SWAR bodies still inline into the cache's
 * probe sites.
 */
inline std::uint32_t
find(const std::uint32_t *tags, std::uint32_t n, std::uint32_t want)
{
    switch (detail::gPath) {
#ifdef WSEL_TAGSCAN_X86
      case Path::Avx2:
        // The target attribute keeps findAvx2 out of line, so at a
        // 16-way set (the Table II LLC) its two 256-bit compares
        // cannot recover the call that up to four inlined 128-bit
        // compares with their early exits avoid — narrow sets take
        // the SSE2 body even when the resolved path is AVX2.
        // Identical result either way.
        if (n > 16)
            return findAvx2(tags, n, want);
        [[fallthrough]];
      case Path::Sse2:
        return findSse2(tags, n, want);
#endif
      case Path::Swar:
        return findSwar(tags, n, want);
      default:
        return findScalar(tags, n, want);
    }
}

/**
 * Dispatched gathered sweep: out[i] is exactly what
 * find(probes[i]...) would return — one dispatch for the whole
 * sweep. Probes must reference distinct tag rows or at least rows
 * no probe's eventual fill has mutated since the Probe was built;
 * the wavefront engine guarantees this by gathering at most one
 * probe per cell (cells own private uncores).
 */
inline void
findMany(const Probe *probes, std::size_t count, std::uint32_t *out)
{
    switch (detail::gPath) {
#ifdef WSEL_TAGSCAN_X86
      case Path::Avx2:
        findManyAvx2(probes, count, out);
        return;
      case Path::Sse2:
        findManySse2(probes, count, out);
        return;
#endif
      case Path::Swar:
        findManySwar(probes, count, out);
        return;
      default:
        findManyScalar(probes, count, out);
        return;
    }
}

} // namespace wsel::tagscan

#endif // WSEL_CACHE_TAGSCAN_HH
