/**
 * @file
 * Replacement-policy framework for set-associative caches.
 *
 * The paper's case study compares five LLC replacement policies:
 * LRU, RANDOM, FIFO, DIP (Qureshi et al., ISCA'07) and DRRIP (Jaleel
 * et al., ISCA'10). We implement those five plus several extras
 * (SRRIP, BRRIP, BIP, NRU, PLRU) that are useful for ablations.
 */

#ifndef WSEL_CACHE_REPLACEMENT_HH
#define WSEL_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.hh"

namespace wsel
{

/** Identifiers for the available replacement policies. */
enum class PolicyKind : std::uint8_t
{
    LRU,
    Random,
    FIFO,
    DIP,
    DRRIP,
    SRRIP,
    BRRIP,
    BIP,
    LIP,
    NRU,
    PLRU,
};

/** Short name ("LRU", "RND", "FIFO", "DIP", "DRRIP", ...). */
std::string toString(PolicyKind kind);

/** Parse a short name; fatal on unknown names. */
PolicyKind parsePolicyKind(const std::string &name);

/** The five policies evaluated in the paper, in paper order. */
const std::vector<PolicyKind> &paperPolicies();

/**
 * Replacement state for one cache instance.
 *
 * The cache notifies the policy of hits, fills and misses, and asks
 * it for a victim way when a set is full. Policies may keep per-set
 * per-way metadata and global state (e.g. DIP/DRRIP set-dueling
 * counters).
 */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways)
    {}

    virtual ~ReplacementPolicy() = default;

    /** A lookup hit way @p way of set @p set. */
    virtual void onHit(std::uint32_t set, std::uint32_t way) = 0;

    /** A new line was filled into way @p way of set @p set. */
    virtual void onFill(std::uint32_t set, std::uint32_t way) = 0;

    /** A lookup missed in set @p set (before any fill). */
    virtual void onMiss(std::uint32_t set) { (void)set; }

    /**
     * Choose a victim way in a full set. Only called when every way
     * holds a valid line.
     */
    virtual std::uint32_t selectVictim(std::uint32_t set) = 0;

    /** Policy identifier. */
    virtual PolicyKind kind() const = 0;

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

  protected:
    const std::uint32_t sets_;
    const std::uint32_t ways_;
};

/**
 * Instantiate a policy.
 *
 * @param kind Which policy.
 * @param sets Number of sets in the cache.
 * @param ways Associativity.
 * @param seed Determinism seed for randomized policies.
 */
std::unique_ptr<ReplacementPolicy> makePolicy(PolicyKind kind,
                                              std::uint32_t sets,
                                              std::uint32_t ways,
                                              std::uint64_t seed);

/** Tunables for the set-dueling policies (DIP / DRRIP). */
struct DuelingConfig
{
    /** One leader set per this many sets, per team. */
    std::uint32_t leaderSpacing = 32;
    /** PSEL counter width in bits. */
    std::uint32_t pselBits = 10;
    /** Bimodal throttle: 1-in-N MRU/long insertions. */
    std::uint32_t bimodalEpsilon = 32;
};

/** Instantiate DIP with explicit dueling tunables (for ablations). */
std::unique_ptr<ReplacementPolicy> makeDip(std::uint32_t sets,
                                           std::uint32_t ways,
                                           std::uint64_t seed,
                                           const DuelingConfig &cfg);

/** Instantiate DRRIP with explicit tunables (for ablations). */
std::unique_ptr<ReplacementPolicy> makeDrrip(std::uint32_t sets,
                                             std::uint32_t ways,
                                             std::uint64_t seed,
                                             const DuelingConfig &cfg,
                                             std::uint32_t rrpvBits = 2);

} // namespace wsel

#endif // WSEL_CACHE_REPLACEMENT_HH
