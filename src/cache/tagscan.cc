#include "cache/tagscan.hh"

#include <cstdlib>
#include <string>

#include "stats/logging.hh"

namespace wsel::tagscan
{

const char *
toString(Path path)
{
    switch (path) {
      case Path::Scalar:
        return "scalar";
      case Path::Swar:
        return "swar";
      case Path::Sse2:
        return "sse2";
      case Path::Avx2:
        return "avx2";
    }
    return "scalar";
}

namespace
{

Path
widestSupported()
{
#ifdef WSEL_TAGSCAN_X86
    if (__builtin_cpu_supports("avx2"))
        return Path::Avx2;
    return Path::Sse2; // baseline on x86-64
#else
    return Path::Swar;
#endif
}

Path
resolvePath()
{
    const char *env = std::getenv("WSEL_SIMD");
    if (!env || !*env || std::string(env) == "auto")
        return widestSupported();
    const std::string v(env);
    if (v == "scalar")
        return Path::Scalar;
    if (v == "swar")
        return Path::Swar;
#ifdef WSEL_TAGSCAN_X86
    if (v == "sse2")
        return Path::Sse2;
    if (v == "avx2") {
        if (__builtin_cpu_supports("avx2"))
            return Path::Avx2;
        warn("WSEL_SIMD=avx2 requested but the CPU lacks AVX2; "
             "using sse2");
        return Path::Sse2;
    }
#else
    if (v == "sse2" || v == "avx2") {
        warn("WSEL_SIMD=" + v +
             " is x86-64 only; using the SWAR path");
        return Path::Swar;
    }
#endif
    warn("ignoring unknown WSEL_SIMD '" + v +
         "' (want scalar|swar|sse2|avx2|auto)");
    return widestSupported();
}

} // namespace

namespace detail
{
// Plain dynamic-initialized global: any find() call that races
// static initialization reads the zero value (Scalar), which is
// behaviour-identical, merely unvectorized.
const Path gPath = resolvePath();
} // namespace detail

Path
activePath()
{
    return detail::gPath;
}

} // namespace wsel::tagscan
