/**
 * @file
 * Set-associative cache structure with pluggable replacement.
 *
 * The Cache models tag state only (hit/miss, evictions, dirty bits);
 * timing is the responsibility of the enclosing level (the core for
 * L1s, the Uncore for the shared LLC). This mirrors the split in the
 * paper's toolchain where one uncore model serves both the detailed
 * and the approximate simulator.
 */

#ifndef WSEL_CACHE_CACHE_HH
#define WSEL_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cache/replacement.hh"
#include "cache/tagscan.hh"
#include "stats/logging.hh"

namespace wsel
{

/** Static shape of a cache. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;

    std::uint32_t sets() const;

    /** Fatal unless sizes are consistent powers of two. */
    void validate() const;
};

/** Counters exposed by a Cache. */
struct CacheStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t prefetchAccesses = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t prefetchMisses = 0;
    std::uint64_t writebacksOut = 0; ///< dirty evictions

    double
    demandMissRate() const
    {
        return demandAccesses
                   ? static_cast<double>(demandMisses) /
                         static_cast<double>(demandAccesses)
                   : 0.0;
    }
};

/**
 * Tag-state set-associative cache.
 */
class Cache
{
  public:
    /** A line pushed out by a fill. */
    struct Evicted
    {
        bool valid = false;   ///< an eviction happened
        bool dirty = false;   ///< it needs writing back
        std::uint64_t lineAddr = 0; ///< its line address
    };

    /** Outcome of an access. */
    struct Result
    {
        bool hit = false;
        Evicted evicted; ///< filled-over line (misses only)
    };

    /** Builds a fresh replacement-policy instance (for reset()). */
    using PolicyFactory =
        std::function<std::unique_ptr<ReplacementPolicy>()>;

    /**
     * @param geom Cache shape (validated).
     * @param policy Replacement policy kind.
     * @param seed Seed for randomized policy state.
     * @param name Diagnostic name.
     */
    Cache(const CacheGeometry &geom, PolicyKind policy,
          std::uint64_t seed, std::string name = "cache");

    /**
     * Construct with a custom replacement policy (e.g. DIP/DRRIP
     * with non-default dueling parameters, for ablations).
     *
     * @param geom Cache shape (validated).
     * @param factory Builds the policy; must produce instances
     *        sized for geom.sets() x geom.ways.
     * @param name Diagnostic name.
     */
    Cache(const CacheGeometry &geom, PolicyFactory factory,
          std::string name = "cache");

    /**
     * Look up @p byte_addr; on miss, allocate (write-allocate for
     * both reads and writes) and report any eviction.
     *
     * @param byte_addr Byte address of the access.
     * @param is_write Marks the line dirty on hit/fill.
     * @param is_prefetch Accounted separately from demand traffic.
     */
    Result access(std::uint64_t byte_addr, bool is_write,
                  bool is_prefetch = false);

    /** Tag probe without any state update. */
    bool probe(std::uint64_t byte_addr) const;

    /**
     * Hit half of access() in one tag scan: on a hit, applies
     * exactly the hit-side effects (stats, replacement update,
     * dirty bit) and returns true; on a miss, mutates nothing and
     * returns false — the caller decides whether the miss is ever
     * accounted (it is not when an outstanding MSHR absorbs it).
     * Equivalent to probe() followed by access() on the hit path,
     * without the second scan.
     */
    bool accessIfHit(std::uint64_t byte_addr, bool is_write,
                     bool is_prefetch = false);

    /**
     * The tag scan an access to @p byte_addr performs, as a gather
     * descriptor for tagscan::findMany(). The pointer references
     * this cache's tag array and is invalidated by any fill to the
     * same set (missFill/access/writeback) — build, sweep, and
     * consume via finishAccessAt() before touching the cache again.
     */
    tagscan::Probe
    scanProbe(std::uint64_t byte_addr) const
    {
        const std::uint64_t la = lineAddr(byte_addr);
        const std::uint32_t set = setIndex(la);
        return tagscan::Probe{
            &tags_[static_cast<std::size_t>(set) * geom_.ways],
            geom_.ways, tagFor(la)};
    }

    /** Set index of @p byte_addr (gather conflict tracking). */
    std::uint32_t
    setOf(std::uint64_t byte_addr) const
    {
        return setIndex(lineAddr(byte_addr));
    }

    /**
     * accessIfHit() with the tag scan already done: @p way is the
     * result of sweeping scanProbe(byte_addr). Applies the hit-side
     * effects and returns true when way < ways; mutates nothing on
     * a miss. accessIfHit() is exactly
     * finishAccessAt(a, find(scanProbe(a)), ...).
     */
    bool finishAccessAt(std::uint64_t byte_addr, std::uint32_t way,
                        bool is_write, bool is_prefetch = false);

    /**
     * Miss half of access() without the tag scan, for callers that
     * already observed the miss (probe() or accessIfHit()) with no
     * intervening fill: accounts the miss and allocates the line.
     * Equivalent to access() on a known-missing address.
     */
    Result missFill(std::uint64_t byte_addr, bool is_write,
                    bool is_prefetch = false);

    /**
     * Write-back from an inner level: marks the line dirty if
     * present; otherwise allocates it dirty (no inclusion tracking).
     */
    Result writeback(std::uint64_t byte_addr);

    /** Invalidate every line and reset statistics. */
    void reset();

    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }
    PolicyKind policyKind() const { return policy_->kind(); }
    const std::string &name() const { return name_; }

    /** Line address (byte address / line size). */
    std::uint64_t
    lineAddr(std::uint64_t byte_addr) const
    {
        return byte_addr >> lineShift_;
    }

  private:
    std::uint32_t setIndex(std::uint64_t line_addr) const;
    Result fill(std::uint64_t line_addr, bool is_write);

    CacheGeometry geom_;
    std::string name_;
    PolicyFactory factory_;
    std::uint32_t lineShift_;
    std::uint32_t setMask_;

    /**
     * Tag metadata split into contiguous per-field arrays so the
     * way-probe loop scans one dense cache line per set instead of
     * striding through full line records. Encoding:
     * tags_[i] = (lineAddr << 1) | 1 for a valid line, 0 when
     * invalid. Tags are packed to 32 bits so a 16-way set scan
     * touches a single host cache line; every address this project
     * generates (virtual regions below ~4.5 GiB, sequentially
     * allocated physical pages) keeps line addresses far below the
     * 31-bit limit, which tagFor() asserts.
     */
    std::uint32_t
    tagFor(std::uint64_t line_addr) const
    {
        WSEL_ASSERT(line_addr >> 31 == 0,
                    "line address exceeds the 31-bit packed-tag "
                    "range in cache '"
                        << name_ << "'");
        return (static_cast<std::uint32_t>(line_addr) << 1) | 1u;
    }

    std::vector<std::uint32_t> tags_;
    std::vector<std::uint8_t> dirty_;

    std::unique_ptr<ReplacementPolicy> policy_;
    CacheStats stats_;
};

} // namespace wsel

#endif // WSEL_CACHE_CACHE_HH
