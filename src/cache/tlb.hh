/**
 * @file
 * Small set-associative TLB with LRU replacement (Table I models
 * 128-entry ITLB and 512-entry DTLB with 4 kB pages).
 */

#ifndef WSEL_CACHE_TLB_HH
#define WSEL_CACHE_TLB_HH

#include <cstdint>
#include <vector>

namespace wsel
{

/**
 * Translation look-aside buffer. Only hit/miss behaviour is
 * modelled; the page walk penalty is applied by the core.
 */
class Tlb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param ways Associativity (divides entries).
     * @param page_bytes Page size (power of two).
     */
    Tlb(std::uint32_t entries, std::uint32_t ways,
        std::uint32_t page_bytes = 4096);

    /** Look up @p vaddr; allocates on miss. @return hit? */
    bool access(std::uint64_t vaddr);

    /** Invalidate all entries; keep statistics. */
    void flush();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                               static_cast<double>(accesses_)
                         : 0.0;
    }

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        bool valid = false;
        std::uint8_t lru = 0;
    };

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t pageShift_;
    std::vector<Entry> entries_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace wsel

#endif // WSEL_CACHE_TLB_HH
