#include "trace/trace_generator.hh"

#include <algorithm>
#include <cmath>

#include "stats/logging.hh"

namespace wsel
{

namespace
{

/** Cap register-dependence distances to something a ROB can track. */
constexpr std::uint16_t kMaxDepDist = 64;

/** Fraction of branch sites that behave like loop back-edges. */
constexpr double kLoopSiteFrac = 0.5;

/** Strongly-biased sites' probability of the dominant direction. */
constexpr double kBiasedSiteProb = 0.985;

} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile)
    : profile_(profile), dyn_(profile.seed * 0x2545f4914f6cdd1dULL + 1)
{
    profile_.validate();
    buildStaticLayout();
    reset();
}

void
TraceGenerator::buildStaticLayout()
{
    // The static layout is derived from a separate generator so the
    // dynamic stream seed does not perturb the code shape.
    Rng layout(profile_.seed * 0x9e3779b97f4a7c15ULL + 7);

    const double branch_frac = std::max(profile_.branchFrac, 0.02);
    const double mean_len = 1.0 / branch_frac;
    const double nb = 1.0 - profile_.branchFrac;
    const double load_end = profile_.loadFrac / nb;
    const double store_end = load_end + profile_.storeFrac / nb;
    const double fp_end = store_end + profile_.fpFrac / nb;

    blocks_.resize(profile_.staticBlocks);
    slots_.clear();
    for (std::uint32_t b = 0; b < profile_.staticBlocks; ++b) {
        Block &blk = blocks_[b];
        blk.firstSlot = static_cast<std::uint32_t>(slots_.size());
        const std::uint32_t lo = std::max<std::uint32_t>(
            2, static_cast<std::uint32_t>(mean_len * 0.5));
        const std::uint32_t hi = std::max<std::uint32_t>(
            lo + 1, static_cast<std::uint32_t>(mean_len * 1.5));
        blk.length =
            static_cast<std::uint32_t>(layout.nextIntRange(lo, hi));

        // Static kinds for the body slots; the final slot is the
        // terminating branch. Region bindings are assigned in a
        // second, quota-exact pass below.
        for (std::uint32_t i = 0; i + 1 < blk.length; ++i) {
            Slot s;
            const double r = layout.nextDouble();
            if (r < load_end) {
                s.kind = OpKind::Load;
            } else if (r < store_end) {
                s.kind = OpKind::Store;
            } else if (r < fp_end) {
                s.kind = OpKind::FpAlu;
            } else {
                s.kind = OpKind::IntAlu;
            }
            slots_.push_back(s);
        }
        Slot br;
        br.kind = OpKind::Branch;
        slots_.push_back(br);

        // Control flow is a forward sweep with bounded self-loops:
        // loop sites repeat their own block loopPeriod-1 times, all
        // other branches fall through either way. Outcomes still
        // exercise the branch predictor (and mispredict stalls), but
        // block visit rates stay uniform, so the realized
        // instruction/region mix matches the profile.
        blk.fallTarget = (b + 1) % profile_.staticBlocks;
        blk.takenTarget = blk.fallTarget;

        // Branch-site behaviour: loop back-edges (predictable),
        // strongly-biased sites (predictable) and a branchNoise
        // fraction of weakly-biased "hard" sites.
        if (layout.nextDouble() < kLoopSiteFrac) {
            blk.site = BranchSite::Loop;
            // Trip counts below ~7 degrade to bimodal accuracy in
            // small TAGE configurations; real inner loops are
            // longer, so floor the effective bias.
            const double p =
                std::clamp(profile_.branchBias, 0.85, 0.97);
            blk.loopPeriod = std::max<std::uint32_t>(
                2, static_cast<std::uint32_t>(
                       std::lround(1.0 / (1.0 - p))));
            blk.takenTarget = b; // self-loop back-edge
        } else if (layout.nextDouble() < profile_.branchNoise) {
            blk.site = BranchSite::Hard;
            blk.takenProb = 0.3 + 0.4 * layout.nextDouble();
        } else {
            blk.site = BranchSite::Biased;
            // Dominant direction follows the profile bias.
            blk.takenProb = layout.nextBool(profile_.branchBias)
                                ? kBiasedSiteProb
                                : 1.0 - kBiasedSiteProb;
        }
    }
    loopCounters_.assign(blocks_.size(), 0);

    // Second pass: bind memory slots to regions with quota-exact
    // largest-remainder allocation, so even per-mille mixture
    // fractions are realized faithfully regardless of slot count.
    std::vector<std::size_t> mem_slots;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].kind == OpKind::Load ||
            slots_[i].kind == OpKind::Store)
            mem_slots.push_back(i);
    }
    const std::size_t m = mem_slots.size();
    const double fracs[5] = {profile_.l1Frac, profile_.hotFrac,
                             profile_.streamFrac,
                             profile_.randomFrac,
                             profile_.chaseFrac};
    const Region regions[5] = {Region::L1, Region::Hot,
                               Region::Stream, Region::Random,
                               Region::Chase};
    std::size_t counts[5];
    std::size_t assigned = 0;
    double rema[5];
    for (int r = 0; r < 5; ++r) {
        const double q = fracs[r] * static_cast<double>(m);
        counts[r] = static_cast<std::size_t>(q);
        rema[r] = q - std::floor(q);
        assigned += counts[r];
    }
    while (assigned < m) {
        int best = 0;
        for (int r = 1; r < 5; ++r) {
            if (rema[r] > rema[best])
                best = r;
        }
        ++counts[best];
        rema[best] = -1.0;
        ++assigned;
    }
    std::vector<Region> pool;
    pool.reserve(m);
    for (int r = 0; r < 5; ++r)
        pool.insert(pool.end(), counts[r], regions[r]);
    layout.shuffle(pool);
    for (std::size_t i = 0; i < m; ++i)
        slots_[mem_slots[i]].region = pool[i];
}

void
TraceGenerator::reset()
{
    dyn_ = Rng(profile_.seed * 0x2545f4914f6cdd1dULL + 1);
    generated_ = 0;
    curBlock_ = 0;
    curOffset_ = 0;
    l1Pos_ = 0;
    hotPos_ = 0;
    streamPos_ = 0;
    chaseCur_ = 0;
    lastChaseAge_ = 0;
    haveChase_ = false;
    std::fill(loopCounters_.begin(), loopCounters_.end(), 0);
}

TraceDynState
TraceGenerator::saveState() const
{
    TraceDynState s;
    s.dyn = dyn_;
    s.generated = generated_;
    s.curBlock = curBlock_;
    s.curOffset = curOffset_;
    s.l1Pos = l1Pos_;
    s.hotPos = hotPos_;
    s.streamPos = streamPos_;
    s.chaseCur = chaseCur_;
    s.lastChaseAge = lastChaseAge_;
    s.haveChase = haveChase_;
    s.loopCounters = loopCounters_;
    return s;
}

void
TraceGenerator::restoreState(const TraceDynState &state)
{
    WSEL_ASSERT(state.loopCounters.size() == blocks_.size(),
                "trace state from a different static layout");
    dyn_ = state.dyn;
    generated_ = state.generated;
    curBlock_ = state.curBlock;
    curOffset_ = state.curOffset;
    l1Pos_ = state.l1Pos;
    hotPos_ = state.hotPos;
    streamPos_ = state.streamPos;
    chaseCur_ = state.chaseCur;
    lastChaseAge_ = state.lastChaseAge;
    haveChase_ = state.haveChase;
    loopCounters_ = state.loopCounters;
}

std::uint64_t
TraceGenerator::regionAddress(Region r)
{
    switch (r) {
      case Region::L1:
        // L1-resident region: short-stride cyclic walk.
        l1Pos_ = (l1Pos_ + 16) % profile_.l1Bytes;
        return l1Base + l1Pos_;
      case Region::Hot:
        // Hot working set: line-stride cyclic walk.
        hotPos_ = (hotPos_ + profile_.hotStrideBytes) %
                  profile_.hotBytes;
        return hotBase + hotPos_;
      case Region::Stream:
        // Streaming scan, one line per access, wrapping at the
        // footprint (period far exceeds any trace we simulate).
        streamPos_ = (streamPos_ + 64) % profile_.footprintBytes;
        return streamBase + streamPos_;
      case Region::Random: {
        const std::uint64_t lines = profile_.footprintBytes / 64;
        return randomBase + 64 * dyn_.nextInt(lines);
      }
      case Region::Chase: {
        // Pointer chase: an LCG walk over the chase table.
        const std::uint64_t entries =
            std::max<std::uint64_t>(2, profile_.chaseBytes / 64);
        chaseCur_ = (chaseCur_ * 6364136223846793005ULL +
                     1442695040888963407ULL) % entries;
        return chaseBase + chaseCur_ * 64;
      }
    }
    WSEL_PANIC("invalid region");
}

void
TraceGenerator::emitBranch(const Block &blk,
                           std::uint32_t block_index)
{
    out_.kind = OpKind::Branch;
    out_.latency = 1;
    bool taken;
    if (blk.site == BranchSite::Loop) {
        std::uint32_t &cnt = loopCounters_[block_index];
        ++cnt;
        if (cnt >= blk.loopPeriod) {
            cnt = 0;
            taken = false;
        } else {
            taken = true;
        }
    } else {
        taken = dyn_.nextBool(blk.takenProb);
    }
    out_.taken = taken;
    curBlock_ = taken ? blk.takenTarget : blk.fallTarget;
    curOffset_ = 0;
}

const MicroOp &
TraceGenerator::next()
{
    const std::uint32_t bidx = curBlock_;
    const Block &blk = blocks_[bidx];
    const Slot &slot = slots_[blk.firstSlot + curOffset_];

    out_ = MicroOp{};
    out_.pc = codeBase + 4ULL * (blk.firstSlot + curOffset_);

    auto draw_dep = [this]() -> std::uint16_t {
        if (!dyn_.nextBool(profile_.depProb))
            return 0;
        const std::uint64_t d =
            1 + dyn_.nextGeometric(profile_.depDecay);
        return static_cast<std::uint16_t>(
            std::min<std::uint64_t>(d, kMaxDepDist));
    };

    switch (slot.kind) {
      case OpKind::Branch:
        out_.dep1 = draw_dep();
        emitBranch(blk, bidx);
        break;

      case OpKind::Load:
        out_.kind = OpKind::Load;
        out_.addr = regionAddress(slot.region);
        out_.latency = 0; // determined by the memory hierarchy
        out_.dep1 = draw_dep();
        if (slot.region == Region::Chase) {
            // Serialize on the previous chase load.
            if (haveChase_ && lastChaseAge_ + 1 <= kMaxDepDist) {
                out_.dep1 = static_cast<std::uint16_t>(
                    lastChaseAge_ + 1);
            }
            haveChase_ = true;
            lastChaseAge_ = 0;
        }
        ++curOffset_;
        break;

      case OpKind::Store:
        out_.kind = OpKind::Store;
        out_.addr = regionAddress(slot.region);
        out_.latency = 1;
        out_.dep1 = draw_dep();
        out_.dep2 = draw_dep();
        ++curOffset_;
        break;

      case OpKind::FpAlu:
        out_.kind = OpKind::FpAlu;
        out_.latency = profile_.fpLatency;
        out_.dep1 = draw_dep();
        out_.dep2 = draw_dep();
        ++curOffset_;
        break;

      case OpKind::IntAlu:
        out_.kind = OpKind::IntAlu;
        out_.latency = 1;
        out_.dep1 = draw_dep();
        out_.dep2 = draw_dep();
        ++curOffset_;
        break;
    }

    if (haveChase_ &&
        !(out_.kind == OpKind::Load && out_.addr >= chaseBase &&
          out_.addr < streamBase)) {
        ++lastChaseAge_;
    }

    ++generated_;
    return out_;
}

} // namespace wsel
