#include "trace/trace_store.hh"

#include <cstdint>
#include <cstdlib>
#include <string>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "mem/numa.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/logging.hh"

namespace wsel
{

namespace
{

/** WSEL_TRACE_HUGEPAGES=1 opts chunk arrays into THP backing. */
bool
traceHugepagesEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("WSEL_TRACE_HUGEPAGES");
        return env && *env && std::string(env) != "0";
    }();
    return enabled;
}

/**
 * Advise the kernel to back @p data's pages with transparent huge
 * pages. Purely a performance hint: trims the page-table walk cost
 * of the fetch loops streaming the large addr/pc arrays. The range
 * is rounded inward to page boundaries; sub-page arrays are left
 * alone. Failures are ignored — THP may be disabled system-wide.
 */
void
adviseHugepages(const void *data, std::size_t bytes)
{
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    if (!traceHugepagesEnabled() || bytes == 0)
        return;
    static const std::uintptr_t page = static_cast<std::uintptr_t>(
        ::sysconf(_SC_PAGESIZE));
    const std::uintptr_t lo =
        (reinterpret_cast<std::uintptr_t>(data) + page - 1) &
        ~(page - 1);
    const std::uintptr_t hi =
        (reinterpret_cast<std::uintptr_t>(data) + bytes) &
        ~(page - 1);
    if (hi > lo)
        (void)::madvise(reinterpret_cast<void *>(lo), hi - lo,
                        MADV_HUGEPAGE);
#else
    (void)data;
    (void)bytes;
#endif
}

} // namespace

// -------------------------------------------------------------------
// TraceStream
// -------------------------------------------------------------------

TraceStream::TraceStream(TraceStore &store,
                         const BenchmarkProfile &profile,
                         std::uint32_t chunk_uops)
    : store_(store), profile_(profile), chunkUops_(chunk_uops),
      gen_(profile_)
{
    WSEL_ASSERT(chunkUops_ > 0, "chunk size must be positive");
    // checkpoints_[0]: the pristine state at µop 0.
    checkpoints_.push_back(gen_.saveState());
}

std::shared_ptr<TraceChunk>
TraceStream::buildOne()
{
    static obs::Counter &built =
        obs::counter("trace_store.chunks_built");
    static obs::LatencyHistogram &build_ns =
        obs::histogram("trace_store.build_ns");
    obs::Span span("trace_store.build",
                   "{\"bench\":\"" + profile_.name + "\"}");
    obs::LatencyHistogram::Timer timer(build_ns);

    // reserve() up front also fixes the arrays' NUMA home: the
    // build loop below runs on the requesting worker thread, so
    // first touch places the pages on that worker's node.
    auto c = std::make_shared<TraceChunk>();
    c->firstUop = gen_.generated();
    c->count = chunkUops_;
    c->kind.reserve(chunkUops_);
    c->addr.reserve(chunkUops_);
    c->pc.reserve(chunkUops_);
    c->dep1.reserve(chunkUops_);
    c->dep2.reserve(chunkUops_);
    c->latency.reserve(chunkUops_);
    c->taken.reserve(chunkUops_);
    for (std::uint32_t i = 0; i < chunkUops_; ++i) {
        const MicroOp &u = gen_.next();
        c->kind.push_back(static_cast<std::uint8_t>(u.kind));
        c->addr.push_back(u.addr);
        c->pc.push_back(u.pc);
        c->dep1.push_back(u.dep1);
        c->dep2.push_back(u.dep2);
        c->latency.push_back(u.latency);
        c->taken.push_back(u.taken ? 1 : 0);
    }
    // Only the 8-byte-per-µop arrays span enough pages to benefit.
    adviseHugepages(c->addr.data(),
                    c->addr.size() * sizeof(std::uint64_t));
    adviseHugepages(c->pc.data(),
                    c->pc.size() * sizeof(std::uint64_t));
    // WSEL_NUMA=interleave re-spreads the big arrays after the
    // first-touch build above (mem/numa.hh; default keeps them on
    // this worker's node).
    numa::placeSlab(c->addr.data(),
                    c->addr.size() * sizeof(std::uint64_t));
    numa::placeSlab(c->pc.data(),
                    c->pc.size() * sizeof(std::uint64_t));

    built.inc();
    builds_.fetch_add(1, std::memory_order_relaxed);
    return c;
}

std::shared_ptr<const TraceChunk>
TraceStream::chunk(std::uint64_t idx)
{
    if (auto sp = store_.lookup(*this, idx))
        return sp;

    // Builds are serialized per stream: chunk i+1 needs the
    // generator state after chunk i, so concurrent cold-starters
    // queue here and re-check — each chunk is built exactly once.
    std::lock_guard<std::mutex> build_lock(buildMu_);
    if (auto sp = store_.lookup(*this, idx))
        return sp;

    // Chunks 0..checkpoints_.size()-2 have been built before (a
    // checkpoint marks each completed boundary): restoring the
    // chunk's own checkpoint regenerates it alone. Beyond the
    // frontier, extend from the last checkpoint, installing every
    // intermediate chunk on the way.
    const std::uint64_t frontier = checkpoints_.size() - 1;
    std::shared_ptr<const TraceChunk> out;
    if (idx < frontier) {
        gen_.restoreState(checkpoints_[idx]);
        auto c = buildOne();
        out = c;
        store_.install(*this, idx, std::move(c));
    } else {
        gen_.restoreState(checkpoints_[frontier]);
        for (std::uint64_t i = frontier; i <= idx; ++i) {
            auto c = buildOne();
            checkpoints_.push_back(gen_.saveState());
            if (i == idx)
                out = c;
            store_.install(*this, i, std::move(c));
        }
    }
    return out;
}

// -------------------------------------------------------------------
// TraceCursor
// -------------------------------------------------------------------

void
TraceCursor::refill()
{
    WSEL_ASSERT(stream_ != nullptr,
                "cursor is not attached to a stream");
    const std::uint32_t cu = stream_->chunkUops();
    chunk_ = stream_->chunk(pos_ / cu);
    kind_ = chunk_->kind.data();
    addr_ = chunk_->addr.data();
    pc_ = chunk_->pc.data();
    dep1_ = chunk_->dep1.data();
    dep2_ = chunk_->dep2.data();
    latency_ = chunk_->latency.data();
    taken_ = chunk_->taken.data();
    idx_ = static_cast<std::uint32_t>(pos_ % cu);
    count_ = chunk_->count;
}

void
TraceCursor::dropChunk()
{
    chunk_.reset();
    kind_ = nullptr;
    addr_ = nullptr;
    pc_ = nullptr;
    dep1_ = nullptr;
    dep2_ = nullptr;
    latency_ = nullptr;
    taken_ = nullptr;
    idx_ = 0;
    count_ = 0;
}

// -------------------------------------------------------------------
// BatchPin
// -------------------------------------------------------------------

void
BatchPin::pin(TraceStore &store, const BenchmarkProfile &profile,
              std::uint64_t uops)
{
    static obs::Counter &pins_saved =
        obs::counter("batch.chunk_pins_saved");
    WSEL_ASSERT(!store_ || store_ == &store,
                "one BatchPin cannot span two stores");
    store_ = &store;
    if (uops == 0)
        return;
    auto s = store.stream(profile);
    const std::uint64_t last = (uops - 1) / s->chunkUops();
    for (std::uint64_t i = 0; i <= last; ++i) {
        std::shared_ptr<const TraceChunk> c = s->chunk(i);
        if (seen_.insert(c.get()).second) {
            chunks_.push_back(std::move(c));
        } else {
            ++saved_;
            pins_saved.inc();
        }
    }
}

void
BatchPin::release()
{
    if (chunks_.empty() && !store_)
        return;
    chunks_.clear();
    seen_.clear();
    saved_ = 0;
    if (store_) {
        // Pins may have held the store over budget; converge now.
        store_->trimToBudget();
        store_ = nullptr;
    }
}

// -------------------------------------------------------------------
// TraceStore
// -------------------------------------------------------------------

TraceStore::TraceStore(std::size_t budget_bytes,
                       std::uint32_t chunk_uops)
    : budgetBytes_(budget_bytes), chunkUops_(chunk_uops)
{
    WSEL_ASSERT(chunk_uops > 0, "chunk size must be positive");
}

TraceStore &
TraceStore::global()
{
    static TraceStore *g = [] {
        std::size_t budget = kDefaultBudgetBytes;
        if (const char *env = std::getenv("WSEL_TRACE_MEM")) {
            char *end = nullptr;
            const unsigned long long mib =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0') {
                budget = static_cast<std::size_t>(mib) << 20;
            } else {
                warn("ignoring invalid WSEL_TRACE_MEM '" +
                     std::string(env) + "' (want MiB)");
            }
        }
        // Leaked on purpose: bench static destructors may still
        // hold cursors at exit (same idiom as the obs registry).
        return new TraceStore(budget);
    }();
    return *g;
}

std::shared_ptr<TraceStream>
TraceStore::stream(const BenchmarkProfile &profile)
{
    const std::uint64_t key = profile.parameterHash();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(key);
    if (it != streams_.end())
        return it->second;
    auto s = std::make_shared<TraceStream>(
        *this, profile,
        chunkUops_.load(std::memory_order_relaxed));
    streams_.emplace(key, s);
    return s;
}

void
TraceStore::ensureBuilt(const BenchmarkProfile &profile,
                        std::uint64_t uops)
{
    if (uops == 0)
        return;
    auto s = stream(profile);
    const std::uint64_t last = (uops - 1) / s->chunkUops();
    for (std::uint64_t i = 0; i <= last; ++i)
        s->chunk(i);
}

void
TraceStore::setBudgetBytes(std::size_t bytes)
{
    budgetBytes_.store(bytes, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    evictLocked(nullptr);
}

void
TraceStore::setChunkUops(std::uint32_t uops)
{
    WSEL_ASSERT(uops > 0, "chunk size must be positive");
    chunkUops_.store(uops, std::memory_order_relaxed);
}

std::size_t
TraceStore::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return residentBytes_;
}

void
TraceStore::trimToBudget()
{
    static obs::Gauge &resident =
        obs::gauge("trace_store.resident_bytes");
    std::lock_guard<std::mutex> lock(mu_);
    evictLocked(nullptr);
    resident.set(static_cast<double>(residentBytes_));
}

void
TraceStore::clear()
{
    static obs::Gauge &resident =
        obs::gauge("trace_store.resident_bytes");
    std::lock_guard<std::mutex> lock(mu_);
    streams_.clear();
    residentBytes_ = 0;
    resident.set(0);
}

std::shared_ptr<const TraceChunk>
TraceStore::lookup(TraceStream &s, std::uint64_t idx)
{
    static obs::Counter &hits =
        obs::counter("trace_store.chunk_hits");
    std::lock_guard<std::mutex> lock(mu_);
    if (idx < s.entries_.size() && s.entries_[idx].chunk) {
        s.entries_[idx].lastUse = ++tick_;
        hits.inc();
        return s.entries_[idx].chunk;
    }
    return nullptr;
}

void
TraceStore::install(TraceStream &s, std::uint64_t idx,
                    std::shared_ptr<const TraceChunk> chunk)
{
    static obs::Gauge &resident =
        obs::gauge("trace_store.resident_bytes");
    std::lock_guard<std::mutex> lock(mu_);
    if (idx >= s.entries_.size())
        s.entries_.resize(idx + 1);
    TraceStream::Entry &e = s.entries_[idx];
    if (e.chunk)
        return; // already resident (benign rebuild race)
    residentBytes_ += chunk->bytes();
    e.chunk = std::move(chunk);
    e.lastUse = ++tick_;
    evictLocked(&e);
    resident.set(static_cast<double>(residentBytes_));
}

void
TraceStore::evictLocked(const TraceStream::Entry *keep)
{
    static obs::Counter &evicted =
        obs::counter("trace_store.chunks_evicted");
    const std::size_t budget =
        budgetBytes_.load(std::memory_order_relaxed);
    while (residentBytes_ > budget) {
        TraceStream::Entry *lru = nullptr;
        for (auto &kv : streams_) {
            for (TraceStream::Entry &e : kv.second->entries_) {
                // use_count > 1 means a cursor or BatchPin still
                // holds the chunk: evicting it would keep the
                // memory alive through that reader while
                // un-charging it from the budget, and force a
                // pointless rebuild for the next reader. Pinned
                // chunks are therefore ineligible; the budget
                // converges when the pins release (trimToBudget).
                if (e.chunk && &e != keep &&
                    e.chunk.use_count() == 1 &&
                    (!lru || e.lastUse < lru->lastUse))
                    lru = &e;
            }
        }
        if (!lru)
            break; // everything left is pinned
        residentBytes_ -= lru->chunk->bytes();
        lru->chunk.reset();
        evicted.inc();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace wsel
