#include "trace/benchmark_profile.hh"

#include <cmath>

#include "stats/logging.hh"

namespace wsel
{

std::string
toString(MpkiClass c)
{
    switch (c) {
      case MpkiClass::Low:
        return "Low";
      case MpkiClass::Medium:
        return "Medium";
      case MpkiClass::High:
        return "High";
    }
    WSEL_PANIC("invalid MpkiClass " << static_cast<int>(c));
}

MpkiClass
classifyMpki(double mpki, double scale)
{
    if (scale <= 0.0)
        WSEL_FATAL("MPKI threshold scale must be positive");
    if (mpki < 1.0 * scale)
        return MpkiClass::Low;
    if (mpki < 5.0 * scale)
        return MpkiClass::Medium;
    return MpkiClass::High;
}

void
BenchmarkProfile::validate() const
{
    auto in01 = [](double x) { return x >= 0.0 && x <= 1.0; };
    if (!in01(loadFrac) || !in01(storeFrac) || !in01(branchFrac) ||
        !in01(fpFrac) || loadFrac + storeFrac + branchFrac + fpFrac > 1.0)
        WSEL_FATAL("benchmark " << name << ": bad instruction mix");
    const double msum = l1Frac + hotFrac + streamFrac + randomFrac +
                        chaseFrac;
    if (std::abs(msum - 1.0) > 1e-9)
        WSEL_FATAL("benchmark " << name
                                << ": memory mixture sums to " << msum);
    if (hotStrideBytes == 0 || hotBytes == 0 || l1Bytes == 0 ||
        footprintBytes < 64 || chaseBytes < 64)
        WSEL_FATAL("benchmark " << name << ": bad region sizes");
    if (staticBranches == 0 || staticBlocks == 0)
        WSEL_FATAL("benchmark " << name << ": bad code shape");
    if (!in01(branchBias) || !in01(branchNoise) || !in01(depProb) ||
        depDecay <= 0.0 || depDecay >= 1.0)
        WSEL_FATAL("benchmark " << name << ": bad behaviour params");
}

std::uint64_t
BenchmarkProfile::parameterHash() const
{
    // FNV-1a over the parameter bytes, field by field.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const void *p, std::size_t n) {
        const unsigned char *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    };
    auto mix_d = [&](double v) { mix(&v, sizeof(v)); };
    auto mix_u = [&](std::uint64_t v) { mix(&v, sizeof(v)); };
    mix(name.data(), name.size());
    mix_u(seed);
    mix_d(loadFrac); mix_d(storeFrac); mix_d(branchFrac);
    mix_d(fpFrac);
    mix_d(l1Frac); mix_d(hotFrac); mix_d(streamFrac);
    mix_d(randomFrac); mix_d(chaseFrac);
    mix_u(l1Bytes); mix_u(hotBytes); mix_u(footprintBytes);
    mix_u(chaseBytes); mix_u(hotStrideBytes);
    mix_u(staticBranches);
    mix_d(branchBias); mix_d(branchNoise);
    mix_d(depProb); mix_d(depDecay);
    mix_u(fpLatency); mix_u(staticBlocks);
    return h;
}

namespace
{

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

/** Builder with fluent-ish field tweaks to keep the table readable. */
BenchmarkProfile
base(const std::string &name, std::uint64_t seed, MpkiClass cls)
{
    BenchmarkProfile p;
    p.name = name;
    p.seed = seed;
    p.paperClass = cls;
    return p;
}

std::vector<BenchmarkProfile>
makeSuite()
{
    std::vector<BenchmarkProfile> v;

    // ---------------- Low MPKI class (LLC MPKI < 1) ----------------
    // Mostly L1-resident working sets; small LLC-level hot sets and
    // negligible streaming. FP benchmarks get higher fpFrac and
    // longer dependence chains.

    {
        auto p = base("povray", 101, MpkiClass::Low);
        p.loadFrac = 0.28; p.storeFrac = 0.09; p.branchFrac = 0.14;
        p.fpFrac = 0.22;
        p.l1Frac = 0.97; p.hotFrac = 0.028; p.streamFrac = 0.001;
        p.randomFrac = 0.001; p.chaseFrac = 0.0;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 6 * kKiB;
        p.footprintBytes = 2 * kMiB;
        p.branchBias = 0.80; p.branchNoise = 0.10;
        v.push_back(p);
    }
    {
        auto p = base("gromacs", 102, MpkiClass::Low);
        p.loadFrac = 0.30; p.storeFrac = 0.12; p.branchFrac = 0.08;
        p.fpFrac = 0.30;
        p.l1Frac = 0.944; p.hotFrac = 0.053; p.streamFrac = 0.002;
        p.randomFrac = 0.001; p.chaseFrac = 0.0;
        p.l1Bytes = 7 * kKiB; p.hotBytes = 10 * kKiB;
        p.footprintBytes = 4 * kMiB;
        p.branchBias = 0.92; p.branchNoise = 0.03;
        p.depProb = 0.85; p.depDecay = 0.45;
        v.push_back(p);
    }
    {
        auto p = base("milc", 103, MpkiClass::Low);
        p.loadFrac = 0.33; p.storeFrac = 0.14; p.branchFrac = 0.05;
        p.fpFrac = 0.28;
        p.l1Frac = 0.968; p.hotFrac = 0.028; p.streamFrac = 0.003;
        p.randomFrac = 0.001; p.chaseFrac = 0.0;
        p.l1Bytes = 5 * kKiB; p.hotBytes = 8 * kKiB;
        p.footprintBytes = 8 * kMiB;
        p.branchBias = 0.95; p.branchNoise = 0.02;
        v.push_back(p);
    }
    {
        auto p = base("calculix", 104, MpkiClass::Low);
        p.loadFrac = 0.29; p.storeFrac = 0.10; p.branchFrac = 0.07;
        p.fpFrac = 0.32;
        p.l1Frac = 0.955; p.hotFrac = 0.041; p.streamFrac = 0.003;
        p.randomFrac = 0.001; p.chaseFrac = 0.0;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 16 * kKiB;
        p.footprintBytes = 2 * kMiB;
        p.branchBias = 0.90; p.branchNoise = 0.04;
        p.depProb = 0.85; p.depDecay = 0.5;
        v.push_back(p);
    }
    {
        auto p = base("namd", 105, MpkiClass::Low);
        p.loadFrac = 0.31; p.storeFrac = 0.09; p.branchFrac = 0.09;
        p.fpFrac = 0.34;
        p.l1Frac = 0.975; p.hotFrac = 0.022; p.streamFrac = 0.002;
        p.randomFrac = 0.001; p.chaseFrac = 0.0;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 10 * kKiB;
        p.footprintBytes = 2 * kMiB;
        p.branchBias = 0.93; p.branchNoise = 0.02;
        p.depProb = 0.75; p.depDecay = 0.3;
        v.push_back(p);
    }
    {
        auto p = base("dealII", 106, MpkiClass::Low);
        p.loadFrac = 0.32; p.storeFrac = 0.11; p.branchFrac = 0.13;
        p.fpFrac = 0.18;
        p.l1Frac = 0.95; p.hotFrac = 0.045; p.streamFrac = 0.002;
        p.randomFrac = 0.001; p.chaseFrac = 0.002;
        p.l1Bytes = 7 * kKiB; p.hotBytes = 10 * kKiB;
        p.footprintBytes = 4 * kMiB; p.chaseBytes = 16 * kKiB;
        p.branchBias = 0.86; p.branchNoise = 0.06;
        v.push_back(p);
    }
    {
        auto p = base("perlbench", 107, MpkiClass::Low);
        p.loadFrac = 0.30; p.storeFrac = 0.16; p.branchFrac = 0.20;
        p.fpFrac = 0.01;
        p.l1Frac = 0.962; p.hotFrac = 0.034; p.streamFrac = 0.002;
        p.randomFrac = 0.001; p.chaseFrac = 0.001;
        p.l1Bytes = 8 * kKiB; p.hotBytes = 10 * kKiB;
        p.footprintBytes = 4 * kMiB; p.chaseBytes = 16 * kKiB;
        p.staticBlocks = 512; p.staticBranches = 256;
        p.branchBias = 0.72; p.branchNoise = 0.12;
        v.push_back(p);
    }
    {
        auto p = base("gobmk", 108, MpkiClass::Low);
        p.loadFrac = 0.26; p.storeFrac = 0.12; p.branchFrac = 0.22;
        p.fpFrac = 0.01;
        p.l1Frac = 0.952; p.hotFrac = 0.044; p.streamFrac = 0.001;
        p.randomFrac = 0.002; p.chaseFrac = 0.001;
        p.l1Bytes = 8 * kKiB; p.hotBytes = 14 * kKiB;
        p.footprintBytes = 2 * kMiB;
        p.staticBlocks = 512; p.staticBranches = 512;
        p.branchBias = 0.62; p.branchNoise = 0.18;
        v.push_back(p);
    }
    {
        auto p = base("h264ref", 109, MpkiClass::Low);
        p.loadFrac = 0.34; p.storeFrac = 0.13; p.branchFrac = 0.10;
        p.fpFrac = 0.04;
        p.l1Frac = 0.952; p.hotFrac = 0.043; p.streamFrac = 0.003;
        p.randomFrac = 0.002; p.chaseFrac = 0.0;
        p.l1Bytes = 7 * kKiB; p.hotBytes = 12 * kKiB;
        p.footprintBytes = 2 * kMiB;
        p.branchBias = 0.88; p.branchNoise = 0.05;
        p.depProb = 0.7; p.depDecay = 0.3;
        v.push_back(p);
    }
    {
        auto p = base("hmmer", 110, MpkiClass::Low);
        p.loadFrac = 0.35; p.storeFrac = 0.15; p.branchFrac = 0.08;
        p.fpFrac = 0.02;
        p.l1Frac = 0.972; p.hotFrac = 0.025; p.streamFrac = 0.002;
        p.randomFrac = 0.001; p.chaseFrac = 0.0;
        p.l1Bytes = 5 * kKiB; p.hotBytes = 12 * kKiB;
        p.footprintBytes = 1 * kMiB;
        p.branchBias = 0.94; p.branchNoise = 0.02;
        p.depProb = 0.6; p.depDecay = 0.25;
        v.push_back(p);
    }
    {
        auto p = base("sjeng", 111, MpkiClass::Low);
        p.loadFrac = 0.24; p.storeFrac = 0.10; p.branchFrac = 0.21;
        p.fpFrac = 0.01;
        p.l1Frac = 0.952; p.hotFrac = 0.042; p.streamFrac = 0.001;
        p.randomFrac = 0.003; p.chaseFrac = 0.002;
        p.l1Bytes = 8 * kKiB; p.hotBytes = 10 * kKiB;
        p.footprintBytes = 8 * kMiB; p.chaseBytes = 16 * kKiB;
        p.staticBlocks = 512; p.staticBranches = 384;
        p.branchBias = 0.65; p.branchNoise = 0.15;
        v.push_back(p);
    }

    // -------------- Medium MPKI class (1 <= MPKI < 5) --------------
    // LLC-scale hot working sets plus light streaming/random traffic.
    // These are the benchmarks whose data fits the LLC when running
    // alone but contends under sharing, which is where replacement
    // policy choices start to matter.

    {
        auto p = base("bzip2", 201, MpkiClass::Medium);
        p.loadFrac = 0.30; p.storeFrac = 0.14; p.branchFrac = 0.16;
        p.fpFrac = 0.01;
        p.l1Frac = 0.84; p.hotFrac = 0.125; p.streamFrac = 0.015;
        p.randomFrac = 0.015; p.chaseFrac = 0.005;
        p.l1Bytes = 7 * kKiB; p.hotBytes = 24 * kKiB;
        p.footprintBytes = 8 * kMiB;
        p.branchBias = 0.75; p.branchNoise = 0.10;
        v.push_back(p);
    }
    {
        auto p = base("gcc", 202, MpkiClass::Medium);
        p.loadFrac = 0.29; p.storeFrac = 0.15; p.branchFrac = 0.20;
        p.fpFrac = 0.01;
        p.l1Frac = 0.866; p.hotFrac = 0.10; p.streamFrac = 0.012;
        p.randomFrac = 0.012; p.chaseFrac = 0.01;
        p.l1Bytes = 8 * kKiB; p.hotBytes = 28 * kKiB;
        p.footprintBytes = 16 * kMiB;
        p.staticBlocks = 768; p.staticBranches = 768;
        p.branchBias = 0.70; p.branchNoise = 0.12;
        v.push_back(p);
    }
    {
        auto p = base("astar", 203, MpkiClass::Medium);
        p.loadFrac = 0.32; p.storeFrac = 0.10; p.branchFrac = 0.18;
        p.fpFrac = 0.02;
        p.l1Frac = 0.88; p.hotFrac = 0.09; p.streamFrac = 0.006;
        p.randomFrac = 0.012; p.chaseFrac = 0.012;
        p.l1Bytes = 7 * kKiB; p.hotBytes = 26 * kKiB;
        p.footprintBytes = 8 * kMiB; p.chaseBytes = 96 * kKiB;
        p.branchBias = 0.68; p.branchNoise = 0.14;
        v.push_back(p);
    }
    {
        auto p = base("zeusmp", 204, MpkiClass::Medium);
        p.loadFrac = 0.31; p.storeFrac = 0.13; p.branchFrac = 0.06;
        p.fpFrac = 0.30;
        p.l1Frac = 0.874; p.hotFrac = 0.10; p.streamFrac = 0.018;
        p.randomFrac = 0.008; p.chaseFrac = 0.0;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 28 * kKiB;
        p.footprintBytes = 16 * kMiB;
        p.branchBias = 0.93; p.branchNoise = 0.03;
        p.depProb = 0.85; p.depDecay = 0.5;
        v.push_back(p);
    }
    {
        auto p = base("cactusADM", 205, MpkiClass::Medium);
        p.loadFrac = 0.33; p.storeFrac = 0.12; p.branchFrac = 0.04;
        p.fpFrac = 0.35;
        p.l1Frac = 0.878; p.hotFrac = 0.096; p.streamFrac = 0.016;
        p.randomFrac = 0.010; p.chaseFrac = 0.0;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 30 * kKiB;
        p.footprintBytes = 16 * kMiB;
        p.branchBias = 0.96; p.branchNoise = 0.01;
        p.depProb = 0.9; p.depDecay = 0.55;
        v.push_back(p);
    }

    // ---------------- High MPKI class (MPKI >= 5) -------------------
    // Streaming scans (libquantum, bwaves, leslie3d), large random /
    // pointer-chasing footprints (mcf, omnetpp), and a thrashing
    // LLC-sized working set (soplex). These stress the LLC and
    // differentiate scan-resistant policies (DIP/DRRIP) from LRU.

    {
        auto p = base("libquantum", 301, MpkiClass::High);
        p.loadFrac = 0.28; p.storeFrac = 0.14; p.branchFrac = 0.14;
        p.fpFrac = 0.01;
        p.l1Frac = 0.80; p.hotFrac = 0.02; p.streamFrac = 0.17;
        p.randomFrac = 0.01; p.chaseFrac = 0.0;
        p.l1Bytes = 4 * kKiB; p.hotBytes = 8 * kKiB;
        p.footprintBytes = 16 * kMiB;
        p.branchBias = 0.97; p.branchNoise = 0.01;
        p.depProb = 0.55; p.depDecay = 0.25;
        v.push_back(p);
    }
    {
        auto p = base("omnetpp", 302, MpkiClass::High);
        p.loadFrac = 0.31; p.storeFrac = 0.16; p.branchFrac = 0.19;
        p.fpFrac = 0.01;
        p.l1Frac = 0.81; p.hotFrac = 0.08; p.streamFrac = 0.01;
        p.randomFrac = 0.05; p.chaseFrac = 0.05;
        p.l1Bytes = 8 * kKiB; p.hotBytes = 64 * kKiB;
        p.footprintBytes = 16 * kMiB; p.chaseBytes = 2 * kMiB;
        p.staticBlocks = 640; p.staticBranches = 512;
        p.branchBias = 0.70; p.branchNoise = 0.13;
        v.push_back(p);
    }
    {
        auto p = base("leslie3d", 303, MpkiClass::High);
        p.loadFrac = 0.33; p.storeFrac = 0.13; p.branchFrac = 0.05;
        p.fpFrac = 0.30;
        p.l1Frac = 0.80; p.hotFrac = 0.08; p.streamFrac = 0.06;
        p.randomFrac = 0.06; p.chaseFrac = 0.0;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 56 * kKiB;
        p.footprintBytes = 12 * kMiB;
        p.branchBias = 0.94; p.branchNoise = 0.02;
        p.depProb = 0.8; p.depDecay = 0.45;
        v.push_back(p);
    }
    {
        auto p = base("bwaves", 304, MpkiClass::High);
        p.loadFrac = 0.34; p.storeFrac = 0.11; p.branchFrac = 0.04;
        p.fpFrac = 0.34;
        p.l1Frac = 0.81; p.hotFrac = 0.04; p.streamFrac = 0.11;
        p.randomFrac = 0.04; p.chaseFrac = 0.0;
        p.l1Bytes = 5 * kKiB; p.hotBytes = 16 * kKiB;
        p.footprintBytes = 16 * kMiB;
        p.branchBias = 0.97; p.branchNoise = 0.01;
        p.depProb = 0.85; p.depDecay = 0.5;
        v.push_back(p);
    }
    {
        auto p = base("mcf", 305, MpkiClass::High);
        p.loadFrac = 0.35; p.storeFrac = 0.09; p.branchFrac = 0.19;
        p.fpFrac = 0.0;
        p.l1Frac = 0.76; p.hotFrac = 0.06; p.streamFrac = 0.01;
        p.randomFrac = 0.09; p.chaseFrac = 0.08;
        p.l1Bytes = 8 * kKiB; p.hotBytes = 64 * kKiB;
        p.footprintBytes = 16 * kMiB; p.chaseBytes = 2 * kMiB;
        p.branchBias = 0.72; p.branchNoise = 0.12;
        p.depProb = 0.85; p.depDecay = 0.45;
        v.push_back(p);
    }
    {
        auto p = base("soplex", 306, MpkiClass::High);
        p.loadFrac = 0.33; p.storeFrac = 0.10; p.branchFrac = 0.14;
        p.fpFrac = 0.12;
        p.l1Frac = 0.70; p.hotFrac = 0.22; p.streamFrac = 0.03;
        p.randomFrac = 0.04; p.chaseFrac = 0.01;
        p.l1Bytes = 6 * kKiB; p.hotBytes = 112 * kKiB;
        p.footprintBytes = 24 * kMiB;
        p.branchBias = 0.80; p.branchNoise = 0.08;
        v.push_back(p);
    }

    for (auto &p : v)
        p.validate();
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
spec2006Suite()
{
    static const std::vector<BenchmarkProfile> suite = makeSuite();
    return suite;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const auto &p : spec2006Suite()) {
        if (p.name == name)
            return p;
    }
    WSEL_FATAL("unknown benchmark '" << name << "'");
}

} // namespace wsel
