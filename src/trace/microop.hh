/**
 * @file
 * The µop record produced by the synthetic trace generators and
 * consumed by the detailed core model.
 *
 * A trace is a deterministic stream of MicroOps: same benchmark
 * profile + same seed => bit-identical stream. This mirrors the
 * paper's use of EIO traces ("we assume that simulations are
 * reproducible, so that traces represent exactly the same sequence of
 * dynamic µops").
 */

#ifndef WSEL_TRACE_MICROOP_HH
#define WSEL_TRACE_MICROOP_HH

#include <cstdint>

namespace wsel
{

/** Functional class of a µop. */
enum class OpKind : std::uint8_t
{
    IntAlu,  ///< integer ALU / address arithmetic
    FpAlu,   ///< floating-point operation (longer latency)
    Load,    ///< memory read
    Store,   ///< memory write
    Branch,  ///< conditional branch (has an outcome)
};

/**
 * One dynamic µop.
 *
 * Register dependences are encoded as distances (in dynamic µops) to
 * the producing µop; 0 means "no register input from the window".
 * This keeps the trace compact and renaming-free.
 */
struct MicroOp
{
    /** Functional class. */
    OpKind kind = OpKind::IntAlu;

    /** Virtual byte address (loads/stores only). */
    std::uint64_t addr = 0;

    /** Instruction-fetch virtual address of the µop. */
    std::uint64_t pc = 0;

    /** Distance to first producer µop; 0 = none. */
    std::uint16_t dep1 = 0;

    /** Distance to second producer µop; 0 = none. */
    std::uint16_t dep2 = 0;

    /** Execution latency in cycles for non-memory ops. */
    std::uint8_t latency = 1;

    /** Branch outcome (branches only). */
    bool taken = false;

    /** True when kind is Load or Store. */
    bool isMemory() const
    {
        return kind == OpKind::Load || kind == OpKind::Store;
    }
};

} // namespace wsel

#endif // WSEL_TRACE_MICROOP_HH
