/**
 * @file
 * Deterministic synthetic µop stream generator.
 *
 * A TraceGenerator turns a BenchmarkProfile into an endless,
 * reproducible stream of MicroOps. A static code layout (basic
 * blocks; per-slot µop kinds; per-memory-slot region bindings;
 * per-branch-site outcome behaviour) is synthesized from the profile
 * seed, then a dynamic walk over the blocks emits µops whose
 * addresses follow the bound region's cursor. Binding kinds and
 * regions to static slots mirrors real code (a given static load
 * walks one data structure), which is what makes IP-indexed
 * predictors and prefetchers behave sensibly.
 *
 * reset() replays the identical stream, which implements the
 * paper's thread-restart rule ("when a thread has finished executing
 * its N instructions earlier than the other threads, it is
 * restarted").
 */

#ifndef WSEL_TRACE_TRACE_GENERATOR_HH
#define WSEL_TRACE_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "stats/rng.hh"
#include "trace/benchmark_profile.hh"
#include "trace/microop.hh"

namespace wsel
{

/**
 * Endless deterministic µop stream for one benchmark.
 */
class TraceGenerator
{
  public:
    /** Build the static code layout and start the stream. */
    explicit TraceGenerator(const BenchmarkProfile &profile);

    /** Generate the next µop. */
    const MicroOp &next();

    /** Number of µops generated since construction / reset(). */
    std::uint64_t generated() const { return generated_; }

    /** Restart the stream from the beginning (identical replay). */
    void reset();

    /** The profile driving this stream. */
    const BenchmarkProfile &profile() const { return profile_; }

    /**
     * @name Virtual-region base addresses (for tests/tools).
     * Bases are staggered by distinct page offsets so the regions'
     * leading pages do not all collide in one TLB set.
     */
    /** @{ */
    static constexpr std::uint64_t l1Base = 0x10000000ULL;
    static constexpr std::uint64_t hotBase = 0x20004000ULL;
    static constexpr std::uint64_t chaseBase = 0x30008000ULL;
    static constexpr std::uint64_t streamBase = 0x4000c000ULL;
    static constexpr std::uint64_t randomBase = 0x80010000ULL;
    static constexpr std::uint64_t codeBase = 0x00400000ULL;
    /** @} */

  private:
    /** Data region a static memory slot is bound to. */
    enum class Region : std::uint8_t
    {
        L1,
        Hot,
        Stream,
        Random,
        Chase,
    };

    /** Static behaviour class of a branch site. */
    enum class BranchSite : std::uint8_t
    {
        Loop,   ///< taken (period-1) times, then not taken
        Biased, ///< nearly always one direction
        Hard,   ///< weakly biased i.i.d. outcomes
    };

    /** One static µop slot. */
    struct Slot
    {
        OpKind kind = OpKind::IntAlu;
        Region region = Region::L1; ///< memory slots only
    };

    /** One static basic block. */
    struct Block
    {
        std::uint32_t firstSlot = 0; ///< index into slots_
        std::uint32_t length = 0;    ///< µops incl. final branch
        std::uint32_t takenTarget = 0;
        std::uint32_t fallTarget = 0;
        BranchSite site = BranchSite::Biased;
        double takenProb = 0.9;     ///< Biased/Hard sites
        std::uint32_t loopPeriod = 0; ///< Loop sites
    };

    void buildStaticLayout();
    std::uint64_t regionAddress(Region r);
    void emitBranch(const Block &blk, std::uint32_t block_index);

    const BenchmarkProfile profile_;

    std::vector<Block> blocks_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> loopCounters_;

    Rng dyn_;
    std::uint64_t generated_ = 0;
    std::uint32_t curBlock_ = 0;
    std::uint32_t curOffset_ = 0;

    /** @name Region cursors. */
    /** @{ */
    std::uint64_t l1Pos_ = 0;
    std::uint64_t hotPos_ = 0;
    std::uint64_t streamPos_ = 0;
    std::uint64_t chaseCur_ = 0;
    /** @} */

    /** µops since the previous chase load (dependency distance). */
    std::uint64_t lastChaseAge_ = 0;
    bool haveChase_ = false;

    MicroOp out_;
};

} // namespace wsel

#endif // WSEL_TRACE_TRACE_GENERATOR_HH
