/**
 * @file
 * Parametric behaviour profiles for the synthetic SPEC-CPU2006-like
 * benchmarks.
 *
 * The paper builds workloads from 22 SPEC CPU2006 benchmarks. We
 * cannot ship SPEC traces, so each benchmark is replaced by a
 * synthetic profile whose parameters are tuned to land in the same
 * memory-intensity class the paper reports (Table IV) and to exhibit
 * the qualitative access patterns (streaming, thrashing, pointer
 * chasing, cache-friendly reuse) that differentiate LLC replacement
 * policies.
 */

#ifndef WSEL_TRACE_BENCHMARK_PROFILE_HH
#define WSEL_TRACE_BENCHMARK_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wsel
{

/** Memory-intensity classes from the paper's Table IV. */
enum class MpkiClass : std::uint8_t
{
    Low,    ///< LLC MPKI < 1
    Medium, ///< 1 <= LLC MPKI < 5
    High,   ///< LLC MPKI >= 5
};

/** Human-readable name of an MpkiClass. */
std::string toString(MpkiClass c);

/**
 * Scale applied to the paper's Table IV MPKI thresholds (Low < 1,
 * Medium < 5, High >= 5). Our traces are ~1000x shorter than the
 * paper's 100M-instruction slices, so cold misses set an MPKI floor
 * of (touched lines)/(kilo-instructions); scaling the class
 * boundaries by 4x restores the paper's relative classification
 * (see DESIGN.md, scaling substitutions).
 */
inline constexpr double kMpkiClassScale = 4.0;

/**
 * Classify an MPKI value with the paper's Table IV thresholds
 * multiplied by @p scale: Low < 1*scale, Medium < 5*scale,
 * High >= 5*scale.
 */
MpkiClass classifyMpki(double mpki, double scale = kMpkiClassScale);

/**
 * Static description of one synthetic benchmark.
 *
 * Memory accesses are drawn from a five-component mixture:
 *  - l1: a small stack-like region that stays L1-resident;
 *  - hot: cyclic walk over an LLC-scale working set (recency-friendly
 *    when it fits the cache, thrashing when slightly larger);
 *  - stream: sequential scan over a large footprint (no LLC reuse);
 *  - random: uniform accesses over the footprint;
 *  - chase: serialized dependent loads over a shuffled table.
 */
struct BenchmarkProfile
{
    /** Benchmark name (SPEC CPU2006 namesake). */
    std::string name;

    /** Deterministic seed for this benchmark's trace stream. */
    std::uint64_t seed = 1;

    /** @name Instruction mix (fractions must sum to <= 1). */
    /** @{ */
    double loadFrac = 0.25;   ///< fraction of µops that are loads
    double storeFrac = 0.10;  ///< fraction of µops that are stores
    double branchFrac = 0.15; ///< fraction of µops that are branches
    double fpFrac = 0.10;     ///< fraction of µops that are FP ALU
    /** @} */

    /** @name Memory access mixture (fractions must sum to 1). */
    /** @{ */
    double l1Frac = 0.60;     ///< accesses to the L1-resident region
    double hotFrac = 0.30;    ///< accesses to the hot working set
    double streamFrac = 0.05; ///< streaming accesses
    double randomFrac = 0.04; ///< random accesses over footprint
    double chaseFrac = 0.01;  ///< dependent pointer-chase accesses
    /** @} */

    /** L1-resident region size in bytes. */
    std::uint64_t l1Bytes = 8 * 1024;

    /** Hot working-set size in bytes. */
    std::uint64_t hotBytes = 16 * 1024;

    /** Streaming / random footprint in bytes. */
    std::uint64_t footprintBytes = 4 * 1024 * 1024;

    /** Pointer-chase table size in bytes. */
    std::uint64_t chaseBytes = 64 * 1024;

    /** Hot-set stride in bytes (typically one cache line). */
    std::uint32_t hotStrideBytes = 64;

    /** @name Control behaviour. */
    /** @{ */
    std::uint32_t staticBranches = 64; ///< distinct branch sites
    double branchBias = 0.85;  ///< mean per-branch taken probability
    double branchNoise = 0.08; ///< per-branch outcome noise
    /** @} */

    /** @name Dataflow (ILP) behaviour. */
    /** @{ */
    double depProb = 0.8;      ///< probability a µop has a producer
    double depDecay = 0.35;    ///< geometric parameter of dep distance
    std::uint8_t fpLatency = 4; ///< FP op latency in cycles
    /** @} */

    /** Code footprint: number of static basic blocks. */
    std::uint32_t staticBlocks = 256;

    /** The class the paper assigns this benchmark (Table IV). */
    MpkiClass paperClass = MpkiClass::Low;

    /** Validate parameter ranges; fatal on nonsense. */
    void validate() const;

    /**
     * Deterministic hash of all behaviour parameters, used to key
     * on-disk model caches so profile retuning invalidates them.
     */
    std::uint64_t parameterHash() const;
};

/**
 * The 22-benchmark suite used by the paper (the 22 of 29 SPEC
 * CPU2006 benchmarks the authors could run under Zesto), with
 * parameters tuned so the measured LLC MPKI under the default 4-core
 * uncore falls in each benchmark's Table IV class.
 */
const std::vector<BenchmarkProfile> &spec2006Suite();

/** Look up a suite profile by name; fatal if absent. */
const BenchmarkProfile &findProfile(const std::string &name);

} // namespace wsel

#endif // WSEL_TRACE_BENCHMARK_PROFILE_HH
