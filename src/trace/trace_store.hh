/**
 * @file
 * Process-global memoized store of per-benchmark µop streams.
 *
 * Every campaign cell used to rebuild a TraceGenerator per core and
 * pull µops one at a time, even though each benchmark's stream is a
 * pure function of its profile and appears in thousands of
 * K-combinations. The store materializes each stream once as
 * fixed-size chunks (kDefaultChunkUops µops) in structure-of-arrays
 * layout — separate kind/addr/pc/dep1/dep2/latency/taken arrays — so
 * the simulators' fetch loops become sequential scans, and shares the
 * chunks read-only across all cells and scheduler workers.
 *
 * Memory is bounded by a budget (--trace-mem / WSEL_TRACE_MEM, MiB)
 * with LRU chunk eviction; a TraceGenerator checkpoint is kept at
 * every chunk boundary, so an evicted chunk is regenerated
 * deterministically by replaying exactly one chunk. Cursors pin
 * their current chunk via shared_ptr, so eviction never invalidates
 * a reader; it only changes wall time, never the stream. Pinned
 * chunks (shared_ptr use count above the store's own reference) are
 * ineligible as eviction victims — evicting one would keep the
 * memory alive through the reader while un-charging it from the
 * budget, and force a pointless rebuild on the next reader.
 * Campaign artifacts therefore stay bitwise identical to the
 * chunk-free path at every --jobs setting
 * (tests/test_trace_store.cc).
 *
 * BatchPin extends the per-cursor pin to a whole batch of cells: a
 * shard's worth of lanes pins every chunk it will touch once up
 * front, so co-scheduled cells reading the same benchmark share one
 * resident copy for the batch's lifetime instead of racing the LRU
 * per cursor-refill. Releasing the pin re-runs eviction, so the
 * budget converges as soon as the batch retires. Chunk arrays are
 * touched by the building worker thread (first-touch NUMA
 * placement) and, behind WSEL_TRACE_HUGEPAGES=1, get
 * madvise(MADV_HUGEPAGE) backing to cut TLB pressure on the big
 * addr/pc arrays.
 *
 * Instrumented through src/obs/: trace_store.chunks_built /
 * chunk_hits / chunks_evicted counters, trace_store.resident_bytes
 * gauge and the trace_store.build_ns histogram — all touched once
 * per chunk refill, never per µop. See docs/PERFORMANCE.md.
 */

#ifndef WSEL_TRACE_TRACE_STORE_HH
#define WSEL_TRACE_TRACE_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/benchmark_profile.hh"
#include "trace/microop.hh"
#include "trace/trace_generator.hh"

namespace wsel
{

/**
 * One immutable span of a benchmark's µop stream in SoA layout.
 * Position-aligned on the infinite stream: chunk i covers µops
 * [i*chunkUops, (i+1)*chunkUops), independent of any simulation's
 * target length, so every target shares the same chunks.
 */
struct TraceChunk
{
    std::uint64_t firstUop = 0;
    std::uint32_t count = 0;

    std::vector<std::uint8_t> kind;
    std::vector<std::uint64_t> addr;
    std::vector<std::uint64_t> pc;
    std::vector<std::uint16_t> dep1;
    std::vector<std::uint16_t> dep2;
    std::vector<std::uint8_t> latency;
    std::vector<std::uint8_t> taken;

    /** Resident footprint charged against the store budget. */
    std::size_t
    bytes() const
    {
        return sizeof(TraceChunk) +
               static_cast<std::size_t>(count) *
                   (3 * sizeof(std::uint8_t) +
                    2 * sizeof(std::uint64_t) +
                    2 * sizeof(std::uint16_t));
    }
};

class TraceStore;

/**
 * The memoized stream of one benchmark, keyed by
 * BenchmarkProfile::parameterHash(). Owns its own profile copy (so
 * it never dangles), the build-side TraceGenerator with per-chunk
 * checkpoints, and the chunk table. Obtain via TraceStore::stream()
 * or TraceStore::cursor(); always held by shared_ptr.
 */
class TraceStream
{
  public:
    TraceStream(TraceStore &store, const BenchmarkProfile &profile,
                std::uint32_t chunk_uops);

    TraceStream(const TraceStream &) = delete;
    TraceStream &operator=(const TraceStream &) = delete;

    /**
     * Fetch chunk @p idx, building (or deterministically
     * regenerating after eviction) it if not resident. Thread-safe;
     * concurrent readers of a missing chunk build it exactly once.
     */
    std::shared_ptr<const TraceChunk> chunk(std::uint64_t idx);

    /** µops per chunk for this stream (fixed at creation). */
    std::uint32_t chunkUops() const { return chunkUops_; }

    const BenchmarkProfile &profile() const { return profile_; }

    /** Total chunk builds, including regeneration (tests). */
    std::uint64_t
    builds() const
    {
        return builds_.load(std::memory_order_relaxed);
    }

  private:
    friend class TraceStore;

    /** Chunk slot; guarded by the owning store's mutex. */
    struct Entry
    {
        std::shared_ptr<const TraceChunk> chunk;
        std::uint64_t lastUse = 0;
    };

    /** Build one chunk starting at the generator's position. */
    std::shared_ptr<TraceChunk> buildOne();

    TraceStore &store_;
    const BenchmarkProfile profile_;
    const std::uint32_t chunkUops_;

    /** @name Build side, guarded by buildMu_. */
    /** @{ */
    std::mutex buildMu_;
    TraceGenerator gen_;
    /** checkpoints_[i] = generator state at the start of chunk i. */
    std::vector<TraceDynState> checkpoints_;
    /** @} */

    /** Chunk table; guarded by the owning store's mutex. */
    std::vector<Entry> entries_;

    std::atomic<std::uint64_t> builds_{0};
};

/**
 * Lightweight per-core read head over a TraceStream. Replaces the
 * per-µop TraceGenerator::next() call in the simulators: next()
 * copies one µop out of the pinned SoA chunk and only touches the
 * store once per chunk refill. Cheap to copy; each copy advances
 * independently.
 */
class TraceCursor
{
  public:
    TraceCursor() = default;

    explicit TraceCursor(std::shared_ptr<TraceStream> stream)
        : stream_(std::move(stream))
    {
    }

    /** Next µop of the stream (endless, like the generator). */
    MicroOp
    next()
    {
        if (idx_ == count_)
            refill();
        MicroOp u;
        u.kind = static_cast<OpKind>(kind_[idx_]);
        u.addr = addr_[idx_];
        u.pc = pc_[idx_];
        u.dep1 = dep1_[idx_];
        u.dep2 = dep2_[idx_];
        u.latency = latency_[idx_];
        u.taken = taken_[idx_] != 0;
        ++idx_;
        ++pos_;
        return u;
    }

    /** µops consumed since construction / reset(). */
    std::uint64_t generated() const { return pos_; }

    /** Restart the stream (paper's thread-restart rule). */
    void
    reset()
    {
        pos_ = 0;
        if (chunk_ && chunk_->firstUop == 0) {
            idx_ = 0; // chunk 0 is still pinned: no store roundtrip
        } else {
            dropChunk();
        }
    }

    const BenchmarkProfile &profile() const
    {
        return stream_->profile();
    }

  private:
    void refill();
    void dropChunk();

    std::shared_ptr<TraceStream> stream_;
    std::shared_ptr<const TraceChunk> chunk_;

    /** @name Raw SoA pointers into *chunk_ (refill()). */
    /** @{ */
    const std::uint8_t *kind_ = nullptr;
    const std::uint64_t *addr_ = nullptr;
    const std::uint64_t *pc_ = nullptr;
    const std::uint16_t *dep1_ = nullptr;
    const std::uint16_t *dep2_ = nullptr;
    const std::uint8_t *latency_ = nullptr;
    const std::uint8_t *taken_ = nullptr;
    /** @} */

    std::uint32_t idx_ = 0;
    std::uint32_t count_ = 0; ///< 0 forces refill on first next()
    std::uint64_t pos_ = 0;
};

/**
 * RAII pin over every trace chunk a batch of cells will read.
 *
 * A batched shard pins the chunk range [0, uops) of each distinct
 * benchmark once before stepping its lanes; repeat references from
 * other lanes of the batch then resolve against the already-pinned
 * copy (counted by the batch.chunk_pins_saved instrument) instead
 * of issuing their own store round-trips and LRU races. Pinned
 * chunks are ineligible for eviction, so a tight WSEL_TRACE_MEM
 * budget cannot thrash a chunk out mid-batch only to rebuild it for
 * the next lane. Destruction (or release()) drops every pin and
 * re-runs eviction so the budget converges immediately.
 */
class BatchPin
{
  public:
    BatchPin() = default;
    ~BatchPin() { release(); }

    BatchPin(BatchPin &&) = default;
    BatchPin &operator=(BatchPin &&other) noexcept
    {
        if (this != &other) {
            release();
            store_ = other.store_;
            chunks_ = std::move(other.chunks_);
            seen_ = std::move(other.seen_);
            saved_ = other.saved_;
            other.store_ = nullptr;
            other.chunks_.clear();
            other.seen_.clear();
        }
        return *this;
    }
    BatchPin(const BatchPin &) = delete;
    BatchPin &operator=(const BatchPin &) = delete;

    /**
     * Pin every chunk covering [0, uops) of @p profile's stream in
     * @p store, building missing ones. Idempotent per chunk: a
     * chunk already pinned by this batch is counted as a saved pin
     * and not re-held.
     */
    void pin(TraceStore &store, const BenchmarkProfile &profile,
             std::uint64_t uops);

    /** Drop all pins and re-run eviction on the store. */
    void release();

    /** Distinct chunks currently held. */
    std::size_t held() const { return chunks_.size(); }

    /** Pin requests coalesced onto an already-held chunk. */
    std::uint64_t saved() const { return saved_; }

  private:
    TraceStore *store_ = nullptr;
    std::vector<std::shared_ptr<const TraceChunk>> chunks_;
    std::unordered_set<const TraceChunk *> seen_;
    std::uint64_t saved_ = 0;
};

/**
 * Thread-safe store of TraceStreams with a global LRU memory
 * budget. Use global() for the process-wide instance shared by
 * campaigns; tests construct private stores to force tiny budgets
 * and chunk sizes without perturbing each other.
 */
class TraceStore
{
  public:
    /** Default chunk size: 64 Ki µops ≈ 1.5 MiB resident. */
    static constexpr std::uint32_t kDefaultChunkUops = 64 * 1024;

    /** Default memory budget when WSEL_TRACE_MEM is unset. */
    static constexpr std::size_t kDefaultBudgetBytes =
        512ULL << 20;

    explicit TraceStore(
        std::size_t budget_bytes = kDefaultBudgetBytes,
        std::uint32_t chunk_uops = kDefaultChunkUops);

    TraceStore(const TraceStore &) = delete;
    TraceStore &operator=(const TraceStore &) = delete;

    /**
     * The process-global store. Budget comes from WSEL_TRACE_MEM
     * (MiB) when set, else kDefaultBudgetBytes; wsel_cli
     * --trace-mem overrides via setBudgetBytes(). Deliberately
     * leaked so cursors in bench static destructors stay valid.
     */
    static TraceStore &global();

    /** The (shared, memoized) stream for @p profile. */
    std::shared_ptr<TraceStream> stream(
        const BenchmarkProfile &profile);

    /** A fresh cursor positioned at µop 0 of @p profile's stream. */
    TraceCursor
    cursor(const BenchmarkProfile &profile)
    {
        return TraceCursor(stream(profile));
    }

    /**
     * Materialize every chunk covering [0, uops) of @p profile's
     * stream. Serial; campaign prewarm fans this out over
     * exec::parallel_for, one benchmark per task.
     */
    void ensureBuilt(const BenchmarkProfile &profile,
                     std::uint64_t uops);

    /** @name Budget / shape knobs (tests, CLI). */
    /** @{ */
    void setBudgetBytes(std::size_t bytes);
    std::size_t
    budgetBytes() const
    {
        return budgetBytes_.load(std::memory_order_relaxed);
    }

    /** Applies to streams created after the call (tests). */
    void setChunkUops(std::uint32_t uops);
    /** @} */

    /** Bytes currently resident across all streams. */
    std::size_t residentBytes() const;

    /**
     * Re-run eviction against the current budget. Called by
     * BatchPin::release() so a budget overshoot held open by pins
     * converges as soon as the batch retires; harmless otherwise.
     */
    void trimToBudget();

    /** Chunks evicted so far (tests; obs-independent). */
    std::uint64_t
    evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /**
     * Drop every stream and chunk (tests reconfiguring the global
     * store). Callers must not hold live cursors across clear():
     * pinned chunks stay valid but are no longer budget-accounted.
     */
    void clear();

  private:
    friend class TraceStream;

    /** Fast path: return chunk idx if resident, bumping LRU. */
    std::shared_ptr<const TraceChunk> lookup(TraceStream &s,
                                             std::uint64_t idx);

    /** Account + install a freshly built chunk, then evict LRU. */
    void install(TraceStream &s, std::uint64_t idx,
                 std::shared_ptr<const TraceChunk> chunk);

    /**
     * Evict unpinned LRU chunks (never @p keep, never a chunk some
     * reader still holds) until under budget — or until only
     * pinned chunks remain, in which case the overshoot persists
     * exactly until the next release/install re-runs eviction.
     */
    void evictLocked(const TraceStream::Entry *keep);

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, std::shared_ptr<TraceStream>>
        streams_;
    std::size_t residentBytes_ = 0;
    std::uint64_t tick_ = 0; ///< LRU clock

    std::atomic<std::size_t> budgetBytes_;
    std::atomic<std::uint32_t> chunkUops_;
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace wsel

#endif // WSEL_TRACE_TRACE_STORE_HH
