#include "obs/dedup.hh"

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

namespace wsel::obs
{

namespace
{

/**
 * One slot of the open-addressed table.  `hash` is 0 while the
 * slot is free; a writer claims it with a CAS and then counts via
 * fetch_add.  A slot is never released (the table only ever fills
 * up), which is what makes lock-free readers safe.
 */
struct Slot
{
    std::atomic<std::uint64_t> hash{0};
    std::atomic<std::uint64_t> count{0};
};

constexpr std::size_t kSlots = 4096; ///< power of two
constexpr std::size_t kMaxProbe = 16;

std::array<Slot, kSlots> table;

/** Overflow store for the (rare) case of a full probe window. */
std::mutex overflowMu;
std::unordered_map<std::uint64_t, std::uint64_t> &
overflowMap()
{
    static std::unordered_map<std::uint64_t, std::uint64_t> m;
    return m;
}

/** FNV-1a, local copy so this TU stays dependency-free. */
std::uint64_t
hashKey(std::string_view key)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    // 0 marks a free slot; remap a genuine 0 digest.
    return h ? h : 0x9e3779b97f4a7c15ULL;
}

} // namespace

std::uint64_t
noteRepeat(std::string_view key)
{
    const std::uint64_t h = hashKey(key);
    for (std::size_t i = 0; i < kMaxProbe; ++i) {
        Slot &s = table[(h + i) & (kSlots - 1)];
        std::uint64_t have = s.hash.load(std::memory_order_acquire);
        if (have == 0) {
            // Free slot: try to claim it.  A losing racer re-reads
            // and either finds our hash (shares the slot) or moves
            // on to the next probe position.
            if (s.hash.compare_exchange_strong(
                    have, h, std::memory_order_acq_rel))
                have = h;
        }
        if (have == h)
            return s.count.fetch_add(1,
                                     std::memory_order_relaxed) +
                   1;
    }
    std::lock_guard<std::mutex> g(overflowMu);
    return ++overflowMap()[h];
}

void
resetRepeatCounts()
{
    for (Slot &s : table) {
        s.hash.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> g(overflowMu);
    overflowMap().clear();
}

} // namespace wsel::obs
