#include "obs/trace.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/metrics.hh"
#include "stats/logging.hh"

namespace wsel::obs
{

namespace detail
{

std::atomic<bool> gTraceEnabled{false};

} // namespace detail

namespace
{

/** Every event in one process shares this pid in the JSON. */
constexpr std::uint64_t kPid = 1;

std::uint64_t
nowNs()
{
    // One steady epoch per process so timestamps from all threads
    // share a timeline.
    static const std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/** Fixed-capacity drop-oldest ring, one per process. */
struct Ring
{
    std::mutex mu;
    std::vector<TraceEvent> buf;
    std::size_t start = 0; ///< index of the oldest event
    std::size_t size = 0;
    std::uint64_t dropped = 0;

    void
    reset(std::size_t capacity)
    {
        std::lock_guard<std::mutex> g(mu);
        buf.assign(capacity, TraceEvent{});
        start = 0;
        size = 0;
        dropped = 0;
    }

    void
    push(TraceEvent e)
    {
        bool drop = false;
        {
            std::lock_guard<std::mutex> g(mu);
            if (buf.empty())
                return;
            if (size < buf.size()) {
                buf[(start + size) % buf.size()] = std::move(e);
                ++size;
            } else {
                buf[start] = std::move(e);
                start = (start + 1) % buf.size();
                ++dropped;
                drop = true;
            }
        }
        if (drop) {
            // Surface drops in the metrics snapshot even when the
            // collection gate is off: a truncated trace must be
            // detectable from its companion metrics file.
            static Counter &dropCounter = counter("trace.dropped");
            dropCounter.incAlways();
        }
    }

    TraceSnapshot
    snapshot()
    {
        TraceSnapshot snap;
        std::lock_guard<std::mutex> g(mu);
        snap.events.reserve(size);
        for (std::size_t i = 0; i < size; ++i)
            snap.events.push_back(buf[(start + i) % buf.size()]);
        snap.dropped = dropped;
        return snap;
    }
};

Ring &
ring()
{
    // Deliberately leaked: the trace is exported from static
    // destructors (bench ObsSession flushes at exit), so the ring
    // must outlive every other static in the process.
    static Ring *r = new Ring;
    return *r;
}

thread_local std::vector<const char *> spanStack;

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace

void
enableTracing(std::size_t capacity)
{
    capacity = std::clamp<std::size_t>(capacity, 16, 1ULL << 22);
    ring().reset(capacity);
    detail::gTraceEnabled.store(true, std::memory_order_relaxed);
}

void
disableTracing()
{
    detail::gTraceEnabled.store(false, std::memory_order_relaxed);
}

void
emitEvent(char ph, std::string name, std::string args)
{
    if (!tracingEnabled())
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.args = std::move(args);
    e.tsNs = nowNs();
    e.tid = threadId();
    e.ph = ph;
    ring().push(std::move(e));
}

void
instant(std::string name, std::string args)
{
    emitEvent('i', std::move(name), std::move(args));
}

std::size_t
spanDepth()
{
    return spanStack.size();
}

Span::Span(const char *name, std::string args)
    : name_(name), active_(tracingEnabled())
{
    if (!active_)
        return;
    spanStack.push_back(name_);
    emitEvent('B', name_, std::move(args));
}

Span::~Span()
{
    if (!active_)
        return;
    // Pop our frame even if tracing was switched off mid-span so
    // the stack cannot leak; only emit the E edge while enabled.
    if (!spanStack.empty() && spanStack.back() == name_)
        spanStack.pop_back();
    emitEvent('E', name_);
}

TraceSnapshot
traceSnapshot()
{
    return ring().snapshot();
}

std::string
renderChromeTrace(const TraceSnapshot &snap)
{
    // Events are stored in arrival order per the ring; the viewers
    // want ascending timestamps.
    std::vector<const TraceEvent *> order;
    order.reserve(snap.events.size());
    for (const TraceEvent &e : snap.events)
        order.push_back(&e);
    std::stable_sort(order.begin(), order.end(),
                     [](const TraceEvent *a, const TraceEvent *b) {
                         return a->tsNs < b->tsNs;
                     });
    std::ostringstream os;
    os << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < order.size(); ++i) {
        const TraceEvent &e = *order[i];
        char ts[40];
        std::snprintf(ts, sizeof ts, "%.3f", e.tsNs / 1e3);
        os << "{\"name\":\"" << jsonEscape(e.name)
           << "\",\"cat\":\"wsel\",\"ph\":\"" << e.ph
           << "\",\"pid\":" << kPid << ",\"tid\":" << e.tid
           << ",\"ts\":" << ts;
        if (!e.args.empty()) {
            // Scope markers ('s'/'t') aside, "i" events require a
            // scope field; default it to thread.
            os << ",\"args\":{\"detail\":\"" << jsonEscape(e.args)
               << "\"}";
        }
        if (e.ph == 'i')
            os << ",\"s\":\"t\"";
        os << "}" << (i + 1 < order.size() ? "," : "") << "\n";
    }
    os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
          "\"dropped\":\""
       << snap.dropped << "\"}}\n";
    return os.str();
}

void
writeChromeTrace(const std::string &path)
{
    const std::string json = renderChromeTrace(traceSnapshot());
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        WSEL_FATAL("cannot open trace output '" << path
                                                << "' for writing");
    os.write(json.data(),
             static_cast<std::streamsize>(json.size()));
    os.flush();
    if (!os)
        WSEL_FATAL("write to trace output '" << path
                                             << "' failed");
}

// -------------------------------------------------------------------
// Minimal trace-event JSON reader
// -------------------------------------------------------------------

namespace
{

/** Cursor over the JSON text with WSEL_FATAL diagnostics. */
class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (at_ < text_.size() &&
               (text_[at_] == ' ' || text_[at_] == '\n' ||
                text_[at_] == '\t' || text_[at_] == '\r'))
            ++at_;
    }

    char
    peek()
    {
        skipWs();
        if (at_ >= text_.size())
            WSEL_FATAL("trace JSON: unexpected end of input");
        return text_[at_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            WSEL_FATAL("trace JSON: expected '"
                       << c << "' at offset " << at_ << ", got '"
                       << text_[at_] << "'");
        ++at_;
    }

    bool
    consume(char c)
    {
        if (at_ < text_.size() && peek() == c) {
            ++at_;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (at_ >= text_.size())
                WSEL_FATAL("trace JSON: unterminated string");
            char c = text_[at_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (at_ >= text_.size())
                    WSEL_FATAL("trace JSON: bad escape");
                const char esc = text_[at_++];
                switch (esc) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'u': {
                    if (at_ + 4 > text_.size())
                        WSEL_FATAL("trace JSON: bad \\u escape");
                    unsigned v = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char d = text_[at_++];
                        v <<= 4;
                        if (d >= '0' && d <= '9')
                            v |= static_cast<unsigned>(d - '0');
                        else if (d >= 'a' && d <= 'f')
                            v |= static_cast<unsigned>(d - 'a' +
                                                       10);
                        else if (d >= 'A' && d <= 'F')
                            v |= static_cast<unsigned>(d - 'A' +
                                                       10);
                        else
                            WSEL_FATAL(
                                "trace JSON: bad \\u escape");
                    }
                    out += static_cast<char>(v & 0xff);
                    break;
                  }
                  default:
                    out += esc; // covers \" \\ \/
                }
            } else {
                out += c;
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        const std::size_t begin = at_;
        while (at_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[at_])) ||
                text_[at_] == '-' || text_[at_] == '+' ||
                text_[at_] == '.' || text_[at_] == 'e' ||
                text_[at_] == 'E'))
            ++at_;
        if (at_ == begin)
            WSEL_FATAL("trace JSON: expected number at offset "
                       << at_);
        try {
            return std::stod(text_.substr(begin, at_ - begin));
        } catch (const std::exception &) {
            WSEL_FATAL("trace JSON: malformed number '"
                       << text_.substr(begin, at_ - begin) << "'");
        }
    }

    /** Skip one value: string, number, or flat object. */
    void
    skipValue()
    {
        const char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            expect('{');
            if (!consume('}')) {
                do {
                    parseString();
                    expect(':');
                    skipValue();
                } while (consume(','));
                expect('}');
            }
        } else {
            parseNumber();
        }
    }

    std::size_t offset() const { return at_; }

    bool
    find(std::string_view needle)
    {
        const std::size_t pos = text_.find(needle, at_);
        if (pos == std::string::npos)
            return false;
        at_ = pos + needle.size();
        return true;
    }

  private:
    const std::string &text_;
    std::size_t at_ = 0;
};

} // namespace

std::vector<ParsedTraceEvent>
parseChromeTrace(const std::string &json)
{
    JsonCursor cur(json);
    if (!cur.find("\"traceEvents\""))
        WSEL_FATAL("trace JSON: no \"traceEvents\" key");
    cur.expect(':');
    cur.expect('[');
    std::vector<ParsedTraceEvent> out;
    if (cur.consume(']'))
        return out;
    do {
        cur.expect('{');
        ParsedTraceEvent ev;
        bool sawName = false, sawPh = false, sawTs = false;
        if (!cur.consume('}')) {
            do {
                const std::string key = cur.parseString();
                cur.expect(':');
                if (key == "name") {
                    ev.name = cur.parseString();
                    sawName = true;
                } else if (key == "ph") {
                    const std::string ph = cur.parseString();
                    if (ph.size() != 1)
                        WSEL_FATAL("trace JSON: bad ph '" << ph
                                                          << "'");
                    ev.ph = ph[0];
                    sawPh = true;
                } else if (key == "pid") {
                    ev.pid = static_cast<std::uint64_t>(
                        cur.parseNumber());
                } else if (key == "tid") {
                    ev.tid = static_cast<std::uint64_t>(
                        cur.parseNumber());
                } else if (key == "ts") {
                    ev.tsUs = cur.parseNumber();
                    sawTs = true;
                } else {
                    cur.skipValue();
                }
            } while (cur.consume(','));
            cur.expect('}');
        }
        if (!sawName || !sawPh || !sawTs)
            WSEL_FATAL("trace JSON: event missing name/ph/ts near "
                       "offset "
                       << cur.offset());
        out.push_back(std::move(ev));
    } while (cur.consume(','));
    cur.expect(']');
    return out;
}

} // namespace wsel::obs
