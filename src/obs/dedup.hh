/**
 * @file
 * Lock-free message-repeat counting for rate-limited diagnostics.
 *
 * `warn()` in stats/logging.hh must decide "have I seen this
 * message N times already?" on paths that may be hot loops inside
 * pool workers.  The original implementation kept an
 * unordered_map guarded by the global log mutex, so even fully
 * suppressed warnings serialized every worker.  noteRepeat()
 * replaces it with a fixed-size open-addressed table of atomic
 * (hash, count) slots: the steady state of a flooding warning is
 * one relaxed fetch_add with no lock and no allocation.
 *
 * This header is intentionally dependency-free (no logging.hh, no
 * other obs headers) so stats/logging.hh can include it without an
 * include cycle.
 */

#ifndef WSEL_OBS_DEDUP_HH
#define WSEL_OBS_DEDUP_HH

#include <cstdint>
#include <string_view>

namespace wsel::obs
{

/**
 * Record one occurrence of @p key and return its 1-based
 * occurrence count ("this is the nth time").  Thread-safe and
 * lock-free for keys already in the table; distinct keys whose
 * 64-bit hashes collide share a count (harmless for rate
 * limiting).  When the fixed table fills up, overflow keys fall
 * back to a small mutex-guarded map rather than losing counts.
 */
std::uint64_t noteRepeat(std::string_view key);

/**
 * Forget every recorded key (counts restart at 1).  Test-only:
 * not safe against concurrent noteRepeat callers.
 */
void resetRepeatCounts();

} // namespace wsel::obs

#endif // WSEL_OBS_DEDUP_HH
