/**
 * @file
 * Observability subsystem front door (docs/OBSERVABILITY.md):
 * umbrella include for the metrics registry and the tracer, plus
 * the process-level wiring shared by the CLI and the bench
 * binaries — environment-variable initialization and output
 * flushing.
 *
 * Environment knobs:
 *  - WSEL_METRICS: "" / "0" leaves metrics off.  A path enables
 *    metrics and writes the JSON snapshot there at flush; "1",
 *    "-" or "stderr" enables metrics and prints the plain-text
 *    table to stderr at flush.
 *  - WSEL_TRACE: "" / "0" leaves tracing off.  A path enables
 *    tracing and writes Chrome trace-event JSON there at flush;
 *    "1" uses ./wsel_trace.json.
 *  - WSEL_TRACE_BUF: tracer ring capacity in events (default
 *    65536).
 *
 * `wsel_cli campaign|characterize --metrics-out FILE` and
 * `--trace-out FILE` set the same outputs explicitly.
 */

#ifndef WSEL_OBS_OBS_HH
#define WSEL_OBS_OBS_HH

#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace wsel::obs
{

/**
 * Configure metrics and tracing from WSEL_METRICS / WSEL_TRACE /
 * WSEL_TRACE_BUF.  Idempotent; an invalid WSEL_TRACE_BUF is
 * warned about and ignored.
 */
void initFromEnv();

/**
 * Route the metrics snapshot written by flushOutputs(): a file
 * path for JSON, "-" for a plain-text table on stderr, "" for
 * nothing.  Does not itself enable metrics.
 */
void setMetricsOutput(std::string path);

/**
 * Route the Chrome trace JSON written by flushOutputs(); "" for
 * nothing.  Does not itself enable tracing.
 */
void setTraceOutput(std::string path);

/** The currently configured outputs ("" when unset). */
std::string metricsOutput();
std::string traceOutput();

/**
 * Write every configured output: the metrics snapshot (JSON file
 * or stderr table) and the trace JSON.  Safe to call multiple
 * times (each call re-renders current state) and with nothing
 * configured (no-op).
 */
void flushOutputs();

/** Write the metrics snapshot as JSON to @p path (WSEL_FATAL on I/O error). */
void writeMetricsJson(const std::string &path);

} // namespace wsel::obs

#endif // WSEL_OBS_OBS_HH
