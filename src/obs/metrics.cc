#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

#include "stats/logging.hh"

namespace wsel::obs
{

namespace detail
{

std::atomic<bool> gMetricsEnabled{false};

std::size_t
threadShard()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) %
        kCounterShards;
    return shard;
}

} // namespace detail

namespace
{

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Human-friendly duration for the plain-text table. */
std::string
humanNs(std::uint64_t ns)
{
    char buf[32];
    if (ns < 1000)
        std::snprintf(buf, sizeof buf, "%lluns",
                      static_cast<unsigned long long>(ns));
    else if (ns < 1000 * 1000)
        std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
    else if (ns < 1000ULL * 1000 * 1000)
        std::snprintf(buf, sizeof buf, "%.1fms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
    return buf;
}

/** Render a double without trailing-zero noise. */
std::string
compactDouble(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/**
 * The standard instrument catalog (docs/OBSERVABILITY.md).
 * Pre-registered when metrics are enabled so a snapshot always
 * lists every core instrument, even ones whose owning code path
 * did not run.
 */
struct CatalogEntry
{
    const char *name;
    char kind; ///< 'c', 'g' or 'h'
};

constexpr CatalogEntry kCatalog[] = {
    {"scheduler.tasks_run", 'c'},
    {"scheduler.tasks_stolen", 'c'},
    {"scheduler.tasks_helped", 'c'},
    {"scheduler.tasks_cancelled", 'c'},
    {"scheduler.steal_fail", 'c'},
    {"scheduler.queue_depth", 'g'},
    {"scheduler.queue_ns", 'h'},
    {"scheduler.run_ns", 'h'},
    {"campaign.cells", 'c'},
    {"campaign.cells_resumed", 'c'},
    {"campaign.cells_per_sec", 'g'},
    {"campaign.cell_ns", 'h'},
    {"campaign.journal_flush_ns", 'h'},
    {"persist.cache_hit", 'c'},
    {"persist.cache_miss", 'c'},
    {"persist.cache_quarantine", 'c'},
    {"badco.models_built", 'c'},
    {"badco.build_ns", 'h'},
    {"sim.detailed.cells", 'c'},
    {"sim.detailed.cell_ns", 'h'},
    {"sim.badco.cells", 'c'},
    {"sim.badco.cell_ns", 'h'},
    {"batch.cells", 'c'},
    {"batch.lanes_active", 'g'},
    {"batch.chunk_pins_saved", 'c'},
    {"batch.simd_path", 'g'},
    {"batch.wave", 'g'},
    {"batch.probes_gathered", 'c'},
    {"batch.uncores_resident", 'g'},
    {"trace_store.chunks_built", 'c'},
    {"trace_store.chunk_hits", 'c'},
    {"trace_store.chunks_evicted", 'c'},
    {"trace_store.resident_bytes", 'g'},
    {"trace_store.build_ns", 'h'},
    {"population.cells", 'c'},
    {"population.shards_written", 'c'},
    {"population.bytes", 'c'},
    {"population.cells_per_sec", 'g'},
    {"population.shard_write_ns", 'h'},
    {"serve.campaigns_submitted", 'c'},
    {"serve.campaigns_rejected", 'c'},
    {"serve.leases_granted", 'c'},
    {"serve.leases_expired", 'c'},
    {"serve.leases_requeued", 'c'},
    {"serve.shards_quarantined", 'c'},
    {"serve.dedup_hits", 'c'},
    {"serve.duplicate_completions", 'c'},
    {"serve.campaigns_stopped", 'c'},
    {"serve.workers_active", 'g'},
    {"serve.lease_ns", 'h'},
    {"adaptive.batches", 'c'},
    {"adaptive.cells", 'c'},
    {"adaptive.cells_resumed", 'c'},
    {"adaptive.cells_saved", 'c'},
    {"adaptive.confidence", 'g'},
    {"fidelity.cells_escalated", 'c'},
    {"fidelity.cells_total", 'c'},
    {"fidelity.escalation_fraction", 'g'},
    {"fidelity.detailed_ns", 'h'},
    {"serve.escalations_started", 'c'},
    {"serve.escalated_rows", 'g'},
    {"log.warns", 'c'},
    {"trace.dropped", 'c'},
};

} // namespace

// -------------------------------------------------------------------
// Counter
// -------------------------------------------------------------------

Counter::Counter(std::string name)
    : name_(std::move(name)), shards_(new Shard[kCounterShards])
{}

std::uint64_t
Counter::value() const
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kCounterShards; ++i)
        sum += shards_[i].v.load(std::memory_order_relaxed);
    return sum;
}

// -------------------------------------------------------------------
// Gauge
// -------------------------------------------------------------------

std::uint64_t
Gauge::pack(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
Gauge::unpack(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

void
Gauge::add(double d)
{
    if (!metricsEnabled())
        return;
    std::uint64_t have = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        have, pack(unpack(have) + d), std::memory_order_relaxed))
        ;
}

// -------------------------------------------------------------------
// LatencyHistogram
// -------------------------------------------------------------------

LatencyHistogram::LatencyHistogram(std::string name)
    : name_(std::move(name)),
      buckets_(new std::atomic<std::uint64_t>[kBuckets])
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
LatencyHistogram::recordNs(std::uint64_t ns)
{
    if (!metricsEnabled())
        return;
    const std::size_t b =
        ns == 0 ? 0
                : std::min<std::size_t>(std::bit_width(ns),
                                        kBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t have = min_.load(std::memory_order_relaxed);
    while (ns < have &&
           !min_.compare_exchange_weak(have, ns,
                                       std::memory_order_relaxed))
        ;
    have = max_.load(std::memory_order_relaxed);
    while (ns > have &&
           !max_.compare_exchange_weak(have, ns,
                                       std::memory_order_relaxed))
        ;
}

std::uint64_t
LatencyHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::sumNs() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::minNs() const
{
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

std::uint64_t
LatencyHistogram::maxNs() const
{
    return max_.load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::bucket(std::size_t i) const
{
    WSEL_ASSERT(i < kBuckets, "histogram bucket out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::quantileNs(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(n)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += buckets_[b].load(std::memory_order_relaxed);
        if (seen >= want) {
            // Upper bound of bucket b: 2^b ns (bucket 0 is [0,1]).
            return b == 0 ? 1
                          : (b >= 63 ? UINT64_MAX : (1ULL << b));
        }
    }
    return maxNs();
}

// -------------------------------------------------------------------
// Registry
// -------------------------------------------------------------------

struct Registry::Impl
{
    mutable std::mutex mu;
    // Ordered maps so snapshots come out name-sorted for free.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges;
    std::map<std::string, std::unique_ptr<LatencyHistogram>,
             std::less<>>
        histograms;

    /** Fatal when @p name already exists as another kind. */
    void
    checkKind(std::string_view name, const char *want) const
    {
        const bool c = counters.find(name) != counters.end();
        const bool g = gauges.find(name) != gauges.end();
        const bool h = histograms.find(name) != histograms.end();
        const int other =
            (c && std::string_view(want) != "counter") +
            (g && std::string_view(want) != "gauge") +
            (h && std::string_view(want) != "histogram");
        if (other)
            WSEL_FATAL("metric '" << name << "' requested as "
                       << want
                       << " but already registered as another "
                          "kind");
    }
};

Registry::Impl &
Registry::impl() const
{
    // Deliberately leaked: instruments are read from static
    // destructors (bench ObsSession flushes at exit), so the
    // registry must outlive every other static in the process.
    static Impl *i = new Impl;
    return *i;
}

Registry &
Registry::instance()
{
    static Registry *r = new Registry;
    return *r;
}

Counter &
Registry::counter(std::string_view name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> g(im.mu);
    auto it = im.counters.find(name);
    if (it == im.counters.end()) {
        im.checkKind(name, "counter");
        it = im.counters
                 .emplace(std::string(name),
                          std::unique_ptr<Counter>(
                              new Counter(std::string(name))))
                 .first;
    }
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> g(im.mu);
    auto it = im.gauges.find(name);
    if (it == im.gauges.end()) {
        im.checkKind(name, "gauge");
        it = im.gauges
                 .emplace(std::string(name),
                          std::unique_ptr<Gauge>(
                              new Gauge(std::string(name))))
                 .first;
    }
    return *it->second;
}

LatencyHistogram &
Registry::histogram(std::string_view name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> g(im.mu);
    auto it = im.histograms.find(name);
    if (it == im.histograms.end()) {
        im.checkKind(name, "histogram");
        it = im.histograms
                 .emplace(std::string(name),
                          std::unique_ptr<LatencyHistogram>(
                              new LatencyHistogram(
                                  std::string(name))))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot
Registry::snapshot() const
{
    Impl &im = impl();
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> g(im.mu);
    snap.entries.reserve(im.counters.size() + im.gauges.size() +
                         im.histograms.size());
    for (const auto &[name, c] : im.counters) {
        MetricsEntry e;
        e.name = name;
        e.type = "counter";
        e.value = static_cast<double>(c->value());
        snap.entries.push_back(std::move(e));
    }
    for (const auto &[name, gg] : im.gauges) {
        MetricsEntry e;
        e.name = name;
        e.type = "gauge";
        e.value = gg->value();
        snap.entries.push_back(std::move(e));
    }
    for (const auto &[name, h] : im.histograms) {
        MetricsEntry e;
        e.name = name;
        e.type = "histogram";
        e.count = h->count();
        e.value = static_cast<double>(e.count);
        e.sumNs = h->sumNs();
        e.minNs = h->minNs();
        e.maxNs = h->maxNs();
        e.p50Ns = h->quantileNs(0.50);
        e.p90Ns = h->quantileNs(0.90);
        e.p99Ns = h->quantileNs(0.99);
        snap.entries.push_back(std::move(e));
    }
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const MetricsEntry &a, const MetricsEntry &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
enableMetrics(bool on)
{
    if (on) {
        Registry &r = Registry::instance();
        for (const CatalogEntry &e : kCatalog) {
            switch (e.kind) {
              case 'c':
                r.counter(e.name);
                break;
              case 'g':
                r.gauge(e.name);
                break;
              default:
                r.histogram(e.name);
                break;
            }
        }
    }
    detail::gMetricsEnabled.store(on, std::memory_order_relaxed);
}

// -------------------------------------------------------------------
// Snapshot rendering
// -------------------------------------------------------------------

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"wsel_metrics\": 1,\n  \"instruments\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const MetricsEntry &e = entries[i];
        os << "    {\"name\": \"" << jsonEscape(e.name)
           << "\", \"type\": \"" << e.type << "\"";
        if (e.type == "histogram") {
            os << ", \"count\": " << e.count
               << ", \"sum_ns\": " << e.sumNs
               << ", \"min_ns\": " << e.minNs
               << ", \"max_ns\": " << e.maxNs
               << ", \"p50_ns\": " << e.p50Ns
               << ", \"p90_ns\": " << e.p90Ns
               << ", \"p99_ns\": " << e.p99Ns;
        } else {
            os << ", \"value\": " << compactDouble(e.value);
        }
        os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
MetricsSnapshot::toTable(std::string_view prefix) const
{
    auto selected = [&](const MetricsEntry &e) {
        return prefix.empty() ||
               std::string_view(e.name).substr(0, prefix.size()) ==
                   prefix;
    };
    std::size_t width = 6;
    for (const MetricsEntry &e : entries) {
        if (selected(e))
            width = std::max(width, e.name.size());
    }
    std::ostringstream os;
    os << "metric";
    os << std::string(width - 6 + 2, ' ') << "type       value\n";
    for (const MetricsEntry &e : entries) {
        if (!selected(e))
            continue;
        os << e.name
           << std::string(width - e.name.size() + 2, ' ');
        if (e.type == "histogram") {
            os << "histogram  count=" << e.count;
            if (e.count > 0) {
                os << " p50=" << humanNs(e.p50Ns)
                   << " p90=" << humanNs(e.p90Ns)
                   << " p99=" << humanNs(e.p99Ns)
                   << " max=" << humanNs(e.maxNs);
            }
        } else if (e.type == "counter") {
            os << "counter    " << compactDouble(e.value);
        } else {
            os << "gauge      " << compactDouble(e.value);
        }
        os << "\n";
    }
    return os.str();
}

// -------------------------------------------------------------------
// Conveniences
// -------------------------------------------------------------------

Counter &
counter(std::string_view name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}

LatencyHistogram &
histogram(std::string_view name)
{
    return Registry::instance().histogram(name);
}

MetricsSnapshot
metricsSnapshot()
{
    return Registry::instance().snapshot();
}

} // namespace wsel::obs
