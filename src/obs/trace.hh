/**
 * @file
 * Low-overhead tracer emitting Chrome trace-event / Perfetto JSON
 * (docs/OBSERVABILITY.md).
 *
 * RAII `Span` objects mark begin/end ("ph":"B"/"E") pairs on the
 * calling thread; each thread keeps a span stack (thread-local) so
 * nesting renders as a flame graph in the viewer.  Events land in
 * one fixed-capacity ring buffer: when it is full the oldest event
 * is dropped and the `trace.dropped` metric counter incremented,
 * so a long campaign keeps the *latest* window of activity instead
 * of growing without bound.
 *
 * Everything is gated on a process-wide `enabled` atomic checked
 * before any other work: with tracing off (the default) a Span
 * costs one relaxed load per end of the scope, and "disabled mode
 * emits zero events" is tested (tests/test_obs.cc).
 *
 * renderChromeTrace() produces `{"traceEvents": [...]}` JSON that
 * loads directly in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing; parseChromeTrace() is the minimal reader used
 * for round-trip validation.
 */

#ifndef WSEL_OBS_TRACE_HH
#define WSEL_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wsel::obs
{

namespace detail
{

extern std::atomic<bool> gTraceEnabled;

} // namespace detail

/** Is tracing on?  One relaxed load. */
inline bool
tracingEnabled()
{
    return detail::gTraceEnabled.load(std::memory_order_relaxed);
}

/**
 * Turn tracing on with a ring of @p capacity events (the previous
 * buffer and drop count are discarded).  Capacity is clamped to
 * [16, 1<<22].
 */
void enableTracing(std::size_t capacity = 1 << 16);

/** Turn tracing off; the already-collected events remain. */
void disableTracing();

/** One recorded event (B/E span edge or i instant). */
struct TraceEvent
{
    std::string name;
    std::string args; ///< free-form "k=v,k=v" detail; may be empty
    std::uint64_t tsNs = 0; ///< steady_clock ns since process start
    std::uint32_t tid = 0;  ///< stable small per-thread id
    char ph = 'i';          ///< 'B', 'E' or 'i'
};

/**
 * Record a raw event (no-op while tracing is disabled).  Prefer
 * Span / instant().
 */
void emitEvent(char ph, std::string name, std::string args = {});

/** Record a zero-duration marker event. */
void instant(std::string name, std::string args = {});

/** Open spans on the calling thread (0 when tracing is off). */
std::size_t spanDepth();

/**
 * RAII span: emits "B" on construction and "E" on destruction,
 * maintaining the thread-local span stack.  @p name must outlive
 * the span (string literals).  Build @p args only when
 * tracingEnabled() to keep disabled call sites free:
 *
 *     obs::Span span("campaign.cell",
 *                    obs::tracingEnabled() ? makeArgs() : "");
 */
class Span
{
  public:
    explicit Span(const char *name, std::string args = {});
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    bool active_;
};

/** Consistent copy of the ring (oldest first) plus drop count. */
struct TraceSnapshot
{
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
};

TraceSnapshot traceSnapshot();

/** Render a snapshot as Chrome trace-event JSON. */
std::string renderChromeTrace(const TraceSnapshot &snap);

/**
 * Write the current ring as Chrome trace-event JSON to @p path
 * (WSEL_FATAL on I/O error).
 */
void writeChromeTrace(const std::string &path);

/** One event as read back by the minimal parser. */
struct ParsedTraceEvent
{
    std::string name;
    char ph = '?';
    std::uint64_t pid = 0;
    std::uint64_t tid = 0;
    double tsUs = 0.0;
};

/**
 * Minimal Chrome trace-event JSON reader: parses the
 * `"traceEvents"` array of objects with string/number/flat-object
 * values — exactly the subset renderChromeTrace() emits — and
 * throws wsel::FatalError on malformed input.  Used by the
 * round-trip tests and `ci.sh` artifact validation.
 */
std::vector<ParsedTraceEvent>
parseChromeTrace(const std::string &json);

} // namespace wsel::obs

#endif // WSEL_OBS_TRACE_HH
