#include "obs/obs.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "stats/logging.hh"

namespace wsel::obs
{

namespace
{

/**
 * Output sinks. Deliberately leaked (never destroyed): benches
 * flush from a static destructor in another translation unit, and
 * cross-TU destruction order is unspecified.
 */
struct Outputs
{
    std::mutex mu;
    std::string metricsOut; // "" = none, "-" = stderr table, else path
    std::string traceOut;   // "" = none, else path
};

Outputs &
outputs()
{
    static Outputs *o = new Outputs;
    return *o;
}

std::string
envString(const char *name)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : std::string();
}

} // namespace

void
setMetricsOutput(std::string path)
{
    Outputs &o = outputs();
    std::lock_guard<std::mutex> lk(o.mu);
    o.metricsOut = std::move(path);
}

void
setTraceOutput(std::string path)
{
    Outputs &o = outputs();
    std::lock_guard<std::mutex> lk(o.mu);
    o.traceOut = std::move(path);
}

std::string
metricsOutput()
{
    Outputs &o = outputs();
    std::lock_guard<std::mutex> lk(o.mu);
    return o.metricsOut;
}

std::string
traceOutput()
{
    Outputs &o = outputs();
    std::lock_guard<std::mutex> lk(o.mu);
    return o.traceOut;
}

void
initFromEnv()
{
    const std::string metrics = envString("WSEL_METRICS");
    if (!metrics.empty() && metrics != "0") {
        enableMetrics();
        if (metrics == "1" || metrics == "-" || metrics == "stderr")
            setMetricsOutput("-");
        else
            setMetricsOutput(metrics);
    }

    const std::string trace = envString("WSEL_TRACE");
    if (!trace.empty() && trace != "0") {
        std::size_t capacity = 1 << 16;
        const std::string buf = envString("WSEL_TRACE_BUF");
        if (!buf.empty()) {
            try {
                capacity = static_cast<std::size_t>(std::stoull(buf));
            } catch (const std::exception &) {
                warn("ignoring invalid WSEL_TRACE_BUF '" + buf + "'");
            }
        }
        enableTracing(capacity);
        setTraceOutput(trace == "1" ? "wsel_trace.json" : trace);
    }
}

void
writeMetricsJson(const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        WSEL_FATAL("cannot open metrics output '" << path << "'");
    out << metricsSnapshot().toJson();
    out.flush();
    if (!out)
        WSEL_FATAL("failed writing metrics output '" << path << "'");
}

void
flushOutputs()
{
    std::string metricsOut, traceOut;
    {
        Outputs &o = outputs();
        std::lock_guard<std::mutex> lk(o.mu);
        metricsOut = o.metricsOut;
        traceOut = o.traceOut;
    }

    if (!metricsOut.empty()) {
        if (metricsOut == "-")
            std::cerr << metricsSnapshot().toTable();
        else
            writeMetricsJson(metricsOut);
    }

    if (!traceOut.empty())
        writeChromeTrace(traceOut);
}

} // namespace wsel::obs
