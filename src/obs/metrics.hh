/**
 * @file
 * Process-global metrics registry (docs/OBSERVABILITY.md): named,
 * lazily created instruments that the scheduler, the campaign
 * runners, the persistence layer and the simulators increment on
 * their hot paths.
 *
 * Three instrument kinds:
 *
 *  - Counter: monotonically increasing u64.  Increments go to one
 *    of 64 cache-line-aligned shards chosen per thread, so
 *    concurrent workers never bounce a shared cache line; reads
 *    sum the shards.
 *  - Gauge: last-written double (queue depth, cells/sec).
 *  - LatencyHistogram: fixed log-2 buckets over nanoseconds
 *    (bucket b counts durations in [2^(b-1), 2^b)), plus exact
 *    count/sum/min/max and bucket-resolution quantiles.
 *
 * Every mutating call is gated on the process-wide `enabled`
 * atomic *before any other work*, so with metrics disabled (the
 * default) an instrumented hot path costs one relaxed atomic load
 * (bench/microbench.cc measures it).  Instruments live forever
 * once created; cache the reference at the call site:
 *
 *     static obs::Counter &cells = obs::counter("campaign.cells");
 *     cells.inc();
 *
 * snapshot() renders every registered instrument to JSON
 * (machine-readable, `--metrics-out`) or an aligned plain-text
 * table (bench/CLI stderr reporting).
 */

#ifndef WSEL_OBS_METRICS_HH
#define WSEL_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wsel::obs
{

namespace detail
{

extern std::atomic<bool> gMetricsEnabled;

/** Stable per-thread shard index in [0, kCounterShards). */
std::size_t threadShard();

} // namespace detail

/** Number of per-thread cells a Counter is sharded over. */
inline constexpr std::size_t kCounterShards = 64;

/** Is metrics collection on?  One relaxed load. */
inline bool
metricsEnabled()
{
    return detail::gMetricsEnabled.load(std::memory_order_relaxed);
}

/**
 * Turn metrics collection on or off, process-wide.  Enabling also
 * pre-registers the core instrument catalog
 * (docs/OBSERVABILITY.md) so snapshots always list every standard
 * instrument, including ones whose code path never ran.
 */
void enableMetrics(bool on = true);

/** Monotonic counter, sharded per thread.  Create via counter(). */
class Counter
{
  public:
    /** Add @p n; no-op while metrics are disabled. */
    void
    inc(std::uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        incAlways(n);
    }

    /**
     * Add @p n regardless of the enabled gate.  For obs-internal
     * bookkeeping that must never be lost (e.g. the tracer's drop
     * counter); instrumented subsystems use inc().
     */
    void
    incAlways(std::uint64_t n = 1)
    {
        shards_[detail::threadShard()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum of all shards (moment-in-time, not a consistent cut). */
    std::uint64_t value() const;

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit Counter(std::string name);

    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };

    std::string name_;
    std::unique_ptr<Shard[]> shards_;
};

/** Last-written value (level, not rate).  Create via gauge(). */
class Gauge
{
  public:
    /** Overwrite; no-op while metrics are disabled. */
    void
    set(double v)
    {
        if (!metricsEnabled())
            return;
        setAlways(v);
    }

    /** Overwrite regardless of the enabled gate (cold paths). */
    void
    setAlways(double v)
    {
        bits_.store(pack(v), std::memory_order_relaxed);
    }

    /** Add @p d; no-op while metrics are disabled. */
    void add(double d);

    double
    value() const
    {
        return unpack(bits_.load(std::memory_order_relaxed));
    }

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    static std::uint64_t pack(double v);
    static double unpack(std::uint64_t bits);

    std::string name_;
    std::atomic<std::uint64_t> bits_{0};
};

/**
 * Log-2-bucketed latency histogram over nanoseconds.  Create via
 * histogram().
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    /** Record a duration; no-op while metrics are disabled. */
    void recordNs(std::uint64_t ns);

    /** Record a steady_clock duration. */
    void
    record(std::chrono::steady_clock::duration d)
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                .count();
        recordNs(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
    }

    /**
     * RAII timer: records the scope's wall time into the
     * histogram on destruction (nothing while disabled).
     */
    class Timer
    {
      public:
        explicit Timer(LatencyHistogram &h)
            : h_(metricsEnabled() ? &h : nullptr)
        {
            if (h_)
                t0_ = std::chrono::steady_clock::now();
        }

        ~Timer()
        {
            if (h_)
                h_->record(std::chrono::steady_clock::now() - t0_);
        }

        Timer(const Timer &) = delete;
        Timer &operator=(const Timer &) = delete;

      private:
        LatencyHistogram *h_;
        std::chrono::steady_clock::time_point t0_;
    };

    std::uint64_t count() const;
    std::uint64_t sumNs() const;
    std::uint64_t minNs() const; ///< 0 when empty
    std::uint64_t maxNs() const;
    std::uint64_t bucket(std::size_t i) const;

    /**
     * Bucket-resolution quantile: the upper bound (2^b ns) of the
     * first bucket whose cumulative count reaches @p q in (0, 1].
     * 0 when empty.
     */
    std::uint64_t quantileNs(double q) const;

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit LatencyHistogram(std::string name);

    std::string name_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
};

/** One rendered instrument in a snapshot. */
struct MetricsEntry
{
    std::string name;
    std::string type; ///< "counter", "gauge" or "histogram"
    double value = 0.0; ///< counter/gauge value; histogram count

    // Histogram-only fields.
    std::uint64_t count = 0;
    std::uint64_t sumNs = 0;
    std::uint64_t minNs = 0;
    std::uint64_t maxNs = 0;
    std::uint64_t p50Ns = 0;
    std::uint64_t p90Ns = 0;
    std::uint64_t p99Ns = 0;
};

/** Point-in-time rendering of every registered instrument. */
struct MetricsSnapshot
{
    std::vector<MetricsEntry> entries; ///< sorted by name

    /** Machine-readable rendering (--metrics-out FILE). */
    std::string toJson() const;

    /**
     * Aligned plain-text table (stderr reporting).  A non-empty
     * @p prefix restricts it to instruments whose name starts with
     * it (e.g. "scheduler." for the verbose campaign summary).
     */
    std::string toTable(std::string_view prefix = {}) const;
};

/**
 * The process-global instrument store.  counter()/gauge()/
 * histogram() lazily create on first use and always return the
 * same instrument for a name; requesting an existing name as a
 * different kind is WSEL_FATAL.  Creation takes a mutex; the
 * returned references are valid for the process lifetime, so hot
 * paths cache them and never re-enter the registry.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    LatencyHistogram &histogram(std::string_view name);

    MetricsSnapshot snapshot() const;

  private:
    Registry() = default;

    struct Impl;
    Impl &impl() const;
};

/** Shorthand for Registry::instance().counter(name). */
Counter &counter(std::string_view name);

/** Shorthand for Registry::instance().gauge(name). */
Gauge &gauge(std::string_view name);

/** Shorthand for Registry::instance().histogram(name). */
LatencyHistogram &histogram(std::string_view name);

/** Shorthand for Registry::instance().snapshot(). */
MetricsSnapshot metricsSnapshot();

} // namespace wsel::obs

#endif // WSEL_OBS_METRICS_HH
