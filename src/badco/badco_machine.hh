/**
 * @file
 * The BADCO machine: an abstract core that fetches and executes the
 * nodes of a BadcoModel against a (shared) uncore. Much faster than
 * the detailed core because it processes one node — not one µop, not
 * one cycle — per step.
 *
 * Timing semantics: nodes execute in order, each consuming its
 * intrinsic weight of core cycles. A node's request issues at the
 * machine's local clock, after waiting for (a) the completion of the
 * load it depends on, (b) the ROB window — the machine cannot run
 * more than robSize µops past an incomplete blocking load — and
 * (c) a free outstanding-request slot (L1 MSHR mirror). The thread
 * restarts at the end of the model, like the paper's multiprogram
 * protocol.
 */

#ifndef WSEL_BADCO_BADCO_MACHINE_HH
#define WSEL_BADCO_BADCO_MACHINE_HH

#include <cstdint>
#include <vector>

#include "badco/badco_model.hh"
#include "mem/uncore.hh"

namespace wsel
{

/** Counters exposed by a BadcoMachine. */
struct BadcoMachineStats
{
    std::uint64_t uops = 0;          ///< µops of progress so far
    std::uint64_t requests = 0;      ///< uncore requests replayed
    std::uint64_t depStallCycles = 0;    ///< dependency waits
    std::uint64_t windowStallCycles = 0; ///< ROB-window waits
    std::uint64_t cyclesToTarget = 0;    ///< clock when target hit
};

/**
 * Trace-driven behavioural core executing one BadcoModel.
 */
class BadcoMachine
{
  public:
    /**
     * @param model Behavioural model to execute (caller-owned;
     *        must be finalize()d — the machine walks the SoA view).
     * @param uncore Shared uncore (caller-owned).
     * @param core_id Core index at the uncore.
     * @param target_uops µop count after which IPC freezes.
     * @param window Effective out-of-order window in µops: how far
     *        the machine may run past an incomplete blocking load.
     *        0 (the default) uses the model's per-benchmark
     *        calibrated window (second-trace calibration); nonzero
     *        overrides it (for ablations).
     * @param max_outstanding Outstanding-load cap (MLP limit).
     */
    BadcoMachine(const BadcoModel &model, UncoreIf &uncore,
                 std::uint32_t core_id, std::uint64_t target_uops,
                 std::uint32_t window = 0,
                 std::uint32_t max_outstanding = 16);

    /**
     * Execute nodes until the local clock reaches @p until (the end
     * of the current simulation quantum).
     */
    void run(std::uint64_t until);

    /**
     * Stop making progress once the target is reached instead of
     * restarting the thread (an alternative to the paper's §IV-A
     * restart protocol, for protocol ablations). Must be set before
     * running.
     */
    void stopAtTarget(bool stop) { stopAtTarget_ = stop; }

    /** True once target_uops µops of progress were made. */
    bool reachedTarget() const { return stats_.cyclesToTarget != 0; }

    /** IPC over the first target_uops µops. */
    double ipc() const;

    /** Local clock in core cycles. */
    std::uint64_t localClock() const { return clock_; }

    const BadcoMachineStats &stats() const { return stats_; }
    std::uint32_t coreId() const { return coreId_; }

  private:
    void step();
    void expireOutstanding();
    void checkTarget();

    const BadcoModel &model_;
    UncoreIf &uncore_;
    const std::uint32_t coreId_;
    const std::uint64_t targetUops_;
    const std::uint32_t window_;
    const std::uint32_t maxOutstanding_;

    /** @name Raw SoA pointers into model_ (hot node walk). */
    /** @{ */
    std::size_t nodeCount_ = 0;
    const std::uint32_t *nodeWeight_ = nullptr;
    const std::uint32_t *nodeUops_ = nullptr;
    const std::uint64_t *nodeVaddr_ = nullptr;
    const std::uint64_t *nodePc_ = nullptr;
    const std::uint8_t *nodeType_ = nullptr;
    const std::int64_t *nodeDependsOn_ = nullptr;
    /** @} */

    std::uint64_t clock_ = 0;
    std::size_t nodeIdx_ = 0;
    std::uint64_t totalUops_ = 0;
    bool stopAtTarget_ = false;

    struct Outstanding
    {
        std::uint64_t completion;
        std::uint64_t uopMark; ///< machine µop count at issue
    };
    std::vector<Outstanding> outstanding_;

    /**
     * Min completion over outstanding_ (UINT64_MAX when empty):
     * lets expireOutstanding() skip the scan while nothing can have
     * completed yet.
     */
    std::uint64_t outstandingMin_ = UINT64_MAX;

    /** Completion cycle of each load in the current iteration. */
    std::vector<std::uint64_t> loadCompletion_;
    std::uint64_t loadSeqInIter_ = 0;

    BadcoMachineStats stats_;
};

} // namespace wsel

#endif // WSEL_BADCO_BADCO_MACHINE_HH
