/**
 * @file
 * BADCO-style behavioural core model (Velásquez, Michaud, Seznec,
 * SAMOS 2012): an application- and core-specific model that captures
 * only the core's *external* behaviour — the stream of uncore
 * requests, how much intrinsic core time separates them, and which
 * requests depend on which.
 *
 * Construction differences vs. the original BADCO (documented in
 * DESIGN.md): the original infers dependencies by diffing two traces
 * taken with different uncore latencies; our detailed core can
 * expose its dataflow directly, so we build the model from a single
 * run against a perfect (always-hit) uncore, recording for each
 * request the most recent earlier request its µop transitively
 * depends on. Node weights are the intrinsic-cycle gaps between
 * consecutive requests in that run.
 */

#ifndef WSEL_BADCO_BADCO_MODEL_HH
#define WSEL_BADCO_BADCO_MODEL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "trace/benchmark_profile.hh"

namespace wsel
{

/** Kind of an uncore request carried by a node. */
enum class BadcoReqType : std::uint8_t
{
    Load,      ///< blocking demand load (data or instruction)
    Store,     ///< posted store refill
    Prefetch,  ///< L1 prefetch
    Writeback, ///< dirty L1 eviction
};

/** One uncore request attached to a node. */
struct BadcoRequest
{
    std::uint64_t vaddr = 0;
    std::uint64_t pc = 0;
    BadcoReqType type = BadcoReqType::Load;

    /**
     * For loads: index of the earlier *load* request (in model
     * order) whose data this request needs; -1 when independent.
     */
    std::int64_t dependsOn = -1;
};

/**
 * One node: a group of µops with intrinsic execution weight, ending
 * in one uncore request.
 */
struct BadcoNode
{
    /** Intrinsic core cycles consumed by this node's µops. */
    std::uint32_t weight = 0;

    /** Number of µops this node advances the program by. */
    std::uint32_t uops = 0;

    /** Position of the request's µop in the trace. */
    std::uint64_t uopSeq = 0;

    /** The uncore request issued at the end of the node. */
    BadcoRequest req;
};

/**
 * Behavioural model of one benchmark on one core configuration.
 */
struct BadcoModel
{
    std::string benchmark;

    /** µop count of the modelled trace slice. */
    std::uint64_t traceUops = 0;

    /** Total intrinsic cycles of the slice (perfect uncore). */
    std::uint64_t intrinsicCycles = 0;

    /** Nodes in program order. */
    std::vector<BadcoNode> nodes;

    /** Trailing intrinsic cycles after the last request. */
    std::uint64_t tailWeight = 0;

    /** Trailing µops after the last request. */
    std::uint64_t tailUops = 0;

    /** Count of load nodes (dependency-index domain size). */
    std::uint64_t loadCount = 0;

    /**
     * Calibrated effective out-of-order window in µops: how far a
     * BADCO machine may run past an incomplete blocking load. This
     * is the model's second-trace calibration (the original BADCO
     * also needs two traces per benchmark): it is fitted so that a
     * replay against a uniformly slow uncore reproduces the
     * detailed core's cycle count under the same slow uncore,
     * capturing the benchmark's real memory-level parallelism.
     */
    std::uint32_t window = 32;

    /**
     * @name SoA runtime view.
     * The machine's quantum loop walks one node per iteration;
     * split arrays keep that walk on a few dense streams instead of
     * striding through 48-byte BadcoNode records (uopSeq is not
     * needed at run time at all). Built by finalize(); nodes stays
     * the build/serialization format.
     */
    /** @{ */
    std::vector<std::uint32_t> nodeWeight;
    std::vector<std::uint32_t> nodeUops;
    std::vector<std::uint64_t> nodeVaddr;
    std::vector<std::uint64_t> nodePc;
    std::vector<std::uint8_t> nodeType; ///< BadcoReqType
    std::vector<std::int64_t> nodeDependsOn;
    bool finalized = false;
    /** @} */

    /**
     * Build the SoA runtime view from nodes. Idempotent; called by
     * buildBadcoModel() and load(). BadcoMachine requires it.
     */
    void finalize();

    /** Serialize to a binary stream. */
    void save(std::ostream &os) const;

    /** Deserialize; fatal on format errors. */
    static BadcoModel load(std::istream &is);

    /** Convenience file wrappers. */
    void saveFile(const std::string &path) const;
    static BadcoModel loadFile(const std::string &path);
};

/**
 * Build a BADCO model for one benchmark by running the detailed
 * core against a perfect uncore and recording its external
 * behaviour.
 *
 * @param profile The benchmark.
 * @param core_cfg Core configuration (Table I).
 * @param target_uops Trace slice length in µops.
 * @param llc_hit_latency Perfect-uncore response latency; use the
 *        target configuration's LLC hit latency.
 * @param seed Determinism seed for the detailed run.
 */
BadcoModel buildBadcoModel(const BenchmarkProfile &profile,
                           const CoreConfig &core_cfg,
                           std::uint64_t target_uops,
                           std::uint32_t llc_hit_latency,
                           std::uint64_t seed = 12345,
                           std::uint32_t slow_extra_latency = 200);

} // namespace wsel

#endif // WSEL_BADCO_BADCO_MODEL_HH
