#include "badco/badco_machine.hh"

#include <algorithm>

#include "stats/logging.hh"

namespace wsel
{

BadcoMachine::BadcoMachine(const BadcoModel &model, UncoreIf &uncore,
                           std::uint32_t core_id,
                           std::uint64_t target_uops,
                           std::uint32_t window,
                           std::uint32_t max_outstanding)
    : model_(model), uncore_(uncore), coreId_(core_id),
      targetUops_(target_uops),
      window_(window == 0 ? model.window : window),
      maxOutstanding_(max_outstanding)
{
    if (model_.traceUops == 0 || model_.intrinsicCycles == 0)
        WSEL_FATAL("empty BADCO model for " << model.benchmark);
    if (max_outstanding == 0 || window_ == 0)
        WSEL_FATAL("degenerate BADCO machine limits");
    loadCompletion_.assign(model_.loadCount, 0);
    outstanding_.reserve(max_outstanding);
}

double
BadcoMachine::ipc() const
{
    if (stats_.cyclesToTarget == 0)
        return 0.0;
    return static_cast<double>(targetUops_) /
           static_cast<double>(stats_.cyclesToTarget);
}

void
BadcoMachine::expireOutstanding()
{
    std::erase_if(outstanding_, [this](const Outstanding &o) {
        return o.completion <= clock_;
    });
}

void
BadcoMachine::checkTarget()
{
    if (stats_.cyclesToTarget != 0 || totalUops_ < targetUops_)
        return;
    // The target µop cannot commit before in-flight older loads
    // complete.
    std::uint64_t t = clock_;
    for (const Outstanding &o : outstanding_)
        t = std::max(t, o.completion);
    stats_.cyclesToTarget = std::max<std::uint64_t>(t, 1);
}

void
BadcoMachine::run(std::uint64_t until)
{
    while (clock_ < until) {
        if (stopAtTarget_ && reachedTarget()) {
            // Idle: the thread halted instead of restarting.
            clock_ = until;
            return;
        }
        step();
    }
}

void
BadcoMachine::step()
{
    if (nodeIdx_ >= model_.nodes.size()) {
        // Tail of the slice, then thread restart.
        clock_ += model_.tailWeight;
        totalUops_ += model_.tailUops;
        stats_.uops = totalUops_;
        checkTarget();
        nodeIdx_ = 0;
        loadSeqInIter_ = 0;
        return;
    }

    const BadcoNode &node = model_.nodes[nodeIdx_];

    // Intrinsic execution of the node's µops.
    clock_ += node.weight;
    totalUops_ += node.uops;
    stats_.uops = totalUops_;
    expireOutstanding();

    // Effective-window constraint: the machine cannot be more than
    // window_ µops past an incomplete blocking load.
    for (const Outstanding &o : outstanding_) {
        if (totalUops_ > o.uopMark + window_ &&
            o.completion > clock_) {
            stats_.windowStallCycles += o.completion - clock_;
            clock_ = o.completion;
        }
    }
    expireOutstanding();

    const BadcoRequest &req = node.req;
    switch (req.type) {
      case BadcoReqType::Load: {
        if (req.dependsOn >= 0) {
            WSEL_ASSERT(static_cast<std::uint64_t>(req.dependsOn) <
                            loadSeqInIter_,
                        "forward load dependency in model");
            const std::uint64_t dep_done =
                loadCompletion_[req.dependsOn];
            if (dep_done > clock_) {
                stats_.depStallCycles += dep_done - clock_;
                clock_ = dep_done;
                expireOutstanding();
            }
        }
        // Outstanding-slot (MSHR) limit.
        if (outstanding_.size() >= maxOutstanding_) {
            std::uint64_t earliest = UINT64_MAX;
            for (const Outstanding &o : outstanding_)
                earliest = std::min(earliest, o.completion);
            if (earliest > clock_)
                clock_ = earliest;
            expireOutstanding();
        }
        const std::uint64_t comp = uncore_.access(
            clock_, coreId_, req.vaddr, false, req.pc, false);
        outstanding_.push_back(Outstanding{comp, totalUops_});
        WSEL_ASSERT(loadSeqInIter_ < loadCompletion_.size(),
                    "load numbering overflow");
        loadCompletion_[loadSeqInIter_++] = comp;
        break;
      }
      case BadcoReqType::Store:
        uncore_.access(clock_, coreId_, req.vaddr, true, req.pc,
                       false);
        break;
      case BadcoReqType::Prefetch:
        uncore_.access(clock_, coreId_, req.vaddr, false, req.pc,
                       true);
        break;
      case BadcoReqType::Writeback:
        uncore_.writeback(clock_, coreId_, req.vaddr);
        break;
    }
    ++stats_.requests;
    checkTarget();
    ++nodeIdx_;
}

} // namespace wsel
