#include "badco/badco_machine.hh"

#include <algorithm>

#include "stats/logging.hh"

namespace wsel
{

BadcoMachine::BadcoMachine(const BadcoModel &model, UncoreIf &uncore,
                           std::uint32_t core_id,
                           std::uint64_t target_uops,
                           std::uint32_t window,
                           std::uint32_t max_outstanding)
    : model_(model), uncore_(uncore), coreId_(core_id),
      targetUops_(target_uops),
      window_(window == 0 ? model.window : window),
      maxOutstanding_(max_outstanding)
{
    if (model_.traceUops == 0 || model_.intrinsicCycles == 0)
        WSEL_FATAL("empty BADCO model for " << model.benchmark);
    if (max_outstanding == 0 || window_ == 0)
        WSEL_FATAL("degenerate BADCO machine limits");
    if (!model_.finalized)
        WSEL_FATAL("BADCO model for " << model.benchmark
                   << " was not finalize()d");
    nodeCount_ = model_.nodeWeight.size();
    nodeWeight_ = model_.nodeWeight.data();
    nodeUops_ = model_.nodeUops.data();
    nodeVaddr_ = model_.nodeVaddr.data();
    nodePc_ = model_.nodePc.data();
    nodeType_ = model_.nodeType.data();
    nodeDependsOn_ = model_.nodeDependsOn.data();
    loadCompletion_.assign(model_.loadCount, 0);
    outstanding_.reserve(max_outstanding);
}

double
BadcoMachine::ipc() const
{
    if (stats_.cyclesToTarget == 0)
        return 0.0;
    return static_cast<double>(targetUops_) /
           static_cast<double>(stats_.cyclesToTarget);
}

void
BadcoMachine::expireOutstanding()
{
    // Nothing can have completed before the earliest completion:
    // skipping the scan is behaviour-identical and saves the most
    // frequent loop in the BADCO hot path.
    if (outstandingMin_ > clock_)
        return;
    // Stable one-pass compaction (same surviving order as
    // erase_if) that recomputes the minimum as it goes.
    std::uint64_t min = UINT64_MAX;
    std::size_t n = 0;
    for (const Outstanding &o : outstanding_) {
        if (o.completion > clock_) {
            outstanding_[n++] = o;
            min = std::min(min, o.completion);
        }
    }
    outstanding_.resize(n);
    outstandingMin_ = min;
}

void
BadcoMachine::checkTarget()
{
    if (stats_.cyclesToTarget != 0 || totalUops_ < targetUops_)
        return;
    // The target µop cannot commit before in-flight older loads
    // complete.
    std::uint64_t t = clock_;
    for (const Outstanding &o : outstanding_)
        t = std::max(t, o.completion);
    stats_.cyclesToTarget = std::max<std::uint64_t>(t, 1);
}

void
BadcoMachine::run(std::uint64_t until)
{
    while (clock_ < until) {
        if (stopAtTarget_ && reachedTarget()) {
            // Idle: the thread halted instead of restarting.
            clock_ = until;
            return;
        }
        step();
    }
}

void
BadcoMachine::step()
{
    if (nodeIdx_ >= nodeCount_) {
        // Tail of the slice, then thread restart.
        clock_ += model_.tailWeight;
        totalUops_ += model_.tailUops;
        stats_.uops = totalUops_;
        checkTarget();
        nodeIdx_ = 0;
        loadSeqInIter_ = 0;
        return;
    }

    const std::size_t i = nodeIdx_;

    // Intrinsic execution of the node's µops (SoA walk).
    clock_ += nodeWeight_[i];
    totalUops_ += nodeUops_[i];
    stats_.uops = totalUops_;
    expireOutstanding();

    // Effective-window constraint: the machine cannot be more than
    // window_ µops past an incomplete blocking load.  uopMark is
    // non-decreasing in push order, so once an entry is inside the
    // window every later entry is too — the scan can stop there.
    for (const Outstanding &o : outstanding_) {
        if (totalUops_ <= o.uopMark + window_)
            break;
        if (o.completion > clock_) {
            stats_.windowStallCycles += o.completion - clock_;
            clock_ = o.completion;
        }
    }
    expireOutstanding();

    const std::uint64_t vaddr = nodeVaddr_[i];
    const std::uint64_t pc = nodePc_[i];
    switch (static_cast<BadcoReqType>(nodeType_[i])) {
      case BadcoReqType::Load: {
        const std::int64_t depends_on = nodeDependsOn_[i];
        if (depends_on >= 0) {
            WSEL_ASSERT(static_cast<std::uint64_t>(depends_on) <
                            loadSeqInIter_,
                        "forward load dependency in model");
            const std::uint64_t dep_done =
                loadCompletion_[depends_on];
            if (dep_done > clock_) {
                stats_.depStallCycles += dep_done - clock_;
                clock_ = dep_done;
                expireOutstanding();
            }
        }
        // Outstanding-slot (MSHR) limit: wait for the earliest
        // completion (the cached minimum — same value the old
        // full scan computed).
        if (outstanding_.size() >= maxOutstanding_) {
            if (outstandingMin_ > clock_)
                clock_ = outstandingMin_;
            expireOutstanding();
        }
        const std::uint64_t comp = uncore_.access(
            clock_, coreId_, vaddr, false, pc, false);
        outstanding_.push_back(Outstanding{comp, totalUops_});
        outstandingMin_ = std::min(outstandingMin_, comp);
        WSEL_ASSERT(loadSeqInIter_ < loadCompletion_.size(),
                    "load numbering overflow");
        loadCompletion_[loadSeqInIter_++] = comp;
        break;
      }
      case BadcoReqType::Store:
        uncore_.access(clock_, coreId_, vaddr, true, pc, false);
        break;
      case BadcoReqType::Prefetch:
        uncore_.access(clock_, coreId_, vaddr, false, pc, true);
        break;
      case BadcoReqType::Writeback:
        uncore_.writeback(clock_, coreId_, vaddr);
        break;
    }
    ++stats_.requests;
    checkTarget();
    ++nodeIdx_;
}

} // namespace wsel
