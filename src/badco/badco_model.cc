#include "badco/badco_model.hh"

#include "badco/badco_machine.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "cpu/detailed_core.hh"
#include "mem/uncore.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "trace/trace_store.hh"

namespace wsel
{

namespace
{

constexpr std::uint32_t kMagic = 0xbadc0de2;

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        WSEL_FATAL("truncated BADCO model stream");
    return v;
}

/** Observer that accumulates the request stream into a model. */
class ModelRecorder : public CoreObserver
{
  public:
    explicit ModelRecorder(BadcoModel &model) : model_(model) {}

    void
    onUncoreRequest(const UncoreRequestEvent &ev) override
    {
        // Ignore activity past the modelled slice (restarted-thread
        // execution of the builder run) — but keep the data-load
        // numbering aligned with the core's, since loads can retire
        // out of emission order around the slice boundary.
        if (ev.uopSeq >= model_.traceUops) {
            if (!ev.isWriteback && !ev.isPrefetch && !ev.isWrite &&
                !ev.isInstruction) {
                dataLoadToModelLoad_.push_back(-1);
            }
            return;
        }

        BadcoNode node;
        node.uopSeq = ev.uopSeq;
        node.weight = static_cast<std::uint32_t>(
            ev.issueCycle > lastIssue_ ? ev.issueCycle - lastIssue_
                                       : 0);
        node.uops = static_cast<std::uint32_t>(
            ev.uopSeq > lastUop_ ? ev.uopSeq - lastUop_ : 0);
        lastIssue_ = std::max(lastIssue_, ev.issueCycle);
        lastUop_ = std::max(lastUop_, ev.uopSeq);

        BadcoRequest &req = node.req;
        req.vaddr = ev.vaddr;
        req.pc = ev.pc;
        if (ev.isWriteback) {
            req.type = BadcoReqType::Writeback;
        } else if (ev.isPrefetch) {
            req.type = BadcoReqType::Prefetch;
        } else if (ev.isWrite) {
            req.type = BadcoReqType::Store;
        } else {
            req.type = BadcoReqType::Load;
            if (!ev.isInstruction) {
                // Map the core's data-load numbering onto the
                // model's load numbering.
                if (ev.dependsOn >= 0) {
                    WSEL_ASSERT(static_cast<std::size_t>(
                                    ev.dependsOn) <
                                    dataLoadToModelLoad_.size(),
                                "dangling load dependency");
                    // -1 when the producer fell outside the slice.
                    req.dependsOn =
                        dataLoadToModelLoad_[ev.dependsOn];
                }
                dataLoadToModelLoad_.push_back(
                    static_cast<std::int64_t>(model_.loadCount));
            }
            ++model_.loadCount;
        }
        model_.nodes.push_back(node);
    }

    std::uint64_t lastIssue() const { return lastIssue_; }
    std::uint64_t lastUop() const { return lastUop_; }

  private:
    BadcoModel &model_;
    std::uint64_t lastIssue_ = 0;
    std::uint64_t lastUop_ = 0;
    std::vector<std::int64_t> dataLoadToModelLoad_;
};

} // namespace

namespace
{

/** Cycles of a detailed run against a constant-latency uncore. */
std::uint64_t
detailedCyclesAt(const BenchmarkProfile &profile,
                 const CoreConfig &core_cfg,
                 std::uint64_t target_uops, std::uint32_t latency,
                 std::uint64_t seed, BadcoModel *model,
                 ModelRecorder *recorder)
{
    PerfectUncore uncore(latency);
    DetailedCore core(core_cfg, TraceStore::global().cursor(profile),
                      uncore, 0, target_uops, seed);
    if (recorder)
        core.setObserver(recorder);
    std::uint64_t now = 0;
    while (!core.reachedTarget()) {
        core.tick(now);
        const std::uint64_t next = core.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }
    (void)model;
    return core.stats().cyclesToTarget;
}

/** Cycles of a BADCO replay against a constant-latency uncore. */
std::uint64_t
replayCyclesAt(const BadcoModel &model, std::uint32_t latency,
               std::uint64_t target_uops, std::uint32_t window)
{
    PerfectUncore uncore(latency);
    BadcoMachine machine(model, uncore, 0, target_uops, window);
    while (!machine.reachedTarget())
        machine.run(machine.localClock() + 100000);
    return machine.stats().cyclesToTarget;
}

} // namespace

BadcoModel
buildBadcoModel(const BenchmarkProfile &profile,
                const CoreConfig &core_cfg,
                std::uint64_t target_uops,
                std::uint32_t llc_hit_latency, std::uint64_t seed,
                std::uint32_t slow_extra_latency)
{
    BadcoModel model;
    model.benchmark = profile.name;
    model.traceUops = target_uops;

    // First trace: perfect uncore. Gives node weights, the request
    // stream, and dataflow dependencies.
    ModelRecorder recorder(model);
    model.intrinsicCycles = detailedCyclesAt(
        profile, core_cfg, target_uops, llc_hit_latency, seed,
        &model, &recorder);
    model.tailWeight =
        model.intrinsicCycles > recorder.lastIssue()
            ? model.intrinsicCycles - recorder.lastIssue()
            : 0;
    model.tailUops = target_uops > recorder.lastUop()
                         ? target_uops - recorder.lastUop()
                         : 0;

    // The calibration replays below run BadcoMachines, which walk
    // the SoA view.
    model.finalize();

    // Second trace: uniformly slow uncore. Calibrates the effective
    // window so the replay reproduces the detailed core's
    // sensitivity to uncore latency (its real MLP).
    const std::uint32_t slow =
        llc_hit_latency + slow_extra_latency;
    const std::uint64_t t_slow = detailedCyclesAt(
        profile, core_cfg, target_uops, slow, seed, nullptr,
        nullptr);

    std::uint32_t best_w = 1;
    std::uint64_t best_err = UINT64_MAX;
    std::uint32_t lo = 1, hi = 512;
    while (lo <= hi) {
        const std::uint32_t mid = (lo + hi) / 2;
        const std::uint64_t t =
            replayCyclesAt(model, slow, target_uops, mid);
        const std::uint64_t err =
            t > t_slow ? t - t_slow : t_slow - t;
        if (err < best_err) {
            best_err = err;
            best_w = mid;
        }
        // Larger windows mean fewer stalls, i.e. fewer cycles.
        if (t > t_slow)
            lo = mid + 1;
        else {
            if (mid == 0)
                break;
            hi = mid - 1;
        }
    }
    model.window = best_w;
    return model;
}

void
BadcoModel::finalize()
{
    if (finalized)
        return;
    const std::size_t n = nodes.size();
    nodeWeight.reserve(n);
    nodeUops.reserve(n);
    nodeVaddr.reserve(n);
    nodePc.reserve(n);
    nodeType.reserve(n);
    nodeDependsOn.reserve(n);
    for (const BadcoNode &node : nodes) {
        nodeWeight.push_back(node.weight);
        nodeUops.push_back(node.uops);
        nodeVaddr.push_back(node.req.vaddr);
        nodePc.push_back(node.req.pc);
        nodeType.push_back(
            static_cast<std::uint8_t>(node.req.type));
        nodeDependsOn.push_back(node.req.dependsOn);
    }
    finalized = true;
}

void
BadcoModel::save(std::ostream &os) const
{
    put(os, kMagic);
    const std::uint32_t name_len =
        static_cast<std::uint32_t>(benchmark.size());
    put(os, name_len);
    os.write(benchmark.data(), name_len);
    put(os, traceUops);
    put(os, intrinsicCycles);
    put(os, tailWeight);
    put(os, tailUops);
    put(os, loadCount);
    put(os, window);
    const std::uint64_t n = nodes.size();
    put(os, n);
    for (const BadcoNode &node : nodes) {
        put(os, node.weight);
        put(os, node.uops);
        put(os, node.uopSeq);
        put(os, node.req.vaddr);
        put(os, node.req.pc);
        put(os, node.req.type);
        put(os, node.req.dependsOn);
    }
}

BadcoModel
BadcoModel::load(std::istream &is)
{
    if (get<std::uint32_t>(is) != kMagic)
        WSEL_FATAL("not a BADCO model stream (bad magic)");
    BadcoModel m;
    const std::uint32_t name_len = get<std::uint32_t>(is);
    // Bound-check counts before allocating: a bit-flipped length
    // field must not turn into a multi-gigabyte resize.
    if (name_len > 4096)
        WSEL_FATAL("BADCO model stream has implausible name length "
                   << name_len);
    m.benchmark.resize(name_len);
    is.read(m.benchmark.data(), name_len);
    if (!is)
        WSEL_FATAL("truncated BADCO model stream");
    m.traceUops = get<std::uint64_t>(is);
    m.intrinsicCycles = get<std::uint64_t>(is);
    m.tailWeight = get<std::uint64_t>(is);
    m.tailUops = get<std::uint64_t>(is);
    m.loadCount = get<std::uint64_t>(is);
    m.window = get<std::uint32_t>(is);
    const std::uint64_t n = get<std::uint64_t>(is);
    if (n > (1ULL << 32))
        WSEL_FATAL("BADCO model stream has implausible node count "
                   << n);
    m.nodes.resize(n);
    for (BadcoNode &node : m.nodes) {
        node.weight = get<std::uint32_t>(is);
        node.uops = get<std::uint32_t>(is);
        node.uopSeq = get<std::uint64_t>(is);
        node.req.vaddr = get<std::uint64_t>(is);
        node.req.pc = get<std::uint64_t>(is);
        node.req.type = get<BadcoReqType>(is);
        node.req.dependsOn = get<std::int64_t>(is);
    }
    m.finalize();
    return m;
}

void
BadcoModel::saveFile(const std::string &path) const
{
    // Serialize in memory and replace the file atomically so a
    // crash mid-save cannot leave a half-written model behind.
    std::ostringstream os(std::ios::binary);
    save(os);
    persist::atomicWriteFile(path, os.str());
}

BadcoModel
BadcoModel::loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        WSEL_FATAL("cannot open '" << path << "' for reading");
    return load(is);
}

} // namespace wsel
