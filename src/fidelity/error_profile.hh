/**
 * @file
 * Online BADCO-vs-detailed error model (docs/FIDELITY.md).
 *
 * An ErrorProfile tracks the distribution of the relative IPC error
 * |ipc_badco - ipc_detailed| / ipc_detailed per benchmark, with a
 * per-MPKI-class and a global fallback for benchmarks that have not
 * yet accumulated enough observations of their own.  Each tracked
 * distribution is an IntervalStats: a lifetime Welford accumulator
 * plus a bounded rolling window of the most recent observations (in
 * the style of the CPA stats.hpp interval/rolling statistics), so
 * the error bound both converges over a long calibration history
 * and reacts when the model drifts on recent escalations.
 *
 * The profile is seeded by a calibration pass (fidelity/calibrate.hh
 * shares the fig2 BADCO-vs-detailed comparison) and updated online
 * as escalated cells return detailed results.  Online updates are
 * guarded by markApplied() so a killed-and-resumed hybrid campaign
 * never double-counts its own residuals.  Persistence lives in
 * fidelity/persist_fidelity.hh (checksummed error_profile.bin beside
 * the model store).
 */

#ifndef WSEL_FIDELITY_ERROR_PROFILE_HH
#define WSEL_FIDELITY_ERROR_PROFILE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "trace/benchmark_profile.hh"

namespace wsel::fidelity
{

/** Default rolling-window capacity per tracked distribution. */
inline constexpr std::size_t kDefaultErrorWindow = 64;

/** Minimum per-benchmark samples before its own bound is trusted. */
inline constexpr std::uint64_t kMinBenchSamples = 4;

/** Error bounds never shrink below this relative-IPC floor. */
inline constexpr double kErrorBoundFloor = 1e-4;

/**
 * Serializable Welford accumulator.  stats/summary.hh's
 * RunningStats does not expose its second moment, and the profile
 * must round-trip through error_profile.bin bit-exactly, so the
 * fidelity layer carries its own.
 */
struct Welford
{
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void add(double x);
    double variancePopulation() const;
    double stddevPopulation() const;
};

/**
 * Lifetime + rolling-window statistics over one error distribution
 * (CPA stats.hpp style: a cumulative series plus an interval view
 * that forgets old phases).
 */
class IntervalStats
{
  public:
    explicit IntervalStats(std::size_t window = kDefaultErrorWindow);

    void add(double x);

    std::uint64_t count() const { return life_.n; }
    const Welford &lifetime() const { return life_; }

    /** Window contents oldest-to-newest (for persistence). */
    std::vector<double> windowValues() const;
    std::size_t windowCapacity() const { return capacity_; }

    /** Welford over the rolling window only. */
    Welford windowStats() const;

    /**
     * One-sided upper bound at normal deviate @p z: the larger of
     * the lifetime and rolling-window mean + z * stddev, so a
     * recent drift widens the bound even when the lifetime history
     * is long and tight.
     */
    double bound(double z) const;

    /** Restore from persisted state (values oldest-to-newest). */
    void restore(const Welford &lifetime,
                 const std::vector<double> &window_values);

  private:
    Welford life_;
    std::size_t capacity_;
    std::deque<double> window_;
};

/**
 * Per-benchmark (with MPKI-class and global fallback) relative-IPC
 * error distributions between BADCO and the detailed simulator.
 */
class ErrorProfile
{
  public:
    ErrorProfile() = default;

    /**
     * @param suite Benchmark suite the profile is keyed to; the
     *        suite hash (names + parameter hashes) is persisted and
     *        checked on load so a profile never silently applies to
     *        a different suite.
     */
    explicit ErrorProfile(const std::vector<BenchmarkProfile> &suite,
                          std::size_t window = kDefaultErrorWindow);

    /** Restore shape from persisted state (persist_fidelity.cc). */
    ErrorProfile(std::uint64_t suite_hash,
                 std::vector<std::string> names,
                 std::vector<MpkiClass> classes, std::size_t window);

    /** Record one observed (badco, detailed) IPC pair. */
    void record(std::uint32_t bench, double ipc_badco,
                double ipc_detailed);

    /**
     * One-sided relative-IPC error bound for @p bench at the given
     * quantile (e.g. 0.95): the benchmark's own distribution when
     * it has at least kMinBenchSamples observations, else its MPKI
     * class, else the global distribution, clamped to at least
     * kErrorBoundFloor.  A profile with no observations at all
     * returns +infinity, which escalates everything — the honest
     * answer for an uncalibrated model.
     */
    double errorBound(std::uint32_t bench, double quantile) const;

    /**
     * Record that campaign @p id applied its residuals; returns
     * false (and does nothing) when already applied.  The applied
     * list keeps the most recent kMaxApplied ids.
     */
    bool markApplied(std::uint64_t id);
    bool wasApplied(std::uint64_t id) const;

    std::uint64_t suiteHash() const { return suiteHash_; }
    std::size_t numBenchmarks() const { return perBench_.size(); }
    std::uint64_t totalSamples() const { return global_.count(); }

    const std::vector<std::string> &benchmarkNames() const
    {
        return names_;
    }

    // Persistence access (fidelity/persist_fidelity.cc).
    const IntervalStats &benchStats(std::size_t i) const;
    const IntervalStats &classStats(std::size_t cls) const;
    const IntervalStats &globalStats() const { return global_; }
    MpkiClass benchClass(std::size_t i) const { return classes_[i]; }
    const std::vector<std::uint64_t> &appliedIds() const
    {
        return applied_;
    }

    IntervalStats &benchStatsMut(std::size_t i);
    IntervalStats &classStatsMut(std::size_t cls);
    IntervalStats &globalStatsMut() { return global_; }
    void restoreApplied(std::vector<std::uint64_t> ids);

    /** Hash a suite the way the profile does (names + params). */
    static std::uint64_t hashSuite(
        const std::vector<BenchmarkProfile> &suite);

    static constexpr std::size_t kNumClasses = 3;
    static constexpr std::size_t kMaxApplied = 64;

  private:
    std::uint64_t suiteHash_ = 0;
    std::vector<std::string> names_;
    std::vector<MpkiClass> classes_;
    std::vector<IntervalStats> perBench_;
    std::vector<IntervalStats> perClass_;
    IntervalStats global_;
    std::vector<std::uint64_t> applied_;
};

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * |relative error| < 1.2e-9); fatal outside (0, 1).
 */
double normalQuantile(double p);

} // namespace wsel::fidelity

#endif // WSEL_FIDELITY_ERROR_PROFILE_HH
