#include "fidelity/persist_fidelity.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::fidelity
{

namespace
{

using persist::CacheInvalid;

constexpr char kProfileMagic[8] = {'W', 'S', 'E', 'L',
                                   'E', 'P', 'R', 'O'};
constexpr char kEscalationMagic[8] = {'W', 'S', 'E', 'L',
                                      'E', 'S', 'C', 'L'};
constexpr char kBatchMagic[8] = {'W', 'S', 'E', 'L',
                                 'F', 'B', 'A', 'T'};
constexpr char kReportMagic[8] = {'W', 'S', 'E', 'L',
                                  'H', 'Y', 'B', 'R'};

constexpr std::uint64_t kMaxWindow = 4096;
constexpr std::uint64_t kMaxBenchmarks = 1u << 20;
constexpr std::uint64_t kMaxNameLen = 256;
constexpr std::uint64_t kMaxRows = 1ULL << 48;
constexpr std::uint64_t kMaxBatchRows = 1u << 20;

void
appendU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendF64(std::string &out, double v)
{
    appendU64(out, std::bit_cast<std::uint64_t>(v));
}

void
appendString(std::string &out, const std::string &s)
{
    appendU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

void
appendChecksum(std::string &out)
{
    const std::uint64_t sum = persist::fnv1a(out);
    appendU64(out, sum);
}

/** Bounds-checked little-endian reader over a loaded file. */
class Reader
{
  public:
    Reader(std::string_view data, const std::string &what)
        : data_(data), what_(what)
    {
    }

    void
    expectMagic(const char (&magic)[8])
    {
        char got[8];
        bytes(got, 8);
        if (std::memcmp(got, magic, 8) != 0)
            throw CacheInvalid(what_ + ": bad magic");
    }

    std::uint8_t
    u8()
    {
        unsigned char b;
        bytes(&b, 1);
        return b;
    }

    std::uint32_t
    u32()
    {
        unsigned char b[4];
        bytes(b, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        unsigned char b[8];
        bytes(b, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (n > remaining())
            throw CacheInvalid(what_ + ": truncated string");
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return data_.size() - pos_; }

    void
    bytes(void *out, std::size_t n)
    {
        if (n > remaining())
            throw CacheInvalid(what_ + ": truncated");
        std::memcpy(out, data_.data() + pos_, n);
        pos_ += n;
    }

  private:
    std::string_view data_;
    std::string what_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path, const std::string &what)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CacheInvalid(what + ": cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        throw CacheInvalid(what + ": read error on " + path);
    return data;
}

/** Split off and verify the trailing checksum; returns the body. */
std::string_view
checkedBody(const std::string &data, const std::string &what)
{
    if (data.size() < 8)
        throw CacheInvalid(what + ": too short for a checksum");
    const std::string_view body(data.data(), data.size() - 8);
    Reader tail(
        std::string_view(data.data() + body.size(), 8), what);
    const std::uint64_t want = tail.u64();
    if (persist::fnv1a(body) != want)
        throw CacheInvalid(what + ": checksum mismatch");
    return body;
}

void
checkCount(std::uint64_t v, std::uint64_t max, const char *field,
           const std::string &what)
{
    if (v > max)
        throw CacheInvalid(what + ": implausible " +
                           std::string(field) + " " +
                           std::to_string(v) + " (max " +
                           std::to_string(max) + ")");
}

void
appendIntervalStats(std::string &out, const IntervalStats &s)
{
    const Welford &life = s.lifetime();
    appendU64(out, life.n);
    appendF64(out, life.mean);
    appendF64(out, life.m2);
    const std::vector<double> win = s.windowValues();
    appendU32(out, static_cast<std::uint32_t>(win.size()));
    for (double v : win)
        appendF64(out, v);
}

void
readIntervalStats(Reader &r, std::size_t capacity,
                  IntervalStats &into, const std::string &what)
{
    Welford life;
    life.n = r.u64();
    life.mean = r.f64();
    life.m2 = r.f64();
    const std::uint32_t fill = r.u32();
    checkCount(fill, capacity, "window fill", what);
    if (fill > life.n)
        throw CacheInvalid(what +
                           ": window larger than sample count");
    std::vector<double> win;
    win.reserve(fill);
    for (std::uint32_t i = 0; i < fill; ++i)
        win.push_back(r.f64());
    into.restore(life, win);
}

} // namespace

std::string
errorProfilePath(const std::string &cache_dir)
{
    return cache_dir + "/error_profile.bin";
}

std::string
escalationRecordPath(const std::string &dir)
{
    return dir + "/fidelity-bitmap.bin";
}

std::string
fidelityBatchName(std::uint64_t index)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "fidelity-batch-%06llu.bin",
                  static_cast<unsigned long long>(index));
    return buf;
}

std::string
fidelityBatchPath(const std::string &dir, std::uint64_t index)
{
    return dir + "/" + fidelityBatchName(index);
}

std::string
hybridReportPath(const std::string &dir)
{
    return dir + "/hybrid.bin";
}

void
writeErrorProfile(const std::string &path, const ErrorProfile &p)
{
    std::string out;
    out.reserve(256 + 64 * p.numBenchmarks());
    out.append(kProfileMagic, 8);
    appendU32(out, kFidelityVersion);
    appendU64(out, p.suiteHash());
    appendU32(out, static_cast<std::uint32_t>(
                       p.globalStats().windowCapacity()));
    const std::size_t nb = p.numBenchmarks();
    appendU32(out, static_cast<std::uint32_t>(nb));
    for (std::size_t i = 0; i < nb; ++i) {
        appendString(out, p.benchmarkNames()[i]);
        appendU8(out,
                 static_cast<std::uint8_t>(p.benchClass(i)));
        appendIntervalStats(out, p.benchStats(i));
    }
    for (std::size_t c = 0; c < ErrorProfile::kNumClasses; ++c)
        appendIntervalStats(out, p.classStats(c));
    appendIntervalStats(out, p.globalStats());
    appendU32(out,
              static_cast<std::uint32_t>(p.appliedIds().size()));
    for (std::uint64_t id : p.appliedIds())
        appendU64(out, id);
    appendChecksum(out);
    persist::atomicWriteFile(path, out);
}

ErrorProfile
readErrorProfile(const std::string &path)
{
    const std::string what = "error profile";
    const std::string data = slurp(path, what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kProfileMagic);
    const std::uint32_t version = r.u32();
    if (version != kFidelityVersion)
        throw CacheInvalid(what + ": unsupported version " +
                           std::to_string(version));
    const std::uint64_t suite_hash = r.u64();
    const std::uint32_t window = r.u32();
    checkCount(window, kMaxWindow, "window capacity", what);
    if (window == 0)
        throw CacheInvalid(what + ": zero window capacity");
    const std::uint32_t nb = r.u32();
    checkCount(nb, kMaxBenchmarks, "benchmark count", what);
    std::vector<std::string> names;
    std::vector<MpkiClass> classes;
    names.reserve(nb);
    classes.reserve(nb);
    std::vector<IntervalStats> bench_stats(nb,
                                           IntervalStats(window));
    for (std::uint32_t i = 0; i < nb; ++i) {
        names.push_back(r.str());
        checkCount(names.back().size(), kMaxNameLen,
                   "benchmark-name length", what);
        const std::uint8_t cls = r.u8();
        if (cls >= ErrorProfile::kNumClasses)
            throw CacheInvalid(what + ": implausible MPKI class " +
                               std::to_string(cls));
        classes.push_back(static_cast<MpkiClass>(cls));
        readIntervalStats(r, window, bench_stats[i], what);
    }
    ErrorProfile p(suite_hash, std::move(names),
                   std::move(classes), window);
    for (std::uint32_t i = 0; i < nb; ++i)
        p.benchStatsMut(i) = std::move(bench_stats[i]);
    for (std::size_t c = 0; c < ErrorProfile::kNumClasses; ++c)
        readIntervalStats(r, window, p.classStatsMut(c), what);
    readIntervalStats(r, window, p.globalStatsMut(), what);
    const std::uint32_t na = r.u32();
    checkCount(na, ErrorProfile::kMaxApplied, "applied-id count",
               what);
    std::vector<std::uint64_t> applied;
    applied.reserve(na);
    for (std::uint32_t i = 0; i < na; ++i)
        applied.push_back(r.u64());
    p.restoreApplied(std::move(applied));
    if (r.remaining() != 0)
        throw CacheInvalid(what + ": trailing bytes");
    return p;
}

void
EscalationRecord::resizeBitmap()
{
    bitmap.assign(static_cast<std::size_t>((rows() + 7) / 8), 0);
}

bool
EscalationRecord::escalated(std::uint64_t row) const
{
    if (row >= rows())
        WSEL_FATAL("escalation bitmap row " << row
                   << " outside " << rows() << " rows");
    return (bitmap[static_cast<std::size_t>(row / 8)] >>
            (row % 8)) &
           1;
}

void
EscalationRecord::setEscalated(std::uint64_t row)
{
    if (row >= rows())
        WSEL_FATAL("escalation bitmap row " << row
                   << " outside " << rows() << " rows");
    bitmap[static_cast<std::size_t>(row / 8)] |=
        static_cast<std::uint8_t>(1u << (row % 8));
}

void
writeEscalationRecord(const std::string &dir,
                      const EscalationRecord &rec)
{
    if (rec.lastRank < rec.firstRank)
        WSEL_FATAL("escalation record rank range inverted");
    if (rec.bitmap.size() !=
        static_cast<std::size_t>((rec.rows() + 7) / 8))
        WSEL_FATAL("escalation record bitmap has "
                   << rec.bitmap.size() << " bytes for "
                   << rec.rows() << " rows");
    std::string out;
    out.reserve(256 + rec.bitmap.size());
    out.append(kEscalationMagic, 8);
    appendU32(out, kFidelityVersion);
    appendU64(out, rec.badcoFingerprint);
    appendU64(out, rec.detailedFingerprint);
    appendU64(out, rec.seed);
    appendString(out, rec.metric);
    appendString(out, rec.policyX);
    appendString(out, rec.policyY);
    appendF64(out, rec.quantile);
    appendF64(out, rec.budgetFraction);
    appendF64(out, rec.threshold);
    appendU64(out, rec.firstRank);
    appendU64(out, rec.lastRank);
    appendU64(out, rec.escalatedCount);
    out.append(reinterpret_cast<const char *>(rec.bitmap.data()),
               rec.bitmap.size());
    appendChecksum(out);
    persist::atomicWriteFile(escalationRecordPath(dir), out);
}

bool
hasEscalationRecord(const std::string &dir)
{
    std::error_code ec;
    return std::filesystem::is_regular_file(
        escalationRecordPath(dir), ec);
}

EscalationRecord
readEscalationRecord(const std::string &dir)
{
    const std::string what = "fidelity bitmap";
    const std::string data =
        slurp(escalationRecordPath(dir), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kEscalationMagic);
    if (r.u32() != kFidelityVersion)
        throw CacheInvalid(what + ": unsupported version");
    EscalationRecord rec;
    rec.badcoFingerprint = r.u64();
    rec.detailedFingerprint = r.u64();
    rec.seed = r.u64();
    rec.metric = r.str();
    checkCount(rec.metric.size(), 64, "metric-name length", what);
    rec.policyX = r.str();
    checkCount(rec.policyX.size(), kMaxNameLen,
               "policy-name length", what);
    rec.policyY = r.str();
    checkCount(rec.policyY.size(), kMaxNameLen,
               "policy-name length", what);
    rec.quantile = r.f64();
    rec.budgetFraction = r.f64();
    rec.threshold = r.f64();
    rec.firstRank = r.u64();
    rec.lastRank = r.u64();
    rec.escalatedCount = r.u64();
    if (rec.lastRank < rec.firstRank)
        throw CacheInvalid(what + ": inverted rank range");
    checkCount(rec.rows(), kMaxRows, "row count", what);
    if (rec.escalatedCount > rec.rows())
        throw CacheInvalid(what + ": escalated count " +
                           std::to_string(rec.escalatedCount) +
                           " exceeds " +
                           std::to_string(rec.rows()) + " rows");
    const std::uint64_t bytes = (rec.rows() + 7) / 8;
    if (r.remaining() != bytes)
        throw CacheInvalid(what + ": bitmap size mismatch");
    rec.bitmap.resize(static_cast<std::size_t>(bytes));
    if (bytes > 0)
        r.bytes(rec.bitmap.data(),
                static_cast<std::size_t>(bytes));
    // Stray bits past the last row and a lying count are both
    // damage: the popcount must equal escalatedCount exactly.
    std::uint64_t pop = 0;
    for (std::uint64_t row = 0; row < rec.rows(); ++row)
        pop += rec.escalated(row) ? 1 : 0;
    if (pop != rec.escalatedCount)
        throw CacheInvalid(what + ": bitmap popcount " +
                           std::to_string(pop) +
                           " does not match escalated count " +
                           std::to_string(rec.escalatedCount));
    if (bytes > 0 && rec.rows() % 8 != 0) {
        const std::uint8_t tail = rec.bitmap.back();
        const unsigned used = rec.rows() % 8;
        if (tail >> used)
            throw CacheInvalid(what +
                               ": stray bits past the last row");
    }
    return rec;
}

void
writeFidelityBatch(const std::string &dir, const FidelityBatch &b)
{
    const std::size_t rows = b.ranks.size();
    const std::size_t want = rows *
                             static_cast<std::size_t>(
                                 b.numPolicies) *
                             b.cores;
    if (b.ipc.size() != want)
        WSEL_FATAL("fidelity batch " << b.index << " has "
                   << b.ipc.size() << " cells, expected " << want);
    std::string out;
    out.reserve(64 + rows * 8 + b.ipc.size() * 8);
    out.append(kBatchMagic, 8);
    appendU32(out, kFidelityVersion);
    appendU32(out, static_cast<std::uint32_t>(b.index));
    appendU64(out, b.detailedFingerprint);
    appendU32(out, b.cores);
    appendU32(out, b.numPolicies);
    appendU64(out, b.firstOrdinal);
    appendU32(out, static_cast<std::uint32_t>(rows));
    for (std::uint64_t rank : b.ranks)
        appendU64(out, rank);
    for (double v : b.ipc)
        appendF64(out, v);
    appendChecksum(out);
    persist::atomicWriteFile(fidelityBatchPath(dir, b.index), out);
}

FidelityBatch
readFidelityBatch(const std::string &dir,
                  std::uint64_t fingerprint, std::uint64_t index)
{
    const std::string what =
        "fidelity " + fidelityBatchName(index);
    const std::string data =
        slurp(fidelityBatchPath(dir, index), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kBatchMagic);
    if (r.u32() != kFidelityVersion)
        throw CacheInvalid(what + ": unsupported version");
    FidelityBatch b;
    b.index = r.u32();
    if (b.index != index)
        throw CacheInvalid(what + ": wrong batch index");
    b.detailedFingerprint = r.u64();
    if (b.detailedFingerprint != fingerprint)
        throw CacheInvalid(what + ": fingerprint mismatch");
    b.cores = r.u32();
    checkCount(b.cores, 1024, "core count", what);
    b.numPolicies = r.u32();
    checkCount(b.numPolicies, 4096, "policy count", what);
    if (b.cores == 0 || b.numPolicies == 0)
        throw CacheInvalid(what + ": degenerate shape");
    b.firstOrdinal = r.u64();
    const std::uint32_t rows = r.u32();
    checkCount(rows, kMaxBatchRows, "row count", what);
    const std::uint64_t cells =
        static_cast<std::uint64_t>(rows) * b.numPolicies * b.cores;
    if (r.remaining() != rows * 8 + cells * 8)
        throw CacheInvalid(what + ": payload size mismatch");
    b.ranks.reserve(rows);
    for (std::uint32_t i = 0; i < rows; ++i)
        b.ranks.push_back(r.u64());
    b.ipc.reserve(static_cast<std::size_t>(cells));
    for (std::uint64_t i = 0; i < cells; ++i)
        b.ipc.push_back(r.f64());
    return b;
}

void
writeHybridReport(const std::string &dir,
                  const HybridReportRecord &rep)
{
    std::string out;
    out.reserve(256);
    out.append(kReportMagic, 8);
    appendU32(out, kFidelityVersion);
    appendU64(out, rep.badcoFingerprint);
    appendU64(out, rep.detailedFingerprint);
    appendString(out, rep.metric);
    appendString(out, rep.policyX);
    appendString(out, rep.policyY);
    appendU64(out, rep.workloads);
    appendU64(out, rep.escalated);
    appendF64(out, rep.escalationFraction);
    appendF64(out, rep.meanD);
    appendF64(out, rep.sigma);
    appendF64(out, rep.se);
    appendF64(out, rep.cv);
    appendF64(out, rep.confidence);
    appendF64(out, rep.modelLo);
    appendF64(out, rep.modelHi);
    appendF64(out, rep.comboLo);
    appendF64(out, rep.comboHi);
    appendU8(out, rep.yWins);
    appendChecksum(out);
    persist::atomicWriteFile(hybridReportPath(dir), out);
}

bool
hasHybridReport(const std::string &dir)
{
    std::error_code ec;
    return std::filesystem::is_regular_file(hybridReportPath(dir),
                                            ec);
}

HybridReportRecord
readHybridReport(const std::string &dir)
{
    const std::string what = "hybrid report";
    const std::string data = slurp(hybridReportPath(dir), what);
    const std::string_view body = checkedBody(data, what);
    Reader r(body, what);
    r.expectMagic(kReportMagic);
    if (r.u32() != kFidelityVersion)
        throw CacheInvalid(what + ": unsupported version");
    HybridReportRecord rep;
    rep.badcoFingerprint = r.u64();
    rep.detailedFingerprint = r.u64();
    rep.metric = r.str();
    checkCount(rep.metric.size(), 64, "metric-name length", what);
    rep.policyX = r.str();
    checkCount(rep.policyX.size(), kMaxNameLen,
               "policy-name length", what);
    rep.policyY = r.str();
    checkCount(rep.policyY.size(), kMaxNameLen,
               "policy-name length", what);
    rep.workloads = r.u64();
    checkCount(rep.workloads, kMaxRows, "workload count", what);
    rep.escalated = r.u64();
    if (rep.escalated > rep.workloads)
        throw CacheInvalid(what + ": escalated count exceeds "
                                  "workload count");
    rep.escalationFraction = r.f64();
    rep.meanD = r.f64();
    rep.sigma = r.f64();
    rep.se = r.f64();
    rep.cv = r.f64();
    rep.confidence = r.f64();
    rep.modelLo = r.f64();
    rep.modelHi = r.f64();
    rep.comboLo = r.f64();
    rep.comboHi = r.f64();
    rep.yWins = r.u8();
    if (rep.yWins > 1)
        throw CacheInvalid(what + ": non-boolean verdict");
    if (r.remaining() != 0)
        throw CacheInvalid(what + ": trailing bytes");
    return rep;
}

} // namespace wsel::fidelity
