/**
 * @file
 * Escalation policy of the mixed-fidelity layer (docs/FIDELITY.md).
 *
 * An EscalationOracle composes per-core error bounds from an
 * ErrorProfile through the throughput metric — the same O(K)
 * composition path core/adaptive's ApproxRanker uses — into a
 * per-cell interval [dLo, dHi] around the BADCO d(w).  Every
 * metric's per-workload throughput is monotone increasing in each
 * core's IPC and perWorkloadDifference is monotone increasing in
 * t_Y and decreasing in t_X, so the extreme d values come from the
 * corner IPC vectors: dLo pairs X at its upper bound with Y at its
 * lower, dHi the reverse.
 *
 * A cell is *suspicious* when its interval straddles the decision
 * threshold (0 for the X-vs-Y sign question, or any caller-supplied
 * quantile boundary): BADCO's point estimate could be on the wrong
 * side of the decision.  selectEscalations turns per-row intervals
 * into the final escalation set, honouring a budget cap by keeping
 * the most ambiguous rows (smallest |d - threshold|) with a
 * deterministic rank tie-break, so the set is identical across job
 * counts and resumes.
 */

#ifndef WSEL_FIDELITY_ESCALATION_HH
#define WSEL_FIDELITY_ESCALATION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/metrics/throughput.hh"
#include "fidelity/error_profile.hh"

namespace wsel::fidelity
{

/** One cell's BADCO point estimate and model-error interval. */
struct CellInterval
{
    double d = 0.0;   ///< BADCO d(w)
    double dLo = 0.0; ///< lower bound given the error profile
    double dHi = 0.0; ///< upper bound given the error profile

    bool
    straddles(double threshold) const
    {
        return dLo <= threshold && threshold <= dHi;
    }
};

/**
 * Composes per-benchmark error bounds through the throughput
 * metric.  Not thread-safe (reuses internal scratch, like
 * ApproxRanker); give each worker its own instance.
 */
class EscalationOracle
{
  public:
    /**
     * @param m Throughput metric of the X-vs-Y question.
     * @param profile Calibrated error model (borrowed).
     * @param quantile One-sided error-bound quantile, e.g. 0.95.
     * @param ref_ipc Per-benchmark reference IPCs for the speedup
     *        metrics.  Reference IPCs are treated as exact; their
     *        model error is folded into the per-cell bound via the
     *        calibration residuals (docs/FIDELITY.md).
     */
    EscalationOracle(ThroughputMetric m, const ErrorProfile &profile,
                     double quantile, std::vector<double> ref_ipc);

    /**
     * Interval for one workload row given its sorted benchmark
     * multiset and the BADCO per-core IPCs under policy X and Y.
     */
    CellInterval interval(std::span<const std::uint32_t> benches,
                          std::span<const double> ipc_x,
                          std::span<const double> ipc_y) const;

  private:
    ThroughputMetric m_;
    const ErrorProfile *profile_;
    double quantile_;
    std::vector<double> refIpc_;
    mutable std::vector<double> lo_;
    mutable std::vector<double> hi_;
    mutable std::vector<double> refs_;
};

/**
 * Decide the escalation set: rows whose interval straddles
 * @p threshold, capped at ceil(budget_fraction * rows) by keeping
 * the most ambiguous rows first (smallest |d - threshold|, ties to
 * the lower row index).  Returns one flag byte per row.
 */
std::vector<std::uint8_t> selectEscalations(
    const std::vector<CellInterval> &cells, double threshold,
    double budget_fraction);

} // namespace wsel::fidelity

#endif // WSEL_FIDELITY_ESCALATION_HH
