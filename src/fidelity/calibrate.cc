#include "fidelity/calibrate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "stats/rng.hh"

namespace wsel::fidelity
{

namespace
{

void
checkShapes(const Campaign &det, const Campaign &bad)
{
    if (det.simulator != "detailed")
        WSEL_FATAL("calibration ground truth is a '"
                   << det.simulator << "' campaign, not detailed");
    if (det.cores != bad.cores)
        WSEL_FATAL("calibration campaigns disagree on cores ("
                   << det.cores << " vs " << bad.cores << ")");
    if (det.policies != bad.policies)
        WSEL_FATAL("calibration campaigns disagree on policies");
    if (det.workloads.size() != bad.workloads.size())
        WSEL_FATAL("calibration campaigns disagree on workloads ("
                   << det.workloads.size() << " vs "
                   << bad.workloads.size() << ")");
}

} // namespace

CalibrationStats
compareCampaigns(const Campaign &det, const Campaign &bad)
{
    checkShapes(det, bad);
    CalibrationStats out;
    const std::size_t cores = det.cores;
    const std::size_t p_lru = det.policyIndex(PolicyKind::LRU);
    for (std::size_t w = 0; w < det.workloads.size(); ++w) {
        for (std::size_t k = 0; k < cores; ++k) {
            const double cpi_d = 1.0 / det.ipc[p_lru][w][k];
            const double cpi_b = 1.0 / bad.ipc[p_lru][w][k];
            const double e = (cpi_b - cpi_d) / cpi_d;
            out.cpiErr.add(std::abs(e));
            out.maxCpiErr = std::max(out.maxCpiErr, std::abs(e));
            out.cpiDetailed.push_back(cpi_d);
            out.cpiBadco.push_back(cpi_b);
        }
    }
    for (std::size_t p = 0; p < det.policies.size(); ++p) {
        if (p == p_lru)
            continue;
        RunningStats sd, sb;
        for (std::size_t w = 0; w < det.workloads.size(); ++w) {
            for (std::size_t k = 0; k < cores; ++k) {
                sd.add(det.ipc[p][w][k] / det.ipc[p_lru][w][k]);
                sb.add(bad.ipc[p][w][k] / bad.ipc[p_lru][w][k]);
            }
        }
        out.speedupErr.add(std::abs(sb.mean() - sd.mean()) /
                           sd.mean());
    }
    return out;
}

void
calibrateProfile(ErrorProfile &profile, const Campaign &det,
                 const Campaign &bad)
{
    checkShapes(det, bad);
    const std::size_t cores = det.cores;
    det.workloads.forEach([&](std::size_t w,
                              std::span<const std::uint32_t>
                                  benches) {
        for (std::size_t p = 0; p < det.policies.size(); ++p)
            for (std::size_t k = 0; k < cores; ++k)
                profile.record(benches[k], bad.ipc[p][w][k],
                               det.ipc[p][w][k]);
    });
}

CalibrationCampaigns
runCalibrationCampaigns(std::uint32_t cores,
                        std::uint64_t target_uops,
                        std::size_t workloads, std::uint64_t seed,
                        const std::vector<BenchmarkProfile> &suite,
                        const std::vector<PolicyKind> &policies,
                        const std::string &cache_dir,
                        std::size_t jobs, bool verbose)
{
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    WorkloadSet sample;
    if (workloads == 0 || workloads >= pop.size()) {
        sample = WorkloadSet::fullPopulation(pop);
    } else {
        Rng rng(seed);
        std::vector<std::uint64_t> ranks;
        ranks.reserve(workloads);
        for (std::size_t i : rng.sampleWithoutReplacement(
                 static_cast<std::size_t>(pop.size()), workloads))
            ranks.push_back(i);
        sample = WorkloadSet::fromRanks(pop, std::move(ranks));
    }

    const std::string shape =
        "calib_k" + std::to_string(cores) + "_n" +
        std::to_string(sample.size()) + "_u" +
        std::to_string(target_uops) + "_s" + std::to_string(seed);
    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);

    CalibrationCampaigns out;
    {
        const std::uint64_t fp = campaignFingerprint(
            "detailed", cores, target_uops, policies, suite);
        out.detailed = cachedCampaign(
            "detailed_" + shape, fp,
            [&](const std::string &journal) {
                CampaignOptions opts;
                opts.seed = seed;
                opts.verbose = verbose;
                opts.jobs = jobs;
                opts.journalPath = journal;
                if (verbose)
                    std::fprintf(stderr,
                                 "[fidelity] calibrating: %zu "
                                 "workloads (detailed, %u "
                                 "cores)...\n",
                                 sample.size(), cores);
                return runDetailedCampaign(sample, policies, cores,
                                           target_uops,
                                           CoreConfig{}, suite,
                                           opts);
            });
    }
    {
        BadcoModelStore store(CoreConfig{}, target_uops,
                              ucfg.llcHitLatency, cache_dir);
        const std::uint64_t fp = campaignFingerprint(
            "badco", cores, target_uops, policies, suite);
        out.badco = cachedCampaign(
            "badco_" + shape, fp,
            [&](const std::string &journal) {
                CampaignOptions opts;
                opts.seed = seed;
                opts.verbose = verbose;
                opts.jobs = jobs;
                opts.journalPath = journal;
                return runBadcoCampaign(sample, policies, cores,
                                        target_uops, store, suite,
                                        opts);
            });
    }
    return out;
}

ErrorProfile
calibrateErrorProfile(std::uint32_t cores,
                      std::uint64_t target_uops,
                      std::size_t workloads, std::uint64_t seed,
                      const std::vector<BenchmarkProfile> &suite,
                      const std::vector<PolicyKind> &policies,
                      const std::string &cache_dir,
                      std::size_t jobs, bool verbose)
{
    const CalibrationCampaigns pair = runCalibrationCampaigns(
        cores, target_uops, workloads, seed, suite, policies,
        cache_dir, jobs, verbose);
    ErrorProfile profile(suite);
    calibrateProfile(profile, pair.detailed, pair.badco);
    return profile;
}

} // namespace wsel::fidelity
