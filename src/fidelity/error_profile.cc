#include "fidelity/error_profile.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel::fidelity
{

void
Welford::add(double x)
{
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
}

double
Welford::variancePopulation() const
{
    return n == 0 ? 0.0 : m2 / static_cast<double>(n);
}

double
Welford::stddevPopulation() const
{
    return std::sqrt(variancePopulation());
}

IntervalStats::IntervalStats(std::size_t window)
    : capacity_(std::max<std::size_t>(1, window))
{
}

void
IntervalStats::add(double x)
{
    life_.add(x);
    window_.push_back(x);
    if (window_.size() > capacity_)
        window_.pop_front();
}

std::vector<double>
IntervalStats::windowValues() const
{
    return {window_.begin(), window_.end()};
}

Welford
IntervalStats::windowStats() const
{
    Welford w;
    for (double v : window_)
        w.add(v);
    return w;
}

double
IntervalStats::bound(double z) const
{
    const Welford win = windowStats();
    const double life =
        life_.mean + z * life_.stddevPopulation();
    const double recent =
        win.mean + z * win.stddevPopulation();
    return std::max(life, recent);
}

void
IntervalStats::restore(const Welford &lifetime,
                       const std::vector<double> &window_values)
{
    life_ = lifetime;
    window_.assign(window_values.begin(), window_values.end());
    while (window_.size() > capacity_)
        window_.pop_front();
}

ErrorProfile::ErrorProfile(
    const std::vector<BenchmarkProfile> &suite, std::size_t window)
    : suiteHash_(hashSuite(suite)), global_(window)
{
    names_.reserve(suite.size());
    classes_.reserve(suite.size());
    perBench_.reserve(suite.size());
    for (const BenchmarkProfile &p : suite) {
        names_.push_back(p.name);
        classes_.push_back(p.paperClass);
        perBench_.emplace_back(window);
    }
    perClass_.assign(kNumClasses, IntervalStats(window));
}

ErrorProfile::ErrorProfile(std::uint64_t suite_hash,
                           std::vector<std::string> names,
                           std::vector<MpkiClass> classes,
                           std::size_t window)
    : suiteHash_(suite_hash), names_(std::move(names)),
      classes_(std::move(classes)), global_(window)
{
    if (names_.size() != classes_.size())
        WSEL_FATAL("error profile restore with " << names_.size()
                   << " names but " << classes_.size()
                   << " classes");
    perBench_.assign(names_.size(), IntervalStats(window));
    perClass_.assign(kNumClasses, IntervalStats(window));
}

void
ErrorProfile::record(std::uint32_t bench, double ipc_badco,
                     double ipc_detailed)
{
    if (bench >= perBench_.size())
        WSEL_FATAL("error profile record for benchmark " << bench
                   << " outside suite of " << perBench_.size());
    if (!(ipc_detailed > 0.0) || !std::isfinite(ipc_badco))
        return; // a degenerate cell carries no error information
    const double e =
        std::abs(ipc_badco - ipc_detailed) / ipc_detailed;
    perBench_[bench].add(e);
    perClass_[static_cast<std::size_t>(classes_[bench])].add(e);
    global_.add(e);
}

double
ErrorProfile::errorBound(std::uint32_t bench, double quantile) const
{
    if (bench >= perBench_.size())
        WSEL_FATAL("error profile bound for benchmark " << bench
                   << " outside suite of " << perBench_.size());
    if (global_.count() == 0)
        return std::numeric_limits<double>::infinity();
    const double z = normalQuantile(quantile);
    const IntervalStats &own = perBench_[bench];
    const IntervalStats &cls =
        perClass_[static_cast<std::size_t>(classes_[bench])];
    const IntervalStats &src = own.count() >= kMinBenchSamples
                                   ? own
                                   : (cls.count() > 0 ? cls
                                                      : global_);
    return std::max(kErrorBoundFloor, src.bound(z));
}

bool
ErrorProfile::markApplied(std::uint64_t id)
{
    if (wasApplied(id))
        return false;
    applied_.push_back(id);
    if (applied_.size() > kMaxApplied)
        applied_.erase(applied_.begin());
    return true;
}

bool
ErrorProfile::wasApplied(std::uint64_t id) const
{
    return std::find(applied_.begin(), applied_.end(), id) !=
           applied_.end();
}

const IntervalStats &
ErrorProfile::benchStats(std::size_t i) const
{
    if (i >= perBench_.size())
        WSEL_FATAL("benchStats index " << i << " out of range");
    return perBench_[i];
}

const IntervalStats &
ErrorProfile::classStats(std::size_t cls) const
{
    if (cls >= perClass_.size())
        WSEL_FATAL("classStats index " << cls << " out of range");
    return perClass_[cls];
}

IntervalStats &
ErrorProfile::benchStatsMut(std::size_t i)
{
    if (i >= perBench_.size())
        WSEL_FATAL("benchStats index " << i << " out of range");
    return perBench_[i];
}

IntervalStats &
ErrorProfile::classStatsMut(std::size_t cls)
{
    if (cls >= perClass_.size())
        WSEL_FATAL("classStats index " << cls << " out of range");
    return perClass_[cls];
}

void
ErrorProfile::restoreApplied(std::vector<std::uint64_t> ids)
{
    applied_ = std::move(ids);
    while (applied_.size() > kMaxApplied)
        applied_.erase(applied_.begin());
}

std::uint64_t
ErrorProfile::hashSuite(const std::vector<BenchmarkProfile> &suite)
{
    persist::Fnv1a h;
    h.update("wsel-fidelity-suite-1");
    h.updateU64(suite.size());
    for (const BenchmarkProfile &p : suite) {
        h.update(p.name);
        h.updateU64(p.parameterHash());
    }
    return h.digest();
}

double
normalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        WSEL_FATAL("normal quantile needs p in (0, 1), got " << p);
    // Acklam's rational approximation to the inverse normal CDF.
    static constexpr double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01};
    static constexpr double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double plow = 0.02425;
    constexpr double phigh = 1.0 - plow;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q +
                1.0);
    }
    if (p > phigh) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) *
                     q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q +
                1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
             a[4]) *
                r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
             b[4]) *
                r +
            1.0);
}

} // namespace wsel::fidelity
