/**
 * @file
 * BADCO-vs-detailed calibration (docs/FIDELITY.md).
 *
 * One implementation of the fig2 accuracy comparison, shared by
 * bench/fig2_cpi_accuracy.cc (the paper figure) and the mixed-
 * fidelity layer (seeding an ErrorProfile before the first hybrid
 * campaign): compareCampaigns computes the paper's CPI-error and
 * speedup-error summary over two same-shape campaigns, and
 * calibrateProfile streams every cell's per-benchmark relative IPC
 * error into an ErrorProfile.
 */

#ifndef WSEL_FIDELITY_CALIBRATE_HH
#define WSEL_FIDELITY_CALIBRATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fidelity/error_profile.hh"
#include "sim/campaign.hh"
#include "stats/summary.hh"

namespace wsel::fidelity
{

/** Fig. 2 summary of a detailed-vs-BADCO campaign pair. */
struct CalibrationStats
{
    RunningStats cpiErr; ///< |relative CPI error|, LRU baseline
    double maxCpiErr = 0.0;
    RunningStats speedupErr; ///< per-policy mean-speedup error
    std::vector<double> cpiDetailed; ///< LRU scatter, detailed
    std::vector<double> cpiBadco;    ///< LRU scatter, BADCO
};

/**
 * Fig. 2 comparison of two campaigns over the same workloads and
 * policies; fatal when the shapes disagree.  @p det must be the
 * detailed (ground-truth) campaign.
 */
CalibrationStats compareCampaigns(const Campaign &det,
                                  const Campaign &bad);

/**
 * Stream every cell of the campaign pair into @p profile: for each
 * policy, workload and core, record the (badco, detailed) IPC pair
 * under the benchmark running on that core.
 */
void calibrateProfile(ErrorProfile &profile, const Campaign &det,
                      const Campaign &bad);

/** A matched detailed/BADCO campaign pair for calibration. */
struct CalibrationCampaigns
{
    Campaign detailed;
    Campaign badco;
};

/**
 * Build (or load from the campaign cache) a matched campaign pair
 * over @p workloads uniformly sampled rows of the @p cores -core
 * population — the fig2 harness as a library call.  Results are
 * cached under @p cache_dir via cachedCampaign, so repeated
 * calibrations are free.
 */
CalibrationCampaigns runCalibrationCampaigns(
    std::uint32_t cores, std::uint64_t target_uops,
    std::size_t workloads, std::uint64_t seed,
    const std::vector<BenchmarkProfile> &suite,
    const std::vector<PolicyKind> &policies,
    const std::string &cache_dir, std::size_t jobs = 1,
    bool verbose = false);

/**
 * Seed a fresh ErrorProfile for @p suite from a calibration pair
 * (runCalibrationCampaigns + calibrateProfile in one call).
 */
ErrorProfile calibrateErrorProfile(
    std::uint32_t cores, std::uint64_t target_uops,
    std::size_t workloads, std::uint64_t seed,
    const std::vector<BenchmarkProfile> &suite,
    const std::vector<PolicyKind> &policies,
    const std::string &cache_dir, std::size_t jobs = 1,
    bool verbose = false);

} // namespace wsel::fidelity

#endif // WSEL_FIDELITY_CALIBRATE_HH
