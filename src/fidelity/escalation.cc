#include "fidelity/escalation.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/logging.hh"

namespace wsel::fidelity
{

EscalationOracle::EscalationOracle(ThroughputMetric m,
                                   const ErrorProfile &profile,
                                   double quantile,
                                   std::vector<double> ref_ipc)
    : m_(m), profile_(&profile), quantile_(quantile),
      refIpc_(std::move(ref_ipc))
{
    if (!(quantile_ > 0.0 && quantile_ < 1.0))
        WSEL_FATAL("escalation quantile must be in (0, 1), got "
                   << quantile_);
    if (refIpc_.size() != profile.numBenchmarks())
        WSEL_FATAL("escalation oracle got " << refIpc_.size()
                   << " reference IPCs for a profile over "
                   << profile.numBenchmarks() << " benchmarks");
}

CellInterval
EscalationOracle::interval(std::span<const std::uint32_t> benches,
                           std::span<const double> ipc_x,
                           std::span<const double> ipc_y) const
{
    const std::size_t k = benches.size();
    if (ipc_x.size() != k || ipc_y.size() != k)
        WSEL_FATAL("escalation interval got " << ipc_x.size()
                   << "/" << ipc_y.size() << " IPCs for " << k
                   << " cores");
    lo_.resize(k);
    hi_.resize(k);
    refs_.resize(k);
    for (std::size_t c = 0; c < k; ++c)
        refs_[c] = refIpc_[benches[c]];

    CellInterval out;
    {
        const double tx =
            perWorkloadThroughput(m_, ipc_x, refs_);
        const double ty =
            perWorkloadThroughput(m_, ipc_y, refs_);
        out.d = perWorkloadDifference(m_, tx, ty);
    }

    // Per-core relative-error bounds, hoisted out of the corners
    // (they depend only on the benchmark).  An uncalibrated (+inf)
    // or >= 100% bound would push the lower corner to a
    // non-positive IPC — outside every metric's domain — so such a
    // cell degenerates straight to (-inf, +inf), which straddles
    // every threshold: an honest "escalate me" for a model with no
    // usable error history.
    for (std::size_t c = 0; c < k; ++c) {
        const double eb =
            profile_->errorBound(benches[c], quantile_);
        if (!(eb < 1.0)) {
            out.dLo = -std::numeric_limits<double>::infinity();
            out.dHi = std::numeric_limits<double>::infinity();
            return out;
        }
        hi_[c] = eb;
    }

    // perWorkloadThroughput is monotone increasing in every core's
    // IPC and perWorkloadDifference increases in t_Y and decreases
    // in t_X, so the interval corners are (X hi, Y lo) and
    // (X lo, Y hi).
    double tx_lo, tx_hi, ty_lo, ty_hi;
    const auto corner = [&](std::span<const double> ipc, bool up) {
        for (std::size_t c = 0; c < k; ++c)
            lo_[c] = ipc[c] * (up ? 1.0 + hi_[c] : 1.0 - hi_[c]);
        return perWorkloadThroughput(
            m_, {lo_.data(), lo_.size()}, refs_);
    };
    tx_lo = corner(ipc_x, false);
    tx_hi = corner(ipc_x, true);
    ty_lo = corner(ipc_y, false);
    ty_hi = corner(ipc_y, true);
    out.dLo = perWorkloadDifference(m_, tx_hi, ty_lo);
    out.dHi = perWorkloadDifference(m_, tx_lo, ty_hi);
    if (std::isnan(out.dLo) || std::isnan(out.dHi)) {
        // HSU/GSU corners can hit 1/0 or log 0 when an error bound
        // reaches 100%; treat the cell as maximally suspicious.
        out.dLo = -std::numeric_limits<double>::infinity();
        out.dHi = std::numeric_limits<double>::infinity();
    }
    return out;
}

std::vector<std::uint8_t>
selectEscalations(const std::vector<CellInterval> &cells,
                  double threshold, double budget_fraction)
{
    if (!(budget_fraction >= 0.0 && budget_fraction <= 1.0))
        WSEL_FATAL("escalation budget fraction must be in [0, 1], "
                   "got " << budget_fraction);
    const std::size_t n = cells.size();
    std::vector<std::uint8_t> flags(n, 0);
    std::vector<std::size_t> suspects;
    for (std::size_t i = 0; i < n; ++i)
        if (cells[i].straddles(threshold))
            suspects.push_back(i);
    const std::size_t budget = static_cast<std::size_t>(
        std::ceil(budget_fraction * static_cast<double>(n)));
    if (suspects.size() > budget) {
        // Keep the most ambiguous rows: smallest distance of the
        // point estimate to the threshold; stable sort + index
        // tie-break keeps the pick deterministic.
        std::stable_sort(
            suspects.begin(), suspects.end(),
            [&](std::size_t a, std::size_t b) {
                const double ma = std::abs(cells[a].d - threshold);
                const double mb = std::abs(cells[b].d - threshold);
                if (ma != mb)
                    return ma < mb;
                return a < b;
            });
        suspects.resize(budget);
    }
    for (std::size_t i : suspects)
        flags[i] = 1;
    return flags;
}

} // namespace wsel::fidelity
