/**
 * @file
 * On-disk formats of the mixed-fidelity layer (docs/FIDELITY.md).
 *
 * Four artifacts, all following the campaign_v3 conventions
 * (little-endian, a trailing 64-bit FNV-1a of all preceding bytes,
 * written via persist::atomicWriteFile, validated on read with
 * persist::CacheInvalid on any damage, no timing content):
 *
 *     <cache>/error_profile.bin   the calibrated ErrorProfile,
 *                                 beside the model store
 *
 * and inside a hybrid campaign directory (which is also a
 * campaign_v3 directory holding the BADCO sweep):
 *
 *     <dir>/fidelity-bitmap.bin   the escalation set: which rows
 *                                 were flagged for detailed
 *                                 re-simulation, plus the knobs
 *                                 that produced the set.  Written
 *                                 BEFORE any detailed cell runs so
 *                                 a resumed run replays the same
 *                                 set even after the profile
 *                                 drifted.
 *     <dir>/fidelity-batch-*.bin  detailed IPC results for
 *                                 escalated rows, in rank order,
 *                                 batched for resume granularity
 *     <dir>/hybrid.bin            the confidence report — written
 *                                 last, the commit point
 *
 * Every reader treats its input as hostile: each count is
 * bounds-checked before it drives an allocation or a
 * multiplication (tests/test_fidelity_persist.cc mirrors
 * test_manifest_validation.cc's truncation / bit-flip /
 * resealed-checksum coverage).
 */

#ifndef WSEL_FIDELITY_PERSIST_FIDELITY_HH
#define WSEL_FIDELITY_PERSIST_FIDELITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fidelity/error_profile.hh"

namespace wsel::fidelity
{

inline constexpr std::uint32_t kFidelityVersion = 1;

std::string errorProfilePath(const std::string &cache_dir);
std::string escalationRecordPath(const std::string &dir);
std::string fidelityBatchName(std::uint64_t index);
std::string fidelityBatchPath(const std::string &dir,
                              std::uint64_t index);
std::string hybridReportPath(const std::string &dir);

/** Atomically write the profile as a checksummed blob. */
void writeErrorProfile(const std::string &path,
                       const ErrorProfile &p);

/**
 * Read + validate a profile; throws persist::CacheInvalid when
 * missing, truncated, checksum-damaged or internally implausible.
 */
ErrorProfile readErrorProfile(const std::string &path);

/**
 * The escalation set of one hybrid campaign: a row bitmap over the
 * BADCO sweep's rank range plus every knob that shaped the set.
 */
struct EscalationRecord
{
    std::uint64_t badcoFingerprint = 0;
    std::uint64_t detailedFingerprint = 0;
    std::uint64_t seed = 0;
    std::string metric;
    std::string policyX;
    std::string policyY;
    double quantile = 0.0;
    double budgetFraction = 0.0;
    double threshold = 0.0;
    std::uint64_t firstRank = 0;
    std::uint64_t lastRank = 0;
    std::uint64_t escalatedCount = 0;
    std::vector<std::uint8_t> bitmap; ///< ceil(rows/8), LSB-first

    std::uint64_t rows() const { return lastRank - firstRank; }
    void resizeBitmap();
    bool escalated(std::uint64_t row) const;
    void setEscalated(std::uint64_t row);
};

void writeEscalationRecord(const std::string &dir,
                           const EscalationRecord &rec);
bool hasEscalationRecord(const std::string &dir);
EscalationRecord readEscalationRecord(const std::string &dir);

/**
 * One batch of detailed re-simulation results: escalated rows in
 * rank order, row-major [row][policy][core] IPCs.
 */
struct FidelityBatch
{
    std::uint64_t detailedFingerprint = 0;
    std::uint64_t index = 0;        ///< batch number, from 0
    std::uint64_t firstOrdinal = 0; ///< first escalation ordinal
    std::uint32_t cores = 0;
    std::uint32_t numPolicies = 0;
    std::vector<std::uint64_t> ranks; ///< population rank per row
    std::vector<double> ipc; ///< rows x numPolicies x cores
};

void writeFidelityBatch(const std::string &dir,
                        const FidelityBatch &b);
FidelityBatch readFidelityBatch(const std::string &dir,
                                std::uint64_t fingerprint,
                                std::uint64_t index);

/** The hybrid confidence report (hybrid.bin, the commit point). */
struct HybridReportRecord
{
    std::uint64_t badcoFingerprint = 0;
    std::uint64_t detailedFingerprint = 0;
    std::string metric;
    std::string policyX;
    std::string policyY;
    std::uint64_t workloads = 0;
    std::uint64_t escalated = 0;
    double escalationFraction = 0.0;
    double meanD = 0.0;  ///< spliced mean d(w), d > 0 favours Y
    double sigma = 0.0;  ///< spliced population stddev of d(w)
    double se = 0.0;     ///< standard error of meanD
    double cv = 0.0;     ///< signed sigma / meanD
    double confidence = 0.0; ///< eq. 5 sampling confidence
    double modelLo = 0.0; ///< mean model-error slack below meanD
    double modelHi = 0.0; ///< mean model-error slack above meanD
    double comboLo = 0.0; ///< combined (sampling + model) lower
    double comboHi = 0.0; ///< combined (sampling + model) upper
    std::uint8_t yWins = 0;
};

void writeHybridReport(const std::string &dir,
                       const HybridReportRecord &r);
bool hasHybridReport(const std::string &dir);
HybridReportRecord readHybridReport(const std::string &dir);

} // namespace wsel::fidelity

#endif // WSEL_FIDELITY_PERSIST_FIDELITY_HH
