/**
 * @file
 * TAGE conditional branch predictor (Seznec & Michaud, "A case for
 * (partially) TAgged GEometric history length branch predictors").
 *
 * Table I of the paper equips each core with a ~4 kB TAGE. We
 * implement a compact TAGE: bimodal base predictor plus four tagged
 * tables with geometrically increasing history lengths, useful bits,
 * and the standard allocation/update rules.
 */

#ifndef WSEL_CPU_TAGE_HH
#define WSEL_CPU_TAGE_HH

#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace wsel
{

/** TAGE size/shape parameters. */
struct TageConfig
{
    std::uint32_t bimodalBits = 12;  ///< log2 of bimodal entries
    std::uint32_t taggedBits = 10;   ///< log2 of entries per table
    std::uint32_t tagWidth = 9;      ///< tag bits per tagged entry
    std::uint32_t numTables = 4;     ///< tagged tables
    std::uint32_t minHistory = 5;    ///< shortest history length
    std::uint32_t maxHistory = 130;  ///< longest history length
};

/**
 * TAGE predictor. Trace-driven usage: call predictAndUpdate() with
 * the actual outcome; it returns whether the prediction was correct.
 */
class Tage
{
  public:
    explicit Tage(const TageConfig &cfg = TageConfig{},
                  std::uint64_t seed = 0x7a6e5eedULL);

    /**
     * Predict the branch at @p pc, then train with @p taken.
     * @return true when the prediction matched the outcome.
     */
    bool predictAndUpdate(std::uint64_t pc, bool taken);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredictions_; }

    /** Misprediction rate so far (0 when no predictions). */
    double
    mispredictRate() const
    {
        return predictions_
                   ? static_cast<double>(mispredictions_) /
                         static_cast<double>(predictions_)
                   : 0.0;
    }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;   ///< signed 3-bit counter
        std::uint8_t useful = 0;
    };

    std::uint32_t tableIndex(std::uint64_t pc,
                             std::uint32_t table) const;
    std::uint16_t tableTag(std::uint64_t pc,
                           std::uint32_t table) const;
    void updateHistory(bool taken);

    TageConfig cfg_;
    std::vector<std::int8_t> bimodal_; ///< 2-bit counters
    std::vector<std::vector<TaggedEntry>> tables_;
    std::vector<std::uint32_t> historyLengths_;
    std::vector<std::uint64_t> foldedIndex_;
    std::vector<std::uint64_t> foldedTag_;
    std::vector<std::uint8_t> history_; ///< circular global history
    std::uint32_t historyPos_ = 0;
    Rng rng_;
    std::uint8_t useAltOnNa_ = 8; ///< 4-bit "use alt on new" counter

    std::uint64_t predictions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

} // namespace wsel

#endif // WSEL_CPU_TAGE_HH
