/**
 * @file
 * Observation hooks on the detailed core, used by the BADCO model
 * builder to capture the core's external behaviour (the stream of
 * uncore requests, their µop positions and their dependences).
 */

#ifndef WSEL_CPU_CORE_OBSERVER_HH
#define WSEL_CPU_CORE_OBSERVER_HH

#include <cstdint>

namespace wsel
{

/** One uncore request emitted by the detailed core. */
struct UncoreRequestEvent
{
    /** Dynamic µop sequence number that triggered the request. */
    std::uint64_t uopSeq = 0;

    /** Virtual byte address. */
    std::uint64_t vaddr = 0;

    /** PC of the triggering instruction. */
    std::uint64_t pc = 0;

    /** Store-miss refill (true) vs load refill (false). */
    bool isWrite = false;

    /** Dirty-eviction writeback rather than a demand request. */
    bool isWriteback = false;

    /** Issued by an L1 prefetcher (non-blocking on replay). */
    bool isPrefetch = false;

    /** IL1 refill (fetch-side demand read). */
    bool isInstruction = false;

    /** Blocking demand load (replay must respect its dependency). */
    bool
    isBlockingLoad() const
    {
        return !isWrite && !isWriteback && !isPrefetch;
    }

    /**
     * Index (in emission order, 0-based) of the most recent earlier
     * demand request whose data this request transitively depends
     * on; -1 when independent. Captured from the core's dataflow.
     */
    std::int64_t dependsOn = -1;

    /** Core cycle at which the request left the core. */
    std::uint64_t issueCycle = 0;
};

/**
 * Observer interface. The detailed core invokes it for every demand
 * request and writeback it sends to the uncore.
 */
class CoreObserver
{
  public:
    virtual ~CoreObserver() = default;

    /** Called in request emission order. */
    virtual void onUncoreRequest(const UncoreRequestEvent &ev) = 0;
};

} // namespace wsel

#endif // WSEL_CPU_CORE_OBSERVER_HH
