/**
 * @file
 * Cycle-level out-of-order core model (the "Zesto" role in the
 * paper's methodology: the slow, detailed reference simulator).
 *
 * The core executes a deterministic µop trace through a modelled
 * pipeline: TAGE-predicted fetch with IL1/ITLB, decode buffer,
 * dispatch into ROB/RS/LDQ/STQ, dependence-driven out-of-order issue
 * with issue-width and RS limits, DL1 with MSHRs and prefetchers,
 * store writes at commit, and in-order commit. All memory requests
 * below the L1s go to a shared UncoreIf.
 */

#ifndef WSEL_CPU_DETAILED_CORE_HH
#define WSEL_CPU_DETAILED_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "cache/tlb.hh"
#include "cpu/core_config.hh"
#include "cpu/core_observer.hh"
#include "cpu/tage.hh"
#include "mem/uncore.hh"
#include "trace/trace_store.hh"

namespace wsel
{

/** Counters exposed by a DetailedCore. */
struct CoreStats
{
    std::uint64_t committed = 0;
    std::uint64_t cycles = 0;          ///< cycles simulated so far
    std::uint64_t cyclesToTarget = 0;  ///< cycle the target committed
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t il1Misses = 0;
    std::uint64_t dtlbMisses = 0;
    std::uint64_t itlbMisses = 0;
    std::uint64_t uncoreLoads = 0;
    std::uint64_t uncoreStores = 0;
    std::uint64_t uncorePrefetches = 0;
    std::uint64_t uncoreWritebacks = 0;

    /** IPC over the first cyclesToTarget cycles. */
    double ipc(std::uint64_t target_uops) const;
};

/**
 * One detailed out-of-order core attached to a shared uncore.
 */
class DetailedCore
{
  public:
    /**
     * @param cfg Core parameters (Table I).
     * @param trace Cursor over the µop stream to execute (from
     *        TraceStore; moved into the core).
     * @param uncore Shared uncore (owned by the caller).
     * @param core_id This core's index at the uncore.
     * @param target_uops Commit count after which IPC is frozen and
     *        the thread restarts (paper Section IV-A).
     * @param seed Determinism seed (predictor allocation, policies).
     */
    DetailedCore(const CoreConfig &cfg, TraceCursor trace,
                 UncoreIf &uncore, std::uint32_t core_id,
                 std::uint64_t target_uops, std::uint64_t seed);

    /** Attach an observer of emitted uncore requests (may be null). */
    void setObserver(CoreObserver *obs) { observer_ = obs; }

    /** Advance one cycle; @p now must increase monotonically. */
    void tick(std::uint64_t now);

    /** True once target_uops µops have committed. */
    bool reachedTarget() const { return stats_.cyclesToTarget != 0; }

    /**
     * Earliest future cycle (> @p now) at which this core could make
     * progress; used by the multicore driver to skip idle cycles.
     */
    std::uint64_t nextEventCycle(std::uint64_t now) const;

    const CoreStats &stats() const { return stats_; }
    const CoreConfig &config() const { return cfg_; }
    std::uint32_t coreId() const { return coreId_; }

    /** IPC over the first target_uops committed µops. */
    double ipc() const { return stats_.ipc(targetUops_); }

  private:
    struct RobEntry
    {
        std::uint64_t seq = 0;
        OpKind kind = OpKind::IntAlu;
        bool valid = false;
        bool issued = false;
        bool done = false;
        std::uint64_t completion = 0;
        std::uint64_t dep1Seq = kNoDep;
        std::uint64_t dep2Seq = kNoDep;
        std::uint64_t addr = 0;
        std::uint64_t pc = 0;
        std::uint8_t latency = 1;
        bool mispredicted = false;
    };

    struct FetchedUop
    {
        MicroOp uop;
        std::uint64_t seq = 0;
        std::uint64_t readyCycle = 0;
        bool mispredicted = false;
    };

    static constexpr std::uint64_t kNoDep = UINT64_MAX;
    static constexpr std::size_t kDepRing = 256;

    void retire(std::uint64_t now);
    void issue(std::uint64_t now);
    void dispatch(std::uint64_t now);
    void fetch(std::uint64_t now);

    RobEntry &entry(std::uint64_t seq);
    const RobEntry &entry(std::uint64_t seq) const;
    bool depReady(std::uint64_t dep_seq, std::uint64_t now) const;
    bool tryExecute(RobEntry &e, std::uint64_t now);
    void executeLoadMiss(RobEntry &e, std::uint64_t now,
                         std::uint64_t start);
    void storeWrite(const RobEntry &e, std::uint64_t now);
    void runDl1Prefetch(std::uint64_t now, std::uint64_t pc,
                        std::uint64_t addr, bool was_miss);
    void issueIl1Prefetches(std::uint64_t now);
    void emitEvent(const UncoreRequestEvent &ev);
    std::int64_t inheritedMissDep(const RobEntry &e) const;

    const CoreConfig cfg_;
    TraceCursor trace_;
    UncoreIf &uncore_;
    const std::uint32_t coreId_;
    const std::uint64_t targetUops_;

    Tage tage_;
    Cache il1_;
    Cache dl1_;
    Tlb itlb_;
    Tlb dtlb_;
    std::unique_ptr<Prefetcher> dl1Prefetcher_;
    std::unique_ptr<Prefetcher> il1Prefetcher_;

    // ROB as a ring indexed by seq % robSize.
    std::vector<RobEntry> rob_;
    std::uint64_t robHeadSeq_ = 0; ///< oldest in-flight seq
    std::uint64_t robTailSeq_ = 0; ///< next seq to dispatch
    std::uint32_t ldqUsed_ = 0;
    std::uint32_t stqUsed_ = 0;

    // RS: seqs dispatched but not yet issued, in age order.
    std::deque<std::uint64_t> rsQueue_;

    std::deque<FetchedUop> fetchBuffer_;
    std::optional<MicroOp> pendingUop_;
    std::uint64_t nextFetchSeq_ = 0;
    std::uint64_t fetchStallUntil_ = 0;
    std::uint64_t stalledBranchSeq_ = kNoDep;
    std::uint64_t curFetchLine_ = UINT64_MAX;

    struct Dl1Mshr
    {
        std::uint64_t lineAddr;
        std::uint64_t completion;
    };
    std::vector<Dl1Mshr> dl1Mshrs_;

    // Most recent blocking uncore request each µop depends on.
    std::vector<std::int64_t> missDepRing_;
    std::int64_t nextRequestIdx_ = 0;

    CoreObserver *observer_ = nullptr;
    CoreStats stats_;
    std::vector<std::uint64_t> prefetchScratch_;
};

} // namespace wsel

#endif // WSEL_CPU_DETAILED_CORE_HH
