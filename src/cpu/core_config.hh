/**
 * @file
 * Detailed-core configuration (paper Table I), with L1 capacities
 * scaled consistently with the uncore scaling (DESIGN.md).
 */

#ifndef WSEL_CPU_CORE_CONFIG_HH
#define WSEL_CPU_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "cpu/tage.hh"

namespace wsel
{

/** Out-of-order core parameters (Table I, scaled). */
struct CoreConfig
{
    /** @name Pipeline widths (Table I: decode/issue/commit 4/6/4). */
    /** @{ */
    std::uint32_t decodeWidth = 4;
    std::uint32_t issueWidth = 6;
    std::uint32_t commitWidth = 4;
    /** @} */

    /** @name Window sizes (Table I: RS/LDQ/STQ/ROB 36/36/24/128). */
    /** @{ */
    std::uint32_t rsSize = 36;
    std::uint32_t ldqSize = 36;
    std::uint32_t stqSize = 24;
    std::uint32_t robSize = 128;
    /** @} */

    /** Decoded-µop buffer between fetch and dispatch. */
    std::uint32_t fetchBufferSize = 16;

    /** Fetch-to-dispatch pipeline depth (redirect penalty base). */
    std::uint32_t frontendDepth = 6;

    /** @name L1 instruction cache (scaled from 32 kB). */
    /** @{ */
    CacheGeometry il1{8 * 1024, 4, 64};
    std::uint32_t il1Latency = 2;
    /** @} */

    /** @name L1 data cache (scaled from 32 kB). */
    /** @{ */
    CacheGeometry dl1{8 * 1024, 8, 64};
    std::uint32_t dl1Latency = 2;
    std::uint32_t dl1Mshrs = 16;
    /** @} */

    /** @name TLBs (Table I: ITLB 128, DTLB 512; scaled). */
    /** @{ */
    std::uint32_t itlbEntries = 64;
    std::uint32_t itlbWays = 4;
    std::uint32_t dtlbEntries = 128;
    std::uint32_t dtlbWays = 4;
    std::uint32_t pageWalkCycles = 30;
    /** @} */

    /** @name L1 prefetchers (Table I: next-line + IP-stride). */
    /** @{ */
    bool dl1NextLinePrefetch = true;
    bool dl1IpStridePrefetch = true;
    std::uint32_t dl1PrefetchDegree = 1;
    bool il1NextLinePrefetch = true;
    /** @} */

    /** Branch predictor shape. */
    TageConfig tage{};

    /** One-line description for reports. */
    std::string describe() const;
};

} // namespace wsel

#endif // WSEL_CPU_CORE_CONFIG_HH
