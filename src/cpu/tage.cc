#include "cpu/tage.hh"

#include <algorithm>
#include <cmath>

#include "stats/logging.hh"

namespace wsel
{

namespace
{

/** Saturating add on a signed counter with the given bit width. */
void
ctrUpdate(std::int8_t &ctr, bool up, int bits)
{
    const int max = (1 << (bits - 1)) - 1;
    const int min = -(1 << (bits - 1));
    if (up) {
        if (ctr < max)
            ++ctr;
    } else {
        if (ctr > min)
            --ctr;
    }
}

} // namespace

Tage::Tage(const TageConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    if (cfg_.numTables < 2)
        WSEL_FATAL("TAGE needs at least two tagged tables");
    if (cfg_.minHistory == 0 || cfg_.maxHistory <= cfg_.minHistory)
        WSEL_FATAL("TAGE history lengths must grow");

    bimodal_.assign(1u << cfg_.bimodalBits, 0);
    tables_.assign(cfg_.numTables,
                   std::vector<TaggedEntry>(1u << cfg_.taggedBits));

    // Geometric history series between minHistory and maxHistory.
    historyLengths_.resize(cfg_.numTables);
    const double ratio =
        std::pow(static_cast<double>(cfg_.maxHistory) /
                     static_cast<double>(cfg_.minHistory),
                 1.0 / static_cast<double>(cfg_.numTables - 1));
    for (std::uint32_t t = 0; t < cfg_.numTables; ++t) {
        historyLengths_[t] = static_cast<std::uint32_t>(
            std::lround(cfg_.minHistory * std::pow(ratio, t)));
    }

    history_.assign(cfg_.maxHistory + 1, 0);
    foldedIndex_.assign(cfg_.numTables, 0);
    foldedTag_.assign(cfg_.numTables, 0);
}

std::uint32_t
Tage::tableIndex(std::uint64_t pc, std::uint32_t table) const
{
    const std::uint64_t mask = (1ULL << cfg_.taggedBits) - 1;
    const std::uint64_t h = foldedIndex_[table];
    return static_cast<std::uint32_t>(
        ((pc >> 2) ^ (pc >> (cfg_.taggedBits + 2)) ^ h ^
         (static_cast<std::uint64_t>(table) << 3)) &
        mask);
}

std::uint16_t
Tage::tableTag(std::uint64_t pc, std::uint32_t table) const
{
    const std::uint64_t mask = (1ULL << cfg_.tagWidth) - 1;
    const std::uint64_t h = foldedTag_[table];
    return static_cast<std::uint16_t>(
        ((pc >> 2) ^ (pc >> (cfg_.tagWidth + 2)) ^ (h << 1)) & mask);
}

void
Tage::updateHistory(bool taken)
{
    const std::uint8_t new_bit = taken ? 1 : 0;
    for (std::uint32_t t = 0; t < cfg_.numTables; ++t) {
        const std::uint32_t len = historyLengths_[t];
        // Outgoing bit is the one that falls off this table's window.
        const std::uint32_t out_pos =
            (historyPos_ + history_.size() - len) % history_.size();
        const std::uint8_t out_bit = history_[out_pos];

        auto fold = [&](std::uint64_t &reg, std::uint32_t width) {
            reg = (reg << 1) | new_bit;
            reg ^= static_cast<std::uint64_t>(out_bit)
                   << (len % width);
            reg ^= (reg >> width) & 1;
            reg &= (1ULL << width) - 1;
        };
        fold(foldedIndex_[t], cfg_.taggedBits);
        fold(foldedTag_[t], cfg_.tagWidth);
    }
    history_[historyPos_] = new_bit;
    historyPos_ = (historyPos_ + 1) %
                  static_cast<std::uint32_t>(history_.size());
}

bool
Tage::predictAndUpdate(std::uint64_t pc, bool taken)
{
    ++predictions_;

    const std::uint32_t bim_idx =
        static_cast<std::uint32_t>(pc >> 2) &
        ((1u << cfg_.bimodalBits) - 1);

    // Find provider (longest history with a tag match) and the
    // alternate prediction (next matching component, else bimodal).
    int provider = -1, alt = -1;
    std::uint32_t prov_idx = 0, alt_idx = 0;
    for (int t = static_cast<int>(cfg_.numTables) - 1; t >= 0; --t) {
        const std::uint32_t idx =
            tableIndex(pc, static_cast<std::uint32_t>(t));
        const std::uint16_t tag =
            tableTag(pc, static_cast<std::uint32_t>(t));
        if (tables_[t][idx].tag == tag) {
            if (provider < 0) {
                provider = t;
                prov_idx = idx;
            } else {
                alt = t;
                alt_idx = idx;
                break;
            }
        }
    }

    const bool bim_pred = bimodal_[bim_idx] >= 0;
    bool alt_pred = bim_pred;
    if (alt >= 0)
        alt_pred = tables_[alt][alt_idx].ctr >= 0;

    bool pred;
    bool provider_weak = false;
    if (provider >= 0) {
        const TaggedEntry &e = tables_[provider][prov_idx];
        provider_weak = (e.ctr == 0 || e.ctr == -1) && e.useful == 0;
        // "Use alt on newly allocated" heuristic.
        if (provider_weak && useAltOnNa_ >= 8)
            pred = alt_pred;
        else
            pred = e.ctr >= 0;
    } else {
        pred = bim_pred;
    }

    const bool correct = (pred == taken);
    if (!correct)
        ++mispredictions_;

    // ---- Update ----
    if (provider >= 0) {
        TaggedEntry &e = tables_[provider][prov_idx];
        const bool prov_pred = e.ctr >= 0;
        // Track whether alt would have done better on weak entries.
        if (provider_weak && prov_pred != alt_pred) {
            if (alt_pred == taken) {
                if (useAltOnNa_ < 15)
                    ++useAltOnNa_;
            } else if (useAltOnNa_ > 0) {
                --useAltOnNa_;
            }
        }
        // Useful bit: provider correct and alternate wrong.
        if (prov_pred == taken && alt_pred != taken && e.useful < 3)
            ++e.useful;
        ctrUpdate(e.ctr, taken, 3);
        if (alt < 0 || provider_weak) {
            // Also train the bimodal for weak providers.
            ctrUpdate(bimodal_[bim_idx], taken, 2);
        }
    } else {
        ctrUpdate(bimodal_[bim_idx], taken, 2);
    }

    // Allocate on misprediction in a longer-history table.
    if (!correct &&
        provider < static_cast<int>(cfg_.numTables) - 1) {
        // Choose among tables with useful == 0 above the provider;
        // prefer the shortest, with some randomization.
        int start = provider + 1;
        if (start < static_cast<int>(cfg_.numTables) - 1 &&
            rng_.nextBool(0.5))
            ++start;
        bool allocated = false;
        for (int t = start; t < static_cast<int>(cfg_.numTables);
             ++t) {
            const std::uint32_t idx =
                tableIndex(pc, static_cast<std::uint32_t>(t));
            TaggedEntry &e = tables_[t][idx];
            if (e.useful == 0) {
                e.tag = tableTag(pc, static_cast<std::uint32_t>(t));
                e.ctr = taken ? 0 : -1;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // Decay useful bits to enable future allocation.
            for (int t = start; t < static_cast<int>(cfg_.numTables);
                 ++t) {
                const std::uint32_t idx =
                    tableIndex(pc, static_cast<std::uint32_t>(t));
                if (tables_[t][idx].useful > 0)
                    --tables_[t][idx].useful;
            }
        }
    }

    updateHistory(taken);
    return correct;
}

} // namespace wsel
