#include "cpu/detailed_core.hh"

#include <algorithm>
#include <sstream>

#include "stats/logging.hh"

namespace wsel
{

std::string
CoreConfig::describe() const
{
    std::ostringstream os;
    os << "decode/issue/commit " << decodeWidth << "/" << issueWidth
       << "/" << commitWidth << ", RS/LDQ/STQ/ROB " << rsSize << "/"
       << ldqSize << "/" << stqSize << "/" << robSize << ", IL1 "
       << il1.sizeBytes / 1024 << "kB, DL1 " << dl1.sizeBytes / 1024
       << "kB, TAGE " << (1u << tage.bimodalBits) << "+"
       << tage.numTables << "x" << (1u << tage.taggedBits);
    return os.str();
}

double
CoreStats::ipc(std::uint64_t target_uops) const
{
    if (cyclesToTarget == 0)
        return 0.0;
    return static_cast<double>(target_uops) /
           static_cast<double>(cyclesToTarget);
}

DetailedCore::DetailedCore(const CoreConfig &cfg,
                           TraceCursor trace, UncoreIf &uncore,
                           std::uint32_t core_id,
                           std::uint64_t target_uops,
                           std::uint64_t seed)
    : cfg_(cfg), trace_(std::move(trace)), uncore_(uncore),
      coreId_(core_id),
      targetUops_(target_uops), tage_(cfg.tage, seed ^ 0x7a6e),
      il1_(cfg.il1, PolicyKind::LRU, seed ^ 0x111, "il1"),
      dl1_(cfg.dl1, PolicyKind::LRU, seed ^ 0xdd1, "dl1"),
      itlb_(cfg.itlbEntries, cfg.itlbWays),
      dtlb_(cfg.dtlbEntries, cfg.dtlbWays),
      rob_(cfg.robSize), missDepRing_(kDepRing, -1)
{
    if (targetUops_ == 0)
        WSEL_FATAL("target µop count cannot be zero");
    if (cfg_.robSize == 0 || cfg_.rsSize == 0 ||
        cfg_.decodeWidth == 0 || cfg_.issueWidth == 0 ||
        cfg_.commitWidth == 0)
        WSEL_FATAL("degenerate core configuration");

    std::vector<std::unique_ptr<Prefetcher>> dparts;
    if (cfg_.dl1NextLinePrefetch)
        dparts.push_back(
            makeNextLinePrefetcher(cfg_.dl1PrefetchDegree));
    if (cfg_.dl1IpStridePrefetch)
        dparts.push_back(
            makeIpStridePrefetcher(64, cfg_.dl1PrefetchDegree));
    dl1Prefetcher_ = dparts.empty()
                         ? makeNullPrefetcher()
                         : makeCompositePrefetcher(std::move(dparts));
    il1Prefetcher_ = cfg_.il1NextLinePrefetch
                         ? makeNextLinePrefetcher(1)
                         : makeNullPrefetcher();
}

DetailedCore::RobEntry &
DetailedCore::entry(std::uint64_t seq)
{
    return rob_[seq % cfg_.robSize];
}

const DetailedCore::RobEntry &
DetailedCore::entry(std::uint64_t seq) const
{
    return rob_[seq % cfg_.robSize];
}

bool
DetailedCore::depReady(std::uint64_t dep_seq, std::uint64_t now) const
{
    if (dep_seq == kNoDep)
        return true;
    if (dep_seq < robHeadSeq_)
        return true; // producer already retired
    const RobEntry &p = entry(dep_seq);
    WSEL_ASSERT(p.valid && p.seq == dep_seq,
                "dependence on a µop not in the ROB");
    return p.done && p.completion <= now;
}

std::int64_t
DetailedCore::inheritedMissDep(const RobEntry &e) const
{
    std::int64_t dep = -1;
    if (e.dep1Seq != kNoDep)
        dep = std::max(dep, missDepRing_[e.dep1Seq % kDepRing]);
    if (e.dep2Seq != kNoDep)
        dep = std::max(dep, missDepRing_[e.dep2Seq % kDepRing]);
    return dep;
}

void
DetailedCore::emitEvent(const UncoreRequestEvent &ev)
{
    if (observer_)
        observer_->onUncoreRequest(ev);
}

void
DetailedCore::tick(std::uint64_t now)
{
    ++stats_.cycles;
    retire(now);
    issue(now);
    dispatch(now);
    fetch(now);
}

// -------------------------------------------------------------------
// Commit stage
// -------------------------------------------------------------------

void
DetailedCore::retire(std::uint64_t now)
{
    for (std::uint32_t n = 0; n < cfg_.commitWidth; ++n) {
        if (robHeadSeq_ == robTailSeq_)
            return;
        RobEntry &e = entry(robHeadSeq_);
        WSEL_ASSERT(e.valid && e.seq == robHeadSeq_,
                    "ROB head corrupted");
        if (!e.done || e.completion > now)
            return;
        if (e.kind == OpKind::Store) {
            storeWrite(e, now);
            WSEL_ASSERT(stqUsed_ > 0, "STQ underflow");
            --stqUsed_;
        } else if (e.kind == OpKind::Load) {
            WSEL_ASSERT(ldqUsed_ > 0, "LDQ underflow");
            --ldqUsed_;
        }
        e.valid = false;
        ++robHeadSeq_;
        ++stats_.committed;
        if (stats_.committed == targetUops_ &&
            stats_.cyclesToTarget == 0) {
            stats_.cyclesToTarget = now + 1;
        }
    }
}

void
DetailedCore::storeWrite(const RobEntry &e, std::uint64_t now)
{
    if (!dtlb_.access(e.addr))
        ++stats_.dtlbMisses;
    if (dl1_.probe(e.addr)) {
        dl1_.access(e.addr, true);
        return;
    }
    // Write-allocate miss: posted (non-blocking) refill.
    ++stats_.dl1Misses;
    ++stats_.uncoreStores;
    uncore_.access(now, coreId_, e.addr, true, e.pc, false);
    UncoreRequestEvent ev;
    ev.uopSeq = e.seq;
    ev.vaddr = e.addr;
    ev.pc = e.pc;
    ev.isWrite = true;
    ev.issueCycle = now;
    ev.dependsOn = -1;
    emitEvent(ev);
    const Cache::Result r = dl1_.access(e.addr, true);
    if (r.evicted.valid && r.evicted.dirty) {
        ++stats_.uncoreWritebacks;
        const std::uint64_t wb_addr =
            r.evicted.lineAddr * cfg_.dl1.lineBytes;
        uncore_.writeback(now, coreId_, wb_addr);
        UncoreRequestEvent wb;
        wb.uopSeq = e.seq;
        wb.vaddr = wb_addr;
        wb.isWriteback = true;
        wb.issueCycle = now;
        emitEvent(wb);
    }
    runDl1Prefetch(now, e.pc, e.addr, true);
}

// -------------------------------------------------------------------
// Issue / execute stage
// -------------------------------------------------------------------

void
DetailedCore::issue(std::uint64_t now)
{
    std::uint32_t issued = 0;
    for (auto it = rsQueue_.begin();
         it != rsQueue_.end() && issued < cfg_.issueWidth;) {
        RobEntry &e = entry(*it);
        WSEL_ASSERT(e.valid && e.seq == *it && !e.issued,
                    "RS queue corrupted");
        if (!depReady(e.dep1Seq, now) || !depReady(e.dep2Seq, now)) {
            ++it;
            continue;
        }
        if (!tryExecute(e, now)) {
            ++it; // structural hazard (e.g. DL1 MSHRs full)
            continue;
        }
        e.issued = true;
        e.done = true;
        it = rsQueue_.erase(it);
        ++issued;
    }
}

bool
DetailedCore::tryExecute(RobEntry &e, std::uint64_t now)
{
    switch (e.kind) {
      case OpKind::IntAlu:
      case OpKind::FpAlu:
        e.completion = now + e.latency;
        missDepRing_[e.seq % kDepRing] = inheritedMissDep(e);
        return true;

      case OpKind::Branch:
        e.completion = now + 1;
        missDepRing_[e.seq % kDepRing] = inheritedMissDep(e);
        if (e.mispredicted && stalledBranchSeq_ == e.seq) {
            // Redirect the front-end once the branch resolves.
            stalledBranchSeq_ = kNoDep;
            fetchStallUntil_ =
                std::max(fetchStallUntil_, e.completion + 1);
        }
        return true;

      case OpKind::Store:
        // Address generation; data is written at commit.
        e.completion = now + 1;
        missDepRing_[e.seq % kDepRing] = inheritedMissDep(e);
        return true;

      case OpKind::Load: {
        const std::uint64_t line = dl1_.lineAddr(e.addr);
        if (dl1_.probe(e.addr)) {
            // Tag hit; the line may still be in flight (MSHR).
            std::uint64_t pending = 0;
            for (const Dl1Mshr &m : dl1Mshrs_) {
                if (m.lineAddr == line)
                    pending = std::max(pending, m.completion);
            }
            std::uint64_t extra = 0;
            if (!dtlb_.access(e.addr)) {
                ++stats_.dtlbMisses;
                extra = cfg_.pageWalkCycles;
            }
            dl1_.access(e.addr, false);
            e.completion =
                std::max(now + cfg_.dl1Latency + extra, pending);
            missDepRing_[e.seq % kDepRing] = inheritedMissDep(e);
            runDl1Prefetch(now, e.pc, e.addr, false);
            return true;
        }
        // DL1 miss: need a free MSHR.
        std::erase_if(dl1Mshrs_, [now](const Dl1Mshr &m) {
            return m.completion <= now;
        });
        if (dl1Mshrs_.size() >= cfg_.dl1Mshrs)
            return false;
        executeLoadMiss(e, now, now + cfg_.dl1Latency);
        return true;
      }
    }
    WSEL_PANIC("unreachable µop kind");
}

void
DetailedCore::executeLoadMiss(RobEntry &e, std::uint64_t now,
                              std::uint64_t start)
{
    std::uint64_t extra = 0;
    if (!dtlb_.access(e.addr)) {
        ++stats_.dtlbMisses;
        extra = cfg_.pageWalkCycles;
    }
    ++stats_.dl1Misses;
    ++stats_.uncoreLoads;

    const std::uint64_t completion =
        uncore_.access(start + extra, coreId_, e.addr, false, e.pc,
                       false);

    UncoreRequestEvent ev;
    ev.uopSeq = e.seq;
    ev.vaddr = e.addr;
    ev.pc = e.pc;
    ev.issueCycle = start + extra;
    ev.dependsOn = inheritedMissDep(e);
    emitEvent(ev);

    const std::int64_t req_idx = nextRequestIdx_++;
    missDepRing_[e.seq % kDepRing] = req_idx;

    dl1Mshrs_.push_back(Dl1Mshr{dl1_.lineAddr(e.addr), completion});

    const Cache::Result r = dl1_.access(e.addr, false);
    if (r.evicted.valid && r.evicted.dirty) {
        ++stats_.uncoreWritebacks;
        const std::uint64_t wb_addr =
            r.evicted.lineAddr * cfg_.dl1.lineBytes;
        uncore_.writeback(completion, coreId_, wb_addr);
        UncoreRequestEvent wb;
        wb.uopSeq = e.seq;
        wb.vaddr = wb_addr;
        wb.isWriteback = true;
        wb.issueCycle = completion;
        emitEvent(wb);
    }

    e.completion = completion;
    runDl1Prefetch(now, e.pc, e.addr, true);
}

void
DetailedCore::runDl1Prefetch(std::uint64_t now, std::uint64_t pc,
                             std::uint64_t addr, bool was_miss)
{
    prefetchScratch_.clear();
    dl1Prefetcher_->observe(pc, dl1_.lineAddr(addr), was_miss,
                            prefetchScratch_);
    for (std::uint64_t line : prefetchScratch_) {
        const std::uint64_t byte_addr = line * cfg_.dl1.lineBytes;
        if (dl1_.probe(byte_addr))
            continue;
        ++stats_.uncorePrefetches;
        uncore_.access(now + cfg_.dl1Latency, coreId_, byte_addr,
                       false, 0, true);
        UncoreRequestEvent ev;
        ev.uopSeq = robTailSeq_;
        ev.vaddr = byte_addr;
        ev.pc = pc;
        ev.isPrefetch = true;
        ev.issueCycle = now + cfg_.dl1Latency;
        emitEvent(ev);
        const Cache::Result r = dl1_.access(byte_addr, false, true);
        if (r.evicted.valid && r.evicted.dirty) {
            ++stats_.uncoreWritebacks;
            const std::uint64_t wb_addr =
                r.evicted.lineAddr * cfg_.dl1.lineBytes;
            uncore_.writeback(now + cfg_.dl1Latency, coreId_,
                              wb_addr);
            UncoreRequestEvent wb;
            wb.uopSeq = robTailSeq_;
            wb.vaddr = wb_addr;
            wb.isWriteback = true;
            wb.issueCycle = now + cfg_.dl1Latency;
            emitEvent(wb);
        }
    }
}

// -------------------------------------------------------------------
// Dispatch stage
// -------------------------------------------------------------------

void
DetailedCore::dispatch(std::uint64_t now)
{
    for (std::uint32_t n = 0; n < cfg_.decodeWidth; ++n) {
        if (fetchBuffer_.empty())
            return;
        const FetchedUop &f = fetchBuffer_.front();
        if (f.readyCycle > now)
            return;
        if (robTailSeq_ - robHeadSeq_ >= cfg_.robSize)
            return;
        if (rsQueue_.size() >= cfg_.rsSize)
            return;
        if (f.uop.kind == OpKind::Load && ldqUsed_ >= cfg_.ldqSize)
            return;
        if (f.uop.kind == OpKind::Store && stqUsed_ >= cfg_.stqSize)
            return;

        WSEL_ASSERT(f.seq == robTailSeq_,
                    "fetch/dispatch sequence mismatch");
        RobEntry &e = entry(robTailSeq_);
        e = RobEntry{};
        e.valid = true;
        e.seq = f.seq;
        e.kind = f.uop.kind;
        e.addr = f.uop.addr;
        e.pc = f.uop.pc;
        e.latency = std::max<std::uint8_t>(f.uop.latency, 1);
        e.mispredicted = f.mispredicted;
        e.dep1Seq = (f.uop.dep1 > 0 && f.uop.dep1 <= f.seq)
                        ? f.seq - f.uop.dep1
                        : kNoDep;
        e.dep2Seq = (f.uop.dep2 > 0 && f.uop.dep2 <= f.seq)
                        ? f.seq - f.uop.dep2
                        : kNoDep;
        // A dependence that fell out of the ROB is already resolved.
        if (e.dep1Seq != kNoDep && e.dep1Seq < robHeadSeq_)
            e.dep1Seq = kNoDep;
        if (e.dep2Seq != kNoDep && e.dep2Seq < robHeadSeq_)
            e.dep2Seq = kNoDep;

        if (e.kind == OpKind::Load)
            ++ldqUsed_;
        if (e.kind == OpKind::Store)
            ++stqUsed_;
        rsQueue_.push_back(e.seq);
        ++robTailSeq_;
        fetchBuffer_.pop_front();
    }
}

// -------------------------------------------------------------------
// Fetch stage
// -------------------------------------------------------------------

void
DetailedCore::fetch(std::uint64_t now)
{
    if (stalledBranchSeq_ != kNoDep)
        return;
    if (now < fetchStallUntil_)
        return;

    for (std::uint32_t n = 0; n < cfg_.decodeWidth; ++n) {
        if (fetchBuffer_.size() >= cfg_.fetchBufferSize)
            return;

        MicroOp uop;
        if (pendingUop_) {
            uop = *pendingUop_;
            pendingUop_.reset();
        } else {
            // Thread restart at the trace target (paper §IV-A).
            if (trace_.generated() >= targetUops_)
                trace_.reset();
            uop = trace_.next();
        }

        // Instruction fetch: IL1/ITLB accessed per line crossed.
        const std::uint64_t line = il1_.lineAddr(uop.pc);
        if (line != curFetchLine_) {
            curFetchLine_ = line;
            std::uint64_t penalty = 0;
            if (!itlb_.access(uop.pc)) {
                ++stats_.itlbMisses;
                penalty += cfg_.pageWalkCycles;
            }
            const Cache::Result r = il1_.access(uop.pc, false);
            prefetchScratch_.clear();
            il1Prefetcher_->observe(uop.pc, line, !r.hit,
                                    prefetchScratch_);
            if (!r.hit) {
                ++stats_.il1Misses;
                ++stats_.uncoreLoads;
                const std::uint64_t comp = uncore_.access(
                    now + cfg_.il1Latency + penalty, coreId_, uop.pc,
                    false, uop.pc, false);
                UncoreRequestEvent ev;
                ev.uopSeq = nextFetchSeq_;
                ev.vaddr = uop.pc;
                ev.pc = uop.pc;
                ev.isInstruction = true;
                ev.issueCycle = now + cfg_.il1Latency + penalty;
                ev.dependsOn = -1;
                emitEvent(ev);
                fetchStallUntil_ = comp;
                pendingUop_ = uop;
                issueIl1Prefetches(now);
                return;
            }
            issueIl1Prefetches(now);
            if (penalty > 0) {
                fetchStallUntil_ = now + penalty;
                pendingUop_ = uop;
                return;
            }
        }

        FetchedUop f;
        f.uop = uop;
        f.seq = nextFetchSeq_++;
        f.readyCycle = now + cfg_.frontendDepth;

        if (uop.kind == OpKind::Branch) {
            ++stats_.branches;
            const bool correct =
                tage_.predictAndUpdate(uop.pc, uop.taken);
            if (!correct) {
                ++stats_.branchMispredicts;
                f.mispredicted = true;
                fetchBuffer_.push_back(f);
                // Stall until the branch executes and redirects.
                stalledBranchSeq_ = f.seq;
                return;
            }
        }
        fetchBuffer_.push_back(f);
    }
}

void
DetailedCore::issueIl1Prefetches(std::uint64_t now)
{
    for (std::uint64_t pline : prefetchScratch_) {
        const std::uint64_t byte_addr = pline * cfg_.il1.lineBytes;
        if (il1_.probe(byte_addr))
            continue;
        ++stats_.uncorePrefetches;
        uncore_.access(now + cfg_.il1Latency, coreId_, byte_addr,
                       false, 0, true);
        UncoreRequestEvent ev;
        ev.uopSeq = nextFetchSeq_;
        ev.vaddr = byte_addr;
        ev.isPrefetch = true;
        ev.issueCycle = now + cfg_.il1Latency;
        emitEvent(ev);
        il1_.access(byte_addr, false, true);
    }
    prefetchScratch_.clear();
}

// -------------------------------------------------------------------
// Idle-cycle skipping support
// -------------------------------------------------------------------

std::uint64_t
DetailedCore::nextEventCycle(std::uint64_t now) const
{
    std::uint64_t best = UINT64_MAX;
    auto consider = [&](std::uint64_t c) {
        best = std::min(best, std::max(c, now + 1));
    };

    // Fetch progress.
    if (stalledBranchSeq_ == kNoDep &&
        fetchBuffer_.size() < cfg_.fetchBufferSize)
        consider(fetchStallUntil_);

    // Dispatch progress.
    if (!fetchBuffer_.empty())
        consider(fetchBuffer_.front().readyCycle);

    // Retire progress.
    if (robHeadSeq_ != robTailSeq_) {
        const RobEntry &h = entry(robHeadSeq_);
        if (h.done)
            consider(h.completion);
    }

    // Issue progress: entries whose producers are already done
    // become ready at the producers' completion.
    for (std::uint64_t seq : rsQueue_) {
        const RobEntry &e = entry(seq);
        std::uint64_t ready = now + 1;
        bool known = true;
        for (std::uint64_t dep : {e.dep1Seq, e.dep2Seq}) {
            if (dep == kNoDep || dep < robHeadSeq_)
                continue;
            const RobEntry &p = entry(dep);
            if (!p.done) {
                known = false;
                break;
            }
            ready = std::max(ready, p.completion);
        }
        if (known)
            consider(ready);
    }

    // MSHR frees (for loads blocked on a full MSHR file).
    for (const Dl1Mshr &m : dl1Mshrs_)
        consider(m.completion);

    return best;
}

} // namespace wsel
