#include "sim/hybrid.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>

#include "core/confidence/confidence.hh"
#include "exec/scheduler.hh"
#include "fidelity/escalation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/campaign.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "trace/trace_store.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

/** Combined-bound z: two-sided ~95% on the sampling term. */
constexpr double kComboZ = 1.959963984540054;

/**
 * Identity of one hybrid campaign's online profile update, used
 * with ErrorProfile::markApplied so a killed-and-resumed run never
 * records the same residuals twice.
 */
std::uint64_t
applyId(std::uint64_t detailed_fp, const HybridOptions &opts,
        std::uint64_t last_rank)
{
    persist::Fnv1a h;
    h.update("wsel-hybrid-apply-1");
    h.updateU64(detailed_fp);
    h.updateU64(opts.seed);
    h.updateU64(opts.firstRank);
    h.updateU64(last_rank);
    return h.digest();
}

/**
 * Does a freshly-read escalation record describe this campaign?
 * Knob drift (a different quantile/budget/threshold) makes the
 * record stale, not corrupt: the caller recomputes and overwrites.
 */
bool
recordMatches(const fidelity::EscalationRecord &rec,
              const persist::V3Manifest &m,
              std::uint64_t detailed_fp, ThroughputMetric metric,
              const HybridOptions &opts, std::uint64_t last_rank)
{
    return rec.badcoFingerprint == m.fingerprint &&
           rec.detailedFingerprint == detailed_fp &&
           rec.seed == opts.seed &&
           rec.firstRank == opts.firstRank &&
           rec.lastRank == last_rank &&
           rec.metric == toString(metric) &&
           rec.policyX == m.policies[0] &&
           rec.policyY == m.policies[1] &&
           rec.quantile == opts.quantile &&
           rec.budgetFraction == opts.budgetFraction &&
           rec.threshold == opts.threshold;
}

} // namespace

HybridResult
runHybridCampaign(const WorkloadPopulation &pop, PolicyKind x,
                  PolicyKind y, ThroughputMetric metric,
                  std::uint64_t target_uops, BadcoModelStore &store,
                  const std::vector<BenchmarkProfile> &suite,
                  fidelity::ErrorProfile &profile,
                  const std::string &out_dir,
                  const HybridOptions &opts)
{
    if (x == y)
        WSEL_FATAL("hybrid campaign needs two distinct policies");
    if (pop.numBenchmarks() != suite.size())
        WSEL_FATAL("population is over " << pop.numBenchmarks()
                   << " benchmarks but the suite has "
                   << suite.size());
    if (profile.suiteHash() !=
        fidelity::ErrorProfile::hashSuite(suite))
        WSEL_FATAL("error profile was calibrated for a different "
                   "suite; re-calibrate before running hybrid");
    if (!(opts.quantile > 0.0 && opts.quantile < 1.0))
        WSEL_FATAL("hybrid quantile must be in (0, 1)");
    if (opts.batchRows == 0)
        WSEL_FATAL("hybrid batch size must be positive");

    obs::Span span("fidelity.hybrid");
    const std::size_t jobs = exec::resolveJobs(opts.jobs);
    const std::vector<PolicyKind> policies = {x, y};
    const std::uint32_t k = pop.cores();
    const std::size_t np = policies.size();

    // Phase 1: the BADCO sweep, via the population engine (shard
    // resume, determinism contract and campaign_v3 artifacts come
    // with it).
    PopulationOptions pop_opts;
    pop_opts.seed = opts.seed;
    pop_opts.jobs = opts.jobs;
    pop_opts.shardCells = opts.shardCells;
    pop_opts.firstRank = opts.firstRank;
    pop_opts.lastRank = opts.lastRank;
    pop_opts.resume = opts.resume;
    pop_opts.verbose = opts.verbose;
    pop_opts.batchCells = opts.batchCells;
    pop_opts.batchWave = opts.batchWave;
    std::vector<PopulationPairSpec> pairs(1);
    pairs[0].x = 0;
    pairs[0].y = 1;
    pairs[0].metric = metric;
    pairs[0].label = toString(x) + std::string(" vs ") +
                     toString(y);

    HybridResult result;
    result.dir = out_dir;
    result.badco = runBadcoPopulationCampaign(
        pop, policies, target_uops, store, suite, pairs, out_dir,
        pop_opts);
    const persist::V3Manifest &m = result.badco.manifest;
    const std::uint64_t rows = m.rows();
    const std::uint64_t detailed_fp = campaignFingerprint(
        "detailed", k, target_uops, policies, suite);

    // Phase 2: per-row intervals from the error profile, then the
    // escalation set.  The BADCO d(w) and the interval slack are
    // recomputed every run (cheap, deterministic given the same
    // profile); the *set* itself is pinned by the sidecar so a
    // resumed run escalates exactly the same rows even after the
    // profile learned from other campaigns.
    std::vector<fidelity::CellInterval> cells(
        static_cast<std::size_t>(rows));
    {
        obs::Span pspan("fidelity.intervals");
        const std::uint64_t shards = m.shardCount();
        auto scan_shard = [&](std::size_t s) {
            const std::vector<double> payload =
                persist::readV3Shard(out_dir, m, s);
            fidelity::EscalationOracle oracle(metric, profile,
                                              opts.quantile,
                                              m.refIpc);
            const std::uint64_t first = m.shardFirstRank(s);
            const std::uint64_t n = m.rowsInShard(s);
            WorkloadCursor cur(pop, first);
            for (std::uint64_t r = 0; r < n; ++r, cur.next()) {
                const double *row =
                    payload.data() + r * np * k;
                cells[static_cast<std::size_t>(
                    first - m.firstRank + r)] =
                    oracle.interval(cur.benchmarks(), {row, k},
                                    {row + k, k});
            }
        };
        if (jobs <= 1 || shards <= 1) {
            for (std::uint64_t s = 0; s < shards; ++s)
                scan_shard(s);
        } else {
            exec::ThreadPool pool(
                std::min<std::size_t>(jobs, shards));
            exec::parallel_for(pool, std::size_t{0}, shards,
                               scan_shard);
        }
    }

    fidelity::EscalationRecord rec;
    bool have_record = false;
    if (opts.resume && fidelity::hasEscalationRecord(out_dir)) {
        try {
            rec = fidelity::readEscalationRecord(out_dir);
            have_record = recordMatches(rec, m, detailed_fp, metric,
                                        opts, m.lastRank);
            if (!have_record && opts.verbose)
                logLine("  [hybrid] escalation sidecar is for "
                        "different knobs; recomputing the set");
        } catch (const persist::CacheInvalid &e) {
            const std::string path =
                fidelity::escalationRecordPath(out_dir);
            const std::string moved =
                persist::quarantineFile(path);
            warn("corrupt fidelity bitmap " + path + " (" +
                 e.what() + ")" +
                 (moved.empty() ? ""
                                : "; quarantined to " + moved) +
                 "; recomputing the escalation set");
        }
    }
    if (!have_record) {
        const std::vector<std::uint8_t> flags =
            fidelity::selectEscalations(cells, opts.threshold,
                                        opts.budgetFraction);
        rec = fidelity::EscalationRecord{};
        rec.badcoFingerprint = m.fingerprint;
        rec.detailedFingerprint = detailed_fp;
        rec.seed = opts.seed;
        rec.metric = toString(metric);
        rec.policyX = m.policies[0];
        rec.policyY = m.policies[1];
        rec.quantile = opts.quantile;
        rec.budgetFraction = opts.budgetFraction;
        rec.threshold = opts.threshold;
        rec.firstRank = m.firstRank;
        rec.lastRank = m.lastRank;
        rec.resizeBitmap();
        for (std::uint64_t r = 0; r < rows; ++r) {
            if (flags[static_cast<std::size_t>(r)]) {
                rec.setEscalated(r);
                ++rec.escalatedCount;
            }
        }
        fidelity::writeEscalationRecord(out_dir, rec);
    }
    result.escalation = rec;

    // Phase 3: detailed re-simulation of the escalated rows, in
    // rank order, batched for resume.  Cell seeds come from the
    // *detailed* fingerprint, so an escalated cell is bitwise the
    // cell a pure detailed campaign would have produced.
    std::vector<std::uint64_t> esc_ranks;
    esc_ranks.reserve(
        static_cast<std::size_t>(rec.escalatedCount));
    for (std::uint64_t r = 0; r < rows; ++r)
        if (rec.escalated(r))
            esc_ranks.push_back(m.firstRank + r);
    const std::size_t esc_n = esc_ranks.size();
    std::vector<double> det_ipc(esc_n * np * k, 0.0);

    if (esc_n > 0) {
        obs::Span dspan("fidelity.detailed");
        TraceStore &ts = TraceStore::global();
        if (jobs <= 1 || suite.size() <= 1) {
            for (const BenchmarkProfile &p : suite)
                ts.ensureBuilt(p, target_uops);
        } else {
            exec::ThreadPool pool(
                std::min<std::size_t>(jobs, suite.size()));
            exec::parallel_for(pool, std::size_t{0}, suite.size(),
                               [&](std::size_t i) {
                                   ts.ensureBuilt(suite[i],
                                                  target_uops);
                               });
        }
        std::vector<UncoreConfig> ucfgs;
        ucfgs.reserve(np);
        for (PolicyKind p : policies)
            ucfgs.push_back(UncoreConfig::forCores(k, p));

        const std::uint64_t batches =
            (esc_n + opts.batchRows - 1) / opts.batchRows;
        std::vector<std::uint64_t> simulated(batches, 0);
        std::vector<std::uint64_t> resumed(batches, 0);
        auto run_batch = [&](std::size_t b) {
            const std::size_t first = static_cast<std::size_t>(
                b * opts.batchRows);
            const std::size_t count = std::min<std::size_t>(
                static_cast<std::size_t>(opts.batchRows),
                esc_n - first);
            const std::string path =
                fidelity::fidelityBatchPath(out_dir, b);
            if (opts.resume) {
                try {
                    const fidelity::FidelityBatch got =
                        fidelity::readFidelityBatch(out_dir,
                                                    detailed_fp, b);
                    if (got.cores == k &&
                        got.numPolicies == np &&
                        got.firstOrdinal == first &&
                        got.ranks.size() == count &&
                        std::equal(got.ranks.begin(),
                                   got.ranks.end(),
                                   esc_ranks.begin() + first)) {
                        std::copy(got.ipc.begin(), got.ipc.end(),
                                  det_ipc.begin() +
                                      first * np * k);
                        resumed[b] = count * np;
                        return;
                    }
                    // A well-formed batch for a different
                    // escalation set is stale, not corrupt.
                    persist::quarantineFile(path);
                    warn("stale fidelity batch " + path +
                         "; re-simulating");
                } catch (const persist::CacheInvalid &e) {
                    if (fs::exists(path)) {
                        const std::string moved =
                            persist::quarantineFile(path);
                        warn("corrupt fidelity batch " + path +
                             " (" + e.what() + ")" +
                             (moved.empty()
                                  ? ""
                                  : "; quarantined to " + moved) +
                             "; re-simulating");
                    }
                }
            }
            fidelity::FidelityBatch batch;
            batch.detailedFingerprint = detailed_fp;
            batch.index = b;
            batch.firstOrdinal = first;
            batch.cores = k;
            batch.numPolicies = static_cast<std::uint32_t>(np);
            batch.ranks.assign(esc_ranks.begin() + first,
                               esc_ranks.begin() + first + count);
            batch.ipc.assign(count * np * k, 0.0);
            for (std::size_t r = 0; r < count; ++r) {
                const std::uint64_t rank = batch.ranks[r];
                const Workload w = pop.unrank(rank);
                for (std::size_t p = 0; p < np; ++p) {
                    persist::faultPoint("fidelity.escalate");
                    const auto c0 =
                        std::chrono::steady_clock::now();
                    const DetailedMulticoreSim sim(
                        opts.coreCfg, ucfgs[p], k, target_uops,
                        campaignCellSeed(detailed_fp, opts.seed, p,
                                         rank));
                    const SimResult res = sim.run(w, suite);
                    for (std::uint32_t c = 0; c < k; ++c)
                        batch.ipc[(r * np + p) * k + c] =
                            res.ipc[c];
                    if (obs::metricsEnabled()) {
                        static obs::LatencyHistogram &detNs =
                            obs::histogram("fidelity.detailed_ns");
                        detNs.recordNs(static_cast<std::uint64_t>(
                            std::chrono::duration<double,
                                                   std::nano>(
                                std::chrono::steady_clock::now() -
                                c0)
                                .count()));
                    }
                }
            }
            fidelity::writeFidelityBatch(out_dir, batch);
            std::copy(batch.ipc.begin(), batch.ipc.end(),
                      det_ipc.begin() + first * np * k);
            simulated[b] = count * np;
            if (opts.verbose) {
                std::ostringstream os;
                os << "  [hybrid] detailed batch " << (b + 1)
                   << "/" << batches << " (" << count << " rows)";
                logLine(os.str());
            }
        };
        if (jobs <= 1 || batches <= 1) {
            for (std::uint64_t b = 0; b < batches; ++b)
                run_batch(b);
        } else {
            exec::ThreadPool pool(
                std::min<std::size_t>(jobs, batches));
            exec::parallel_for(pool, std::size_t{0}, batches,
                               run_batch);
        }
        for (std::uint64_t b = 0; b < batches; ++b) {
            result.detailedCellsSimulated += simulated[b];
            result.detailedCellsResumed += resumed[b];
        }
    }

    // Phase 4: splice detailed d(w) values over BADCO's and emit
    // the confidence report.  The model-error slack is the mean
    // remaining interval width of the rows we did NOT escalate
    // (escalated rows are ground truth and contribute none).
    fidelity::Welford d_stats;
    double model_lo_sum = 0.0;
    double model_hi_sum = 0.0;
    {
        std::vector<double> refs(k, 1.0);
        std::size_t ord = 0;
        WorkloadCursor cur(pop, m.firstRank);
        for (std::uint64_t r = 0; r < rows; ++r, cur.next()) {
            double d;
            if (rec.escalated(r)) {
                const std::span<const std::uint32_t> benches =
                    cur.benchmarks();
                for (std::uint32_t c = 0; c < k; ++c)
                    refs[c] = m.refIpc[benches[c]];
                const double *row =
                    det_ipc.data() + ord * np * k;
                const double tx = perWorkloadThroughput(
                    metric, {row, k}, refs);
                const double ty = perWorkloadThroughput(
                    metric, {row + k, k}, refs);
                d = perWorkloadDifference(metric, tx, ty);
                ++ord;
            } else {
                const fidelity::CellInterval &ci =
                    cells[static_cast<std::size_t>(r)];
                d = ci.d;
                model_lo_sum += ci.dLo - ci.d;
                model_hi_sum += ci.dHi - ci.d;
            }
            d_stats.add(d);
        }
    }

    fidelity::HybridReportRecord rep;
    rep.badcoFingerprint = m.fingerprint;
    rep.detailedFingerprint = detailed_fp;
    rep.metric = toString(metric);
    rep.policyX = m.policies[0];
    rep.policyY = m.policies[1];
    rep.workloads = rows;
    rep.escalated = rec.escalatedCount;
    rep.escalationFraction =
        rows == 0 ? 0.0
                  : static_cast<double>(rec.escalatedCount) /
                        static_cast<double>(rows);
    rep.meanD = d_stats.mean;
    rep.sigma = d_stats.stddevPopulation();
    rep.se = rows == 0 ? 0.0
                       : rep.sigma /
                             std::sqrt(static_cast<double>(rows));
    rep.cv = rep.meanD == 0.0 ? 0.0 : rep.sigma / rep.meanD;
    rep.confidence = modelConfidence(
        rep.cv, static_cast<std::size_t>(rows));
    rep.modelLo =
        rows == 0 ? 0.0
                  : model_lo_sum / static_cast<double>(rows);
    rep.modelHi =
        rows == 0 ? 0.0
                  : model_hi_sum / static_cast<double>(rows);
    rep.comboLo = rep.meanD + rep.modelLo - kComboZ * rep.se;
    rep.comboHi = rep.meanD + rep.modelHi + kComboZ * rep.se;
    rep.yWins = rep.meanD > opts.threshold ? 1 : 0;
    fidelity::writeHybridReport(out_dir, rep);
    result.report = rep;
    result.manifest = m;

    if (obs::metricsEnabled()) {
        static obs::Counter &escC =
            obs::counter("fidelity.cells_escalated");
        static obs::Counter &totC =
            obs::counter("fidelity.cells_total");
        escC.inc(rec.escalatedCount * np * k);
        totC.inc(rows * np * k);
        obs::gauge("fidelity.escalation_fraction")
            .set(rep.escalationFraction);
    }

    // Online learning: feed the escalated cells' (badco, detailed)
    // IPC pairs back into the profile, exactly once per campaign
    // across kills and resumes.  A second shard pass collects the
    // BADCO IPCs of just the escalated rows.
    if (esc_n > 0 &&
        profile.markApplied(
            applyId(detailed_fp, opts, m.lastRank))) {
        result.profileUpdated = true;
        std::size_t ord = 0;
        const std::uint64_t shards = m.shardCount();
        std::vector<std::uint32_t> benches;
        for (std::uint64_t s = 0; s < shards && ord < esc_n; ++s) {
            const std::uint64_t first = m.shardFirstRank(s);
            const std::uint64_t n = m.rowsInShard(s);
            if (esc_ranks[ord] >= first + n)
                continue;
            const std::vector<double> payload =
                persist::readV3Shard(out_dir, m, s);
            while (ord < esc_n && esc_ranks[ord] < first + n) {
                const std::uint64_t rank = esc_ranks[ord];
                pop.unrankInto(rank, benches);
                const double *brow =
                    payload.data() + (rank - first) * np * k;
                const double *drow =
                    det_ipc.data() + ord * np * k;
                for (std::size_t p = 0; p < np; ++p)
                    for (std::uint32_t c = 0; c < k; ++c)
                        profile.record(benches[c],
                                       brow[p * k + c],
                                       drow[p * k + c]);
                ++ord;
            }
        }
    }

    if (opts.verbose) {
        std::ostringstream os;
        os << "  [hybrid] " << rows << " workloads, "
           << rec.escalatedCount << " escalated ("
           << 100.0 * rep.escalationFraction
           << "%), mean d = " << rep.meanD << " in ["
           << rep.comboLo << ", " << rep.comboHi << "]";
        logLine(os.str());
    }
    return result;
}

} // namespace wsel
