#include "sim/multicore.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "cpu/detailed_core.hh"
#include "badco/badco_machine.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/logging.hh"
#include "trace/trace_store.hh"

namespace wsel
{

namespace
{

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

} // namespace

double
SimResult::mips() const
{
    if (wallSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(instructions) / wallSeconds / 1e6;
}

// -------------------------------------------------------------------
// Detailed simulator
// -------------------------------------------------------------------

DetailedMulticoreSim::DetailedMulticoreSim(
    const CoreConfig &core_cfg, const UncoreConfig &uncore_cfg,
    std::uint32_t cores, std::uint64_t target_uops,
    std::uint64_t seed)
    : coreCfg_(core_cfg), uncoreCfg_(uncore_cfg), cores_(cores),
      targetUops_(target_uops), seed_(seed)
{
    if (cores_ == 0)
        WSEL_FATAL("need at least one core");
    if (targetUops_ == 0)
        WSEL_FATAL("target µop count cannot be zero");
}

SimResult
DetailedMulticoreSim::run(
    const Workload &workload,
    const std::vector<BenchmarkProfile> &suite) const
{
    if (workload.size() != cores_)
        WSEL_FATAL("workload has " << workload.size()
                                   << " threads for " << cores_
                                   << " cores");
    const auto t0 = std::chrono::steady_clock::now();
    obs::Span span("sim.detailed.run");

    Uncore uncore(uncoreCfg_, cores_, seed_);
    std::vector<std::unique_ptr<DetailedCore>> coresv;
    coresv.reserve(cores_);
    for (std::uint32_t k = 0; k < cores_; ++k) {
        const std::uint32_t bench = workload[k];
        if (bench >= suite.size())
            WSEL_FATAL("workload references benchmark " << bench
                       << " outside the suite");
        // Cursors into the shared memoized stream replace the old
        // per-cell-per-core TraceGenerator (docs/PERFORMANCE.md).
        coresv.push_back(std::make_unique<DetailedCore>(
            coreCfg_, TraceStore::global().cursor(suite[bench]),
            uncore, k, targetUops_, seed_ + 0x1000 * (k + 1)));
    }

    std::uint64_t now = 0;
    while (true) {
        bool all_done = true;
        for (auto &c : coresv) {
            c->tick(now);
            all_done = all_done && c->reachedTarget();
        }
        if (all_done)
            break;
        // Skip cycles in which no unfinished core can progress.
        std::uint64_t next = UINT64_MAX;
        for (auto &c : coresv) {
            if (c->reachedTarget())
                continue;
            next = std::min(next, c->nextEventCycle(now));
        }
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }

    SimResult res;
    res.ipc.reserve(cores_);
    res.llcDemandMisses.reserve(cores_);
    for (std::uint32_t k = 0; k < cores_; ++k) {
        res.ipc.push_back(coresv[k]->ipc());
        res.cycles = std::max(res.cycles,
                              coresv[k]->stats().cyclesToTarget);
        res.llcDemandMisses.push_back(
            uncore.coreStats(k).demandMisses);
    }
    res.instructions = static_cast<std::uint64_t>(cores_) *
                       targetUops_;
    res.wallSeconds = elapsedSeconds(t0);
    if (obs::metricsEnabled()) {
        static obs::Counter &cells =
            obs::counter("sim.detailed.cells");
        static obs::LatencyHistogram &cellNs =
            obs::histogram("sim.detailed.cell_ns");
        cells.inc();
        cellNs.recordNs(
            static_cast<std::uint64_t>(res.wallSeconds * 1e9));
    }
    return res;
}

std::vector<double>
DetailedMulticoreSim::referenceIpcs(
    const std::vector<BenchmarkProfile> &suite) const
{
    // The reference machine: the same uncore with the baseline LRU
    // policy, running the benchmark alone.
    UncoreConfig ref_cfg = uncoreCfg_;
    ref_cfg.policy = PolicyKind::LRU;
    std::vector<double> refs;
    refs.reserve(suite.size());
    for (const BenchmarkProfile &p : suite) {
        Uncore uncore(ref_cfg, 1, seed_);
        DetailedCore core(coreCfg_, TraceStore::global().cursor(p),
                          uncore, 0, targetUops_, seed_ + 0x51);
        std::uint64_t now = 0;
        while (!core.reachedTarget()) {
            core.tick(now);
            const std::uint64_t next = core.nextEventCycle(now);
            now = std::max(now + 1,
                           next == UINT64_MAX ? now + 1 : next);
        }
        refs.push_back(core.ipc());
    }
    return refs;
}

// -------------------------------------------------------------------
// BADCO simulator
// -------------------------------------------------------------------

BadcoMulticoreSim::BadcoMulticoreSim(const UncoreConfig &uncore_cfg,
                                     std::uint32_t cores,
                                     std::uint64_t target_uops,
                                     std::uint64_t seed,
                                     std::uint32_t window,
                                     std::uint32_t max_outstanding,
                                     std::uint64_t quantum)
    : uncoreCfg_(uncore_cfg), cores_(cores),
      targetUops_(target_uops), seed_(seed), window_(window),
      maxOutstanding_(max_outstanding), quantum_(quantum)
{
    if (cores_ == 0)
        WSEL_FATAL("need at least one core");
    if (targetUops_ == 0)
        WSEL_FATAL("target µop count cannot be zero");
    if (quantum_ == 0)
        WSEL_FATAL("quantum cannot be zero");
}

SimResult
BadcoMulticoreSim::run(
    const Workload &workload,
    const std::vector<const BadcoModel *> &models) const
{
    const auto &b = workload.benchmarks();
    return run(std::span<const std::uint32_t>(b.data(), b.size()),
               models);
}

SimResult
BadcoMulticoreSim::run(
    std::span<const std::uint32_t> benches,
    const std::vector<const BadcoModel *> &models) const
{
    if (benches.size() != cores_)
        WSEL_FATAL("workload has " << benches.size()
                                   << " threads for " << cores_
                                   << " cores");
    const auto t0 = std::chrono::steady_clock::now();
    obs::Span span("sim.badco.run");

    Uncore uncore(uncoreCfg_, cores_, seed_);
    std::vector<std::unique_ptr<BadcoMachine>> machines;
    machines.reserve(cores_);
    for (std::uint32_t k = 0; k < cores_; ++k) {
        const std::uint32_t bench = benches[k];
        if (bench >= models.size() || models[bench] == nullptr)
            WSEL_FATAL("no BADCO model for benchmark " << bench);
        machines.push_back(std::make_unique<BadcoMachine>(
            *models[bench], uncore, k, targetUops_, window_,
            maxOutstanding_));
        machines.back()->stopAtTarget(!restartThreads_);
    }

    // Round-robin quanta with rotating start for fairness. A
    // machine whose clock already passed the quantum boundary
    // would return from run() without stepping (a long stall can
    // overshoot many quanta), so the call is skipped — the uncore
    // request interleaving, and therefore the result, is untouched.
    std::vector<BadcoMachine *> mview;
    mview.reserve(cores_);
    for (const auto &m : machines)
        mview.push_back(m.get());
    std::uint64_t t = 0;
    std::uint32_t first = 0;
    while (true) {
        bool all_done = true;
        for (const BadcoMachine *m : mview)
            all_done = all_done && m->reachedTarget();
        if (all_done)
            break;
        t += quantum_;
        for (std::uint32_t i = 0; i < cores_; ++i) {
            std::uint32_t k = first + i;
            if (k >= cores_)
                k -= cores_;
            BadcoMachine &m = *mview[k];
            if (m.localClock() < t)
                m.run(t);
        }
        first = first + 1 == cores_ ? 0 : first + 1;
    }

    SimResult res;
    res.ipc.reserve(cores_);
    res.llcDemandMisses.reserve(cores_);
    for (std::uint32_t k = 0; k < cores_; ++k) {
        res.ipc.push_back(machines[k]->ipc());
        res.cycles = std::max(res.cycles,
                              machines[k]->stats().cyclesToTarget);
        res.llcDemandMisses.push_back(
            uncore.coreStats(k).demandMisses);
    }
    res.instructions = static_cast<std::uint64_t>(cores_) *
                       targetUops_;
    res.wallSeconds = elapsedSeconds(t0);
    if (obs::metricsEnabled()) {
        static obs::Counter &cells = obs::counter("sim.badco.cells");
        static obs::LatencyHistogram &cellNs =
            obs::histogram("sim.badco.cell_ns");
        cells.inc();
        cellNs.recordNs(
            static_cast<std::uint64_t>(res.wallSeconds * 1e9));
    }
    return res;
}

std::vector<double>
BadcoMulticoreSim::referenceIpcs(
    const std::vector<const BadcoModel *> &models) const
{
    UncoreConfig ref_cfg = uncoreCfg_;
    ref_cfg.policy = PolicyKind::LRU;
    std::vector<double> refs;
    refs.reserve(models.size());
    for (const BadcoModel *m : models) {
        if (m == nullptr)
            WSEL_FATAL("missing BADCO model");
        Uncore uncore(ref_cfg, 1, seed_);
        BadcoMachine machine(*m, uncore, 0, targetUops_, window_,
                             maxOutstanding_);
        while (!machine.reachedTarget())
            machine.run(machine.localClock() + quantum_);
        refs.push_back(machine.ipc());
    }
    return refs;
}

} // namespace wsel
