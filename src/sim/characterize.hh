/**
 * @file
 * Benchmark characterization: run each benchmark alone on the
 * detailed simulator and extract the feature vector used for
 * automatic classification (core/classify). This is the simulation
 * half of the paper's §II-B cluster-analysis alternative to manual
 * MPKI classes.
 */

#ifndef WSEL_SIM_CHARACTERIZE_HH
#define WSEL_SIM_CHARACTERIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "mem/uncore_config.hh"
#include "trace/benchmark_profile.hh"

namespace wsel
{

/** Single-thread characterization of one benchmark. */
struct BenchmarkFeatures
{
    std::string name;

    /** @name Instruction-mix features (fractions of µops). */
    /** @{ */
    double loadFrac = 0.0;
    double storeFrac = 0.0;
    double branchFrac = 0.0;
    /** @} */

    /** @name Behaviour features (measured, not profile inputs). */
    /** @{ */
    double ipc = 0.0;            ///< alone on the reference uncore
    double dl1Mpki = 0.0;        ///< L1D misses per kilo-µop
    double llcMpki = 0.0;        ///< LLC demand misses per kilo-µop
    double branchMispredictRate = 0.0;
    double dtlbMpki = 0.0;
    /** @} */

    /**
     * Flatten to the feature vector used for clustering:
     * {loadFrac, storeFrac, branchFrac, ipc, dl1Mpki, llcMpki,
     *  branchMispredictRate, dtlbMpki}.
     */
    std::vector<double> toVector() const;

    /** Index of llcMpki in toVector() (classification order key). */
    static constexpr std::size_t kLlcMpkiColumn = 5;
};

/**
 * Characterize one benchmark by running it alone on the detailed
 * simulator.
 */
BenchmarkFeatures characterizeBenchmark(
    const BenchmarkProfile &profile, const CoreConfig &core_cfg,
    const UncoreConfig &uncore_cfg, std::uint64_t target_uops,
    std::uint64_t seed = 1);

/**
 * Characterize a whole suite (suite order preserved).  Each
 * benchmark runs with the same @p seed, so the result does not
 * depend on @p jobs; with jobs != 1 the benchmarks run
 * concurrently on the exec/ work-stealing pool (0 asks for
 * exec::defaultJobs()).
 */
std::vector<BenchmarkFeatures> characterizeSuite(
    const std::vector<BenchmarkProfile> &suite,
    const CoreConfig &core_cfg, const UncoreConfig &uncore_cfg,
    std::uint64_t target_uops, std::uint64_t seed = 1,
    std::size_t jobs = 1);

/** Feature matrix for core/classify from characterizations. */
std::vector<std::vector<double>> featureMatrix(
    const std::vector<BenchmarkFeatures> &features);

} // namespace wsel

#endif // WSEL_SIM_CHARACTERIZE_HH
