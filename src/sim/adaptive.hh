/**
 * @file
 * Sequential (adaptive) campaign runner: simulate the X-vs-Y
 * comparison in deterministic batches and stop when the streamed
 * eq. 5 confidence crosses a target or a budget runs out, instead
 * of fixing the cell count up front (docs/SAMPLING.md).
 *
 * Determinism contract (the population-campaign contract extended
 * to open-ended runs): the batch *schedule* maps draw position to
 * population rank through adaptiveScheduleRank(fingerprint, seed,
 * position), per-cell seeds come from campaignCellSeed(fingerprint,
 * seed, policy, absolute rank), batch statistics merge in position
 * order, and batch files carry no timing — so a `--jobs N` run, a
 * serial run, and a SIGKILLed-and-resumed run all produce
 * bitwise-identical batch files and the identical stopping decision
 * (tests/test_adaptive.cc).  The only non-replayable stop is the
 * optional wall-clock budget, which is recorded as such in the
 * artifact.
 *
 * The ranked-set method spends a cheap pre-pass first: one
 * homogeneous BADCO run per (benchmark, policy) — 2B cells instead
 * of the population cross-product — feeds an ApproxRanker that
 * orders each draw position's candidate set; detailed batch budget
 * then goes to rank-selected workloads (core/adaptive/adaptive.hh).
 */

#ifndef WSEL_SIM_ADAPTIVE_HH
#define WSEL_SIM_ADAPTIVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "core/adaptive/adaptive.hh"
#include "core/adaptive/controller.hh"
#include "core/workload/workload.hh"
#include "mem/uncore_config.hh"
#include "sim/model_store.hh"
#include "stats/persist_adaptive.hh"
#include "stats/summary.hh"
#include "trace/benchmark_profile.hh"

namespace wsel
{

/** How the sequential runner picks the next workload to simulate. */
enum class AdaptiveMethod : std::uint8_t
{
    Random,    ///< uniform draw positions (paper §VI-A baseline)
    RankedSet, ///< cheap-model ranked sets (Ekman-style)
};

const char *toString(AdaptiveMethod m);
AdaptiveMethod parseAdaptiveMethod(const std::string &name);

struct AdaptiveOptions
{
    std::uint64_t seed = 1;

    /** Worker threads within a batch; 0 = $WSEL_JOBS else hardware. */
    std::size_t jobs = 1;

    /** Workloads simulated per batch (2 cells each). */
    std::uint64_t batchWorkloads = 64;

    /** The stopping rule (target confidence, budgets). */
    SequentialConfig stop;

    /**
     * Wall-clock budget in seconds; 0 = unlimited.  A wall-clock
     * stop is recorded in the artifact but is the one stop a
     * resumed run cannot replay deterministically.
     */
    double wallClockBudget = 0.0;

    AdaptiveMethod method = AdaptiveMethod::Random;

    /** Ranked-set candidates per draw (method == RankedSet). */
    std::size_t setSize = 5;

    /**
     * Repeated-subsampling redraws for the post-stop cross-check;
     * 0 disables it.
     */
    std::size_t subsampleRedraws = 256;

    /** Resume from existing batch files instead of starting over. */
    bool resume = false;

    bool verbose = false;

    /**
     * Cells per batched-engine group (sim/batch.hh): 0 resolves
     * WSEL_BATCH_CELLS (default 32), 1 runs cells serially.
     * Bitwise identical at every value.
     */
    std::uint32_t batchCells = 0;

    /**
     * Wavefront width (sim/batch.hh): 0 resolves WSEL_BATCH_WAVE
     * (default 1 = cell-major). Bitwise identical at every value.
     */
    std::uint32_t batchWave = 0;
};

struct AdaptiveResult
{
    std::string dir;

    /** The stopping verdict (also persisted in adaptive.bin). */
    SequentialDecision verdict;

    /** The persisted record (method, trajectory, target). */
    persist::AdaptiveDecisionRecord decision;

    /** Streamed statistics of every observed d(w). */
    RunningStats d;

    /** Post-stop repeated-subsampling cross-check. */
    SubsampleEstimate subsample;

    std::uint64_t cellsSimulated = 0;
    std::uint64_t cellsResumed = 0;

    /** Cheap ranked-set pre-pass cells (2B, not budget cells). */
    std::uint64_t prepassCells = 0;
    std::uint64_t batchesRun = 0;
    std::uint64_t batchesResumed = 0;

    /** Workload cap the run was operating under. */
    std::uint64_t budgetWorkloads = 0;

    double wallSeconds = 0.0;

    /** Cells the stop saved against simulating the whole budget. */
    std::uint64_t cellsSaved() const
    {
        const std::uint64_t budget_cells = budgetWorkloads * 2;
        const std::uint64_t spent = cellsSimulated + cellsResumed;
        return budget_cells > spent ? budget_cells - spent : 0;
    }
};

/**
 * Run (or resume) a sequential BADCO campaign comparing @p x and
 * @p y under @p metric over the full population @p pop, writing
 * batch files and the stopping decision to @p out_dir.
 *
 * The campaign fingerprint is computed over the policy list
 * {x, y}, so cells agree bitwise with a fixed-size population
 * campaign over the same two policies at the same ranks.
 */
AdaptiveResult runAdaptiveCampaign(
    const WorkloadPopulation &pop, PolicyKind x, PolicyKind y,
    ThroughputMetric metric, std::uint64_t target_uops,
    BadcoModelStore &store,
    const std::vector<BenchmarkProfile> &suite,
    const std::string &out_dir, const AdaptiveOptions &opts);

/**
 * The ranked-set pre-pass by itself: per-benchmark IPC under each
 * of @p policies from homogeneous K-copy BADCO runs (row-major
 * policy x benchmark), the cheap table ApproxRanker composes.
 * Exposed for benches and tests.
 */
std::vector<std::vector<double>> approxPerBenchmarkIpcs(
    const WorkloadPopulation &pop,
    const std::vector<PolicyKind> &policies,
    std::uint64_t target_uops, BadcoModelStore &store,
    const std::vector<BenchmarkProfile> &suite, std::uint64_t seed,
    std::size_t jobs = 1);

} // namespace wsel

#endif // WSEL_SIM_ADAPTIVE_HH
