#include "sim/population.hh"

#include <chrono>
#include <filesystem>
#include <optional>
#include <sstream>
#include <utility>

#include "exec/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/batch.hh"
#include "sim/campaign.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "trace/trace_store.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

/**
 * Per-shard statistics partial: one accumulator triple per pair,
 * filled while the shard's payload is in cache and merged into the
 * campaign totals in shard order afterwards, so the merged result
 * is independent of which thread ran which shard.
 */
struct ShardPartial
{
    std::vector<PopulationPairSummary> pairs;
    std::uint64_t cellsSimulated = 0;
    std::uint64_t cellsResumed = 0;
    bool written = false;
    bool resumed = false;
    double simWall = 0.0;
};

std::vector<PopulationPairSummary>
makeAccumulators(const std::vector<PopulationPairSpec> &pairs,
                 const PopulationOptions &opts)
{
    std::vector<PopulationPairSummary> acc;
    acc.reserve(pairs.size());
    for (const PopulationPairSpec &s : pairs)
        acc.emplace_back(s, opts.histLo, opts.histHi, opts.histBins,
                         opts.sketchCapacity);
    return acc;
}

/**
 * Stream one shard's payload through the pair accumulators.  The
 * cursor walk re-derives each row's benchmark multiset so the
 * reference IPCs for speedup metrics come from the row itself, not
 * from any stored per-row state.
 */
void
accumulateShard(const persist::V3Manifest &m,
                const WorkloadPopulation &pop, std::uint64_t shard,
                std::span<const double> payload,
                const std::vector<double> &ref_ipc,
                ShardPartial &part)
{
    const std::size_t np = m.policies.size();
    const std::size_t k = m.cores;
    const std::uint64_t rows = m.rowsInShard(shard);
    std::vector<double> refs(k, 1.0);
    std::vector<double> t(np, 0.0);
    WorkloadCursor cur(pop, m.shardFirstRank(shard));
    for (std::uint64_t r = 0; r < rows; ++r, cur.next()) {
        const std::span<const std::uint32_t> benches =
            cur.benchmarks();
        for (std::size_t c = 0; c < k; ++c)
            refs[c] = ref_ipc[benches[c]];
        const double *row = payload.data() + r * np * k;
        for (PopulationPairSummary &a : part.pairs) {
            const std::size_t px = a.spec.x;
            const std::size_t py = a.spec.y;
            const double tx = perWorkloadThroughput(
                a.spec.metric, {row + px * k, k}, refs);
            const double ty = perWorkloadThroughput(
                a.spec.metric, {row + py * k, k}, refs);
            const double d =
                perWorkloadDifference(a.spec.metric, tx, ty);
            a.d.add(d);
            a.hist.add(d);
            a.sketch.add(cur.rank(), d);
        }
    }
}

} // namespace

void
simulatePopulationShard(const persist::V3Manifest &m,
                        const WorkloadPopulation &pop,
                        const std::vector<UncoreConfig> &ucfgs,
                        const std::vector<const BadcoModel *> &models,
                        std::uint64_t base_seed, std::uint64_t shard,
                        std::vector<double> &payload,
                        const std::function<void()> &tick)
{
    const std::size_t np = m.policies.size();
    if (ucfgs.size() != np)
        WSEL_FATAL("shard simulation got " << ucfgs.size()
                   << " uncore configs for " << np << " policies");
    const std::uint32_t k = m.cores;
    const std::uint64_t rows = m.rowsInShard(shard);
    payload.assign(static_cast<std::size_t>(rows) * np * k, 0.0);
    WorkloadCursor cur(pop, m.shardFirstRank(shard));
    for (std::uint64_t r = 0; r < rows; ++r, cur.next()) {
        if (tick)
            tick();
        const std::uint64_t rank = cur.rank();
        double *row = payload.data() + r * np * k;
        for (std::size_t p = 0; p < np; ++p) {
            persist::faultPoint("population.cell");
            const BadcoMulticoreSim sim(
                ucfgs[p], k, m.targetUops,
                campaignCellSeed(m.fingerprint, base_seed, p,
                                 rank));
            const SimResult res = sim.run(cur.benchmarks(), models);
            for (std::uint32_t c = 0; c < k; ++c)
                row[p * k + c] = res.ipc[c];
        }
    }
}

void
simulatePopulationShardBatched(
    const persist::V3Manifest &m, const WorkloadPopulation &pop,
    const std::vector<UncoreConfig> &ucfgs,
    const std::vector<const BadcoModel *> &models,
    std::uint64_t base_seed, std::uint64_t shard,
    std::uint32_t batch_cells, std::uint32_t batch_wave,
    std::vector<double> &payload,
    const std::function<void()> &tick)
{
    const std::size_t np = m.policies.size();
    if (ucfgs.size() != np)
        WSEL_FATAL("shard simulation got " << ucfgs.size()
                   << " uncore configs for " << np << " policies");
    const std::uint32_t k = m.cores;
    const std::uint64_t rows = m.rowsInShard(shard);
    payload.assign(static_cast<std::size_t>(rows) * np * k, 0.0);
    BadcoBatchRunner runner({ucfgs.data(), ucfgs.size()}, k,
                            m.targetUops, models,
                            resolveBatchCells(batch_cells),
                            resolveBatchWave(batch_wave));
    WorkloadCursor cur(pop, m.shardFirstRank(shard));
    for (std::uint64_t r = 0; r < rows; ++r, cur.next()) {
        if (tick)
            tick();
        const std::uint64_t rank = cur.rank();
        double *row = payload.data() + r * np * k;
        for (std::size_t p = 0; p < np; ++p) {
            persist::faultPoint("population.cell");
            runner.add(campaignCellSeed(m.fingerprint, base_seed,
                                        p, rank),
                       static_cast<std::uint32_t>(p),
                       cur.benchmarks(), row + p * k);
        }
    }
    runner.run();
}

void
simulateDetailedPopulationShard(
    const persist::V3Manifest &m, const WorkloadPopulation &pop,
    const CoreConfig &core_cfg,
    const std::vector<UncoreConfig> &ucfgs,
    const std::vector<BenchmarkProfile> &suite,
    std::uint64_t base_seed, std::uint64_t shard,
    std::vector<double> &payload,
    const std::function<void()> &tick)
{
    const std::size_t np = m.policies.size();
    if (ucfgs.size() != np)
        WSEL_FATAL("shard simulation got " << ucfgs.size()
                   << " uncore configs for " << np << " policies");
    const std::uint32_t k = m.cores;
    const std::uint64_t rows = m.rowsInShard(shard);
    payload.assign(static_cast<std::size_t>(rows) * np * k, 0.0);
    WorkloadCursor cur(pop, m.shardFirstRank(shard));
    for (std::uint64_t r = 0; r < rows; ++r, cur.next()) {
        if (tick)
            tick();
        const std::uint64_t rank = cur.rank();
        const Workload w{std::vector<std::uint32_t>(
            cur.benchmarks().begin(), cur.benchmarks().end())};
        // Pin the row's trace chunks once: all np x k cursors of
        // this row read the same <= k benchmarks, so one pin per
        // row keeps a tight WSEL_TRACE_MEM budget from thrashing a
        // chunk out between cells only to rebuild it for the next
        // one. Dropped (and the budget re-converged) per row.
        BatchPin pin;
        for (std::uint32_t bench : w.benchmarks()) {
            if (bench < suite.size())
                pin.pin(TraceStore::global(), suite[bench],
                        m.targetUops);
        }
        double *row = payload.data() + r * np * k;
        for (std::size_t p = 0; p < np; ++p) {
            persist::faultPoint("fidelity.escalate");
            const DetailedMulticoreSim sim(
                core_cfg, ucfgs[p], k, m.targetUops,
                campaignCellSeed(m.fingerprint, base_seed, p,
                                 rank));
            const SimResult res = sim.run(w, suite);
            for (std::uint32_t c = 0; c < k; ++c)
                row[p * k + c] = res.ipc[c];
        }
    }
}

PopulationResult
runBadcoPopulationCampaign(
    const WorkloadPopulation &pop,
    const std::vector<PolicyKind> &policies,
    std::uint64_t target_uops, BadcoModelStore &store,
    const std::vector<BenchmarkProfile> &suite,
    const std::vector<PopulationPairSpec> &pairs,
    const std::string &out_dir, const PopulationOptions &opts)
{
    if (policies.empty())
        WSEL_FATAL("population campaign needs policies");
    if (pop.numBenchmarks() != suite.size())
        WSEL_FATAL("population is over " << pop.numBenchmarks()
                   << " benchmarks but the suite has "
                   << suite.size());
    const std::uint64_t last =
        opts.lastRank == 0 ? pop.size() : opts.lastRank;
    if (opts.firstRank >= last || last > pop.size())
        WSEL_FATAL("population rank range [" << opts.firstRank
                   << ", " << last << ") invalid for size "
                   << pop.size());
    for (const PopulationPairSpec &s : pairs) {
        if (s.x >= policies.size() || s.y >= policies.size())
            WSEL_FATAL("pair " << s.label
                       << " references a policy index outside the "
                          "campaign's " << policies.size()
                       << " policies");
    }

    const auto t0 = std::chrono::steady_clock::now();
    obs::Span span("population.run");
    const std::size_t jobs = exec::resolveJobs(opts.jobs);
    const std::size_t np = policies.size();
    const std::uint32_t k = pop.cores();

    persist::V3Manifest m;
    m.fingerprint = campaignFingerprint("badco", k, target_uops,
                                        policies, suite);
    m.simulator = "badco";
    m.cores = k;
    m.targetUops = target_uops;
    for (PolicyKind p : policies)
        m.policies.push_back(toString(p));
    for (const BenchmarkProfile &p : suite)
        m.benchmarks.push_back(p.name);
    m.popBenchmarks = pop.numBenchmarks();
    m.popCores = k;
    m.firstRank = opts.firstRank;
    m.lastRank = last;
    m.shardRows = std::max<std::uint64_t>(
        1, opts.shardCells / std::max<std::size_t>(1, np));

    const std::vector<const BadcoModel *> models =
        store.getSuite(suite, jobs);
    {
        UncoreConfig ref = UncoreConfig::forCores(k, PolicyKind::LRU);
        BadcoMulticoreSim ref_sim(ref, 1, target_uops, opts.seed);
        m.refIpc = ref_sim.referenceIpcs(models);
    }

    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec)
        WSEL_FATAL("cannot create campaign directory " << out_dir
                   << ": " << ec.message());
    if (!opts.resume) {
        // A fresh run must not inherit shards from an older (maybe
        // differently-shaped) campaign in the same directory.
        const std::uint64_t shards = m.shardCount();
        for (std::uint64_t s = 0; s < shards; ++s)
            fs::remove(persist::v3ShardPath(out_dir, s), ec);
        fs::remove(persist::v3ManifestPath(out_dir), ec);
    }

    std::vector<UncoreConfig> ucfgs;
    ucfgs.reserve(np);
    for (PolicyKind p : policies)
        ucfgs.push_back(UncoreConfig::forCores(k, p));

    const std::uint64_t shards = m.shardCount();
    std::vector<ShardPartial> parts(shards);
    const std::uint32_t batch_cells =
        resolveBatchCells(opts.batchCells);
    const std::uint32_t batch_wave =
        resolveBatchWave(opts.batchWave);

    auto run_shard = [&](std::size_t s) {
        ShardPartial &part = parts[s];
        part.pairs = makeAccumulators(pairs, opts);
        const std::uint64_t rows = m.rowsInShard(s);
        const std::uint64_t cells = rows * np;
        const std::string shard_path =
            persist::v3ShardPath(out_dir, s);

        if (opts.resume) {
            try {
                const std::vector<double> payload =
                    persist::readV3Shard(out_dir, m, s);
                accumulateShard(m, pop, s, payload, m.refIpc, part);
                part.cellsResumed = cells;
                part.resumed = true;
                return;
            } catch (const persist::CacheInvalid &e) {
                if (fs::exists(shard_path)) {
                    const std::string moved =
                        persist::quarantineFile(shard_path);
                    warn("corrupt campaign shard " + shard_path +
                         " (" + e.what() + ")" +
                         (moved.empty()
                              ? ""
                              : "; quarantined to " + moved) +
                         "; re-simulating");
                }
            }
        }

        obs::Span sspan("population.shard",
                        "shard=" + std::to_string(s));
        const auto s0 = std::chrono::steady_clock::now();
        std::vector<double> payload;
        simulatePopulationShardBatched(m, pop, ucfgs, models,
                                       opts.seed, s, batch_cells,
                                       batch_wave, payload);
        {
            std::uint64_t write_ns = 0;
            {
                const auto w0 = std::chrono::steady_clock::now();
                persist::writeV3Shard(out_dir, m, s,
                                      {payload.data(),
                                       payload.size()});
                write_ns = static_cast<std::uint64_t>(
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - w0)
                        .count());
            }
            if (obs::metricsEnabled()) {
                static obs::Counter &cellsC =
                    obs::counter("population.cells");
                static obs::Counter &shardsC =
                    obs::counter("population.shards_written");
                static obs::Counter &bytesC =
                    obs::counter("population.bytes");
                static obs::LatencyHistogram &writeNs =
                    obs::histogram("population.shard_write_ns");
                cellsC.inc(cells);
                shardsC.inc();
                bytesC.inc(payload.size() * sizeof(double));
                writeNs.recordNs(write_ns);
            }
        }
        accumulateShard(m, pop, s, {payload.data(), payload.size()},
                        m.refIpc, part);
        part.cellsSimulated = cells;
        part.written = true;
        part.simWall = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - s0)
                           .count();
        if (opts.verbose) {
            std::ostringstream os;
            os << "  [population] shard " << (s + 1) << "/"
               << shards << " (" << cells << " cells)";
            logLine(os.str());
        }
    };

    if (jobs <= 1 || shards <= 1) {
        for (std::uint64_t s = 0; s < shards; ++s)
            run_shard(s);
    } else {
        exec::ThreadPool pool(std::min<std::size_t>(jobs, shards));
        exec::parallel_for(pool, std::size_t{0}, shards, run_shard);
    }

    // Deterministic merge in shard (= rank) order; the Welford,
    // histogram and sketch merges are all order-insensitive in
    // value but merging in a fixed order keeps the floating-point
    // result reproducible across job counts.
    PopulationResult result;
    result.dir = out_dir;
    result.pairs = makeAccumulators(pairs, opts);
    for (const ShardPartial &part : parts) {
        for (std::size_t i = 0; i < result.pairs.size(); ++i) {
            result.pairs[i].d.merge(part.pairs[i].d);
            result.pairs[i].hist.merge(part.pairs[i].hist);
            result.pairs[i].sketch.merge(part.pairs[i].sketch);
        }
        result.cellsSimulated += part.cellsSimulated;
        result.cellsResumed += part.cellsResumed;
        result.shardsWritten += part.written ? 1 : 0;
        result.shardsResumed += part.resumed ? 1 : 0;
        m.simSeconds += part.simWall;
    }
    // Instructions describe the whole artifact (resumed shards
    // included); simSeconds is this run's simulation wall only.
    m.instructions = m.rows() * np * k * target_uops;

    // The manifest is the commit point: it only exists once every
    // shard it describes does.
    persist::writeV3Manifest(out_dir, m);
    result.manifest = std::move(m);
    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    if (obs::metricsEnabled() && result.wallSeconds > 0.0) {
        obs::gauge("population.cells_per_sec")
            .set(static_cast<double>(result.cellsSimulated) /
                 result.wallSeconds);
    }
    return result;
}

} // namespace wsel
