/**
 * @file
 * Error-bounded mixed-fidelity campaigns (docs/FIDELITY.md).
 *
 * runHybridCampaign answers one X-vs-Y question in four phases:
 *
 *   1. BADCO sweep — the streamed campaign_v3 population engine
 *      (sim/population.hh) over the two policies.
 *   2. Escalation — an EscalationOracle composes the calibrated
 *      ErrorProfile through the throughput metric into per-row
 *      d(w) intervals; rows whose interval straddles the decision
 *      threshold are flagged, capped by a budget knob, and the set
 *      is committed to a fidelity-bitmap sidecar BEFORE any
 *      detailed cell runs (so a resumed run replays the same set
 *      even after the profile drifted).
 *   3. Detailed re-simulation — flagged rows re-run on the
 *      detailed simulator under both policies, sharing the trace
 *      store, the exec pool and campaignCellSeed with
 *      runDetailedCampaign, batched into resumable checksummed
 *      files.  Kill/resume is bitwise identical to an
 *      uninterrupted run at any --jobs (the `fidelity.escalate`
 *      kill point injects faults per detailed cell).
 *   4. Splice + report — detailed d(w) values replace BADCO's for
 *      escalated rows and hybrid.bin (the commit point) records a
 *      confidence statement separating sampling error (eq. 5) from
 *      model error.  Afterwards the escalated cells' residuals
 *      update the profile online, guarded against double counting
 *      across resumes.
 */

#ifndef WSEL_SIM_HYBRID_HH
#define WSEL_SIM_HYBRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core_config.hh"
#include "fidelity/error_profile.hh"
#include "fidelity/persist_fidelity.hh"
#include "sim/model_store.hh"
#include "sim/population.hh"
#include "stats/persist_v3.hh"

namespace wsel
{

struct HybridOptions
{
    std::uint64_t seed = 1;
    std::size_t jobs = 1;          ///< see PopulationOptions::jobs
    std::size_t shardCells = 64 * 1024;
    std::uint64_t firstRank = 0;
    std::uint64_t lastRank = 0;    ///< 0 = whole population
    bool resume = true;
    bool verbose = false;

    double quantile = 0.95;        ///< error-bound quantile
    double budgetFraction = 0.25;  ///< max escalated row fraction
    double threshold = 0.0;        ///< decision boundary on d(w)
    std::uint64_t batchRows = 64;  ///< detailed rows per batch file

    CoreConfig coreCfg{};          ///< detailed-core parameters

    /** BADCO-phase batched-engine cells per batch (sim/batch.hh):
     *  0 resolves WSEL_BATCH_CELLS (default 32), 1 = serial. */
    std::uint32_t batchCells = 0;

    /** BADCO-phase wavefront width (sim/batch.hh): 0 resolves
     *  WSEL_BATCH_WAVE (default 1 = cell-major). */
    std::uint32_t batchWave = 0;
};

struct HybridResult
{
    std::string dir;
    persist::V3Manifest manifest;          ///< BADCO sweep
    fidelity::EscalationRecord escalation; ///< the escalation set
    fidelity::HybridReportRecord report;
    PopulationResult badco;                ///< phase-1 result
    std::uint64_t detailedCellsSimulated = 0;
    std::uint64_t detailedCellsResumed = 0;
    bool profileUpdated = false; ///< residuals applied this run
};

/**
 * Run a mixed-fidelity X-vs-Y campaign into @p out_dir.
 *
 * @param profile Calibrated error model for @p suite; updated in
 *        place with the escalated cells' residuals (persist it via
 *        fidelity::writeErrorProfile to keep the learning).  An
 *        empty profile escalates everything up to the budget.
 */
HybridResult runHybridCampaign(
    const WorkloadPopulation &pop, PolicyKind x, PolicyKind y,
    ThroughputMetric metric, std::uint64_t target_uops,
    BadcoModelStore &store,
    const std::vector<BenchmarkProfile> &suite,
    fidelity::ErrorProfile &profile, const std::string &out_dir,
    const HybridOptions &opts = {});

} // namespace wsel

#endif // WSEL_SIM_HYBRID_HH
