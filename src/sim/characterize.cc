#include "sim/characterize.hh"

#include <algorithm>

#include "cpu/detailed_core.hh"
#include "exec/scheduler.hh"
#include "mem/uncore.hh"
#include "stats/logging.hh"
#include "trace/trace_store.hh"

namespace wsel
{

std::vector<double>
BenchmarkFeatures::toVector() const
{
    return {loadFrac,
            storeFrac,
            branchFrac,
            ipc,
            dl1Mpki,
            llcMpki,
            branchMispredictRate,
            dtlbMpki};
}

BenchmarkFeatures
characterizeBenchmark(const BenchmarkProfile &profile,
                      const CoreConfig &core_cfg,
                      const UncoreConfig &uncore_cfg,
                      std::uint64_t target_uops, std::uint64_t seed)
{
    if (target_uops == 0)
        WSEL_FATAL("characterization needs a nonzero trace length");

    // Instruction mix from the trace itself (the simulator sees the
    // same deterministic stream).
    TraceCursor mix_cur = TraceStore::global().cursor(profile);
    std::uint64_t loads = 0, stores = 0, branches = 0;
    for (std::uint64_t i = 0; i < target_uops; ++i) {
        const MicroOp u = mix_cur.next();
        loads += u.kind == OpKind::Load;
        stores += u.kind == OpKind::Store;
        branches += u.kind == OpKind::Branch;
    }

    Uncore uncore(uncore_cfg, 1, seed);
    DetailedCore core(core_cfg, TraceStore::global().cursor(profile),
                      uncore, 0, target_uops, seed);
    std::uint64_t now = 0;
    while (!core.reachedTarget()) {
        core.tick(now);
        const std::uint64_t next = core.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }

    const double n = static_cast<double>(target_uops);
    const double kilo = n / 1000.0;
    const CoreStats &cs = core.stats();

    BenchmarkFeatures f;
    f.name = profile.name;
    f.loadFrac = static_cast<double>(loads) / n;
    f.storeFrac = static_cast<double>(stores) / n;
    f.branchFrac = static_cast<double>(branches) / n;
    f.ipc = core.ipc();
    f.dl1Mpki = static_cast<double>(cs.dl1Misses) / kilo;
    f.llcMpki =
        static_cast<double>(uncore.coreStats(0).demandMisses) /
        kilo;
    f.branchMispredictRate =
        cs.branches ? static_cast<double>(cs.branchMispredicts) /
                          static_cast<double>(cs.branches)
                    : 0.0;
    f.dtlbMpki = static_cast<double>(cs.dtlbMisses) / kilo;
    return f;
}

std::vector<BenchmarkFeatures>
characterizeSuite(const std::vector<BenchmarkProfile> &suite,
                  const CoreConfig &core_cfg,
                  const UncoreConfig &uncore_cfg,
                  std::uint64_t target_uops, std::uint64_t seed,
                  std::size_t jobs)
{
    std::vector<BenchmarkFeatures> out(suite.size());
    const std::size_t resolved = exec::resolveJobs(jobs);
    if (resolved <= 1 || suite.size() <= 1) {
        for (std::size_t i = 0; i < suite.size(); ++i)
            out[i] = characterizeBenchmark(
                suite[i], core_cfg, uncore_cfg, target_uops, seed);
        return out;
    }
    exec::ThreadPool pool(resolved);
    exec::parallel_for(
        pool, std::size_t{0}, suite.size(), [&](std::size_t i) {
            out[i] = characterizeBenchmark(
                suite[i], core_cfg, uncore_cfg, target_uops, seed);
        });
    return out;
}

std::vector<std::vector<double>>
featureMatrix(const std::vector<BenchmarkFeatures> &features)
{
    std::vector<std::vector<double>> out;
    out.reserve(features.size());
    for (const BenchmarkFeatures &f : features)
        out.push_back(f.toVector());
    return out;
}

} // namespace wsel
