#include "sim/model_store.hh"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel
{

BadcoModelStore::BadcoModelStore(const CoreConfig &core_cfg,
                                 std::uint64_t target_uops,
                                 std::uint32_t llc_hit_latency,
                                 std::string cache_dir)
    : coreCfg_(core_cfg), targetUops_(target_uops),
      llcHitLatency_(llc_hit_latency), cacheDir_(std::move(cache_dir))
{
    if (!cacheDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        if (ec) {
            warn("cannot create cache dir '" + cacheDir_ +
                 "'; continuing without persistence");
            cacheDir_.clear();
        }
    }
}

std::string
BadcoModelStore::cachePath(const BenchmarkProfile &profile) const
{
    std::ostringstream os;
    os << cacheDir_ << "/badco_v2_" << profile.name << "_"
       << targetUops_ << "u_" << llcHitLatency_ << "c_" << std::hex
       << profile.parameterHash() << ".bin";
    return os.str();
}

const BadcoModel &
BadcoModelStore::get(const BenchmarkProfile &profile)
{
    auto it = models_.find(profile.name);
    if (it != models_.end())
        return it->second;

    if (!cacheDir_.empty()) {
        const std::string path = cachePath(profile);
        if (std::filesystem::exists(path)) {
            try {
                BadcoModel m = BadcoModel::loadFile(path);
                if (m.traceUops == targetUops_) {
                    return models_
                        .emplace(profile.name, std::move(m))
                        .first->second;
                }
                warn("stale BADCO model cache at " + path +
                     "; rebuilding");
            } catch (const FatalError &e) {
                // A damaged model cache must never abort a run:
                // quarantine it for inspection and rebuild.
                const std::string moved =
                    persist::quarantineFile(path);
                warn("corrupt BADCO model cache at " + path + " (" +
                     e.what() + ")" +
                     (moved.empty() ? ""
                                    : "; quarantined to " + moved) +
                     "; rebuilding");
            }
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    BadcoModel m = buildBadcoModel(profile, coreCfg_, targetUops_,
                                   llcHitLatency_);
    buildSeconds_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    ++built_;

    if (!cacheDir_.empty())
        m.saveFile(cachePath(profile));
    return models_.emplace(profile.name, std::move(m)).first->second;
}

std::vector<const BadcoModel *>
BadcoModelStore::getSuite(const std::vector<BenchmarkProfile> &suite)
{
    std::vector<const BadcoModel *> out;
    out.reserve(suite.size());
    for (const BenchmarkProfile &p : suite)
        out.push_back(&get(p));
    return out;
}

std::string
defaultCacheDir()
{
    // Results persist under ./.wsel_cache by default so repeated
    // bench/tool invocations share models and campaigns; set
    // WSEL_CACHE_DIR to move it, or to "" to disable persistence.
    const char *env = std::getenv("WSEL_CACHE_DIR");
    const std::string dir =
        env ? std::string(env) : std::string(".wsel_cache");
    if (dir.empty())
        return dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        WSEL_FATAL("cannot create cache directory '"
                   << dir << "': " << ec.message()
                   << " (set WSEL_CACHE_DIR to a writable location,"
                      " or to \"\" to disable persistence)");
    return dir;
}

} // namespace wsel
