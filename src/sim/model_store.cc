#include "sim/model_store.hh"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>

#include "exec/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel
{

BadcoModelStore::BadcoModelStore(const CoreConfig &core_cfg,
                                 std::uint64_t target_uops,
                                 std::uint32_t llc_hit_latency,
                                 std::string cache_dir)
    : coreCfg_(core_cfg), targetUops_(target_uops),
      llcHitLatency_(llc_hit_latency), cacheDir_(std::move(cache_dir))
{
    if (!cacheDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir_, ec);
        if (ec) {
            warn("cannot create cache dir '" + cacheDir_ +
                 "'; continuing without persistence");
            cacheDir_.clear();
        }
    }
}

std::string
BadcoModelStore::cachePath(const BenchmarkProfile &profile) const
{
    std::ostringstream os;
    os << cacheDir_ << "/badco_v2_" << profile.name << "_"
       << targetUops_ << "u_" << llcHitLatency_ << "c_" << std::hex
       << profile.parameterHash() << ".bin";
    return os.str();
}

BadcoModel
BadcoModelStore::loadOrBuild(const BenchmarkProfile &profile,
                             double &build_seconds,
                             bool &built) const
{
    build_seconds = 0.0;
    built = false;

    if (!cacheDir_.empty()) {
        const std::string path = cachePath(profile);
        if (std::filesystem::exists(path)) {
            try {
                BadcoModel m = BadcoModel::loadFile(path);
                if (m.traceUops == targetUops_) {
                    obs::counter("persist.cache_hit").inc();
                    return m;
                }
                warn("stale BADCO model cache at " + path +
                     "; rebuilding");
            } catch (const FatalError &e) {
                // A damaged model cache must never abort a run:
                // quarantine it for inspection and rebuild.
                const std::string moved =
                    persist::quarantineFile(path);
                warn("corrupt BADCO model cache at " + path + " (" +
                     e.what() + ")" +
                     (moved.empty() ? ""
                                    : "; quarantined to " + moved) +
                     "; rebuilding");
            }
        }
    }

    obs::counter("persist.cache_miss").inc();
    const auto t0 = std::chrono::steady_clock::now();
    BadcoModel m;
    {
        obs::Span span("badco.build",
                       obs::tracingEnabled()
                           ? "benchmark=" + profile.name
                           : std::string());
        m = buildBadcoModel(profile, coreCfg_, targetUops_,
                            llcHitLatency_);
    }
    const auto t1 = std::chrono::steady_clock::now();
    build_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    built = true;
    obs::counter("badco.models_built").inc();
    obs::histogram("badco.build_ns").record(t1 - t0);

    if (!cacheDir_.empty())
        m.saveFile(cachePath(profile));
    return m;
}

const BadcoModel &
BadcoModelStore::get(const BenchmarkProfile &profile)
{
    auto it = models_.find(profile.name);
    if (it != models_.end())
        return it->second;
    double secs = 0.0;
    bool built = false;
    BadcoModel m = loadOrBuild(profile, secs, built);
    buildSeconds_ += secs;
    built_ += built ? 1 : 0;
    return models_.emplace(profile.name, std::move(m)).first->second;
}

std::vector<const BadcoModel *>
BadcoModelStore::getSuite(const std::vector<BenchmarkProfile> &suite,
                          std::size_t jobs)
{
    const std::size_t resolved = exec::resolveJobs(jobs);
    if (resolved > 1) {
        // Phase 1: build or load every model not yet in memory,
        // concurrently.  Duplicate names are built once; the map
        // and the cost counters are only updated in the serial
        // phase below, in suite order.
        std::vector<const BenchmarkProfile *> missing;
        std::set<std::string> queued;
        for (const BenchmarkProfile &p : suite) {
            if (models_.count(p.name) || !queued.insert(p.name).second)
                continue;
            missing.push_back(&p);
        }
        if (missing.size() > 1) {
            std::vector<std::optional<BadcoModel>> slot(
                missing.size());
            std::vector<double> secs(missing.size(), 0.0);
            std::deque<bool> built(missing.size(), false);
            exec::ThreadPool pool(resolved);
            exec::parallel_for(
                pool, std::size_t{0}, missing.size(),
                [&](std::size_t i) {
                    bool b = false;
                    slot[i] = loadOrBuild(*missing[i], secs[i], b);
                    built[i] = b;
                });
            for (std::size_t i = 0; i < missing.size(); ++i) {
                models_.emplace(missing[i]->name,
                                std::move(*slot[i]));
                buildSeconds_ += secs[i];
                built_ += built[i] ? 1 : 0;
            }
        }
    }
    std::vector<const BadcoModel *> out;
    out.reserve(suite.size());
    for (const BenchmarkProfile &p : suite)
        out.push_back(&get(p));
    return out;
}

std::string
defaultCacheDir()
{
    // Results persist under ./.wsel_cache by default so repeated
    // bench/tool invocations share models and campaigns; set
    // WSEL_CACHE_DIR to move it, or to "" to disable persistence.
    const char *env = std::getenv("WSEL_CACHE_DIR");
    const std::string dir =
        env ? std::string(env) : std::string(".wsel_cache");
    if (dir.empty())
        return dir;
    // EEXIST-race-tolerant: several processes (workers sharing a
    // model cache) may create the tree at once and all must
    // succeed.
    persist::ensureDirTree(dir);
    return dir;
}

} // namespace wsel
