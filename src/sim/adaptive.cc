#include "sim/adaptive.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <utility>

#include "exec/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/batch.hh"
#include "sim/campaign.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

namespace fs = std::filesystem;

namespace wsel
{

const char *
toString(AdaptiveMethod m)
{
    switch (m) {
    case AdaptiveMethod::Random:
        return "random";
    case AdaptiveMethod::RankedSet:
        return "ranked-set";
    }
    return "unknown";
}

AdaptiveMethod
parseAdaptiveMethod(const std::string &name)
{
    if (name == "random")
        return AdaptiveMethod::Random;
    if (name == "ranked-set" || name == "ranked_set")
        return AdaptiveMethod::RankedSet;
    WSEL_FATAL("unknown adaptive method '" << name
               << "' (want random or ranked-set)");
}

std::vector<std::vector<double>>
approxPerBenchmarkIpcs(const WorkloadPopulation &pop,
                       const std::vector<PolicyKind> &policies,
                       std::uint64_t target_uops,
                       BadcoModelStore &store,
                       const std::vector<BenchmarkProfile> &suite,
                       std::uint64_t seed, std::size_t jobs)
{
    if (pop.numBenchmarks() != suite.size())
        WSEL_FATAL("population is over " << pop.numBenchmarks()
                   << " benchmarks but the suite has "
                   << suite.size());
    obs::Span span("adaptive.prepass");
    const std::uint32_t k = pop.cores();
    const std::size_t nb = suite.size();
    const std::size_t np = policies.size();
    // A fingerprint of its own keeps pre-pass cell seeds disjoint
    // from the detailed campaign's rank-keyed seeds.
    const std::uint64_t fp = campaignFingerprint(
        "badco-approx", k, target_uops, policies, suite);
    const std::vector<const BadcoModel *> models =
        store.getSuite(suite, jobs);

    std::vector<UncoreConfig> ucfgs;
    ucfgs.reserve(np);
    for (PolicyKind p : policies)
        ucfgs.push_back(UncoreConfig::forCores(k, p));

    std::vector<std::vector<double>> ipc(
        np, std::vector<double>(nb, 0.0));
    auto run_cell = [&](std::size_t i) {
        const std::size_t p = i / nb;
        const std::size_t b = i % nb;
        const std::vector<std::uint32_t> benches(
            k, static_cast<std::uint32_t>(b));
        const BadcoMulticoreSim sim(
            ucfgs[p], k, target_uops,
            campaignCellSeed(fp, seed, p, b));
        const SimResult res = sim.run(benches, models);
        double sum = 0.0;
        for (double v : res.ipc)
            sum += v;
        ipc[p][b] = sum / static_cast<double>(k);
    };

    const std::size_t cells = np * nb;
    const std::size_t workers = std::min<std::size_t>(
        exec::resolveJobs(jobs), cells);
    if (workers > 1) {
        exec::ThreadPool pool(workers);
        exec::parallel_for(pool, std::size_t{0}, cells, run_cell);
    } else {
        for (std::size_t i = 0; i < cells; ++i)
            run_cell(i);
    }
    return ipc;
}

namespace
{

/** Delete batch files + decision so a fresh run owns the dir. */
void
clearAdaptiveDir(const std::string &dir)
{
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir, ec)) {
        const std::string name = e.path().filename().string();
        if (name.starts_with("batch-") && name.ends_with(".bin"))
            fs::remove(e.path(), ec);
    }
    fs::remove(persist::adaptiveDecisionPath(dir), ec);
}

/** Resolve the ranked-set draw at @p position (serial; the cheap
 *  ApproxRanker reuses scratch and is not thread-safe). */
std::uint64_t
rankedSetRank(const ApproxRanker &ranker,
              const WorkloadPopulation &pop, std::uint64_t fp,
              std::uint64_t seed, std::uint64_t position,
              std::size_t set_size,
              std::vector<std::uint32_t> &scratch,
              std::vector<std::pair<double, std::uint64_t>> &set)
{
    set.clear();
    for (std::size_t j = 0; j < set_size; ++j) {
        const std::uint64_t cand = adaptiveCandidateRank(
            fp, seed, position, j, pop.size());
        pop.unrankInto(cand, scratch);
        set.emplace_back(ranker.score(scratch), cand);
    }
    // (score, rank) pairs order totally, so the pick is
    // deterministic even under tied cheap-model scores.
    std::sort(set.begin(), set.end());
    return set[position % set_size].second;
}

} // namespace

AdaptiveResult
runAdaptiveCampaign(const WorkloadPopulation &pop, PolicyKind x,
                    PolicyKind y, ThroughputMetric metric,
                    std::uint64_t target_uops,
                    BadcoModelStore &store,
                    const std::vector<BenchmarkProfile> &suite,
                    const std::string &out_dir,
                    const AdaptiveOptions &opts)
{
    if (pop.numBenchmarks() != suite.size())
        WSEL_FATAL("population is over " << pop.numBenchmarks()
                   << " benchmarks but the suite has "
                   << suite.size());
    if (opts.batchWorkloads == 0)
        WSEL_FATAL("adaptive campaign needs a non-zero batch size");
    if (opts.method == AdaptiveMethod::RankedSet && opts.setSize < 2)
        WSEL_FATAL("ranked-set size must be at least 2");

    const auto t0 = std::chrono::steady_clock::now();
    obs::Span span("adaptive.run");
    const std::size_t jobs = exec::resolveJobs(opts.jobs);
    const std::uint32_t k = pop.cores();
    const std::vector<PolicyKind> policies{x, y};
    const std::uint64_t fp = campaignFingerprint(
        "badco", k, target_uops, policies, suite);

    const std::vector<const BadcoModel *> models =
        store.getSuite(suite, jobs);
    std::vector<double> ref_ipc;
    {
        UncoreConfig ref = UncoreConfig::forCores(k, PolicyKind::LRU);
        BadcoMulticoreSim ref_sim(ref, 1, target_uops, opts.seed);
        ref_ipc = ref_sim.referenceIpcs(models);
    }

    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec)
        WSEL_FATAL("cannot create adaptive directory " << out_dir
                   << ": " << ec.message());
    if (!opts.resume)
        clearAdaptiveDir(out_dir);

    AdaptiveResult result;
    result.dir = out_dir;

    // The ranked-set pre-pass: 2B homogeneous cells feed the cheap
    // per-benchmark table the candidate ranking composes.
    std::optional<ApproxRanker> ranker;
    if (opts.method == AdaptiveMethod::RankedSet) {
        auto ipc = approxPerBenchmarkIpcs(pop, policies, target_uops,
                                          store, suite, opts.seed,
                                          jobs);
        result.prepassCells = ipc.size() * ipc[0].size();
        ranker.emplace(metric, std::move(ipc[0]), std::move(ipc[1]),
                       ref_ipc);
    }

    const std::vector<UncoreConfig> ucfgs{
        UncoreConfig::forCores(k, x), UncoreConfig::forCores(k, y)};

    SequentialController ctl(opts.stop, pop.size());
    result.budgetWorkloads = ctl.budgetWorkloads();

    std::vector<double> all_d; // position order, for subsampling
    std::vector<double> trajectory;
    std::vector<std::uint32_t> rs_scratch;
    std::vector<std::pair<double, std::uint64_t>> rs_set;
    std::uint64_t batch_index = 0;
    std::uint64_t position = 0;

    while (!ctl.decision().stop()) {
        const std::uint64_t remaining =
            ctl.budgetWorkloads() - ctl.observed().count();
        const std::uint64_t rows =
            std::min<std::uint64_t>(opts.batchWorkloads, remaining);

        persist::AdaptiveBatch batch;
        bool resumed = false;
        if (opts.resume) {
            const std::string path =
                persist::adaptiveBatchPath(out_dir, batch_index);
            try {
                batch = persist::readAdaptiveBatch(out_dir, fp,
                                                   batch_index);
                if (batch.firstPosition != position ||
                    batch.ranks.size() != rows)
                    throw persist::CacheInvalid(
                        "batch shape mismatch (batch size or "
                        "budget changed?)");
                resumed = true;
            } catch (const persist::CacheInvalid &e) {
                if (fs::exists(path)) {
                    const std::string moved =
                        persist::quarantineFile(path);
                    warn("corrupt adaptive batch " + path + " (" +
                         e.what() + ")" +
                         (moved.empty()
                              ? ""
                              : "; quarantined to " + moved) +
                         "; re-simulating");
                }
            }
        }

        if (!resumed) {
            obs::Span bspan("adaptive.batch",
                            "{\"index\":" +
                                std::to_string(batch_index) + "}");
            batch.fingerprint = fp;
            batch.index = batch_index;
            batch.firstPosition = position;
            // Resolve the schedule serially (cheap, and the
            // ranked-set scorer reuses scratch); simulate the
            // resolved ranks in parallel.
            batch.ranks.resize(rows);
            for (std::uint64_t r = 0; r < rows; ++r) {
                const std::uint64_t p = position + r;
                batch.ranks[r] =
                    ranker ? rankedSetRank(*ranker, pop, fp,
                                           opts.seed, p,
                                           opts.setSize, rs_scratch,
                                           rs_set)
                           : adaptiveScheduleRank(fp, opts.seed, p,
                                                  pop.size());
            }
            batch.d.assign(rows, 0.0);
            // Rows run through the batched engine in groups of
            // batch_cells/2 rows (2 cells per row); groups are the
            // parallel_for grain. Each cell is an independent
            // computation, so the grouping — like the old per-row
            // grain — cannot change any d value.
            const std::uint32_t batch_cells =
                resolveBatchCells(opts.batchCells);
            const std::uint64_t group_rows =
                std::max<std::uint64_t>(1, batch_cells / 2);
            const std::uint64_t groups =
                (rows + group_rows - 1) / group_rows;
            auto run_group = [&](std::size_t g) {
                const std::uint64_t r0 = g * group_rows;
                const std::uint64_t r1 = std::min<std::uint64_t>(
                    rows, r0 + group_rows);
                std::vector<double> ipc(
                    static_cast<std::size_t>(r1 - r0) * 2 * k, 0.0);
                BadcoBatchRunner runner(
                    {ucfgs.data(), ucfgs.size()}, k, target_uops,
                    models, batch_cells,
                    resolveBatchWave(opts.batchWave));
                std::vector<std::uint32_t> benches;
                for (std::uint64_t r = r0; r < r1; ++r) {
                    const std::uint64_t rank = batch.ranks[r];
                    pop.unrankInto(rank, benches);
                    for (std::size_t p = 0; p < 2; ++p) {
                        persist::faultPoint("adaptive.cell");
                        runner.add(
                            campaignCellSeed(fp, opts.seed, p,
                                             rank),
                            static_cast<std::uint32_t>(p),
                            {benches.data(), benches.size()},
                            ipc.data() +
                                ((r - r0) * 2 + p) * k);
                    }
                }
                runner.run();
                std::vector<double> refs(k, 1.0);
                for (std::uint64_t r = r0; r < r1; ++r) {
                    pop.unrankInto(batch.ranks[r], benches);
                    for (std::uint32_t c = 0; c < k; ++c)
                        refs[c] = ref_ipc[benches[c]];
                    double t[2] = {0.0, 0.0};
                    for (std::size_t p = 0; p < 2; ++p)
                        t[p] = perWorkloadThroughput(
                            metric,
                            {ipc.data() + ((r - r0) * 2 + p) * k,
                             k},
                            refs);
                    batch.d[r] = perWorkloadDifference(metric, t[0],
                                                       t[1]);
                }
            };
            const std::size_t workers = std::min<std::size_t>(
                jobs, static_cast<std::size_t>(groups));
            if (workers > 1) {
                exec::ThreadPool pool(workers);
                exec::parallel_for(pool, std::size_t{0},
                                   static_cast<std::size_t>(groups),
                                   run_group);
            } else {
                for (std::uint64_t g = 0; g < groups; ++g)
                    run_group(static_cast<std::size_t>(g));
            }
            persist::writeAdaptiveBatch(out_dir, batch);
        }

        // Merge in position order: the controller's verdict is a
        // pure function of the batch sequence, never of job count.
        RunningStats bs;
        for (double d : batch.d)
            bs.add(d);
        const SequentialDecision &dec = ctl.observeBatch(bs);
        trajectory.push_back(dec.confidence);
        all_d.insert(all_d.end(), batch.d.begin(), batch.d.end());

        if (resumed) {
            ++result.batchesResumed;
            result.cellsResumed += batch.d.size() * 2;
        } else {
            ++result.batchesRun;
            result.cellsSimulated += batch.d.size() * 2;
        }
        if (obs::metricsEnabled()) {
            static obs::Counter &batchesC =
                obs::counter("adaptive.batches");
            static obs::Counter &cellsC =
                obs::counter("adaptive.cells");
            static obs::Counter &resumedC =
                obs::counter("adaptive.cells_resumed");
            batchesC.inc();
            if (resumed)
                resumedC.inc(batch.d.size() * 2);
            else
                cellsC.inc(batch.d.size() * 2);
            obs::gauge("adaptive.confidence").set(dec.confidence);
        }
        if (opts.verbose) {
            logLine(std::string("[adaptive] batch ") +
                    std::to_string(batch_index) +
                    (resumed ? " (resumed)" : "") + ": n=" +
                    std::to_string(dec.workloads) + " conf=" +
                    std::to_string(dec.confidence) + " cv=" +
                    std::to_string(dec.cv));
        }
        position += rows;
        ++batch_index;

        if (!ctl.decision().stop() && opts.wallClockBudget > 0.0) {
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (elapsed >= opts.wallClockBudget) {
                ctl.observeWallClockExpired();
                warn("adaptive campaign stopped on wall clock "
                     "after " + std::to_string(elapsed) +
                     "s; the artifact records a non-replayable "
                     "stop");
            }
        }
    }

    result.verdict = ctl.decision();
    result.d = ctl.observed();

    if (opts.subsampleRedraws > 0 && all_d.size() >= 2) {
        // Deterministic redraw stream keyed by campaign identity.
        persist::Fnv1a h;
        h.update("wsel.adaptive.subsample");
        h.updateU64(fp);
        h.updateU64(opts.seed);
        Rng rng(h.digest());
        result.subsample = repeatedSubsample(
            all_d, std::max<std::size_t>(2, all_d.size() / 2),
            opts.subsampleRedraws, rng);
    }

    persist::AdaptiveDecisionRecord rec;
    rec.fingerprint = fp;
    rec.reason = static_cast<std::uint8_t>(result.verdict.reason);
    rec.yWins = result.verdict.yWins ? 1 : 0;
    rec.method = toString(opts.method);
    rec.batches = ctl.batches();
    rec.workloads = result.verdict.workloads;
    rec.confidence = result.verdict.confidence;
    rec.cv = result.verdict.cv;
    rec.target = opts.stop.targetConfidence;
    rec.trajectory = std::move(trajectory);
    // The commit point: a directory with adaptive.bin is a finished
    // campaign; without it, an interrupted one.
    persist::writeAdaptiveDecision(out_dir, rec);
    result.decision = std::move(rec);

    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    if (obs::metricsEnabled()) {
        static obs::Counter &savedC =
            obs::counter("adaptive.cells_saved");
        savedC.inc(result.cellsSaved());
    }
    return result;
}

} // namespace wsel
