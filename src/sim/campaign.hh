/**
 * @file
 * Simulation campaigns: run a workload list under several uncore
 * policies with one simulator, collect the full IPC matrix, and
 * persist it, so the expensive simulation step is decoupled from
 * the sampling analyses (the paper's workflow: simulate the large
 * sample once with BADCO, then study sampling methods on the
 * resulting numbers).
 */

#ifndef WSEL_SIM_CAMPAIGN_HH
#define WSEL_SIM_CAMPAIGN_HH

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "core/metrics/throughput.hh"
#include "core/workload/workload.hh"
#include "cpu/core_config.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"

namespace wsel
{

/** The full result of simulating workloads x policies. */
struct Campaign
{
    std::string simulator; ///< "badco" or "detailed"
    std::uint32_t cores = 0;
    std::uint64_t targetUops = 0;
    std::vector<PolicyKind> policies;
    std::vector<std::string> benchmarks; ///< suite names
    std::vector<double> refIpc; ///< single-thread IPC per benchmark
    std::vector<Workload> workloads;

    /** ipc[policy][workload][core]. */
    std::vector<std::vector<std::vector<double>>> ipc;

    /** Host seconds spent simulating. */
    double simSeconds = 0.0;

    /** Total µops simulated (for MIPS reporting). */
    std::uint64_t instructions = 0;

    /** Index of @p kind in policies; fatal when absent. */
    std::size_t policyIndex(PolicyKind kind) const;

    /**
     * Per-workload throughput t(w) (eq. 1) for one policy under one
     * metric, aligned with the workloads list.
     */
    std::vector<double> perWorkloadThroughputs(
        std::size_t policy_idx, ThroughputMetric m) const;

    /** Simulation speed in MIPS. */
    double mips() const;

    /** Persist as CSV. */
    void save(const std::string &path) const;

    /** Load a persisted campaign; fatal on malformed input. */
    static Campaign load(const std::string &path);
};

/** Options shared by the campaign runners. */
struct CampaignOptions
{
    std::uint64_t seed = 1;
    bool verbose = false;      ///< progress lines on stderr
    std::size_t progressEvery = 500;
};

/**
 * Run a BADCO campaign: simulate every workload under every policy
 * with the behavioural simulator.
 */
Campaign runBadcoCampaign(const std::vector<Workload> &workloads,
                          const std::vector<PolicyKind> &policies,
                          std::uint32_t cores,
                          std::uint64_t target_uops,
                          BadcoModelStore &store,
                          const std::vector<BenchmarkProfile> &suite,
                          const CampaignOptions &opts = {});

/**
 * Run a detailed campaign with the cycle-level simulator.
 */
Campaign runDetailedCampaign(
    const std::vector<Workload> &workloads,
    const std::vector<PolicyKind> &policies, std::uint32_t cores,
    std::uint64_t target_uops, const CoreConfig &core_cfg,
    const std::vector<BenchmarkProfile> &suite,
    const CampaignOptions &opts = {});

/**
 * Load the campaign cached under @p cache_key in the WSEL cache
 * directory if present; otherwise invoke @p produce and persist the
 * result. With no cache directory configured, always produces.
 */
template <typename ProduceFn>
Campaign
cachedCampaign(const std::string &cache_key, ProduceFn &&produce)
{
    const std::string dir = defaultCacheDir();
    if (dir.empty())
        return produce();
    const std::string path = dir + "/campaign_v1_" + cache_key +
                             ".csv";
    if (std::filesystem::exists(path))
        return Campaign::load(path);
    Campaign c = produce();
    c.save(path);
    return c;
}

} // namespace wsel

#endif // WSEL_SIM_CAMPAIGN_HH
