/**
 * @file
 * Simulation campaigns: run a workload list under several uncore
 * policies with one simulator, collect the full IPC matrix, and
 * persist it, so the expensive simulation step is decoupled from
 * the sampling analyses (the paper's workflow: simulate the large
 * sample once with BADCO, then study sampling methods on the
 * resulting numbers).
 *
 * Campaigns are durable, validated artifacts (docs/ROBUSTNESS.md):
 * the on-disk `campaign_v2` format carries a configuration
 * fingerprint and an integrity footer, files are replaced
 * atomically, long runs checkpoint each completed (policy,
 * workload) cell to a journal and resume after a crash, and a
 * corrupt or stale cache file is quarantined and regenerated
 * instead of aborting the run.  Population-scale runs persist to
 * the sharded binary `campaign_v3` directory format
 * (src/stats/persist_v3.hh); Campaign::load reads both.
 *
 * The policy x workload matrix is embarrassingly parallel: with
 * CampaignOptions::jobs > 1 the cells run on the exec/ work-stealing
 * pool, each seeded independently by campaignCellSeed, and the
 * resulting IPC matrix is bitwise identical to a serial run
 * (docs/PARALLELISM.md).
 */

#ifndef WSEL_SIM_CAMPAIGN_HH
#define WSEL_SIM_CAMPAIGN_HH

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cache/replacement.hh"
#include "core/metrics/throughput.hh"
#include "obs/metrics.hh"
#include "core/workload/workload.hh"
#include "cpu/core_config.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

namespace wsel
{

/** How strictly Campaign::load treats a damaged file. */
enum class LoadMode
{
    /**
     * User-supplied path: any problem (missing, truncated, bad
     * checksum, malformed field) is WSEL_FATAL.
     */
    Strict,

    /**
     * Cache-managed file: a damaged file is quarantined
     * (`*.corrupt`), a warning is emitted, and persist::CacheInvalid
     * is thrown so the caller regenerates the campaign.
     */
    Cached,
};

/**
 * The campaign IPC matrix: one contiguous policy-major
 * [P x N x K] buffer of doubles (policy, then workload, then
 * core), replacing the former vector<vector<vector<double>>> so a
 * 4.3M-workload population costs one allocation and cells are
 * cache-line friendly.  The old triple-indexing syntax keeps
 * working through lightweight read proxies:
 * `ipc[p][w][k]`, range-for over policies and cells, and
 * element-wise equality all behave as before.
 */
class IpcMatrix
{
  public:
    /** Read proxy for one (policy, workload) cell: K doubles. */
    class CellView
    {
      public:
        CellView() = default;
        CellView(const double *d, std::size_t k) : d_(d), k_(k) {}

        std::size_t size() const { return k_; }
        bool empty() const { return k_ == 0; }
        double operator[](std::size_t i) const { return d_[i]; }
        const double *begin() const { return d_; }
        const double *end() const { return d_ + k_; }
        const double *data() const { return d_; }

        operator std::span<const double>() const
        {
            return {d_, k_};
        }

        friend bool
        operator==(const CellView &a, const CellView &b)
        {
            return std::equal(a.begin(), a.end(), b.begin(),
                              b.end());
        }

        friend bool
        operator==(const CellView &a, const std::vector<double> &b)
        {
            return std::equal(a.begin(), a.end(), b.begin(),
                              b.end());
        }

      private:
        const double *d_ = nullptr;
        std::size_t k_ = 0;
    };

    /** Read proxy for one policy: N cells of K doubles. */
    class PolicyView
    {
      public:
        PolicyView(const double *base, std::size_t n, std::size_t k)
            : base_(base), n_(n), k_(k)
        {
        }

        std::size_t size() const { return n_; }

        CellView operator[](std::size_t w) const
        {
            return {base_ + w * k_, k_};
        }

        class iterator
        {
          public:
            using value_type = CellView;
            using difference_type = std::ptrdiff_t;

            iterator(const PolicyView *v, std::size_t w)
                : v_(v), w_(w)
            {
            }

            CellView operator*() const { return (*v_)[w_]; }
            iterator &operator++()
            {
                ++w_;
                return *this;
            }
            bool operator==(const iterator &o) const
            {
                return w_ == o.w_;
            }

          private:
            const PolicyView *v_;
            std::size_t w_;
        };

        iterator begin() const { return {this, 0}; }
        iterator end() const { return {this, n_}; }

        friend bool
        operator==(const PolicyView &a, const PolicyView &b)
        {
            return a.n_ == b.n_ && a.k_ == b.k_ &&
                   std::equal(a.base_, a.base_ + a.n_ * a.k_,
                              b.base_);
        }

      private:
        const double *base_;
        std::size_t n_, k_;
    };

    IpcMatrix() = default;

    /** Allocate (zero-filled) for @p policies x @p workloads x
     * @p cores. */
    void
    reshape(std::size_t policies, std::size_t workloads,
            std::uint32_t cores)
    {
        np_ = policies;
        nw_ = workloads;
        k_ = cores;
        data_.assign(np_ * nw_ * k_, 0.0);
    }

    std::size_t policies() const { return np_; }
    std::size_t workloadCount() const { return nw_; }
    std::uint32_t coresPerCell() const
    {
        return static_cast<std::uint32_t>(k_);
    }

    /** Number of policies (mirrors the old outer vector). */
    std::size_t size() const { return np_; }
    bool empty() const { return np_ == 0; }

    PolicyView operator[](std::size_t p) const
    {
        return {data_.data() + p * nw_ * k_, nw_, k_};
    }

    std::span<const double>
    cell(std::size_t p, std::size_t w) const
    {
        return {data_.data() + (p * nw_ + w) * k_, k_};
    }

    std::span<double>
    cellMut(std::size_t p, std::size_t w)
    {
        return {data_.data() + (p * nw_ + w) * k_, k_};
    }

    void
    setCell(std::size_t p, std::size_t w,
            std::span<const double> v)
    {
        if (v.size() != k_)
            WSEL_FATAL("ipc cell has " << v.size()
                                       << " values, expected "
                                       << k_);
        std::copy(v.begin(), v.end(),
                  data_.data() + (p * nw_ + w) * k_);
    }

    const std::vector<double> &data() const { return data_; }

    class iterator
    {
      public:
        using value_type = PolicyView;
        using difference_type = std::ptrdiff_t;

        iterator(const IpcMatrix *m, std::size_t p) : m_(m), p_(p)
        {
        }

        PolicyView operator*() const { return (*m_)[p_]; }
        iterator &operator++()
        {
            ++p_;
            return *this;
        }
        bool operator==(const iterator &o) const
        {
            return p_ == o.p_;
        }

      private:
        const IpcMatrix *m_;
        std::size_t p_;
    };

    iterator begin() const { return {this, 0}; }
    iterator end() const { return {this, np_}; }

    bool
    operator==(const IpcMatrix &o) const
    {
        return np_ == o.np_ && nw_ == o.nw_ && k_ == o.k_ &&
               data_ == o.data_;
    }

  private:
    std::size_t np_ = 0;
    std::size_t nw_ = 0;
    std::size_t k_ = 0;
    std::vector<double> data_;
};

/** The full result of simulating workloads x policies. */
struct Campaign
{
    std::string simulator; ///< "badco" or "detailed"
    std::uint32_t cores = 0;
    std::uint64_t targetUops = 0;
    std::vector<PolicyKind> policies;
    std::vector<std::string> benchmarks; ///< suite names
    std::vector<double> refIpc; ///< single-thread IPC per benchmark

    /**
     * The workload list: an explicit list for sampled campaigns, a
     * rank range over the population shape for (sub)population
     * campaigns (O(1) memory regardless of N).
     */
    WorkloadSet workloads;

    /** ipc[policy][workload][core], stored contiguously. */
    IpcMatrix ipc;

    /** Host seconds spent simulating. */
    double simSeconds = 0.0;

    /** Total µops simulated (for MIPS reporting). */
    std::uint64_t instructions = 0;

    /**
     * Configuration fingerprint (campaignFingerprint) persisted in
     * the v2/v3 headers so caches detect config drift the filename
     * key missed.  0 in campaigns loaded from v1 files.
     */
    std::uint64_t fingerprint = 0;

    /**
     * Format version this campaign was loaded from (2 for new
     * in-memory campaigns; 3 when loaded from a sharded binary
     * campaign_v3 directory).
     */
    int formatVersion = 2;

    /** Index of @p kind in policies; fatal when absent. */
    std::size_t policyIndex(PolicyKind kind) const;

    /**
     * Per-workload throughput t(w) (eq. 1) for one policy under one
     * metric, aligned with the workloads list.
     */
    std::vector<double> perWorkloadThroughputs(
        std::size_t policy_idx, ThroughputMetric m) const;

    /**
     * Caller-buffer variant: write t(w) into @p out (size
     * workloads.size()) streaming the workload set, with no
     * per-call triple indirection or allocation.
     */
    void perWorkloadThroughputsInto(std::size_t policy_idx,
                                    ThroughputMetric m,
                                    std::span<double> out) const;

    /** Simulation speed in MIPS. */
    double mips() const;

    /**
     * Persist in the campaign_v2 format (fingerprint header,
     * record-count + checksum footer) via an atomic replace.
     * Population-scale campaigns should be written as campaign_v3
     * shards by the population runner instead (sim/population.hh).
     */
    void save(const std::string &path) const;

    /**
     * Load a persisted campaign: a campaign_v3 directory when
     * @p path is one, else a v2 (or legacy v1) file.
     * @see LoadMode for failure semantics.
     */
    static Campaign load(const std::string &path,
                         LoadMode mode = LoadMode::Strict);
};

/**
 * Fingerprint of everything that determines a campaign's numbers:
 * simulator kind, core count, slice length, policy list, and the
 * suite (benchmark names and parameter hashes).  Stored in v2
 * headers and journals; compared by cachedCampaign so a stale
 * cache is detected even when the filename key did not change
 * (e.g. a edited benchmark profile or policy list).
 */
std::uint64_t campaignFingerprint(
    const std::string &simulator, std::uint32_t cores,
    std::uint64_t target_uops,
    const std::vector<PolicyKind> &policies,
    const std::vector<BenchmarkProfile> &suite);

/**
 * Seed for one (policy, workload) cell: derived from the campaign
 * fingerprint, the campaign base seed and the cell coordinates, so
 * every cell is an independent deterministic stream whose value
 * does not depend on which thread simulates it or in which order.
 * This is the determinism contract behind CampaignOptions::jobs
 * (docs/PARALLELISM.md): an N-job run is bitwise identical to a
 * 1-job run.  Never returns 0.
 */
std::uint64_t campaignCellSeed(std::uint64_t fingerprint,
                               std::uint64_t base_seed,
                               std::size_t policy,
                               std::size_t workload);

/** Options shared by the campaign runners. */
struct CampaignOptions
{
    std::uint64_t seed = 1;
    bool verbose = false;      ///< progress lines on stderr
    std::size_t progressEvery = 500;

    /**
     * Worker threads simulating (policy, workload) cells.  1 (the
     * default) runs the cells serially on the calling thread in
     * row-major order; 0 asks for exec::defaultJobs() ($WSEL_JOBS,
     * else the hardware concurrency); N > 1 uses a work-stealing
     * pool of N threads.  The IPC matrix is bitwise independent of
     * this setting (docs/PARALLELISM.md).
     */
    std::size_t jobs = 1;

    /**
     * Journal records buffered per fsync.  0 (the default) picks
     * automatically: 1 when running serially (every cell durable
     * before the next starts, the PR-1 contract), a small batch
     * when jobs > 1 so concurrent completions amortize the fsync.
     * A kill loses at most the unflushed batch; completed batches
     * and the final artifact are always durable.
     */
    std::size_t journalBatch = 0;

    /**
     * When non-empty, each completed (policy, workload) cell is
     * appended (and fsynced, see journalBatch) to this journal
     * file, and a journal left behind by a killed run is replayed
     * on start so the campaign resumes from the first missing
     * cell.  The caller removes the journal once the final
     * artifact is saved.
     */
    std::string journalPath;
};

/**
 * Run a BADCO campaign: simulate every workload under every policy
 * with the behavioural simulator.  @p workloads accepts a
 * std::vector<Workload> (implicitly) or any WorkloadSet, including
 * a population rank range that is never materialized.
 */
Campaign runBadcoCampaign(const WorkloadSet &workloads,
                          const std::vector<PolicyKind> &policies,
                          std::uint32_t cores,
                          std::uint64_t target_uops,
                          BadcoModelStore &store,
                          const std::vector<BenchmarkProfile> &suite,
                          const CampaignOptions &opts = {});

/**
 * Run a detailed campaign with the cycle-level simulator.
 */
Campaign runDetailedCampaign(
    const WorkloadSet &workloads,
    const std::vector<PolicyKind> &policies, std::uint32_t cores,
    std::uint64_t target_uops, const CoreConfig &core_cfg,
    const std::vector<BenchmarkProfile> &suite,
    const CampaignOptions &opts = {});

/**
 * Load the campaign cached under @p cache_key in the WSEL cache
 * directory if present; otherwise invoke @p produce and persist the
 * result.  With no cache directory configured, always produces.
 *
 * Robustness semantics:
 *  - An advisory lock (`<file>.lock`) serializes concurrent
 *    processes on the same key; the loser of the race blocks and
 *    then loads the winner's result instead of re-simulating.
 *  - A cached file that is truncated, checksum-mismatched,
 *    version-skewed, or (when @p expected_fingerprint is nonzero)
 *    fingerprint-mismatched is quarantined to `*.corrupt` with a
 *    warning and the campaign is regenerated.
 *  - @p produce may accept a journal path argument; the runners
 *    checkpoint into it and resume from it, so a killed process
 *    loses at most one workload of work.  The journal is removed
 *    after the final artifact is saved.
 */
template <typename ProduceFn>
Campaign
cachedCampaign(const std::string &cache_key,
               std::uint64_t expected_fingerprint,
               ProduceFn &&produce)
{
    auto invoke = [&](const std::string &journal) -> Campaign {
        if constexpr (std::is_invocable_v<ProduceFn &,
                                          const std::string &>) {
            return produce(journal);
        } else {
            (void)journal;
            return produce();
        }
    };
    const std::string dir = defaultCacheDir();
    if (dir.empty())
        return invoke("");
    const std::string path =
        dir + "/campaign_v2_" + cache_key + ".csv";
    persist::FileLock lock(path + ".lock");
    if (std::filesystem::exists(path)) {
        try {
            Campaign c = Campaign::load(path, LoadMode::Cached);
            if (c.formatVersion >= 2 &&
                (expected_fingerprint == 0 ||
                 c.fingerprint == expected_fingerprint)) {
                obs::counter("persist.cache_hit").inc();
                return c;
            }
            const std::string moved = persist::quarantineFile(path);
            warn("stale campaign cache at " + path +
                 (c.formatVersion < 2
                      ? " (old format version)"
                      : " (configuration fingerprint changed)") +
                 (moved.empty() ? "" : "; quarantined to " + moved) +
                 "; re-simulating");
        } catch (const persist::CacheInvalid &) {
            // load() already quarantined the file and warned.
        }
    }
    obs::counter("persist.cache_miss").inc();
    Campaign c = invoke(path + ".partial");
    c.save(path);
    std::error_code ec;
    std::filesystem::remove(path + ".partial", ec);
    return c;
}

} // namespace wsel

#endif // WSEL_SIM_CAMPAIGN_HH
