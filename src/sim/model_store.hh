/**
 * @file
 * Builds and caches BADCO models per (benchmark, core-count) pair,
 * with optional on-disk persistence so the one-off model-building
 * cost (the paper's "2 traces per benchmark" step, §VII-A) is paid
 * once across tools.
 */

#ifndef WSEL_SIM_MODEL_STORE_HH
#define WSEL_SIM_MODEL_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "badco/badco_model.hh"
#include "cpu/core_config.hh"
#include "trace/benchmark_profile.hh"

namespace wsel
{

/**
 * Store of BADCO models for one core configuration and slice length.
 */
class BadcoModelStore
{
  public:
    /**
     * @param core_cfg The detailed-core configuration modelled.
     * @param target_uops Slice length in µops.
     * @param llc_hit_latency Perfect-uncore latency used when
     *        building (the target uncore's hit latency).
     * @param cache_dir Directory for on-disk persistence; empty
     *        keeps models in memory only.
     */
    BadcoModelStore(const CoreConfig &core_cfg,
                    std::uint64_t target_uops,
                    std::uint32_t llc_hit_latency,
                    std::string cache_dir = "");

    /** Get (building or loading if needed) a benchmark's model. */
    const BadcoModel &get(const BenchmarkProfile &profile);

    /**
     * Models for a whole suite, indexed like the suite.  With
     * jobs != 1 the missing models are built (or loaded from
     * disk) concurrently on the exec/ work-stealing pool — model
     * building is per-benchmark pure, only the map insertion is
     * serialized — and the result is identical to a serial call.
     * The store itself is not thread-safe: call get/getSuite from
     * one thread at a time.
     */
    std::vector<const BadcoModel *> getSuite(
        const std::vector<BenchmarkProfile> &suite,
        std::size_t jobs = 1);

    /** Host seconds spent building models so far. */
    double buildSeconds() const { return buildSeconds_; }

    /** Number of models built (not loaded from disk). */
    std::size_t modelsBuilt() const { return built_; }

  private:
    std::string cachePath(const BenchmarkProfile &profile) const;

    /**
     * Load @p profile's model from the disk cache or build it,
     * reporting build cost via the out-parameters.  Does not touch
     * the in-memory map or the counters, so getSuite can run it
     * for several benchmarks concurrently.
     */
    BadcoModel loadOrBuild(const BenchmarkProfile &profile,
                           double &build_seconds, bool &built) const;

    CoreConfig coreCfg_;
    std::uint64_t targetUops_;
    std::uint32_t llcHitLatency_;
    std::string cacheDir_;
    std::map<std::string, BadcoModel> models_;
    double buildSeconds_ = 0.0;
    std::size_t built_ = 0;
};

/**
 * Shared results directory: $WSEL_CACHE_DIR when set (empty
 * disables persistence), else "./.wsel_cache".  The directory is
 * created on first use; failure to create it is WSEL_FATAL (so
 * misconfiguration surfaces immediately, not at the first open).
 */
std::string defaultCacheDir();

} // namespace wsel

#endif // WSEL_SIM_MODEL_STORE_HH
