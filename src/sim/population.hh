/**
 * @file
 * Population-scale BADCO campaign runner (paper §VI): simulate a
 * (sub)population of workloads — 12650 at 4 cores, 4.3M at
 * 8 cores — under every policy while
 *
 *  - streaming workloads by rank (WorkloadCursor; no O(N)
 *    Workload materialization),
 *  - writing IPC cells to the sharded binary campaign_v3 format
 *    (src/stats/persist_v3.hh) with per-shard checksums and atomic
 *    replace, so a killed run resumes at shard granularity and a
 *    truncated shard is quarantined and regenerated,
 *  - computing the paper's difference statistics d(w) in one
 *    streaming pass per shard: Welford mean/variance/cv, a
 *    fixed-bin histogram, and a deterministic quantile sketch that
 *    feeds workload-stratum construction (core/sampling) without
 *    ever holding a population-sized vector.
 *
 * Per-cell seeds come from campaignCellSeed(fingerprint, seed,
 * policy, absolute rank), identical to an explicit-list campaign
 * over the same ranks, and shard files carry no timing, so serial
 * and --jobs N runs produce bitwise-identical artifacts and the
 * per-shard statistics merge deterministically in shard order
 * (docs/PARALLELISM.md contract extended to shards).
 */

#ifndef WSEL_SIM_POPULATION_HH
#define WSEL_SIM_POPULATION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "core/metrics/throughput.hh"
#include "core/workload/workload.hh"
#include "mem/uncore_config.hh"
#include "sim/model_store.hh"
#include "stats/histogram.hh"
#include "stats/persist_v3.hh"
#include "stats/summary.hh"

namespace wsel
{

/**
 * One policy pair to accumulate d(w) statistics for during the
 * campaign: d = difference(metric, t_x, t_y), oriented so positive
 * values support "y outperforms x" (§III: Y is the hypothesized
 * winner).
 */
struct PopulationPairSpec
{
    std::size_t x = 0; ///< policy index of X (hypothesized loser)
    std::size_t y = 0; ///< policy index of Y (hypothesized winner)
    ThroughputMetric metric = ThroughputMetric::IPCT;
    std::string label;
};

/** Streamed statistics for one pair, merged over all shards. */
struct PopulationPairSummary
{
    PopulationPairSpec spec;
    RunningStats d;    ///< one-pass Welford over d(w)
    Histogram hist;    ///< fixed-bin d(w) distribution
    QuantileSketch sketch; ///< uniform d(w) sample for strata

    PopulationPairSummary(const PopulationPairSpec &s, double lo,
                          double hi, std::size_t bins,
                          std::size_t sketch_capacity)
        : spec(s), hist(lo, hi, bins), sketch(sketch_capacity)
    {
    }

    double cv() const { return d.coefficientOfVariation(); }

    double
    inverseCv() const
    {
        const double c = cv();
        return c == 0.0 ? 0.0 : 1.0 / c;
    }
};

struct PopulationOptions
{
    std::uint64_t seed = 1;

    /** Worker threads over shards; 0 = $WSEL_JOBS else hardware. */
    std::size_t jobs = 1;

    /**
     * Target cells (workloads x policies) per shard; the row count
     * is shardCells / policies, floored, min 1.  64Ki cells x 8
     * bytes = 512 KiB shard payloads.
     */
    std::size_t shardCells = 64 * 1024;

    /** Rank range [firstRank, lastRank); lastRank 0 = pop.size(). */
    std::uint64_t firstRank = 0;
    std::uint64_t lastRank = 0;

    /**
     * Reuse intact shards already in the output directory
     * (checkpoint/resume); false starts from scratch.  Invalid
     * shards are quarantined to `*.corrupt` and regenerated either
     * way.
     */
    bool resume = true;

    bool verbose = false;

    /** d(w) histogram shape (d is a throughput difference). */
    double histLo = -0.5;
    double histHi = 0.5;
    std::size_t histBins = 64;

    /** Quantile-sketch capacity (kept d(w) samples per pair). */
    std::size_t sketchCapacity = 4096;

    /**
     * Cells per batch for the batched BADCO engine (sim/batch.hh):
     * 0 resolves WSEL_BATCH_CELLS (default 32), 1 runs cells
     * serially. Results are bitwise identical at every value.
     */
    std::uint32_t batchCells = 0;

    /**
     * Wave width for the wavefront batch engine: 0 resolves
     * WSEL_BATCH_WAVE (default 1 = cell-major), W > 1 steps W
     * cells in lockstep with gathered tag scans. Results are
     * bitwise identical at every value.
     */
    std::uint32_t batchWave = 0;
};

/** Result of a population campaign run. */
struct PopulationResult
{
    std::string dir; ///< the campaign_v3 artifact directory
    persist::V3Manifest manifest;
    std::vector<PopulationPairSummary> pairs;

    std::uint64_t cellsSimulated = 0;
    std::uint64_t cellsResumed = 0;
    std::uint64_t shardsWritten = 0;
    std::uint64_t shardsResumed = 0;

    /** Wall seconds of this run (excludes resumed shards' work). */
    double wallSeconds = 0.0;

    double
    cellsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(cellsSimulated) /
                         wallSeconds
                   : 0.0;
    }
};

/**
 * Simulate one campaign_v3 shard's cells into @p payload (resized
 * to rowsInShard(shard) x policies x cores, row-major: workload,
 * policy, core).  This is the unit of work shared by the
 * in-process population runner and the `wsel_worker` processes of
 * the distributed campaign service (src/serve/): per-cell seeds
 * come from campaignCellSeed(m.fingerprint, base_seed, policy,
 * absolute rank), so any process producing a given shard produces
 * bitwise-identical bytes.
 *
 * @p ucfgs must hold one UncoreConfig per manifest policy (in
 * order) and @p models one BADCO model per suite benchmark.
 * @p tick, when set, is invoked once per workload row — the
 * distributed worker sends lease heartbeats from it.  The
 * "population.cell" fault point fires once per simulated cell
 * (tests/fault_injection.hh; the worker binary can arm it to
 * SIGKILL itself mid-shard).
 */
void simulatePopulationShard(
    const persist::V3Manifest &m, const WorkloadPopulation &pop,
    const std::vector<UncoreConfig> &ucfgs,
    const std::vector<const BadcoModel *> &models,
    std::uint64_t base_seed, std::uint64_t shard,
    std::vector<double> &payload,
    const std::function<void()> &tick = {});

/**
 * Batched variant of simulatePopulationShard: identical contract
 * and bitwise-identical payload, but cells run through the
 * BadcoBatchRunner (sim/batch.hh) in groups of @p batch_cells
 * (resolved via resolveBatchCells; 1 behaves like the serial
 * engine) with wave width @p batch_wave (resolved via
 * resolveBatchWave; >1 interleaves cells in lockstep waves). The
 * "population.cell" fault point still fires once per cell, at
 * batch-append time — a fault or SIGKILL mid-batch abandons the
 * whole (unwritten) shard exactly as the serial engine's mid-shard
 * fault does, so resume semantics are unchanged at any wave size.
 */
void simulatePopulationShardBatched(
    const persist::V3Manifest &m, const WorkloadPopulation &pop,
    const std::vector<UncoreConfig> &ucfgs,
    const std::vector<const BadcoModel *> &models,
    std::uint64_t base_seed, std::uint64_t shard,
    std::uint32_t batch_cells, std::uint32_t batch_wave,
    std::vector<double> &payload,
    const std::function<void()> &tick = {});

/**
 * Detailed-fidelity twin of simulatePopulationShard: the same
 * shard geometry, row layout and campaignCellSeed contract, but
 * every cell runs on the cycle-level DetailedMulticoreSim (so the
 * manifest's fingerprint must be a "detailed" one).  The unit of
 * work behind escalated shards in mixed-fidelity campaigns
 * (docs/FIDELITY.md); its kill point is "fidelity.escalate", fired
 * once per cell.
 */
void simulateDetailedPopulationShard(
    const persist::V3Manifest &m, const WorkloadPopulation &pop,
    const CoreConfig &core_cfg,
    const std::vector<UncoreConfig> &ucfgs,
    const std::vector<BenchmarkProfile> &suite,
    std::uint64_t base_seed, std::uint64_t shard,
    std::vector<double> &payload,
    const std::function<void()> &tick = {});

/**
 * Run (or resume) a BADCO population campaign over ranks
 * [opts.firstRank, opts.lastRank) of @p pop, writing a campaign_v3
 * artifact to @p out_dir (created if missing) and returning the
 * streamed per-pair statistics.  Memory is O(shard), independent
 * of the population size.
 */
PopulationResult runBadcoPopulationCampaign(
    const WorkloadPopulation &pop,
    const std::vector<PolicyKind> &policies,
    std::uint64_t target_uops, BadcoModelStore &store,
    const std::vector<BenchmarkProfile> &suite,
    const std::vector<PopulationPairSpec> &pairs,
    const std::string &out_dir, const PopulationOptions &opts = {});

} // namespace wsel

#endif // WSEL_SIM_POPULATION_HH
