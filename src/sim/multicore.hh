/**
 * @file
 * Multicore multiprogram simulators implementing the paper's
 * §IV-A protocol: K threads on K identical cores sharing one
 * uncore; a thread that finishes its slice restarts; simulation
 * ends when every thread has executed its target; per-thread IPC is
 * measured over the first target µops only.
 *
 * Two implementations share the protocol: the detailed cycle-level
 * simulator (Zesto's role) and the BADCO behavioural simulator.
 */

#ifndef WSEL_SIM_MULTICORE_HH
#define WSEL_SIM_MULTICORE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "badco/badco_model.hh"
#include "cpu/core_config.hh"
#include "core/workload/workload.hh"
#include "mem/uncore.hh"
#include "trace/benchmark_profile.hh"

namespace wsel
{

/** Outcome of one multiprogram simulation. */
struct SimResult
{
    /** Per-core IPC over the first target µops of each thread. */
    std::vector<double> ipc;

    /** Cycle at which the last thread reached its target. */
    std::uint64_t cycles = 0;

    /** µops counted for throughput (cores x target). */
    std::uint64_t instructions = 0;

    /** Host seconds spent simulating. */
    double wallSeconds = 0.0;

    /** Per-core LLC demand misses (for MPKI reports). */
    std::vector<std::uint64_t> llcDemandMisses;

    /** Simulation speed in million instructions per second. */
    double mips() const;
};

/**
 * Detailed cycle-level multicore simulator (the "Zesto" role).
 */
class DetailedMulticoreSim
{
  public:
    /**
     * @param core_cfg Core parameters (identical cores, Table I).
     * @param uncore_cfg Shared-uncore parameters (Table II).
     * @param cores Core count K.
     * @param target_uops Per-thread slice length.
     * @param seed Determinism seed.
     */
    DetailedMulticoreSim(const CoreConfig &core_cfg,
                         const UncoreConfig &uncore_cfg,
                         std::uint32_t cores,
                         std::uint64_t target_uops,
                         std::uint64_t seed = 1);

    /**
     * Simulate @p workload; thread k runs
     * suite[workload[k]].
     */
    SimResult run(const Workload &workload,
                  const std::vector<BenchmarkProfile> &suite) const;

    /**
     * Single-thread reference IPC for each suite benchmark running
     * alone on this machine (used by speedup metrics).
     */
    std::vector<double> referenceIpcs(
        const std::vector<BenchmarkProfile> &suite) const;

    std::uint32_t cores() const { return cores_; }
    std::uint64_t targetUops() const { return targetUops_; }
    const UncoreConfig &uncoreConfig() const { return uncoreCfg_; }

  private:
    CoreConfig coreCfg_;
    UncoreConfig uncoreCfg_;
    std::uint32_t cores_;
    std::uint64_t targetUops_;
    std::uint64_t seed_;
};

/**
 * BADCO behavioural multicore simulator. Machines run in rotating
 * round-robin quanta against the shared uncore (quantum-based
 * multicore simulation; the quantum bounds cross-core timing skew).
 */
class BadcoMulticoreSim
{
  public:
    /**
     * @param uncore_cfg Shared-uncore parameters.
     * @param cores Core count K.
     * @param target_uops Per-thread slice length.
     * @param seed Determinism seed.
     * @param window BADCO-machine window override; 0 uses each
     *        model's calibrated per-benchmark window.
     * @param max_outstanding BADCO-machine outstanding-load cap.
     * @param quantum Simulation quantum in cycles.
     */
    BadcoMulticoreSim(const UncoreConfig &uncore_cfg,
                      std::uint32_t cores, std::uint64_t target_uops,
                      std::uint64_t seed = 1,
                      std::uint32_t window = 0,
                      std::uint32_t max_outstanding = 16,
                      std::uint64_t quantum = 50);

    /**
     * Simulate @p workload; machine k executes models[workload[k]].
     * @param models One model pointer per suite benchmark.
     */
    SimResult run(const Workload &workload,
                  const std::vector<const BadcoModel *> &models)
        const;

    /**
     * Allocation-free variant for streamed population campaigns:
     * @p benches is the sorted benchmark multiset (K entries), e.g.
     * a WorkloadCursor span; no Workload is materialized.
     */
    SimResult run(std::span<const std::uint32_t> benches,
                  const std::vector<const BadcoModel *> &models)
        const;

    /**
     * Choose the multiprogram protocol: true (default) restarts a
     * finished thread so it keeps generating interference until
     * every thread reaches its target (the paper's §IV-A rule);
     * false halts finished threads (a common alternative the
     * paper's footnote 4 contrasts with more rigorous methods).
     */
    void restartFinishedThreads(bool restart)
    {
        restartThreads_ = restart;
    }

    /** Single-machine reference IPCs from the models. */
    std::vector<double> referenceIpcs(
        const std::vector<const BadcoModel *> &models) const;

    std::uint32_t cores() const { return cores_; }
    std::uint64_t targetUops() const { return targetUops_; }
    const UncoreConfig &uncoreConfig() const { return uncoreCfg_; }

  private:
    UncoreConfig uncoreCfg_;
    std::uint32_t cores_;
    std::uint64_t targetUops_;
    std::uint64_t seed_;
    std::uint32_t window_;
    std::uint32_t maxOutstanding_;
    std::uint64_t quantum_;
    bool restartThreads_ = true;
};

} // namespace wsel

#endif // WSEL_SIM_MULTICORE_HH
