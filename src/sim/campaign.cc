#include "sim/campaign.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>

#include "exec/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "stats/persist_v3.hh"
#include "trace/trace_store.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define WSEL_HAVE_POSIX_IO 1
#endif

namespace wsel
{

namespace
{

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

void
progress(const CampaignOptions &opts, const std::string &what,
         std::size_t done, std::size_t total)
{
    if (!opts.verbose || opts.progressEvery == 0)
        return;
    if (done % opts.progressEvery == 0 || done == total) {
        std::ostringstream os;
        os << "  [" << what << "] " << done << "/" << total;
        logLine(os.str());
    }
}

/**
 * Strict unsigned parse: digits only, fully consumed.  Unlike raw
 * std::stoull this rejects "-1" and "12x" and never leaks
 * std::invalid_argument/std::out_of_range to the caller.
 */
std::uint64_t
parseU64(const std::string &s, const char *what,
         std::size_t line_no)
{
    if (s.empty() || s.size() > 20)
        throw persist::CacheInvalid(
            std::string("malformed ") + what + " '" + s +
            "' at line " + std::to_string(line_no));
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            throw persist::CacheInvalid(
                std::string("malformed ") + what + " '" + s +
                "' at line " + std::to_string(line_no));
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

/** Strict double parse; CacheInvalid instead of raw std exceptions. */
double
parseDouble(const std::string &s, const char *what,
            std::size_t line_no)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception &) {
        throw persist::CacheInvalid(
            std::string("malformed ") + what + " '" + s +
            "' at line " + std::to_string(line_no));
    }
}

std::vector<double>
parseDoubleList(const std::string &s, const char *what,
                std::size_t line_no)
{
    std::vector<double> out;
    for (const std::string &v : splitOn(s, ';'))
        out.push_back(parseDouble(v, what, line_no));
    return out;
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw persist::CacheInvalid("cannot open for reading");
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Sequential line reader tracking 1-based line numbers. */
class LineReader
{
  public:
    explicit LineReader(const std::string &text) : is_(text) {}

    bool
    next(std::string &line)
    {
        if (!std::getline(is_, line))
            return false;
        ++lineNo_;
        return true;
    }

    std::size_t lineNo() const { return lineNo_; }

  private:
    std::istringstream is_;
    std::size_t lineNo_ = 0;
};

/**
 * Parse a v1/v2 campaign body (footer already stripped and
 * verified for v2).  Throws persist::CacheInvalid on any problem.
 */
Campaign
parseCampaignBody(const std::string &body, int version)
{
    Campaign c;
    c.formatVersion = version;
    LineReader reader(body);
    std::string line;
    auto next = [&](const char *tag) -> std::string {
        if (!reader.next(line))
            throw persist::CacheInvalid(
                std::string("truncated: missing '") + tag +
                "' line");
        const auto f = splitOn(line, ',');
        if (f.size() < 2 || f[0] != tag)
            throw persist::CacheInvalid(
                std::string("expected '") + tag + "' at line " +
                std::to_string(reader.lineNo()) + ", got '" + line +
                "'");
        return f[1];
    };
    next("wsel-campaign"); // already validated by the caller
    if (version >= 2) {
        if (!persist::parseHex(next("fingerprint"), c.fingerprint))
            throw persist::CacheInvalid(
                "malformed fingerprint at line " +
                std::to_string(reader.lineNo()));
    }
    c.simulator = next("simulator");
    c.cores = static_cast<std::uint32_t>(
        parseU64(next("cores"), "core count", reader.lineNo()));
    if (c.cores == 0 || c.cores > 1024)
        throw persist::CacheInvalid(
            "implausible core count " + std::to_string(c.cores));
    c.targetUops =
        parseU64(next("target"), "target uops", reader.lineNo());
    c.simSeconds = parseDouble(next("simseconds"), "simseconds",
                               reader.lineNo());
    c.instructions = parseU64(next("instructions"), "instructions",
                              reader.lineNo());
    try {
        for (const std::string &p : splitOn(next("policies"), ';'))
            c.policies.push_back(parsePolicyKind(p));
    } catch (const FatalError &e) {
        throw persist::CacheInvalid(
            std::string("unknown policy at line ") +
            std::to_string(reader.lineNo()) + ": " + e.what());
    }
    if (c.policies.empty())
        throw persist::CacheInvalid("empty policy list");
    for (const std::string &b : splitOn(next("benchmarks"), ';'))
        c.benchmarks.push_back(b);
    c.refIpc = parseDoubleList(next("refipc"), "reference IPC",
                               reader.lineNo());
    if (c.refIpc.size() != c.benchmarks.size())
        throw persist::CacheInvalid(
            "refipc count " + std::to_string(c.refIpc.size()) +
            " does not match " + std::to_string(c.benchmarks.size()) +
            " benchmarks");
    const std::uint64_t nw64 = parseU64(
        next("nworkloads"), "workload count", reader.lineNo());
    if (nw64 > 50'000'000)
        throw persist::CacheInvalid(
            "implausible workload count " + std::to_string(nw64));
    const std::size_t nw = static_cast<std::size_t>(nw64);
    std::vector<Workload> wls;
    wls.reserve(nw);
    for (std::size_t w = 0; w < nw; ++w) {
        if (!reader.next(line))
            throw persist::CacheInvalid("truncated workload list");
        const auto f = splitOn(line, ',');
        if (f.size() != 2 || f[0] != "w")
            throw persist::CacheInvalid(
                "bad workload line '" + line + "' at line " +
                std::to_string(reader.lineNo()));
        std::vector<std::uint32_t> benches;
        for (const std::string &b : splitOn(f[1], ';')) {
            const std::uint64_t idx = parseU64(
                b, "benchmark index", reader.lineNo());
            if (idx >= c.benchmarks.size())
                throw persist::CacheInvalid(
                    "benchmark index " + std::to_string(idx) +
                    " out of range at line " +
                    std::to_string(reader.lineNo()));
            benches.push_back(static_cast<std::uint32_t>(idx));
        }
        if (benches.size() != c.cores)
            throw persist::CacheInvalid(
                "workload at line " +
                std::to_string(reader.lineNo()) + " has " +
                std::to_string(benches.size()) + " slots, campaign "
                "has " + std::to_string(c.cores) + " cores");
        wls.push_back(Workload(std::move(benches)));
    }
    c.workloads = WorkloadSet(std::move(wls));
    c.ipc.reshape(c.policies.size(), nw, c.cores);
    // The contiguous matrix is zero-initialized, so duplicate
    // detection needs its own bitmap (a zero cell is legal).
    std::vector<char> seen(c.policies.size() * nw, 0);
    std::size_t rows = 0;
    while (reader.next(line)) {
        if (line.empty())
            continue;
        const auto f = splitOn(line, ',');
        if (f.size() != 4 || f[0] != "i")
            throw persist::CacheInvalid(
                "bad ipc line '" + line + "' at line " +
                std::to_string(reader.lineNo()));
        const std::size_t p = static_cast<std::size_t>(
            parseU64(f[1], "policy index", reader.lineNo()));
        const std::size_t w = static_cast<std::size_t>(
            parseU64(f[2], "workload index", reader.lineNo()));
        if (p >= c.policies.size() || w >= nw)
            throw persist::CacheInvalid(
                "ipc line out of range at line " +
                std::to_string(reader.lineNo()));
        if (seen[p * nw + w])
            throw persist::CacheInvalid(
                "duplicate ipc cell (" + std::to_string(p) + "," +
                std::to_string(w) + ") at line " +
                std::to_string(reader.lineNo()));
        std::vector<double> ipcs =
            parseDoubleList(f[3], "IPC value", reader.lineNo());
        if (ipcs.size() != c.cores)
            throw persist::CacheInvalid(
                "ipc cell at line " +
                std::to_string(reader.lineNo()) + " has " +
                std::to_string(ipcs.size()) + " values, expected " +
                std::to_string(c.cores));
        c.ipc.setCell(p, w, {ipcs.data(), ipcs.size()});
        seen[p * nw + w] = 1;
        ++rows;
    }
    if (rows != c.policies.size() * nw)
        throw persist::CacheInvalid(
            "has " + std::to_string(rows) + " ipc rows, expected " +
            std::to_string(c.policies.size() * nw));
    return c;
}

/** Full validated load; throws persist::CacheInvalid on problems. */
Campaign
loadImpl(const std::string &path)
{
    const std::string text = slurpFile(path);
    const std::size_t eol = text.find('\n');
    const std::string first =
        text.substr(0, eol == std::string::npos ? text.size() : eol);
    int version = 0;
    if (first == "wsel-campaign,v1")
        version = 1;
    else if (first == "wsel-campaign,v2")
        version = 2;
    else
        throw persist::CacheInvalid(
            "not a wsel campaign file (first line '" + first + "')");
    std::string body = text;
    if (version >= 2) {
        // The footer must be the last line:
        //   footer,<ipc-row-count>,<fnv1a of all preceding bytes>
        const std::size_t pos = text.rfind("\nfooter,");
        if (pos == std::string::npos)
            throw persist::CacheInvalid(
                "truncated: missing integrity footer");
        body = text.substr(0, pos + 1);
        std::string footer = text.substr(pos + 1);
        if (!footer.empty() && footer.back() == '\n')
            footer.pop_back();
        else
            throw persist::CacheInvalid(
                "truncated: unterminated integrity footer");
        const auto f = splitOn(footer, ',');
        std::uint64_t want = 0;
        if (f.size() != 3 || !persist::parseHex(f[2], want))
            throw persist::CacheInvalid(
                "malformed integrity footer '" + footer + "'");
        const std::uint64_t rows = parseU64(f[1], "footer row count",
                                            0);
        if (persist::fnv1a(body) != want)
            throw persist::CacheInvalid(
                "checksum mismatch (file damaged or edited)");
        Campaign c = parseCampaignBody(body, version);
        if (rows != c.policies.size() * c.workloads.size())
            throw persist::CacheInvalid(
                "footer row count " + std::to_string(rows) +
                " does not match body");
        return c;
    }
    return parseCampaignBody(body, version);
}

/**
 * Load a sharded binary campaign_v3 directory (population
 * campaigns, src/stats/persist_v3.hh).  Throws
 * persist::CacheInvalid on any validation failure.
 */
Campaign
loadV3Impl(const std::string &path)
{
    const persist::V3Manifest m = persist::readV3Manifest(path);
    Campaign c;
    c.formatVersion = 3;
    c.fingerprint = m.fingerprint;
    c.simulator = m.simulator;
    c.cores = m.cores;
    c.targetUops = m.targetUops;
    c.simSeconds = m.simSeconds;
    c.instructions = m.instructions;
    try {
        for (const std::string &p : m.policies)
            c.policies.push_back(parsePolicyKind(p));
    } catch (const FatalError &e) {
        throw persist::CacheInvalid(
            std::string("campaign_v3 manifest: unknown policy: ") +
            e.what());
    }
    c.benchmarks = m.benchmarks;
    c.refIpc = m.refIpc;
    if (m.popBenchmarks == 0 || m.popCores == 0 ||
        m.popCores != m.cores ||
        m.popBenchmarks != m.benchmarks.size())
        throw persist::CacheInvalid(
            "campaign_v3 manifest: bad population shape");
    const WorkloadPopulation pop(m.popBenchmarks, m.popCores);
    if (m.lastRank > pop.size() || m.firstRank > m.lastRank)
        throw persist::CacheInvalid(
            "campaign_v3 manifest: rank range outside population");
    const std::size_t nw =
        static_cast<std::size_t>(m.rows());
    const std::size_t np = c.policies.size();
    // The manifest's counts drive the workload-list and matrix
    // allocations below; bound them (overflow-safely: divide,
    // don't multiply) BEFORE materializing anything so a
    // checksum-valid but hostile or corrupted manifest cannot ask
    // for an absurd materialization.  2^31 cells = 16 GiB is far
    // beyond any real campaign (the full 8-core population is
    // ~173M cells) but still refuses the 2^60-cell lies a flipped
    // size field can produce.
    constexpr std::uint64_t kMaxLoadCells = 1ULL << 31;
    const std::uint64_t cells_per_row =
        static_cast<std::uint64_t>(np) * c.cores;
    if (cells_per_row == 0 ||
        m.rows() > kMaxLoadCells / cells_per_row)
        throw persist::CacheInvalid(
            "campaign_v3 manifest: declared campaign too large to "
            "materialize (" + std::to_string(m.rows()) + " rows x " +
            std::to_string(np) + " policies x " +
            std::to_string(c.cores) + " cores)");
    c.workloads =
        WorkloadSet::populationRange(pop, m.firstRank, m.lastRank);
    c.ipc.reshape(np, nw, c.cores);
    for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
        const std::vector<double> payload =
            persist::readV3Shard(path, m, s);
        // Shards are row-major (workload, policy, core); the
        // matrix is policy-major, so scatter by cell.
        const std::size_t rows =
            static_cast<std::size_t>(m.rowsInShard(s));
        const std::size_t base_w =
            static_cast<std::size_t>(s * m.shardRows);
        const double *src = payload.data();
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t p = 0; p < np; ++p) {
                c.ipc.setCell(p, base_w + r, {src, c.cores});
                src += c.cores;
            }
        }
    }
    return c;
}

/**
 * Append-only checkpoint journal for a running campaign: one
 * self-checksummed line per completed (policy, workload) cell, so
 * a killed campaign loses at most the unflushed batch (batch size
 * 1, the serial default, fsyncs every cell before the next
 * starts).  Appends are serialized by a mutex, so the parallel
 * campaign runners may call append from any worker.  A journal
 * left by a previous run is replayed when the header (fingerprint
 * and shape) matches; a mismatched or damaged header quarantines
 * the journal and starts fresh; a damaged tail (the record being
 * written at the kill) is dropped and truncated away.
 */
class CampaignJournal
{
  public:
    CampaignJournal(std::string path, std::uint64_t fingerprint,
                    std::size_t npolicies, std::size_t nworkloads,
                    std::size_t batch = 1)
        : path_(std::move(path)), fingerprint_(fingerprint),
          np_(npolicies), nw_(nworkloads),
          batch_(batch ? batch : 1), done_(np_ * nw_, 0),
          cells_(np_ * nw_)
    {
        replay();
        openAppend();
    }

    ~CampaignJournal()
    {
        try {
            std::lock_guard<std::mutex> g(mu_);
            flushLocked();
        } catch (...) {
            // Best-effort: a record lost here is simply
            // re-simulated on resume.
        }
#ifdef WSEL_HAVE_POSIX_IO
        if (fd_ >= 0)
            ::close(fd_);
#else
        os_.close();
#endif
    }

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    bool
    done(std::size_t p, std::size_t w) const
    {
        return done_[p * nw_ + w] != 0;
    }

    const std::vector<double> &
    cell(std::size_t p, std::size_t w) const
    {
        return cells_[p * nw_ + w];
    }

    std::size_t replayedCount() const { return replayed_; }
    double replayedSeconds() const { return replayedSeconds_; }

    std::uint64_t
    replayedInstructions() const
    {
        return replayedInstructions_;
    }

    /**
     * Record a completed cell.  Durable once the batch it belongs
     * to is flushed: immediately at batch size 1, otherwise by the
     * flush when the batch fills, by flush(), or by the
     * destructor.  Thread-safe.
     */
    void
    append(std::size_t p, std::size_t w, const SimResult &r)
    {
        std::lock_guard<std::mutex> g(mu_);
        persist::faultPoint("journal.before-append");
        std::ostringstream os;
        os.precision(17);
        os << "r," << p << "," << w << ",";
        for (std::size_t k = 0; k < r.ipc.size(); ++k)
            os << (k ? ";" : "") << r.ipc[k];
        os << "," << r.wallSeconds << "," << r.instructions;
        const std::string prefix = os.str();
        buffer_.push_back(prefix + "," +
                          persist::toHex(persist::fnv1a(prefix)) +
                          "\n");
        if (buffer_.size() >= batch_)
            flushLocked();
    }

    /** Write and fsync every buffered record.  Thread-safe. */
    void
    flush()
    {
        std::lock_guard<std::mutex> g(mu_);
        flushLocked();
    }

  private:
    /**
     * Flush the buffer with one write and one fsync.  The
     * journal.append fault point fires once per record after the
     * fsync, preserving the serial contract ("killed after the
     * nth durable record") that the resilience tests count on.
     */
    void
    flushLocked()
    {
        if (buffer_.empty())
            return;
        std::string block;
        for (const std::string &line : buffer_)
            block += line;
        const std::size_t n = buffer_.size();
        buffer_.clear();
        {
            static obs::LatencyHistogram &flushNs =
                obs::histogram("campaign.journal_flush_ns");
            obs::LatencyHistogram::Timer t(flushNs);
            writeLine(block);
        }
        for (std::size_t i = 0; i < n; ++i)
            persist::faultPoint("journal.append");
    }

    std::string
    headerLine() const
    {
        return "wsel-journal,v2," + persist::toHex(fingerprint_) +
               "," + std::to_string(np_) + "," +
               std::to_string(nw_) + "\n";
    }

    void
    replay()
    {
        std::error_code ec;
        if (!std::filesystem::exists(path_, ec))
            return;
        std::string text;
        try {
            text = slurpFile(path_);
        } catch (const persist::CacheInvalid &) {
            return;
        }
        if (text.empty())
            return;
        const std::string header = headerLine();
        if (text.rfind(header, 0) != 0) {
            const std::string moved = persist::quarantineFile(path_);
            warn("campaign journal " + path_ +
                 " does not match this campaign's configuration" +
                 (moved.empty() ? "" : "; quarantined to " + moved) +
                 "; restarting from scratch");
            return;
        }
        std::size_t good_end = header.size();
        std::size_t at = header.size();
        bool damaged = false;
        while (at < text.size()) {
            const std::size_t nl = text.find('\n', at);
            if (nl == std::string::npos)
                break; // record in flight at the kill; drop it
            if (!replayRecord(text.substr(at, nl - at))) {
                damaged = true;
                break;
            }
            at = nl + 1;
            good_end = at;
        }
        if (damaged)
            warn("campaign journal " + path_ +
                 " has a damaged record; dropping it and every "
                 "later record");
        if (good_end < text.size())
            std::filesystem::resize_file(path_, good_end, ec);
    }

    bool
    replayRecord(const std::string &line)
    {
        const std::size_t crc_at = line.find_last_of(',');
        if (crc_at == std::string::npos)
            return false;
        std::uint64_t want = 0;
        if (!persist::parseHex(line.substr(crc_at + 1), want) ||
            persist::fnv1a(line.substr(0, crc_at)) != want)
            return false;
        const auto f = splitOn(line, ',');
        if (f.size() != 7 || f[0] != "r")
            return false;
        try {
            const std::size_t p =
                static_cast<std::size_t>(parseU64(f[1], "p", 0));
            const std::size_t w =
                static_cast<std::size_t>(parseU64(f[2], "w", 0));
            if (p >= np_ || w >= nw_)
                return false;
            std::vector<double> ipcs =
                parseDoubleList(f[3], "ipc", 0);
            const double wall = parseDouble(f[4], "wall", 0);
            const std::uint64_t insns = parseU64(f[5], "insns", 0);
            const std::size_t idx = p * nw_ + w;
            if (done_[idx])
                return true; // duplicate; first record wins
            done_[idx] = 1;
            cells_[idx] = std::move(ipcs);
            ++replayed_;
            replayedSeconds_ += wall;
            replayedInstructions_ += insns;
            return true;
        } catch (const persist::CacheInvalid &) {
            return false;
        }
    }

    void
    openAppend()
    {
#ifdef WSEL_HAVE_POSIX_IO
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd_ < 0)
            WSEL_FATAL("cannot open campaign journal '"
                       << path_ << "': " << strerror(errno));
        if (::lseek(fd_, 0, SEEK_END) == 0)
            writeLine(headerLine());
#else
        const bool fresh = !std::filesystem::exists(path_) ||
                           std::filesystem::file_size(path_) == 0;
        os_.open(path_, std::ios::binary | std::ios::app);
        if (!os_)
            WSEL_FATAL("cannot open campaign journal '" << path_
                                                        << "'");
        if (fresh)
            writeLine(headerLine());
#endif
    }

    void
    writeLine(const std::string &line)
    {
#ifdef WSEL_HAVE_POSIX_IO
        std::size_t off = 0;
        while (off < line.size()) {
            const ssize_t n =
                ::write(fd_, line.data() + off, line.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                WSEL_FATAL("write to campaign journal '"
                           << path_
                           << "' failed: " << strerror(errno));
            }
            off += static_cast<std::size_t>(n);
        }
        if (::fsync(fd_) != 0)
            WSEL_FATAL("fsync of campaign journal '"
                       << path_ << "' failed: " << strerror(errno));
#else
        os_ << line;
        os_.flush();
        if (!os_)
            WSEL_FATAL("write to campaign journal '" << path_
                                                     << "' failed");
#endif
    }

    std::string path_;
    std::uint64_t fingerprint_;
    std::size_t np_, nw_;
    std::size_t batch_;
    std::mutex mu_;
    std::vector<std::string> buffer_;
    std::vector<char> done_;
    std::vector<std::vector<double>> cells_;
    std::size_t replayed_ = 0;
    double replayedSeconds_ = 0.0;
    std::uint64_t replayedInstructions_ = 0;
#ifdef WSEL_HAVE_POSIX_IO
    int fd_ = -1;
#else
    std::ofstream os_;
#endif
};

/** Open the journal configured in @p opts (null when disabled). */
std::unique_ptr<CampaignJournal>
openJournal(const CampaignOptions &opts, Campaign &c,
            std::size_t npolicies, std::size_t nworkloads)
{
    if (opts.journalPath.empty())
        return nullptr;
    std::size_t batch = opts.journalBatch;
    if (batch == 0)
        batch = exec::resolveJobs(opts.jobs) > 1 ? 16 : 1;
    auto j = std::make_unique<CampaignJournal>(
        opts.journalPath, c.fingerprint, npolicies, nworkloads,
        batch);
    if (j->replayedCount() > 0) {
        c.simSeconds += j->replayedSeconds();
        c.instructions += j->replayedInstructions();
        logLine("  [campaign] resuming from journal: " +
                std::to_string(j->replayedCount()) + "/" +
                std::to_string(npolicies * nworkloads) +
                " cells already simulated");
    }
    return j;
}

/**
 * Shared cell-execution engine behind the campaign runners.
 * Resolves journaled cells, runs the rest via @p run_cell — a
 * plain row-major loop when the resolved job count is 1 (the
 * legacy serial semantics the resilience tests rely on), a
 * work-stealing pool otherwise — and accumulates simSeconds and
 * instructions per cell in index order, so the totals (and the
 * IPC matrix) are bitwise independent of the thread count and of
 * task completion order.
 */
void
runCells(Campaign &c, const CampaignOptions &opts,
         CampaignJournal *journal, const std::string &sim_name,
         const std::function<SimResult(std::size_t, std::size_t,
                                       std::uint64_t)> &run_cell)
{
    const std::size_t nw = c.workloads.size();
    const std::size_t total = c.policies.size() * nw;
    const std::size_t jobs = exec::resolveJobs(opts.jobs);
    std::vector<double> wall(total, 0.0);
    std::vector<std::uint64_t> insns(total, 0);
    std::atomic<std::size_t> done{0};
    auto label = [&](std::size_t p) {
        return sim_name + " " + toString(c.policies[p]);
    };
    auto cell = [&](std::size_t idx) {
        const std::size_t p = idx / nw;
        const std::size_t w = idx % nw;
        if (journal && journal->done(p, w)) {
            static obs::Counter &resumed =
                obs::counter("campaign.cells_resumed");
            resumed.inc();
            const std::vector<double> &jc = journal->cell(p, w);
            c.ipc.setCell(p, w, {jc.data(), jc.size()});
            progress(opts, label(p) + " (resumed)",
                     done.fetch_add(1) + 1, total);
            return;
        }
        std::string tag;
        if (obs::tracingEnabled()) {
            tag = "policy=" + toString(c.policies[p]) +
                  ",workload=";
            c.workloads.keyInto(w, tag);
        }
        obs::Span span("campaign.cell", tag);
        static obs::Counter &cells = obs::counter("campaign.cells");
        static obs::LatencyHistogram &cellNs =
            obs::histogram("campaign.cell_ns");
        obs::LatencyHistogram::Timer timer(cellNs);
        const SimResult r = run_cell(
            p, w, campaignCellSeed(c.fingerprint, opts.seed, p, w));
        cells.inc();
        c.ipc.setCell(p, w, {r.ipc.data(), r.ipc.size()});
        wall[idx] = r.wallSeconds;
        insns[idx] = r.instructions;
        if (journal)
            journal->append(p, w, r);
        progress(opts, label(p), done.fetch_add(1) + 1, total);
    };
    const auto t0 = std::chrono::steady_clock::now();
    if (jobs <= 1) {
        for (std::size_t idx = 0; idx < total; ++idx)
            cell(idx);
    } else {
        exec::ThreadPool pool(jobs);
        exec::parallel_for(pool, std::size_t{0}, total, cell);
        if (opts.verbose) {
            if (obs::metricsEnabled()) {
                // Scheduler behavior now lives in the metrics
                // registry; print that section instead of the old
                // ad-hoc SchedulerStats dump.
                std::ostringstream os;
                os << "  [" << sim_name << "] " << jobs
                   << " jobs; scheduler metrics:\n"
                   << obs::metricsSnapshot().toTable("scheduler.");
                logLine(os.str());
            } else {
                const exec::SchedulerStats st = pool.stats();
                std::ostringstream os;
                os << "  [" << sim_name << "] " << st.threads
                   << " jobs, " << st.tasksRun << " tasks, "
                   << st.tasksStolen << " stolen, "
                   << st.tasksHelped << " helped";
                logLine(os.str());
            }
        }
    }
    if (obs::metricsEnabled()) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (elapsed > 0.0) {
            obs::gauge("campaign.cells_per_sec")
                .set(static_cast<double>(total) / elapsed);
        }
    }
    if (journal)
        journal->flush();
    for (std::size_t idx = 0; idx < total; ++idx) {
        c.simSeconds += wall[idx];
        c.instructions += insns[idx];
    }
}

} // namespace

std::uint64_t
campaignFingerprint(const std::string &simulator,
                    std::uint32_t cores, std::uint64_t target_uops,
                    const std::vector<PolicyKind> &policies,
                    const std::vector<BenchmarkProfile> &suite)
{
    persist::Fnv1a h;
    h.update(simulator).update("|");
    h.updateU64(cores).updateU64(target_uops);
    h.updateU64(policies.size());
    for (PolicyKind p : policies)
        h.update(toString(p)).update(",");
    h.updateU64(suite.size());
    for (const BenchmarkProfile &p : suite) {
        h.update(p.name).update(",");
        h.updateU64(p.parameterHash());
    }
    return h.digest();
}

std::uint64_t
campaignCellSeed(std::uint64_t fingerprint,
                 std::uint64_t base_seed, std::size_t policy,
                 std::size_t workload)
{
    persist::Fnv1a h;
    h.updateU64(fingerprint);
    h.updateU64(base_seed);
    h.updateU64(policy);
    h.updateU64(workload);
    const std::uint64_t seed = h.digest();
    return seed ? seed : 0x9e3779b97f4a7c15ULL;
}

std::size_t
Campaign::policyIndex(PolicyKind kind) const
{
    for (std::size_t i = 0; i < policies.size(); ++i) {
        if (policies[i] == kind)
            return i;
    }
    WSEL_FATAL("campaign has no data for policy " << toString(kind));
}

std::vector<double>
Campaign::perWorkloadThroughputs(std::size_t policy_idx,
                                 ThroughputMetric m) const
{
    std::vector<double> t(workloads.size());
    perWorkloadThroughputsInto(policy_idx, m,
                               {t.data(), t.size()});
    return t;
}

void
Campaign::perWorkloadThroughputsInto(std::size_t policy_idx,
                                     ThroughputMetric m,
                                     std::span<double> out) const
{
    if (policy_idx >= policies.size())
        WSEL_FATAL("policy index " << policy_idx << " out of range");
    if (out.size() != workloads.size())
        WSEL_FATAL("throughput buffer has " << out.size()
                                            << " slots for "
                                            << workloads.size()
                                            << " workloads");
    std::vector<double> refs(cores, 1.0);
    workloads.forEach(
        [&](std::size_t w, std::span<const std::uint32_t> benches) {
            for (std::size_t k = 0; k < cores; ++k)
                refs[k] = refIpc[benches[k]];
            out[w] = perWorkloadThroughput(
                m, ipc.cell(policy_idx, w), refs);
        });
}

double
Campaign::mips() const
{
    if (simSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(instructions) / simSeconds / 1e6;
}

void
Campaign::save(const std::string &path) const
{
    std::ostringstream os;
    os << "wsel-campaign,v2\n";
    os << "fingerprint," << persist::toHex(fingerprint) << "\n";
    os << "simulator," << simulator << "\n";
    os << "cores," << cores << "\n";
    os << "target," << targetUops << "\n";
    os << "simseconds," << simSeconds << "\n";
    os << "instructions," << instructions << "\n";
    os << "policies,";
    for (std::size_t i = 0; i < policies.size(); ++i)
        os << (i ? ";" : "") << toString(policies[i]);
    os << "\n";
    os << "benchmarks,";
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        os << (i ? ";" : "") << benchmarks[i];
    os << "\n";
    os << "refipc,";
    os.precision(17);
    for (std::size_t i = 0; i < refIpc.size(); ++i)
        os << (i ? ";" : "") << refIpc[i];
    os << "\n";
    os << "nworkloads," << workloads.size() << "\n";
    workloads.forEach(
        [&](std::size_t, std::span<const std::uint32_t> benches) {
            os << "w,";
            for (std::size_t k = 0; k < benches.size(); ++k)
                os << (k ? ";" : "") << benches[k];
            os << "\n";
        });
    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            os << "i," << p << "," << w << ",";
            const auto cell = ipc.cell(p, w);
            for (std::size_t k = 0; k < cell.size(); ++k)
                os << (k ? ";" : "") << cell[k];
            os << "\n";
        }
    }
    const std::string body = os.str();
    const std::string footer =
        "footer," +
        std::to_string(policies.size() * workloads.size()) + "," +
        persist::toHex(persist::fnv1a(body)) + "\n";
    persist::atomicWriteFile(path, body + footer);
}

Campaign
Campaign::load(const std::string &path, LoadMode mode)
{
    try {
        if (persist::isV3CampaignDir(path))
            return loadV3Impl(path);
        return loadImpl(path);
    } catch (const persist::CacheInvalid &e) {
        if (mode == LoadMode::Strict)
            WSEL_FATAL("campaign file " << path << ": " << e.what());
        const std::string moved = persist::quarantineFile(path);
        warn("corrupt campaign cache at " + path + " (" + e.what() +
             ")" +
             (moved.empty() ? "" : "; quarantined to " + moved) +
             "; re-simulating");
        throw;
    }
}

Campaign
runBadcoCampaign(const WorkloadSet &workloads,
                 const std::vector<PolicyKind> &policies,
                 std::uint32_t cores, std::uint64_t target_uops,
                 BadcoModelStore &store,
                 const std::vector<BenchmarkProfile> &suite,
                 const CampaignOptions &opts)
{
    if (workloads.empty() || policies.empty())
        WSEL_FATAL("campaign needs workloads and policies");
    Campaign c;
    c.simulator = "badco";
    c.cores = cores;
    c.targetUops = target_uops;
    c.policies = policies;
    for (const BenchmarkProfile &p : suite)
        c.benchmarks.push_back(p.name);
    c.workloads = workloads;
    c.fingerprint = campaignFingerprint(c.simulator, cores,
                                        target_uops, policies,
                                        suite);

    const std::vector<const BadcoModel *> models =
        store.getSuite(suite, exec::resolveJobs(opts.jobs));

    {
        UncoreConfig ref =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        BadcoMulticoreSim ref_sim(ref, 1, target_uops, opts.seed);
        c.refIpc = ref_sim.referenceIpcs(models);
    }

    c.ipc.reshape(policies.size(), workloads.size(), cores);
    auto journal =
        openJournal(opts, c, policies.size(), workloads.size());
    std::vector<UncoreConfig> ucfgs;
    ucfgs.reserve(policies.size());
    for (PolicyKind p : policies)
        ucfgs.push_back(UncoreConfig::forCores(cores, p));
    runCells(c, opts, journal.get(), "badco",
             [&](std::size_t p, std::size_t w,
                 std::uint64_t seed) -> SimResult {
                 const BadcoMulticoreSim sim(ucfgs[p], cores,
                                             target_uops, seed);
                 const Workload wl = workloads[w];
                 return sim.run(wl, models);
             });
    return c;
}

Campaign
runDetailedCampaign(const WorkloadSet &workloads,
                    const std::vector<PolicyKind> &policies,
                    std::uint32_t cores, std::uint64_t target_uops,
                    const CoreConfig &core_cfg,
                    const std::vector<BenchmarkProfile> &suite,
                    const CampaignOptions &opts)
{
    if (workloads.empty() || policies.empty())
        WSEL_FATAL("campaign needs workloads and policies");
    Campaign c;
    c.simulator = "detailed";
    c.cores = cores;
    c.targetUops = target_uops;
    c.policies = policies;
    for (const BenchmarkProfile &p : suite)
        c.benchmarks.push_back(p.name);
    c.workloads = workloads;
    c.fingerprint = campaignFingerprint(c.simulator, cores,
                                        target_uops, policies,
                                        suite);

    // Materialize each benchmark's trace chunks once, up front:
    // every cell's cursors then stream from the shared store instead
    // of re-generating the µop stream cores x cells times
    // (docs/PERFORMANCE.md).  Chunk content is a pure function of
    // the profile, so the build order across the suite is free.
    {
        TraceStore &ts = TraceStore::global();
        const unsigned jobs = exec::resolveJobs(opts.jobs);
        if (jobs <= 1 || suite.size() <= 1) {
            for (const BenchmarkProfile &p : suite)
                ts.ensureBuilt(p, target_uops);
        } else {
            exec::ThreadPool pool(std::min<std::size_t>(
                jobs, suite.size()));
            exec::parallel_for(pool, 0, suite.size(),
                               [&](std::size_t i) {
                                   ts.ensureBuilt(suite[i],
                                                  target_uops);
                               });
        }
    }

    {
        UncoreConfig ref =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        DetailedMulticoreSim ref_sim(core_cfg, ref, 1, target_uops,
                                     opts.seed);
        c.refIpc = ref_sim.referenceIpcs(suite);
    }

    c.ipc.reshape(policies.size(), workloads.size(), cores);
    auto journal =
        openJournal(opts, c, policies.size(), workloads.size());
    std::vector<UncoreConfig> ucfgs;
    ucfgs.reserve(policies.size());
    for (PolicyKind p : policies)
        ucfgs.push_back(UncoreConfig::forCores(cores, p));
    runCells(c, opts, journal.get(), "detailed",
             [&](std::size_t p, std::size_t w,
                 std::uint64_t seed) -> SimResult {
                 const DetailedMulticoreSim sim(core_cfg, ucfgs[p],
                                                cores, target_uops,
                                                seed);
                 const Workload wl = workloads[w];
                 return sim.run(wl, suite);
             });
    return c;
}

} // namespace wsel
