#include "sim/campaign.hh"

#include <fstream>
#include <iostream>
#include <sstream>

#include "stats/logging.hh"

namespace wsel
{

namespace
{

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

void
progress(const CampaignOptions &opts, const std::string &what,
         std::size_t done, std::size_t total)
{
    if (!opts.verbose || opts.progressEvery == 0)
        return;
    if (done % opts.progressEvery == 0 || done == total) {
        std::cerr << "  [" << what << "] " << done << "/" << total
                  << "\n";
    }
}

} // namespace

std::size_t
Campaign::policyIndex(PolicyKind kind) const
{
    for (std::size_t i = 0; i < policies.size(); ++i) {
        if (policies[i] == kind)
            return i;
    }
    WSEL_FATAL("campaign has no data for policy " << toString(kind));
}

std::vector<double>
Campaign::perWorkloadThroughputs(std::size_t policy_idx,
                                 ThroughputMetric m) const
{
    if (policy_idx >= policies.size())
        WSEL_FATAL("policy index " << policy_idx << " out of range");
    std::vector<double> t;
    t.reserve(workloads.size());
    std::vector<double> refs(cores, 1.0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<double> &ipcs = ipc[policy_idx][w];
        for (std::size_t k = 0; k < cores; ++k)
            refs[k] = refIpc[workloads[w][k]];
        t.push_back(perWorkloadThroughput(m, ipcs, refs));
    }
    return t;
}

double
Campaign::mips() const
{
    if (simSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(instructions) / simSeconds / 1e6;
}

void
Campaign::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        WSEL_FATAL("cannot open '" << path << "' for writing");
    os << "wsel-campaign,v1\n";
    os << "simulator," << simulator << "\n";
    os << "cores," << cores << "\n";
    os << "target," << targetUops << "\n";
    os << "simseconds," << simSeconds << "\n";
    os << "instructions," << instructions << "\n";
    os << "policies,";
    for (std::size_t i = 0; i < policies.size(); ++i)
        os << (i ? ";" : "") << toString(policies[i]);
    os << "\n";
    os << "benchmarks,";
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        os << (i ? ";" : "") << benchmarks[i];
    os << "\n";
    os << "refipc,";
    os.precision(17);
    for (std::size_t i = 0; i < refIpc.size(); ++i)
        os << (i ? ";" : "") << refIpc[i];
    os << "\n";
    os << "nworkloads," << workloads.size() << "\n";
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        os << "w,";
        for (std::size_t k = 0; k < workloads[w].size(); ++k)
            os << (k ? ";" : "") << workloads[w][k];
        os << "\n";
    }
    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            os << "i," << p << "," << w << ",";
            for (std::size_t k = 0; k < ipc[p][w].size(); ++k)
                os << (k ? ";" : "") << ipc[p][w][k];
            os << "\n";
        }
    }
}

Campaign
Campaign::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        WSEL_FATAL("cannot open '" << path << "' for reading");
    Campaign c;
    std::string line;
    auto next = [&](const std::string &tag) -> std::string {
        if (!std::getline(is, line))
            WSEL_FATAL("truncated campaign file " << path);
        const auto f = splitOn(line, ',');
        if (f.size() < 2 || f[0] != tag)
            WSEL_FATAL("expected '" << tag << "' line in " << path
                                    << ", got '" << line << "'");
        return f[1];
    };
    if (next("wsel-campaign") != "v1")
        WSEL_FATAL("unsupported campaign version in " << path);
    c.simulator = next("simulator");
    c.cores = static_cast<std::uint32_t>(std::stoul(next("cores")));
    c.targetUops = std::stoull(next("target"));
    c.simSeconds = std::stod(next("simseconds"));
    c.instructions = std::stoull(next("instructions"));
    for (const std::string &p : splitOn(next("policies"), ';'))
        c.policies.push_back(parsePolicyKind(p));
    for (const std::string &b : splitOn(next("benchmarks"), ';'))
        c.benchmarks.push_back(b);
    for (const std::string &r : splitOn(next("refipc"), ';'))
        c.refIpc.push_back(std::stod(r));
    const std::size_t nw = std::stoull(next("nworkloads"));
    c.workloads.reserve(nw);
    for (std::size_t w = 0; w < nw; ++w) {
        if (!std::getline(is, line))
            WSEL_FATAL("truncated workload list in " << path);
        const auto f = splitOn(line, ',');
        if (f.size() != 2 || f[0] != "w")
            WSEL_FATAL("bad workload line '" << line << "'");
        std::vector<std::uint32_t> benches;
        for (const std::string &b : splitOn(f[1], ';'))
            benches.push_back(
                static_cast<std::uint32_t>(std::stoul(b)));
        c.workloads.push_back(Workload(std::move(benches)));
    }
    c.ipc.assign(c.policies.size(),
                 std::vector<std::vector<double>>(nw));
    std::size_t rows = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const auto f = splitOn(line, ',');
        if (f.size() != 4 || f[0] != "i")
            WSEL_FATAL("bad ipc line '" << line << "'");
        const std::size_t p = std::stoull(f[1]);
        const std::size_t w = std::stoull(f[2]);
        if (p >= c.policies.size() || w >= nw)
            WSEL_FATAL("ipc line out of range in " << path);
        std::vector<double> ipcs;
        for (const std::string &v : splitOn(f[3], ';'))
            ipcs.push_back(std::stod(v));
        c.ipc[p][w] = std::move(ipcs);
        ++rows;
    }
    if (rows != c.policies.size() * nw)
        WSEL_FATAL("campaign file " << path << " has " << rows
                   << " ipc rows, expected "
                   << c.policies.size() * nw);
    return c;
}

Campaign
runBadcoCampaign(const std::vector<Workload> &workloads,
                 const std::vector<PolicyKind> &policies,
                 std::uint32_t cores, std::uint64_t target_uops,
                 BadcoModelStore &store,
                 const std::vector<BenchmarkProfile> &suite,
                 const CampaignOptions &opts)
{
    if (workloads.empty() || policies.empty())
        WSEL_FATAL("campaign needs workloads and policies");
    Campaign c;
    c.simulator = "badco";
    c.cores = cores;
    c.targetUops = target_uops;
    c.policies = policies;
    for (const BenchmarkProfile &p : suite)
        c.benchmarks.push_back(p.name);
    c.workloads = workloads;

    const std::vector<const BadcoModel *> models =
        store.getSuite(suite);

    {
        UncoreConfig ref =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        BadcoMulticoreSim ref_sim(ref, 1, target_uops, opts.seed);
        c.refIpc = ref_sim.referenceIpcs(models);
    }

    c.ipc.assign(policies.size(),
                 std::vector<std::vector<double>>(workloads.size()));
    const std::size_t total = policies.size() * workloads.size();
    std::size_t done = 0;
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const UncoreConfig ucfg =
            UncoreConfig::forCores(cores, policies[p]);
        const BadcoMulticoreSim sim(ucfg, cores, target_uops,
                                    opts.seed);
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const SimResult r = sim.run(workloads[w], models);
            c.ipc[p][w] = r.ipc;
            c.simSeconds += r.wallSeconds;
            c.instructions += r.instructions;
            progress(opts, "badco " + toString(policies[p]), ++done,
                     total);
        }
    }
    return c;
}

Campaign
runDetailedCampaign(const std::vector<Workload> &workloads,
                    const std::vector<PolicyKind> &policies,
                    std::uint32_t cores, std::uint64_t target_uops,
                    const CoreConfig &core_cfg,
                    const std::vector<BenchmarkProfile> &suite,
                    const CampaignOptions &opts)
{
    if (workloads.empty() || policies.empty())
        WSEL_FATAL("campaign needs workloads and policies");
    Campaign c;
    c.simulator = "detailed";
    c.cores = cores;
    c.targetUops = target_uops;
    c.policies = policies;
    for (const BenchmarkProfile &p : suite)
        c.benchmarks.push_back(p.name);
    c.workloads = workloads;

    {
        UncoreConfig ref =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        DetailedMulticoreSim ref_sim(core_cfg, ref, 1, target_uops,
                                     opts.seed);
        c.refIpc = ref_sim.referenceIpcs(suite);
    }

    c.ipc.assign(policies.size(),
                 std::vector<std::vector<double>>(workloads.size()));
    const std::size_t total = policies.size() * workloads.size();
    std::size_t done = 0;
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const UncoreConfig ucfg =
            UncoreConfig::forCores(cores, policies[p]);
        const DetailedMulticoreSim sim(core_cfg, ucfg, cores,
                                       target_uops, opts.seed);
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const SimResult r = sim.run(workloads[w], suite);
            c.ipc[p][w] = r.ipc;
            c.simSeconds += r.wallSeconds;
            c.instructions += r.instructions;
            progress(opts, "detailed " + toString(policies[p]),
                     ++done, total);
        }
    }
    return c;
}

} // namespace wsel
