#include "sim/batch.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "cache/tagscan.hh"
#include "mem/numa.hh"
#include "obs/metrics.hh"
#include "stats/logging.hh"

namespace wsel
{

std::uint32_t
resolveBatchCells(std::uint32_t requested)
{
    std::uint64_t b = requested;
    if (b == 0) {
        b = kDefaultBatchCells;
        if (const char *env = std::getenv("WSEL_BATCH_CELLS");
            env && *env) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && v > 0) {
                b = v;
            } else {
                warn("ignoring invalid WSEL_BATCH_CELLS '" +
                     std::string(env) + "' (want a positive cell "
                     "count)");
            }
        }
    }
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        b, 1, kMaxBatchCells));
}

std::uint32_t
resolveBatchWave(std::uint32_t requested)
{
    std::uint64_t w = requested;
    if (w == 0) {
        w = kDefaultBatchWave;
        if (const char *env = std::getenv("WSEL_BATCH_WAVE");
            env && *env) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && v > 0) {
                w = v;
            } else {
                warn("ignoring invalid WSEL_BATCH_WAVE '" +
                     std::string(env) + "' (want a positive wave "
                     "width)");
            }
        }
    }
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        w, 1, kMaxBatchCells));
}

std::size_t
estimateUncoreFootprint(const UncoreConfig &cfg,
                        std::uint32_t cores)
{
    const std::uint64_t lines =
        cfg.llc.sizeBytes / cfg.llc.lineBytes;
    // Packed tag (4 B) + dirty byte + ~8 B/line of replacement
    // state covers LRU ranks and dueling metadata.
    std::size_t bytes = static_cast<std::size_t>(lines) * 13;
    bytes += 4096 * 16;                            // page table
    bytes += static_cast<std::size_t>(cores) * 512 * 16; // xlate
    bytes += static_cast<std::size_t>(cores) * 4096; // prefetchers
    bytes += 16384; // MSHRs, write buffer, counters, slack
    return bytes;
}

namespace
{

/** WSEL_WAVE_MEM in bytes (MiB knob, default kDefaultWaveMemMib). */
std::uint64_t
waveBudgetBytes()
{
    std::uint64_t mib = kDefaultWaveMemMib;
    if (const char *env = std::getenv("WSEL_WAVE_MEM");
        env && *env) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && v > 0) {
            mib = v;
        } else {
            warn("ignoring invalid WSEL_WAVE_MEM '" +
                 std::string(env) + "' (want a positive MiB "
                 "budget)");
        }
    }
    return mib << 20;
}

/**
 * Final wave width: within the batch, and small enough that W
 * resident uncores (worst policy) fit the WSEL_WAVE_MEM budget.
 */
std::uint32_t
clampWave(std::uint32_t wave, std::uint32_t batch_cells,
          std::span<const UncoreConfig> ucfgs, std::uint32_t cores)
{
    wave = std::clamp<std::uint32_t>(wave, 1, kMaxBatchCells);
    wave = std::min(wave, batch_cells);
    if (wave <= 1 || ucfgs.empty())
        return wave;
    std::size_t worst = 1;
    for (const UncoreConfig &cfg : ucfgs)
        worst = std::max(worst, estimateUncoreFootprint(cfg, cores));
    const std::uint64_t allowed = std::max<std::uint64_t>(
        1, waveBudgetBytes() / worst);
    if (allowed < wave) {
        warn("clamping --batch-wave " + std::to_string(wave) +
             " to " + std::to_string(allowed) +
             ": resident uncores (~" +
             std::to_string(worst >> 10) +
             " KiB each) exceed the WSEL_WAVE_MEM budget");
        wave = static_cast<std::uint32_t>(allowed);
    }
    return wave;
}

} // namespace

BadcoBatchRunner::BadcoBatchRunner(
    std::span<const UncoreConfig> ucfgs, std::uint32_t cores,
    std::uint64_t target_uops,
    const std::vector<const BadcoModel *> &models,
    std::uint32_t batch_cells, std::uint32_t wave,
    std::uint32_t window, std::uint32_t max_outstanding,
    std::uint64_t quantum)
    : ucfgs_(ucfgs), cores_(cores), targetUops_(target_uops),
      models_(models),
      batchCells_(std::clamp<std::uint32_t>(batch_cells, 1,
                                            kMaxBatchCells)),
      wave_(clampWave(wave, batchCells_, ucfgs, cores)),
      windowOverride_(window), maxOutstanding_(max_outstanding),
      quantum_(quantum)
{
    if (cores_ == 0)
        WSEL_FATAL("need at least one core");
    if (targetUops_ == 0)
        WSEL_FATAL("target µop count cannot be zero");
    if (quantum_ == 0)
        WSEL_FATAL("quantum cannot be zero");
    if (maxOutstanding_ == 0)
        WSEL_FATAL("degenerate BADCO machine limits");

    const std::size_t lanes =
        static_cast<std::size_t>(batchCells_) * cores_;
    cellSeed_.resize(batchCells_);
    cellPolicy_.resize(batchCells_);
    cellOut_.resize(batchCells_);
    cellLoads_.resize(batchCells_);
    clock_.resize(lanes);
    totalUops_.resize(lanes);
    nodeIdx_.resize(lanes);
    loadSeq_.resize(lanes);
    outMin_.resize(lanes);
    outCnt_.resize(lanes);
    cyclesToTarget_.resize(lanes);
    laneWindow_.resize(lanes);
    laneModel_.resize(lanes);
    loadOff_.resize(lanes);
    outComp_.resize(lanes * maxOutstanding_);
    outMark_.resize(lanes * maxOutstanding_);

    // The resizes above first-touch every slab on this thread — the
    // worker that will step the lanes — so kernel-default placement
    // is already node-local; WSEL_NUMA=interleave re-spreads the
    // big slabs instead (mem/numa.hh).
    numa::placeSlab(clock_.data(),
                    clock_.size() * sizeof(clock_[0]));
    numa::placeSlab(totalUops_.data(),
                    totalUops_.size() * sizeof(totalUops_[0]));
    numa::placeSlab(cyclesToTarget_.data(),
                    cyclesToTarget_.size() *
                        sizeof(cyclesToTarget_[0]));
    numa::placeSlab(outComp_.data(),
                    outComp_.size() * sizeof(outComp_[0]));
    numa::placeSlab(outMark_.data(),
                    outMark_.size() * sizeof(outMark_[0]));

    if (wave_ > 1) {
        waveUnc_.reserve(wave_);
        waveT_.reserve(wave_);
        waveFirst_.reserve(wave_);
        waveRot_.reserve(wave_);
        waveDone_.reserve(wave_);
        waveStepping_.reserve(wave_);
        wavePhase_.reserve(wave_);
        wavePend_.resize(wave_);
        waveResume_.reserve(wave_);
        wavePendCell_.reserve(wave_);
        waveProbe_.reserve(wave_);
        waveWay_.reserve(wave_);
    }

    if (obs::metricsEnabled()) {
        obs::gauge("batch.simd_path")
            .set(static_cast<double>(tagscan::activePath()));
        obs::gauge("batch.wave").set(static_cast<double>(wave_));
    }
}

void
BadcoBatchRunner::add(std::uint64_t seed, std::uint32_t policy,
                      std::span<const std::uint32_t> benches,
                      double *out_ipc)
{
    if (full())
        run();
    if (benches.size() != cores_)
        WSEL_FATAL("workload has " << benches.size()
                                   << " threads for " << cores_
                                   << " cores");
    if (policy >= ucfgs_.size())
        WSEL_FATAL("cell references policy " << policy
                   << " outside the campaign's " << ucfgs_.size());

    const std::size_t b = cells_;
    // Cells execute one at a time (cell-major run()), so every
    // cell's lanes share the same load-completion arena region —
    // the arena is sized for the largest single cell, not the
    // whole batch.
    std::size_t load_watermark = 0;
    cellSeed_[b] = seed;
    cellPolicy_[b] = policy;
    cellOut_[b] = out_ipc;
    for (std::uint32_t k = 0; k < cores_; ++k) {
        const std::uint32_t bench = benches[k];
        if (bench >= models_.size() || models_[bench] == nullptr)
            WSEL_FATAL("no BADCO model for benchmark " << bench);
        const BadcoModel &model = *models_[bench];
        if (model.traceUops == 0 || model.intrinsicCycles == 0)
            WSEL_FATAL("empty BADCO model for " << model.benchmark);
        if (!model.finalized)
            WSEL_FATAL("BADCO model for " << model.benchmark
                       << " was not finalize()d");
        const std::uint32_t window =
            windowOverride_ == 0 ? model.window : windowOverride_;
        if (window == 0)
            WSEL_FATAL("degenerate BADCO machine limits");
        const std::size_t lane =
            static_cast<std::size_t>(b) * cores_ + k;
        clock_[lane] = 0;
        totalUops_[lane] = 0;
        nodeIdx_[lane] = 0;
        loadSeq_[lane] = 0;
        outMin_[lane] = UINT64_MAX;
        outCnt_[lane] = 0;
        cyclesToTarget_[lane] = 0;
        laneWindow_[lane] = window;
        laneModel_[lane] = &model;
        loadOff_[lane] = load_watermark;
        load_watermark += model.loadCount;
    }
    cellLoads_[b] = load_watermark;
    if (loadComp_.size() < load_watermark)
        loadComp_.resize(load_watermark);
    ++cells_;
}

void
BadcoBatchRunner::run()
{
    if (cells_ == 0)
        return;
    const bool metrics = obs::metricsEnabled();
    obs::Gauge *lanes_active = nullptr;
    if (metrics) {
        static obs::Counter &cellsC = obs::counter("batch.cells");
        static obs::Gauge &lanesG =
            obs::gauge("batch.lanes_active");
        cellsC.inc(cells_);
        lanes_active = &lanesG;
        lanesG.set(static_cast<double>(cells_ * cores_));
    }

    // Wavefront mode interleaves cells; a wave of one (or one
    // pending cell) degenerates to cell-major exactly.
    if (wave_ > 1 && cells_ > 1) {
        runWavefront();
        return;
    }

    // Cell-major execution: each cell runs to completion under the
    // rotating-quantum schedule of BadcoMulticoreSim::run before
    // the next cell starts. Cells share nothing, so this ordering
    // is bitwise identical to any cross-cell interleaving — and it
    // keeps one uncore's working set hot instead of cycling B of
    // them through the host cache every quantum.
    for (std::size_t b = 0; b < cells_; ++b) {
        uncore_.emplace(ucfgs_[cellPolicy_[b]], cores_,
                        cellSeed_[b]);
        Uncore &unc = *uncore_;
        const std::size_t base = b * cores_;
        std::uint64_t t = 0;
        std::uint32_t first = 0;
        for (;;) {
            bool all_done = true;
            for (std::uint32_t k = 0; k < cores_; ++k)
                all_done =
                    all_done && cyclesToTarget_[base + k] != 0;
            if (all_done)
                break;
            t += quantum_;
            for (std::uint32_t i = 0; i < cores_; ++i) {
                std::uint32_t k = first + i;
                if (k >= cores_)
                    k -= cores_;
                const std::size_t lane = base + k;
                if (clock_[lane] < t)
                    runLane(lane, unc, k, t);
            }
            first = first + 1 == cores_ ? 0 : first + 1;
        }
        double *out = cellOut_[b];
        for (std::uint32_t k = 0; k < cores_; ++k)
            out[k] = static_cast<double>(targetUops_) /
                     static_cast<double>(cyclesToTarget_[base + k]);
        uncore_.reset();
        if (lanes_active)
            lanes_active->set(static_cast<double>(
                (cells_ - b - 1) * cores_));
    }
    cells_ = 0;
}

void
BadcoBatchRunner::runLane(std::size_t lane, Uncore &unc,
                          std::uint32_t core, std::uint64_t until)
{
    // Lane state in locals for the step loop; written back once at
    // quantum end. The loop body is BadcoMachine::step() operation
    // for operation (minus the pure stall/request counters, which
    // never feed back into timing) — any divergence here breaks
    // the bitwise-identity contract, so change both together.
    std::uint64_t clk = clock_[lane];
    std::uint64_t tu = totalUops_[lane];
    std::size_t ni = nodeIdx_[lane];
    std::uint64_t seq = loadSeq_[lane];
    std::uint64_t omin = outMin_[lane];
    std::uint32_t ocnt = outCnt_[lane];
    std::uint64_t ctt = cyclesToTarget_[lane];
    const std::uint32_t window = laneWindow_[lane];
    const BadcoModel &model = *laneModel_[lane];
    const std::size_t ncount = model.nodeWeight.size();
    const std::uint32_t *nw = model.nodeWeight.data();
    const std::uint32_t *nu = model.nodeUops.data();
    const std::uint64_t *nv = model.nodeVaddr.data();
    const std::uint64_t *npc = model.nodePc.data();
    const std::uint8_t *nt = model.nodeType.data();
    const std::int64_t *nd = model.nodeDependsOn.data();
    std::uint64_t *ocomp =
        outComp_.data() +
        static_cast<std::size_t>(lane) * maxOutstanding_;
    std::uint64_t *omark =
        outMark_.data() +
        static_cast<std::size_t>(lane) * maxOutstanding_;
    std::uint64_t *lcomp = loadComp_.data() + loadOff_[lane];

    const auto expire = [&] {
        if (omin > clk)
            return;
        std::uint64_t min = UINT64_MAX;
        std::uint32_t n = 0;
        for (std::uint32_t j = 0; j < ocnt; ++j) {
            if (ocomp[j] > clk) {
                ocomp[n] = ocomp[j];
                omark[n] = omark[j];
                min = std::min(min, ocomp[j]);
                ++n;
            }
        }
        ocnt = n;
        omin = min;
    };
    const auto check_target = [&] {
        if (ctt != 0 || tu < targetUops_)
            return;
        std::uint64_t t = clk;
        for (std::uint32_t j = 0; j < ocnt; ++j)
            t = std::max(t, ocomp[j]);
        ctt = std::max<std::uint64_t>(t, 1);
    };

    while (clk < until) {
        if (ni >= ncount) {
            // Tail of the slice, then thread restart.
            clk += model.tailWeight;
            tu += model.tailUops;
            check_target();
            ni = 0;
            seq = 0;
            continue;
        }
        const std::size_t i = ni;

        clk += nw[i];
        tu += nu[i];
        expire();

        for (std::uint32_t j = 0; j < ocnt; ++j) {
            if (tu <= omark[j] + window)
                break;
            if (ocomp[j] > clk)
                clk = ocomp[j];
        }
        expire();

        const std::uint64_t vaddr = nv[i];
        const std::uint64_t pc = npc[i];
        switch (static_cast<BadcoReqType>(nt[i])) {
          case BadcoReqType::Load: {
            const std::int64_t depends_on = nd[i];
            if (depends_on >= 0) {
                WSEL_ASSERT(
                    static_cast<std::uint64_t>(depends_on) < seq,
                    "forward load dependency in model");
                const std::uint64_t dep_done = lcomp[depends_on];
                if (dep_done > clk) {
                    clk = dep_done;
                    expire();
                }
            }
            if (ocnt >= maxOutstanding_) {
                if (omin > clk)
                    clk = omin;
                expire();
            }
            const std::uint64_t comp =
                unc.access(clk, core, vaddr, false, pc, false);
            ocomp[ocnt] = comp;
            omark[ocnt] = tu;
            ++ocnt;
            omin = std::min(omin, comp);
            WSEL_ASSERT(seq < model.loadCount,
                        "load numbering overflow");
            lcomp[seq++] = comp;
            break;
          }
          case BadcoReqType::Store:
            unc.access(clk, core, vaddr, true, pc, false);
            break;
          case BadcoReqType::Prefetch:
            unc.access(clk, core, vaddr, false, pc, true);
            break;
          case BadcoReqType::Writeback:
            unc.writeback(clk, core, vaddr);
            break;
        }
        check_target();
        ++ni;
    }

    clock_[lane] = clk;
    totalUops_[lane] = tu;
    nodeIdx_[lane] = ni;
    loadSeq_[lane] = seq;
    outMin_[lane] = omin;
    outCnt_[lane] = ocnt;
    cyclesToTarget_[lane] = ctt;
}

void
BadcoBatchRunner::runWavefront()
{
    const bool metrics = obs::metricsEnabled();
    obs::Counter *probes_gathered = nullptr;
    obs::Gauge *resident = nullptr;
    obs::Gauge *lanes_active = nullptr;
    if (metrics) {
        static obs::Counter &probesC =
            obs::counter("batch.probes_gathered");
        static obs::Gauge &residentG =
            obs::gauge("batch.uncores_resident");
        static obs::Gauge &lanesG =
            obs::gauge("batch.lanes_active");
        probes_gathered = &probesC;
        resident = &residentG;
        lanes_active = &lanesG;
    }

    // Waves of up to W cells advance in lockstep. Each cell runs
    // its own copy of the cell-major control flow — the all-done
    // check, the quantum advance, the rotating lane schedule — so
    // its uncore sees the exact request sequence cell-major issues;
    // only *between* cells does execution interleave, which the
    // share-nothing contract makes unobservable.
    for (std::size_t g0 = 0; g0 < cells_; g0 += wave_) {
        const std::size_t gn =
            std::min<std::size_t>(wave_, cells_ - g0);
        waveUnc_.clear();
        waveUnc_.resize(gn);
        for (std::size_t c = 0; c < gn; ++c)
            waveUnc_[c].emplace(ucfgs_[cellPolicy_[g0 + c]],
                                cores_, cellSeed_[g0 + c]);
        // Cell-major execution lets every cell reuse one
        // loadComp_ region; resident cells must not — give each
        // wave slot its own stride-sized region.
        waveLoadStride_ = 0;
        for (std::size_t c = 0; c < gn; ++c)
            waveLoadStride_ =
                std::max(waveLoadStride_, cellLoads_[g0 + c]);
        if (loadComp_.size() < gn * waveLoadStride_)
            loadComp_.resize(gn * waveLoadStride_);
        if (resident)
            resident->set(static_cast<double>(gn));
        waveT_.assign(gn, 0);
        waveFirst_.assign(gn, 0);
        waveRot_.assign(gn, 0);
        waveDone_.assign(gn, 0);
        waveStepping_.assign(gn, 0);
        wavePhase_.assign(gn, kPhaseTop);
        waveResume_.assign(gn, UINT32_MAX);

        std::size_t remaining = gn;
        while (remaining > 0) {
            // Quantum head, per cell: the all-done test over the
            // cell's lanes (hoisted into a branchless lane-parallel
            // count over the cyclesToTarget_ slab) and the t
            // advance of the rotating schedule.
            std::size_t stepping = 0;
            for (std::size_t c = 0; c < gn; ++c) {
                if (waveDone_[c])
                    continue;
                const std::uint64_t *ctt =
                    cyclesToTarget_.data() + (g0 + c) * cores_;
                std::uint32_t live = 0;
                for (std::uint32_t k = 0; k < cores_; ++k)
                    live += ctt[k] == 0;
                if (live == 0) {
                    waveDone_[c] = 1;
                    --remaining;
                    continue;
                }
                waveT_[c] += quantum_;
                waveRot_[c] = 0;
                waveStepping_[c] = 1;
                ++stepping;
            }

            // Drive every stepping cell through its quantum. A cell
            // parks when a lane reaches its LLC tag scan; at the end
            // of each sweep all parked probes — one per cell, all
            // against disjoint tag arrays — resolve in one gathered
            // SIMD sweep, and the next sweep resumes them.
            while (stepping > 0) {
                wavePendCell_.clear();
                for (std::size_t c = 0; c < gn; ++c) {
                    if (!waveStepping_[c])
                        continue;
                    const std::size_t base = (g0 + c) * cores_;
                    bool parked = false;
                    while (waveRot_[c] < cores_) {
                        std::uint32_t k =
                            waveFirst_[c] + waveRot_[c];
                        if (k >= cores_)
                            k -= cores_;
                        const std::size_t lane = base + k;
                        if (wavePhase_[c] == kPhaseTop &&
                            clock_[lane] >= waveT_[c]) {
                            ++waveRot_[c];
                            continue;
                        }
                        parked = runLaneWave(c, lane, *waveUnc_[c],
                                             k, waveT_[c]);
                        if (parked)
                            break;
                        ++waveRot_[c];
                    }
                    if (parked) {
                        wavePendCell_.push_back(
                            static_cast<std::uint32_t>(c));
                    } else {
                        waveStepping_[c] = 0;
                        --stepping;
                        waveFirst_[c] =
                            waveFirst_[c] + 1 == cores_
                                ? 0
                                : waveFirst_[c] + 1;
                    }
                }
                if (!wavePendCell_.empty()) {
                    waveProbe_.clear();
                    waveWay_.resize(wavePendCell_.size());
                    for (const std::uint32_t c : wavePendCell_)
                        waveProbe_.push_back(
                            waveUnc_[c]->llcProbe(wavePend_[c]));
                    tagscan::findMany(waveProbe_.data(),
                                      waveProbe_.size(),
                                      waveWay_.data());
                    if (probes_gathered)
                        probes_gathered->inc(waveProbe_.size());
                    for (std::size_t i = 0;
                         i < wavePendCell_.size(); ++i)
                        waveResume_[wavePendCell_[i]] =
                            waveWay_[i];
                }
            }
        }

        for (std::size_t c = 0; c < gn; ++c) {
            double *out = cellOut_[g0 + c];
            const std::size_t base = (g0 + c) * cores_;
            for (std::uint32_t k = 0; k < cores_; ++k)
                out[k] =
                    static_cast<double>(targetUops_) /
                    static_cast<double>(cyclesToTarget_[base + k]);
        }
        waveUnc_.clear();
        if (lanes_active)
            lanes_active->set(static_cast<double>(
                (cells_ - std::min(cells_, g0 + gn)) * cores_));
    }
    if (resident)
        resident->set(0.0);
    cells_ = 0;
}

bool
BadcoBatchRunner::runLaneWave(std::size_t slot, std::size_t lane,
                              Uncore &unc, std::uint32_t core,
                              std::uint64_t until)
{
    // runLane() with a park point at every LLC access: identical
    // locals, identical step loop — change the two together. The
    // only divergence is *where* the tag scan happens (gathered by
    // the wave driver instead of inline in Uncore::access), which
    // accessBegin/accessFinish make structurally equivalent.
    std::uint64_t clk = clock_[lane];
    std::uint64_t tu = totalUops_[lane];
    std::size_t ni = nodeIdx_[lane];
    std::uint64_t seq = loadSeq_[lane];
    std::uint64_t omin = outMin_[lane];
    std::uint32_t ocnt = outCnt_[lane];
    std::uint64_t ctt = cyclesToTarget_[lane];
    const std::uint32_t window = laneWindow_[lane];
    const BadcoModel &model = *laneModel_[lane];
    const std::size_t ncount = model.nodeWeight.size();
    const std::uint32_t *nw = model.nodeWeight.data();
    const std::uint32_t *nu = model.nodeUops.data();
    const std::uint64_t *nv = model.nodeVaddr.data();
    const std::uint64_t *npc = model.nodePc.data();
    const std::uint8_t *nt = model.nodeType.data();
    const std::int64_t *nd = model.nodeDependsOn.data();
    std::uint64_t *ocomp =
        outComp_.data() +
        static_cast<std::size_t>(lane) * maxOutstanding_;
    std::uint64_t *omark =
        outMark_.data() +
        static_cast<std::size_t>(lane) * maxOutstanding_;
    std::uint64_t *lcomp = loadComp_.data() +
                           slot * waveLoadStride_ + loadOff_[lane];

    const auto expire = [&] {
        if (omin > clk)
            return;
        std::uint64_t min = UINT64_MAX;
        std::uint32_t n = 0;
        for (std::uint32_t j = 0; j < ocnt; ++j) {
            if (ocomp[j] > clk) {
                ocomp[n] = ocomp[j];
                omark[n] = omark[j];
                min = std::min(min, ocomp[j]);
                ++n;
            }
        }
        ocnt = n;
        omin = min;
    };
    const auto check_target = [&] {
        if (ctt != 0 || tu < targetUops_)
            return;
        std::uint64_t t = clk;
        for (std::uint32_t j = 0; j < ocnt; ++j)
            t = std::max(t, ocomp[j]);
        ctt = std::max<std::uint64_t>(t, 1);
    };

    // Resume a parked access: the gathered sweep's way index
    // finishes it, then the post-access tail of the interrupted
    // iteration (outstanding bookkeeping for loads, then
    // check_target / node advance) runs exactly as runLane's.
    if (wavePhase_[slot] != kPhaseTop) {
        const std::uint64_t comp =
            unc.accessFinish(wavePend_[slot], waveResume_[slot]);
        ocomp[ocnt] = comp;
        omark[ocnt] = tu;
        ++ocnt;
        omin = std::min(omin, comp);
        WSEL_ASSERT(seq < model.loadCount,
                    "load numbering overflow");
        lcomp[seq++] = comp;
        wavePhase_[slot] = kPhaseTop;
        check_target();
        ++ni;
    }

    bool parked = false;
    while (clk < until) {
        if (ni >= ncount) {
            // Tail of the slice, then thread restart.
            clk += model.tailWeight;
            tu += model.tailUops;
            check_target();
            ni = 0;
            seq = 0;
            continue;
        }
        const std::size_t i = ni;

        clk += nw[i];
        tu += nu[i];
        expire();

        for (std::uint32_t j = 0; j < ocnt; ++j) {
            if (tu <= omark[j] + window)
                break;
            if (ocomp[j] > clk)
                clk = ocomp[j];
        }
        expire();

        const std::uint64_t vaddr = nv[i];
        const std::uint64_t pc = npc[i];
        switch (static_cast<BadcoReqType>(nt[i])) {
          case BadcoReqType::Load: {
            const std::int64_t depends_on = nd[i];
            if (depends_on >= 0) {
                WSEL_ASSERT(
                    static_cast<std::uint64_t>(depends_on) < seq,
                    "forward load dependency in model");
                const std::uint64_t dep_done = lcomp[depends_on];
                if (dep_done > clk) {
                    clk = dep_done;
                    expire();
                }
            }
            if (ocnt >= maxOutstanding_) {
                if (omin > clk)
                    clk = omin;
                expire();
            }
            wavePend_[slot] = unc.accessBegin(clk, core, vaddr,
                                              false, pc, false);
            wavePhase_[slot] = kPhaseLoad;
            parked = true;
            break;
          }
          case BadcoReqType::Store:
            // Stores, prefetches and writebacks are fire-and-
            // forget: runLane discards their completion, so
            // nothing feeds back into the lane — run them inline
            // (uncore mutation order is identical either way) and
            // save the park/resume spill for the loads that need
            // their completion time.
            unc.access(clk, core, vaddr, true, pc, false);
            break;
          case BadcoReqType::Prefetch:
            unc.access(clk, core, vaddr, false, pc, true);
            break;
          case BadcoReqType::Writeback:
            unc.writeback(clk, core, vaddr);
            break;
        }
        if (parked)
            break;
        check_target();
        ++ni;
    }

    clock_[lane] = clk;
    totalUops_[lane] = tu;
    nodeIdx_[lane] = ni;
    loadSeq_[lane] = seq;
    outMin_[lane] = omin;
    outCnt_[lane] = ocnt;
    cyclesToTarget_[lane] = ctt;
    return parked;
}

} // namespace wsel
