#include "sim/batch.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "cache/tagscan.hh"
#include "obs/metrics.hh"
#include "stats/logging.hh"

namespace wsel
{

std::uint32_t
resolveBatchCells(std::uint32_t requested)
{
    std::uint64_t b = requested;
    if (b == 0) {
        b = kDefaultBatchCells;
        if (const char *env = std::getenv("WSEL_BATCH_CELLS");
            env && *env) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && v > 0) {
                b = v;
            } else {
                warn("ignoring invalid WSEL_BATCH_CELLS '" +
                     std::string(env) + "' (want a positive cell "
                     "count)");
            }
        }
    }
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        b, 1, kMaxBatchCells));
}

BadcoBatchRunner::BadcoBatchRunner(
    std::span<const UncoreConfig> ucfgs, std::uint32_t cores,
    std::uint64_t target_uops,
    const std::vector<const BadcoModel *> &models,
    std::uint32_t batch_cells, std::uint32_t window,
    std::uint32_t max_outstanding, std::uint64_t quantum)
    : ucfgs_(ucfgs), cores_(cores), targetUops_(target_uops),
      models_(models),
      batchCells_(std::clamp<std::uint32_t>(batch_cells, 1,
                                            kMaxBatchCells)),
      windowOverride_(window), maxOutstanding_(max_outstanding),
      quantum_(quantum)
{
    if (cores_ == 0)
        WSEL_FATAL("need at least one core");
    if (targetUops_ == 0)
        WSEL_FATAL("target µop count cannot be zero");
    if (quantum_ == 0)
        WSEL_FATAL("quantum cannot be zero");
    if (maxOutstanding_ == 0)
        WSEL_FATAL("degenerate BADCO machine limits");

    const std::size_t lanes =
        static_cast<std::size_t>(batchCells_) * cores_;
    cellSeed_.resize(batchCells_);
    cellPolicy_.resize(batchCells_);
    cellOut_.resize(batchCells_);
    clock_.resize(lanes);
    totalUops_.resize(lanes);
    nodeIdx_.resize(lanes);
    loadSeq_.resize(lanes);
    outMin_.resize(lanes);
    outCnt_.resize(lanes);
    cyclesToTarget_.resize(lanes);
    laneWindow_.resize(lanes);
    laneModel_.resize(lanes);
    loadOff_.resize(lanes);
    outComp_.resize(lanes * maxOutstanding_);
    outMark_.resize(lanes * maxOutstanding_);

    if (obs::metricsEnabled()) {
        obs::gauge("batch.simd_path")
            .set(static_cast<double>(tagscan::activePath()));
    }
}

void
BadcoBatchRunner::add(std::uint64_t seed, std::uint32_t policy,
                      std::span<const std::uint32_t> benches,
                      double *out_ipc)
{
    if (full())
        run();
    if (benches.size() != cores_)
        WSEL_FATAL("workload has " << benches.size()
                                   << " threads for " << cores_
                                   << " cores");
    if (policy >= ucfgs_.size())
        WSEL_FATAL("cell references policy " << policy
                   << " outside the campaign's " << ucfgs_.size());

    const std::size_t b = cells_;
    // Cells execute one at a time (cell-major run()), so every
    // cell's lanes share the same load-completion arena region —
    // the arena is sized for the largest single cell, not the
    // whole batch.
    std::size_t load_watermark = 0;
    cellSeed_[b] = seed;
    cellPolicy_[b] = policy;
    cellOut_[b] = out_ipc;
    for (std::uint32_t k = 0; k < cores_; ++k) {
        const std::uint32_t bench = benches[k];
        if (bench >= models_.size() || models_[bench] == nullptr)
            WSEL_FATAL("no BADCO model for benchmark " << bench);
        const BadcoModel &model = *models_[bench];
        if (model.traceUops == 0 || model.intrinsicCycles == 0)
            WSEL_FATAL("empty BADCO model for " << model.benchmark);
        if (!model.finalized)
            WSEL_FATAL("BADCO model for " << model.benchmark
                       << " was not finalize()d");
        const std::uint32_t window =
            windowOverride_ == 0 ? model.window : windowOverride_;
        if (window == 0)
            WSEL_FATAL("degenerate BADCO machine limits");
        const std::size_t lane =
            static_cast<std::size_t>(b) * cores_ + k;
        clock_[lane] = 0;
        totalUops_[lane] = 0;
        nodeIdx_[lane] = 0;
        loadSeq_[lane] = 0;
        outMin_[lane] = UINT64_MAX;
        outCnt_[lane] = 0;
        cyclesToTarget_[lane] = 0;
        laneWindow_[lane] = window;
        laneModel_[lane] = &model;
        loadOff_[lane] = load_watermark;
        load_watermark += model.loadCount;
    }
    if (loadComp_.size() < load_watermark)
        loadComp_.resize(load_watermark);
    ++cells_;
}

void
BadcoBatchRunner::run()
{
    if (cells_ == 0)
        return;
    const bool metrics = obs::metricsEnabled();
    obs::Gauge *lanes_active = nullptr;
    if (metrics) {
        static obs::Counter &cellsC = obs::counter("batch.cells");
        static obs::Gauge &lanesG =
            obs::gauge("batch.lanes_active");
        cellsC.inc(cells_);
        lanes_active = &lanesG;
        lanesG.set(static_cast<double>(cells_ * cores_));
    }

    // Cell-major execution: each cell runs to completion under the
    // rotating-quantum schedule of BadcoMulticoreSim::run before
    // the next cell starts. Cells share nothing, so this ordering
    // is bitwise identical to any cross-cell interleaving — and it
    // keeps one uncore's working set hot instead of cycling B of
    // them through the host cache every quantum.
    for (std::size_t b = 0; b < cells_; ++b) {
        uncore_.emplace(ucfgs_[cellPolicy_[b]], cores_,
                        cellSeed_[b]);
        Uncore &unc = *uncore_;
        const std::size_t base = b * cores_;
        std::uint64_t t = 0;
        std::uint32_t first = 0;
        for (;;) {
            bool all_done = true;
            for (std::uint32_t k = 0; k < cores_; ++k)
                all_done =
                    all_done && cyclesToTarget_[base + k] != 0;
            if (all_done)
                break;
            t += quantum_;
            for (std::uint32_t i = 0; i < cores_; ++i) {
                std::uint32_t k = first + i;
                if (k >= cores_)
                    k -= cores_;
                const std::size_t lane = base + k;
                if (clock_[lane] < t)
                    runLane(lane, unc, k, t);
            }
            first = first + 1 == cores_ ? 0 : first + 1;
        }
        double *out = cellOut_[b];
        for (std::uint32_t k = 0; k < cores_; ++k)
            out[k] = static_cast<double>(targetUops_) /
                     static_cast<double>(cyclesToTarget_[base + k]);
        uncore_.reset();
        if (lanes_active)
            lanes_active->set(static_cast<double>(
                (cells_ - b - 1) * cores_));
    }
    cells_ = 0;
}

void
BadcoBatchRunner::runLane(std::size_t lane, Uncore &unc,
                          std::uint32_t core, std::uint64_t until)
{
    // Lane state in locals for the step loop; written back once at
    // quantum end. The loop body is BadcoMachine::step() operation
    // for operation (minus the pure stall/request counters, which
    // never feed back into timing) — any divergence here breaks
    // the bitwise-identity contract, so change both together.
    std::uint64_t clk = clock_[lane];
    std::uint64_t tu = totalUops_[lane];
    std::size_t ni = nodeIdx_[lane];
    std::uint64_t seq = loadSeq_[lane];
    std::uint64_t omin = outMin_[lane];
    std::uint32_t ocnt = outCnt_[lane];
    std::uint64_t ctt = cyclesToTarget_[lane];
    const std::uint32_t window = laneWindow_[lane];
    const BadcoModel &model = *laneModel_[lane];
    const std::size_t ncount = model.nodeWeight.size();
    const std::uint32_t *nw = model.nodeWeight.data();
    const std::uint32_t *nu = model.nodeUops.data();
    const std::uint64_t *nv = model.nodeVaddr.data();
    const std::uint64_t *npc = model.nodePc.data();
    const std::uint8_t *nt = model.nodeType.data();
    const std::int64_t *nd = model.nodeDependsOn.data();
    std::uint64_t *ocomp =
        outComp_.data() +
        static_cast<std::size_t>(lane) * maxOutstanding_;
    std::uint64_t *omark =
        outMark_.data() +
        static_cast<std::size_t>(lane) * maxOutstanding_;
    std::uint64_t *lcomp = loadComp_.data() + loadOff_[lane];

    const auto expire = [&] {
        if (omin > clk)
            return;
        std::uint64_t min = UINT64_MAX;
        std::uint32_t n = 0;
        for (std::uint32_t j = 0; j < ocnt; ++j) {
            if (ocomp[j] > clk) {
                ocomp[n] = ocomp[j];
                omark[n] = omark[j];
                min = std::min(min, ocomp[j]);
                ++n;
            }
        }
        ocnt = n;
        omin = min;
    };
    const auto check_target = [&] {
        if (ctt != 0 || tu < targetUops_)
            return;
        std::uint64_t t = clk;
        for (std::uint32_t j = 0; j < ocnt; ++j)
            t = std::max(t, ocomp[j]);
        ctt = std::max<std::uint64_t>(t, 1);
    };

    while (clk < until) {
        if (ni >= ncount) {
            // Tail of the slice, then thread restart.
            clk += model.tailWeight;
            tu += model.tailUops;
            check_target();
            ni = 0;
            seq = 0;
            continue;
        }
        const std::size_t i = ni;

        clk += nw[i];
        tu += nu[i];
        expire();

        for (std::uint32_t j = 0; j < ocnt; ++j) {
            if (tu <= omark[j] + window)
                break;
            if (ocomp[j] > clk)
                clk = ocomp[j];
        }
        expire();

        const std::uint64_t vaddr = nv[i];
        const std::uint64_t pc = npc[i];
        switch (static_cast<BadcoReqType>(nt[i])) {
          case BadcoReqType::Load: {
            const std::int64_t depends_on = nd[i];
            if (depends_on >= 0) {
                WSEL_ASSERT(
                    static_cast<std::uint64_t>(depends_on) < seq,
                    "forward load dependency in model");
                const std::uint64_t dep_done = lcomp[depends_on];
                if (dep_done > clk) {
                    clk = dep_done;
                    expire();
                }
            }
            if (ocnt >= maxOutstanding_) {
                if (omin > clk)
                    clk = omin;
                expire();
            }
            const std::uint64_t comp =
                unc.access(clk, core, vaddr, false, pc, false);
            ocomp[ocnt] = comp;
            omark[ocnt] = tu;
            ++ocnt;
            omin = std::min(omin, comp);
            WSEL_ASSERT(seq < model.loadCount,
                        "load numbering overflow");
            lcomp[seq++] = comp;
            break;
          }
          case BadcoReqType::Store:
            unc.access(clk, core, vaddr, true, pc, false);
            break;
          case BadcoReqType::Prefetch:
            unc.access(clk, core, vaddr, false, pc, true);
            break;
          case BadcoReqType::Writeback:
            unc.writeback(clk, core, vaddr);
            break;
        }
        check_target();
        ++ni;
    }

    clock_[lane] = clk;
    totalUops_[lane] = tu;
    nodeIdx_[lane] = ni;
    loadSeq_[lane] = seq;
    outMin_[lane] = omin;
    outCnt_[lane] = ocnt;
    cyclesToTarget_[lane] = ctt;
}

} // namespace wsel
