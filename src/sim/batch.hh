/**
 * @file
 * Batched BADCO cell execution: B campaign cells per scheduler task.
 *
 * The population/adaptive/hybrid runners used to simulate one
 * (workload, policy) cell at a time — each cell constructing a
 * BadcoMulticoreSim, an Uncore and K heap-allocated BadcoMachines,
 * stepping them to the target, then tearing everything down. This
 * engine transposes that machine state into structure-of-arrays
 * slabs over B x K *lanes* (lane = one core of one cell): per-lane
 * window cursors, node walks, outstanding-miss minima and IPC
 * accumulators live in flat reusable arrays, and a quantum loop
 * advances all K lanes of a cell together through the rotating
 * schedule. Cells execute cell-major by default — each runs to
 * completion before the next starts — because cells share nothing:
 * any cross-cell interleaving is bitwise identical, and cell-major
 * keeps exactly one uncore's working set (tags, page table,
 * prefetcher state) hot in the host cache while peak RSS stays
 * flat in B. What the batch amortizes is setup: one runner's lane
 * slabs, load-completion arena and uncore slot are reused by every
 * cell, the batch's cells share benchmark model node arrays, and
 * the detailed path pins each row's trace chunks once per batch
 * (trace/trace_store.hh BatchPin). Cells own private Uncore
 * instances (the paper's sharing is within a cell, never across
 * cells) stepped through devirtualized calls; the packed 32-bit
 * LLC tag arrays they probe resolve through the runtime-dispatched
 * SWAR/SSE2/AVX2 tag-scan paths (cache/tagscan.hh, WSEL_SIMD).
 *
 * Wavefront mode (--batch-wave / WSEL_BATCH_WAVE) exploits that
 * same share-nothing structure the other way: W cells advance in
 * lockstep, one quantum at a time, with W uncores resident
 * simultaneously. Each cell's lane stepping *parks* at its next
 * LLC access (mem/uncore.hh accessBegin) and the wave driver
 * resolves all parked cells' tag scans in one gathered SIMD sweep
 * (cache/tagscan.hh findMany) before resuming them — the probes
 * touch W disjoint tag arrays, so gathering is free of conflicts
 * by construction, and the per-cell operation order is untouched,
 * so shard artifacts stay byte-for-byte identical at every
 * (wave, batch, jobs) combination, including kill/resume at a
 * different wave size (tests/test_batch.cc). W is clamped so the
 * resident uncore working set fits WSEL_WAVE_MEM (MiB); NUMA
 * placement of the slabs follows mem/numa.hh (WSEL_NUMA).
 *
 * Determinism contract (docs/PARALLELISM.md): every cell is an
 * independent computation — its own seed (campaignCellSeed keyed by
 * absolute rank), its own uncore, its own lanes — so interleaving
 * cells at quantum granularity cannot change any cell's result. The
 * per-lane stepping below replicates BadcoMachine::step() and the
 * BadcoMulticoreSim rotating-quantum schedule operation for
 * operation, so a batched shard is bitwise identical to the serial
 * engine at every (batch, jobs) combination (tests/test_batch.cc).
 *
 * Batch construction order: callers append cells in row-major
 * (rank, policy) order, which already maximizes shared-benchmark
 * overlap — the np cells of one workload row reference identical
 * benchmark models and are adjacent in the batch, so their model
 * node arrays stay hot across lanes.
 *
 * Knobs: --batch-cells / WSEL_BATCH_CELLS picks B (default 32,
 * 1 disables batching structurally — one cell per run());
 * --batch-wave / WSEL_BATCH_WAVE picks W (default 1 = cell-major);
 * WSEL_WAVE_MEM caps the resident-uncore budget in MiB.
 * Instruments: batch.cells, batch.lanes_active, batch.wave,
 * batch.uncores_resident, batch.probes_gathered,
 * batch.chunk_pins_saved (trace/trace_store.hh BatchPin),
 * batch.simd_path (the resolved tagscan path).
 */

#ifndef WSEL_SIM_BATCH_HH
#define WSEL_SIM_BATCH_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "badco/badco_model.hh"
#include "cache/tagscan.hh"
#include "mem/uncore.hh"
#include "mem/uncore_config.hh"

namespace wsel
{

/** Default cells per batch when WSEL_BATCH_CELLS is unset. */
inline constexpr std::uint32_t kDefaultBatchCells = 32;

/** Upper clamp on cells per batch (bounds lane-slab memory). */
inline constexpr std::uint32_t kMaxBatchCells = 4096;

/** Default wave width when WSEL_BATCH_WAVE is unset: cell-major. */
inline constexpr std::uint32_t kDefaultBatchWave = 1;

/** Resident-uncore budget (MiB) when WSEL_WAVE_MEM is unset. */
inline constexpr std::uint64_t kDefaultWaveMemMib = 256;

/**
 * Resolve the batch size: @p requested when nonzero, else
 * WSEL_BATCH_CELLS, else kDefaultBatchCells; clamped to
 * [1, kMaxBatchCells]. 1 means "serial" (each cell is its own
 * batch); the result is still bitwise identical at any value.
 */
std::uint32_t resolveBatchCells(std::uint32_t requested);

/**
 * Resolve the wave width: @p requested when nonzero, else
 * WSEL_BATCH_WAVE, else kDefaultBatchWave; clamped to
 * [1, kMaxBatchCells]. 1 means cell-major (today's path); the
 * engine additionally clamps so the wave's resident uncores fit
 * the WSEL_WAVE_MEM budget. Bitwise identical at any value.
 */
std::uint32_t resolveBatchWave(std::uint32_t requested);

/**
 * Approximate host bytes one resident Uncore pins while its cell
 * is in flight (LLC tag/dirty/replacement state, page table,
 * translation cache, prefetchers). Used only for the WSEL_WAVE_MEM
 * wave clamp — an estimate, never load-bearing for results.
 */
std::size_t estimateUncoreFootprint(const UncoreConfig &cfg,
                                    std::uint32_t cores);

/**
 * Executes batches of BADCO cells against SoA lane state. One
 * runner is built per shard (or per adaptive row-group) and reused
 * across its batches; add() cells until full() (or done), then
 * run() — results are written straight into each cell's caller
 * buffer. add() on a full runner flushes automatically.
 */
class BadcoBatchRunner
{
  public:
    /**
     * @param ucfgs One UncoreConfig per campaign policy; cells
     *        reference them by index. Caller-owned, must outlive
     *        the runner.
     * @param cores Cores K per cell.
     * @param target_uops Per-thread slice length.
     * @param models One BADCO model per suite benchmark
     *        (caller-owned).
     * @param batch_cells Cells per batch (use resolveBatchCells).
     * @param wave Wave width W (use resolveBatchWave); 1 =
     *        cell-major. Clamped to the batch size and the
     *        WSEL_WAVE_MEM resident-uncore budget.
     * @param window BADCO window override; 0 = per-model
     *        calibrated window (the campaign default).
     * @param max_outstanding Outstanding-load cap per lane.
     * @param quantum Simulation quantum in cycles.
     *
     * The defaults mirror BadcoMulticoreSim's — the identity
     * contract requires both engines to agree on them.
     */
    BadcoBatchRunner(std::span<const UncoreConfig> ucfgs,
                     std::uint32_t cores, std::uint64_t target_uops,
                     const std::vector<const BadcoModel *> &models,
                     std::uint32_t batch_cells,
                     std::uint32_t wave = 1,
                     std::uint32_t window = 0,
                     std::uint32_t max_outstanding = 16,
                     std::uint64_t quantum = 50);

    /**
     * Append one cell. @p benches is copied (callers typically pass
     * a WorkloadCursor span that the next row invalidates);
     * @p out_ipc must point at K doubles that stay valid until the
     * batch containing this cell has run. Flushes first when full.
     *
     * Only the paper's restart protocol (§IV-A, finished threads
     * keep running) is supported — the same protocol every campaign
     * path uses.
     */
    void add(std::uint64_t seed, std::uint32_t policy,
             std::span<const std::uint32_t> benches,
             double *out_ipc);

    /** Cells appended and not yet run. */
    std::size_t pending() const { return cells_; }

    /** True when the next add() would flush. */
    bool full() const { return cells_ >= batchCells_; }

    /** Resolved batch capacity B. */
    std::uint32_t capacity() const { return batchCells_; }

    /** Resolved wave width W after batch and budget clamps. */
    std::uint32_t wave() const { return wave_; }

    /** Run all pending cells to completion and clear the batch. */
    void run();

  private:
    void runLane(std::size_t lane, Uncore &unc, std::uint32_t core,
                 std::uint64_t until);

    /** Where a parked wave lane re-enters runLaneWave(). Only
     *  loads park — stores/prefetches/writebacks discard their
     *  completion, so they run inline. */
    enum : std::uint8_t
    {
        kPhaseTop = 0,  ///< not parked: next node from the top
        kPhaseLoad = 1, ///< parked at a Load access
    };

    /**
     * runLane() with park/resume at LLC accesses: runs lane until
     * it either reaches @p until (returns false) or issues an
     * accessBegin() whose tag scan the wave driver should gather
     * (parks the lane state in wave slots and returns true). On
     * re-entry with wavePhase_[slot] != kPhaseTop the access is
     * finished with waveResume_[slot] first.
     */
    bool runLaneWave(std::size_t slot, std::size_t lane,
                     Uncore &unc, std::uint32_t core,
                     std::uint64_t until);

    /** Wave-interleaved run(): W uncores resident in lockstep. */
    void runWavefront();

    std::span<const UncoreConfig> ucfgs_;
    const std::uint32_t cores_;
    const std::uint64_t targetUops_;
    const std::vector<const BadcoModel *> &models_;
    const std::uint32_t batchCells_;
    const std::uint32_t wave_;
    const std::uint32_t windowOverride_;
    const std::uint32_t maxOutstanding_;
    const std::uint64_t quantum_;

    std::size_t cells_ = 0;

    /** @name Per-cell state, indexed by batch slot [0, cells_). */
    /** @{ */
    /** The running cell's uncore (cell-major: one live at a time). */
    std::optional<Uncore> uncore_;
    std::vector<std::uint64_t> cellSeed_;
    std::vector<std::uint32_t> cellPolicy_;
    std::vector<double *> cellOut_;
    /** Per-cell loadComp_ arena watermark (sum of lane spans). */
    std::vector<std::size_t> cellLoads_;
    /** @} */

    /** @name Per-lane SoA state, lane = cell * cores_ + core. */
    /** @{ */
    std::vector<std::uint64_t> clock_;
    std::vector<std::uint64_t> totalUops_;
    std::vector<std::size_t> nodeIdx_;
    std::vector<std::uint64_t> loadSeq_;
    std::vector<std::uint64_t> outMin_;
    std::vector<std::uint32_t> outCnt_;
    std::vector<std::uint64_t> cyclesToTarget_;
    std::vector<std::uint32_t> laneWindow_;
    std::vector<const BadcoModel *> laneModel_;
    /** loadCompletion arena offset of each lane (cell-local:
     *  cell-major execution lets all cells share one region). */
    std::vector<std::size_t> loadOff_;
    /** @} */

    /** @name Slabs (capacity fixed at construction). */
    /** @{ */
    /** Outstanding loads: lane * maxOutstanding_ + j. */
    std::vector<std::uint64_t> outComp_;
    std::vector<std::uint64_t> outMark_;
    /** Per-iteration load completions, packed by loadOff_. */
    std::vector<std::uint64_t> loadComp_;
    /** @} */

    /** @name Wave state, indexed by wave slot [0, group size). */
    /** @{ */
    /** Resident uncores of the in-flight wave group. */
    std::vector<std::optional<Uncore>> waveUnc_;
    /** Per-cell quantum deadline t of the rotating schedule. */
    std::vector<std::uint64_t> waveT_;
    /** Per-cell rotation origin (BadcoMulticoreSim's `first`). */
    std::vector<std::uint32_t> waveFirst_;
    /** Lanes already visited in the current quantum rotation. */
    std::vector<std::uint32_t> waveRot_;
    std::vector<std::uint8_t> waveDone_;
    std::vector<std::uint8_t> waveStepping_;
    /** Park phase per cell (kPhaseTop = not parked). */
    std::vector<std::uint8_t> wavePhase_;
    /** The parked access, valid while wavePhase_ != kPhaseTop. */
    std::vector<Uncore::PendingAccess> wavePend_;
    /** Way index handed back to the parked cell by the sweep. */
    std::vector<std::uint32_t> waveResume_;
    /** Gather buffers of one sweep: cells, probes, way results. */
    std::vector<std::uint32_t> wavePendCell_;
    std::vector<tagscan::Probe> waveProbe_;
    std::vector<std::uint32_t> waveWay_;
    /** loadComp_ bytes per wave slot: with W cells resident the
     *  arena can no longer be shared (cell-major lets every cell
     *  reuse region [0, cellLoads_)), so each slot gets its own
     *  stride-sized region for the lifetime of its group. */
    std::size_t waveLoadStride_ = 0;
    /** @} */
};

} // namespace wsel

#endif // WSEL_SIM_BATCH_HH
