/**
 * @file
 * Batched BADCO cell execution: B campaign cells per scheduler task.
 *
 * The population/adaptive/hybrid runners used to simulate one
 * (workload, policy) cell at a time — each cell constructing a
 * BadcoMulticoreSim, an Uncore and K heap-allocated BadcoMachines,
 * stepping them to the target, then tearing everything down. This
 * engine transposes that machine state into structure-of-arrays
 * slabs over B x K *lanes* (lane = one core of one cell): per-lane
 * window cursors, node walks, outstanding-miss minima and IPC
 * accumulators live in flat reusable arrays, and a quantum loop
 * advances all K lanes of a cell together through the rotating
 * schedule. Cells execute cell-major — each runs to completion
 * before the next starts — because cells share nothing: any
 * cross-cell interleaving is bitwise identical, and cell-major
 * keeps exactly one uncore's working set (tags, page table,
 * prefetcher state) hot in the host cache while peak RSS stays
 * flat in B. What the batch amortizes is setup: one runner's lane
 * slabs, load-completion arena and uncore slot are reused by every
 * cell, the batch's cells share benchmark model node arrays, and
 * the detailed path pins each row's trace chunks once per batch
 * (trace/trace_store.hh BatchPin). Cells own private Uncore
 * instances (the paper's sharing is within a cell, never across
 * cells) stepped through devirtualized calls; the packed 32-bit
 * LLC tag arrays they probe resolve through the runtime-dispatched
 * SWAR/SSE2/AVX2 tag-scan paths (cache/tagscan.hh, WSEL_SIMD).
 *
 * Determinism contract (docs/PARALLELISM.md): every cell is an
 * independent computation — its own seed (campaignCellSeed keyed by
 * absolute rank), its own uncore, its own lanes — so interleaving
 * cells at quantum granularity cannot change any cell's result. The
 * per-lane stepping below replicates BadcoMachine::step() and the
 * BadcoMulticoreSim rotating-quantum schedule operation for
 * operation, so a batched shard is bitwise identical to the serial
 * engine at every (batch, jobs) combination (tests/test_batch.cc).
 *
 * Batch construction order: callers append cells in row-major
 * (rank, policy) order, which already maximizes shared-benchmark
 * overlap — the np cells of one workload row reference identical
 * benchmark models and are adjacent in the batch, so their model
 * node arrays stay hot across lanes.
 *
 * Knobs: --batch-cells / WSEL_BATCH_CELLS picks B (default 32,
 * 1 disables batching structurally — one cell per run()).
 * Instruments: batch.cells, batch.lanes_active,
 * batch.chunk_pins_saved (trace/trace_store.hh BatchPin),
 * batch.simd_path (the resolved tagscan path).
 */

#ifndef WSEL_SIM_BATCH_HH
#define WSEL_SIM_BATCH_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "badco/badco_model.hh"
#include "mem/uncore.hh"
#include "mem/uncore_config.hh"

namespace wsel
{

/** Default cells per batch when WSEL_BATCH_CELLS is unset. */
inline constexpr std::uint32_t kDefaultBatchCells = 32;

/** Upper clamp on cells per batch (bounds lane-slab memory). */
inline constexpr std::uint32_t kMaxBatchCells = 4096;

/**
 * Resolve the batch size: @p requested when nonzero, else
 * WSEL_BATCH_CELLS, else kDefaultBatchCells; clamped to
 * [1, kMaxBatchCells]. 1 means "serial" (each cell is its own
 * batch); the result is still bitwise identical at any value.
 */
std::uint32_t resolveBatchCells(std::uint32_t requested);

/**
 * Executes batches of BADCO cells against SoA lane state. One
 * runner is built per shard (or per adaptive row-group) and reused
 * across its batches; add() cells until full() (or done), then
 * run() — results are written straight into each cell's caller
 * buffer. add() on a full runner flushes automatically.
 */
class BadcoBatchRunner
{
  public:
    /**
     * @param ucfgs One UncoreConfig per campaign policy; cells
     *        reference them by index. Caller-owned, must outlive
     *        the runner.
     * @param cores Cores K per cell.
     * @param target_uops Per-thread slice length.
     * @param models One BADCO model per suite benchmark
     *        (caller-owned).
     * @param batch_cells Cells per batch (use resolveBatchCells).
     * @param window BADCO window override; 0 = per-model
     *        calibrated window (the campaign default).
     * @param max_outstanding Outstanding-load cap per lane.
     * @param quantum Simulation quantum in cycles.
     *
     * The defaults mirror BadcoMulticoreSim's — the identity
     * contract requires both engines to agree on them.
     */
    BadcoBatchRunner(std::span<const UncoreConfig> ucfgs,
                     std::uint32_t cores, std::uint64_t target_uops,
                     const std::vector<const BadcoModel *> &models,
                     std::uint32_t batch_cells,
                     std::uint32_t window = 0,
                     std::uint32_t max_outstanding = 16,
                     std::uint64_t quantum = 50);

    /**
     * Append one cell. @p benches is copied (callers typically pass
     * a WorkloadCursor span that the next row invalidates);
     * @p out_ipc must point at K doubles that stay valid until the
     * batch containing this cell has run. Flushes first when full.
     *
     * Only the paper's restart protocol (§IV-A, finished threads
     * keep running) is supported — the same protocol every campaign
     * path uses.
     */
    void add(std::uint64_t seed, std::uint32_t policy,
             std::span<const std::uint32_t> benches,
             double *out_ipc);

    /** Cells appended and not yet run. */
    std::size_t pending() const { return cells_; }

    /** True when the next add() would flush. */
    bool full() const { return cells_ >= batchCells_; }

    /** Resolved batch capacity B. */
    std::uint32_t capacity() const { return batchCells_; }

    /** Run all pending cells to completion and clear the batch. */
    void run();

  private:
    void runLane(std::size_t lane, Uncore &unc, std::uint32_t core,
                 std::uint64_t until);

    std::span<const UncoreConfig> ucfgs_;
    const std::uint32_t cores_;
    const std::uint64_t targetUops_;
    const std::vector<const BadcoModel *> &models_;
    const std::uint32_t batchCells_;
    const std::uint32_t windowOverride_;
    const std::uint32_t maxOutstanding_;
    const std::uint64_t quantum_;

    std::size_t cells_ = 0;

    /** @name Per-cell state, indexed by batch slot [0, cells_). */
    /** @{ */
    /** The running cell's uncore (cell-major: one live at a time). */
    std::optional<Uncore> uncore_;
    std::vector<std::uint64_t> cellSeed_;
    std::vector<std::uint32_t> cellPolicy_;
    std::vector<double *> cellOut_;
    /** @} */

    /** @name Per-lane SoA state, lane = cell * cores_ + core. */
    /** @{ */
    std::vector<std::uint64_t> clock_;
    std::vector<std::uint64_t> totalUops_;
    std::vector<std::size_t> nodeIdx_;
    std::vector<std::uint64_t> loadSeq_;
    std::vector<std::uint64_t> outMin_;
    std::vector<std::uint32_t> outCnt_;
    std::vector<std::uint64_t> cyclesToTarget_;
    std::vector<std::uint32_t> laneWindow_;
    std::vector<const BadcoModel *> laneModel_;
    /** loadCompletion arena offset of each lane (cell-local:
     *  cell-major execution lets all cells share one region). */
    std::vector<std::size_t> loadOff_;
    /** @} */

    /** @name Slabs (capacity fixed at construction). */
    /** @{ */
    /** Outstanding loads: lane * maxOutstanding_ + j. */
    std::vector<std::uint64_t> outComp_;
    std::vector<std::uint64_t> outMark_;
    /** Per-iteration load completions, packed by loadOff_. */
    std::vector<std::uint64_t> loadComp_;
    /** @} */
};

} // namespace wsel

#endif // WSEL_SIM_BATCH_HH
