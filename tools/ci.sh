#!/usr/bin/env sh
# CI entry point: build and test the release and asan-ubsan presets.
#
# The tier-1 command (cmake -B build -S . && cmake --build build &&
# ctest) is unchanged; this script is a superset used to shake out
# memory and UB errors in the persistence / fault-injection paths.
#
# Usage: tools/ci.sh [preset ...]   (default: release asan-ubsan)

set -eu

cd "$(dirname "$0")/.."

presets="${*:-release asan-ubsan}"

for preset in $presets; do
    echo "==> configure: $preset"
    cmake --preset "$preset"
    echo "==> build: $preset"
    cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || echo 4)"
    echo "==> test: $preset"
    ctest --preset "$preset"
done

echo "ci: all presets passed"
