#!/usr/bin/env sh
# CI entry point: build and test the release, asan-ubsan and tsan
# presets.
#
# The tier-1 command (cmake -B build -S . && cmake --build build &&
# ctest) is unchanged; this script is a superset used to shake out
# memory and UB errors in the persistence / fault-injection paths
# and data races in the exec/ scheduler and in src/obs/ (the tsan
# test preset runs the scheduler, parallel-campaign determinism,
# and observability suites under ThreadSanitizer).
#
# After the release preset passes, a 2-core smoke campaign archives
# sample observability artifacts (metrics.json and trace.json,
# docs/OBSERVABILITY.md) under build-release/obs-smoke/, and
# table3_sim_speed records the trace-store hot-path throughput
# (cells/sec at --jobs 1/8 plus the trace_store.* counter snapshot,
# docs/PERFORMANCE.md) to build-release/BENCH_trace_store.json.
#
# Usage: tools/ci.sh [preset ...]   (default: release asan-ubsan
#        tsan)

set -eu

cd "$(dirname "$0")/.."

presets="${*:-release asan-ubsan tsan}"

for preset in $presets; do
    echo "==> configure: $preset"
    cmake --preset "$preset"
    echo "==> build: $preset"
    cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || echo 4)"
    echo "==> test: $preset"
    ctest --preset "$preset"

    if [ "$preset" = "release" ]; then
        echo "==> obs smoke artifacts: $preset"
        smoke="build-release/obs-smoke"
        rm -rf "$smoke"
        mkdir -p "$smoke"
        WSEL_CACHE_DIR="$smoke/cache" \
            ./build-release/tools/wsel_cli campaign \
            --cores 2 --insns 5000 --limit 12 --jobs 2 \
            --out "$smoke/campaign.csv" \
            --metrics-out "$smoke/metrics.json" \
            --trace-out "$smoke/trace.json"
        test -s "$smoke/metrics.json"
        test -s "$smoke/trace.json"
        rm -rf "$smoke/cache"
        echo "==> obs artifacts archived in $smoke"

        echo "==> trace-store bench: $preset"
        WSEL_CACHE_DIR="$smoke/cache" \
        WSEL_INSNS=20000 \
        WSEL_SPEED_REPS=2 \
        WSEL_SCALE_WORKLOADS=8 \
        WSEL_TS_WORKLOADS=12 \
        WSEL_BENCH_JSON="build-release/BENCH_trace_store.json" \
            ./build-release/bench/table3_sim_speed
        test -s "build-release/BENCH_trace_store.json"
        rm -rf "$smoke/cache"
        echo "==> bench archived in build-release/BENCH_trace_store.json"
    fi
done

echo "ci: all presets passed"
