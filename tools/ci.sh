#!/usr/bin/env sh
# CI entry point: build and test the release, asan-ubsan and tsan
# presets.
#
# The tier-1 command (cmake -B build -S . && cmake --build build &&
# ctest) is unchanged; this script is a superset used to shake out
# memory and UB errors in the persistence / fault-injection paths
# and data races in the exec/ scheduler (the tsan test preset runs
# the scheduler and parallel-campaign determinism suites under
# ThreadSanitizer).
#
# Usage: tools/ci.sh [preset ...]   (default: release asan-ubsan
#        tsan)

set -eu

cd "$(dirname "$0")/.."

presets="${*:-release asan-ubsan tsan}"

for preset in $presets; do
    echo "==> configure: $preset"
    cmake --preset "$preset"
    echo "==> build: $preset"
    cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || echo 4)"
    echo "==> test: $preset"
    ctest --preset "$preset"
done

echo "ci: all presets passed"
