#!/usr/bin/env sh
# CI entry point: build and test the release, asan-ubsan and tsan
# presets.
#
# The tier-1 command (cmake -B build -S . && cmake --build build &&
# ctest) is unchanged; this script is a superset used to shake out
# memory and UB errors in the persistence / fault-injection paths
# and data races in the exec/ scheduler and in src/obs/ (the tsan
# test preset runs the scheduler, parallel-campaign determinism,
# and observability suites under ThreadSanitizer).
#
# After the release preset passes, a 2-core smoke campaign archives
# sample observability artifacts (metrics.json and trace.json,
# docs/OBSERVABILITY.md) under build-release/obs-smoke/, and
# table3_sim_speed records the trace-store hot-path throughput
# (cells/sec at --jobs 1/8 plus the trace_store.* counter snapshot,
# docs/PERFORMANCE.md) to build-release/BENCH_trace_store.json;
# fig5_inverse_cv_population records the population-engine numbers
# (old-vs-streamed cells/sec and the 8-core streamed run, docs/
# PERFORMANCE.md "Population campaigns") to
# build-release/BENCH_population.json, and the batched-cell-engine
# sweep plus the wavefront (jobs x batch x wave) matrix
# (docs/PERFORMANCE.md "Batched execution" and "Wavefront
# interleaving") to build-release/BENCH_batch.json, which doubles
# as a throughput floor check: batch=32 must not run slower than
# batch=1, the campaign wave matrix must not collapse below 0.5x
# cell-major, and BM_WaveStep must hold >= 0.95x BM_BatchStep on
# the load-heavy cells the gathered tag-scan sweeps target.
#
# Every sanitizer preset also runs a capped `wsel_cli population`
# smoke, exercising the streamed campaign_v3 writer, the parallel
# shard runner, and the one-pass statistics under asan/ubsan and
# tsan — three times, at --batch-cells 1, --batch-cells 8, and
# --batch-cells 8 --batch-wave 4 (wavefront interleaving with
# gathered tag scans), with a byte-compare of the shards (the
# sim/batch.hh identity contract under the sanitizer) — plus a
# `wsel_cli adaptive` smoke (sequential
# stopping rule with a resume pass, docs/SAMPLING.md), both
# adaptive and hybrid smokes running their cells through the
# batched engine; the release leg archives the adaptive-vs-fixed
# cell counts to build-release/BENCH_adaptive.json.
#
# The mixed-fidelity layer (docs/FIDELITY.md) gets a smoke on every
# sanitizer preset — calibrate, SIGKILL a hybrid campaign at the
# `fidelity.escalate` kill point, resume to a committed report —
# and the release leg archives hybrid_fidelity's escalation-budget
# vs ranking-accuracy sweep to build-release/BENCH_hybrid.json.
#
# Usage: tools/ci.sh [preset ...]   (default: release asan-ubsan
#        tsan)

set -eu

cd "$(dirname "$0")/.."

presets="${*:-release asan-ubsan tsan}"

for preset in $presets; do
    echo "==> configure: $preset"
    cmake --preset "$preset"
    echo "==> build: $preset"
    cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || echo 4)"
    echo "==> test: $preset"
    ctest --preset "$preset"

    case "$preset" in
      release)   bindir="build-release" ;;
      asan-ubsan) bindir="build-asan" ;;
      tsan)      bindir="build-tsan" ;;
      *)         bindir="build-$preset" ;;
    esac

    if [ "$preset" = "asan-ubsan" ] || [ "$preset" = "tsan" ]; then
        echo "==> population smoke: $preset"
        popdir="$bindir/population-smoke"
        rm -rf "$popdir"
        WSEL_CACHE_DIR="$popdir/cache" \
            "./$bindir/tools/wsel_cli" population \
            --out "$popdir/pop.v3" \
            --insns 5000 --limit 64 --shard-size 80 --jobs 4 \
            --batch-cells 1
        test -s "$popdir/pop.v3/manifest.bin"
        # Batched twin of the same campaign: the batched engine
        # (sim/batch.hh) must produce bitwise-identical shards under
        # the sanitizer too.
        WSEL_CACHE_DIR="$popdir/cache" \
            "./$bindir/tools/wsel_cli" population \
            --out "$popdir/pop-batched.v3" \
            --insns 5000 --limit 64 --shard-size 80 --jobs 4 \
            --batch-cells 8
        test -s "$popdir/pop-batched.v3/manifest.bin"
        # Wavefront twin: 4 resident uncores per batch, gathered
        # tag-scan sweeps — same bytes, under the sanitizer.
        WSEL_CACHE_DIR="$popdir/cache" \
            "./$bindir/tools/wsel_cli" population \
            --out "$popdir/pop-wave.v3" \
            --insns 5000 --limit 64 --shard-size 80 --jobs 4 \
            --batch-cells 8 --batch-wave 4
        test -s "$popdir/pop-wave.v3/manifest.bin"
        for shard in "$popdir"/pop.v3/shard-*.bin; do
            cmp "$shard" "$popdir/pop-batched.v3/${shard##*/}"
            cmp "$shard" "$popdir/pop-wave.v3/${shard##*/}"
        done
        rm -rf "$popdir"
        echo "==> population smoke (serial + batched + wave) passed under $preset"

        # Adaptive sequential campaign smoke (docs/SAMPLING.md):
        # live stopping rule, batch artifacts and a resume of the
        # finished run, all under the sanitizer.
        echo "==> adaptive smoke: $preset"
        adadir="$bindir/adaptive-smoke"
        rm -rf "$adadir"
        WSEL_CACHE_DIR="$adadir/cache" \
            "./$bindir/tools/wsel_cli" adaptive \
            --out "$adadir/run" \
            --insns 5000 --cores 2 --batch 16 --budget 64 --jobs 4 \
            --batch-cells 8
        test -s "$adadir/run/adaptive.bin"
        WSEL_CACHE_DIR="$adadir/cache" \
            "./$bindir/tools/wsel_cli" adaptive \
            --out "$adadir/run" \
            --insns 5000 --cores 2 --batch 16 --budget 64 --jobs 4 \
            --batch-cells 8 --resume 1
        rm -rf "$adadir"
        echo "==> adaptive smoke passed under $preset"

        # Mixed-fidelity campaign smoke (docs/FIDELITY.md):
        # calibrate an error profile, start a hybrid campaign that
        # is SIGKILLed at the 3rd escalated detailed cell (after
        # the escalation set committed, mid detailed batch), then
        # resume it to a committed hybrid.bin report — all under
        # the sanitizer.
        echo "==> hybrid fidelity smoke: $preset"
        hybdir="$bindir/hybrid-smoke"
        rm -rf "$hybdir"
        if WSEL_CACHE_DIR="$hybdir/cache" \
            WSEL_KILL_POINT=fidelity.escalate:3 \
            "./$bindir/tools/wsel_cli" hybrid \
            --out "$hybdir/run" \
            --insns 5000 --cores 2 --limit 24 --calibrate 8 \
            --budget-frac 0.25 --batch-rows 2 --jobs 4 \
            --batch-cells 8; then
            echo "hybrid smoke: kill point never fired" >&2
            exit 1
        fi
        test -s "$hybdir/run/fidelity-bitmap.bin"
        test ! -e "$hybdir/run/hybrid.bin"
        WSEL_CACHE_DIR="$hybdir/cache" \
            "./$bindir/tools/wsel_cli" hybrid \
            --out "$hybdir/run" \
            --insns 5000 --cores 2 --limit 24 --calibrate 8 \
            --budget-frac 0.25 --batch-rows 2 --jobs 4 \
            --batch-cells 8
        test -s "$hybdir/run/hybrid.bin"
        rm -rf "$hybdir"
        echo "==> hybrid smoke passed under $preset"

        # Distributed campaign smoke (docs/ROBUSTNESS.md): a
        # wsel_serve daemon, four workers — one of which SIGKILLs
        # itself mid-shard — and a client submission that must
        # still complete with a committed manifest.
        echo "==> distributed campaign smoke: $preset"
        servedir="$bindir/serve-smoke"
        rm -rf "$servedir"
        mkdir -p "$servedir"
        "./$bindir/tools/wsel_serve" \
            --socket "$servedir/serve.sock" \
            --store "$servedir/store" \
            --cache-dir "$servedir/cache" &
        serve_pid=$!
        worker_pids=""
        for i in 1 2 3; do
            "./$bindir/tools/wsel_worker" \
                --socket "$servedir/serve.sock" \
                --cache-dir "$servedir/cache" &
            worker_pids="$worker_pids $!"
        done
        WSEL_KILL_POINT=population.cell:3 \
            "./$bindir/tools/wsel_worker" \
            --socket "$servedir/serve.sock" \
            --cache-dir "$servedir/cache" &
        victim_pid=$!
        "./$bindir/tools/wsel_cli" serve submit \
            --socket "$servedir/serve.sock" \
            --insns 5000 --cores 2 --limit 40 --shard-size 16 \
            --wait 1
        kill -TERM "$serve_pid"
        wait "$serve_pid"
        for pid in $worker_pids; do
            wait "$pid" || true
        done
        wait "$victim_pid" && exit 1 || true # must have died
        test -s "$servedir"/store/c-*/manifest.bin
        rm -rf "$servedir"
        echo "==> distributed smoke passed under $preset"
    fi

    if [ "$preset" = "release" ]; then
        echo "==> obs smoke artifacts: $preset"
        smoke="build-release/obs-smoke"
        rm -rf "$smoke"
        mkdir -p "$smoke"
        WSEL_CACHE_DIR="$smoke/cache" \
            ./build-release/tools/wsel_cli campaign \
            --cores 2 --insns 5000 --limit 12 --jobs 2 \
            --out "$smoke/campaign.csv" \
            --metrics-out "$smoke/metrics.json" \
            --trace-out "$smoke/trace.json"
        test -s "$smoke/metrics.json"
        test -s "$smoke/trace.json"
        rm -rf "$smoke/cache"
        echo "==> obs artifacts archived in $smoke"

        echo "==> trace-store bench: $preset"
        WSEL_CACHE_DIR="$smoke/cache" \
        WSEL_INSNS=20000 \
        WSEL_SPEED_REPS=2 \
        WSEL_SCALE_WORKLOADS=8 \
        WSEL_TS_WORKLOADS=12 \
        WSEL_BENCH_JSON="build-release/BENCH_trace_store.json" \
            ./build-release/bench/table3_sim_speed
        test -s "build-release/BENCH_trace_store.json"
        rm -rf "$smoke/cache"
        echo "==> bench archived in build-release/BENCH_trace_store.json"

        echo "==> population bench: $preset"
        WSEL_CACHE_DIR="$smoke/cache" \
        WSEL_INSNS=20000 \
        WSEL_POP_LIMIT=400 \
        WSEL_POP_BENCH_ROWS=400 \
        WSEL_POP8_ROWS=300 \
        WSEL_BENCH_JSON="build-release/BENCH_population.json" \
        WSEL_BENCH_JSON_BATCH="build-release/BENCH_batch.json" \
            ./build-release/bench/fig5_inverse_cv_population
        test -s "build-release/BENCH_population.json"
        test -s "build-release/BENCH_batch.json"
        # Throughput floor: the batched engine at its default batch
        # size must not run slower than batch=1 on the same 4-core
        # range. 10% head-room absorbs shared-runner noise without
        # masking a real pessimization.
        python3 - build-release/BENCH_batch.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
points = {p["batch"]: p["cells_per_sec"] for p in doc["points"]}
serial, batched = points[1], points[32]
print(f"batch floor: batch=32 {batched:.0f} vs "
      f"batch=1 {serial:.0f} cells/sec")
if batched < 0.9 * serial:
    sys.exit("batched engine slower than batch=1: regression")
# Wavefront campaign backstop: on the mixed fig5 population most
# cells are compute-bound, so per-load park/resume overhead makes
# wave mode measurably slower than cell-major on a single-thread
# host (~0.8x at wave=8, docs/PERFORMANCE.md "Wavefront
# interleaving" has the honest matrix). The backstop only catches
# a catastrophic regression in the wave path itself; the 0.95x
# wave-vs-cell-major floor is enforced below on the load-heavy
# wave microbench, the workload the gathered sweeps are built for.
waves = {(p["jobs"], p["batch"], p["wave"]): p["cells_per_sec"]
         for p in doc["wave_points"]}
for (jobs, batch, wave), cps in sorted(waves.items()):
    if wave == 1:
        continue
    base = waves.get((jobs, batch, 1))
    if base is None:
        continue
    print(f"wave backstop: jobs={jobs} batch={batch} wave={wave} "
          f"{cps:.0f} vs cell-major {base:.0f} cells/sec")
    if cps < 0.5 * base:
        sys.exit(f"wavefront collapsed at jobs={jobs} "
                 f"batch={batch} wave={wave}: regression")
EOF

        # Wavefront floor (wave >= 0.95x cell-major): measured on
        # BM_WaveStep vs BM_BatchStep — load-heavy mcf/povray cells
        # where LLC tag scans dominate and the gathered SIMD sweeps
        # are designed to pay (measured ~1.4x at W=8/32, so 0.95
        # leaves real head-room). Archived into BENCH_batch.json
        # beside the campaign wave matrix.
        echo "==> wavefront microbench floor: $preset"
        ./build-release/bench/microbench \
            --benchmark_filter='BM_(Batch|Wave)Step/(8|32)$' \
            --benchmark_min_time=0.4 \
            --benchmark_out="$smoke/wave_microbench.json" \
            --benchmark_out_format=json
        python3 - "$smoke/wave_microbench.json" \
            build-release/BENCH_batch.json <<'EOF'
import json, sys
mb = json.load(open(sys.argv[1]))
rate = {b["name"]: b["items_per_second"]
        for b in mb["benchmarks"]}
doc = json.load(open(sys.argv[2]))
doc["wave_microbench"] = rate
json.dump(doc, open(sys.argv[2], "w"), indent=1)
for w in (8, 32):
    base = rate[f"BM_BatchStep/{w}"]
    wave = rate[f"BM_WaveStep/{w}"]
    print(f"wave floor: W={w} wave {wave:.0f} vs "
          f"cell-major {base:.0f} cells/sec")
    if wave < 0.95 * base:
        sys.exit(f"wavefront slower than cell-major on "
                 f"load-heavy cells at W={w}: regression")
EOF
        rm -rf "$smoke/cache"
        echo "==> benches archived in build-release/BENCH_population.json and BENCH_batch.json"

        echo "==> adaptive stopping bench: $preset"
        WSEL_CACHE_DIR="$smoke/cache" \
        WSEL_INSNS=20000 \
        WSEL_BENCH_JSON="build-release/BENCH_adaptive.json" \
            ./build-release/bench/adaptive_stopping
        test -s "build-release/BENCH_adaptive.json"
        rm -rf "$smoke/cache"
        echo "==> bench archived in build-release/BENCH_adaptive.json"

        echo "==> hybrid fidelity bench: $preset"
        WSEL_CACHE_DIR="$smoke/cache" \
        WSEL_INSNS=20000 \
        WSEL_HYBRID_BENCHES=4 \
        WSEL_BENCH_JSON="build-release/BENCH_hybrid.json" \
            ./build-release/bench/hybrid_fidelity
        test -s "build-release/BENCH_hybrid.json"
        rm -rf "$smoke/cache"
        echo "==> bench archived in build-release/BENCH_hybrid.json"

        echo "==> serve scaling bench: $preset"
        WSEL_CACHE_DIR="$smoke/cache" \
        WSEL_INSNS=20000 \
        WSEL_SERVE_ROWS=96 \
        WSEL_BENCH_JSON="build-release/BENCH_serve.json" \
            ./build-release/bench/serve_scaling
        test -s "build-release/BENCH_serve.json"
        rm -rf "$smoke/cache"
        echo "==> bench archived in build-release/BENCH_serve.json"
    fi
done

echo "ci: all presets passed"
