/**
 * @file
 * wsel_serve: the campaign-service daemon (docs/ROBUSTNESS.md,
 * "Distributed campaigns").
 *
 *   wsel_serve --socket PATH --store DIR [--cache-dir DIR]
 *       [--max-queued N] [--ttl-ms MS] [--jobs N]
 *
 * Listens on a Unix-domain socket for worker processes
 * (wsel_worker) and clients (wsel_cli serve ...), leases campaign
 * shards, and commits finished campaigns to the content-addressed
 * result store under --store.  Admission control is a bounded
 * queue (--max-queued); SIGTERM or SIGINT starts a graceful drain:
 * no new leases, outstanding ones finish, workers are told to shut
 * down, then the daemon exits 0.
 *
 * Metrics are always collected; the `serve.*` instrument family
 * (docs/OBSERVABILITY.md) is reachable from any client via the
 * metrics endpoint (`wsel_cli serve metrics --socket PATH`).
 */

#include <cstdio>
#include <string>

#include <signal.h>

#include "obs/metrics.hh"
#include "serve/coordinator.hh"
#include "stats/logging.hh"

namespace
{

wsel::serve::Coordinator *g_coordinator = nullptr;

void
onTerminate(int)
{
    if (g_coordinator)
        g_coordinator->requestStop(); // async-signal-safe
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wsel;

    serve::CoordinatorOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (key == "--socket" && val) {
            opts.socketPath = val;
            ++i;
        } else if (key == "--store" && val) {
            opts.storeRoot = val;
            ++i;
        } else if (key == "--cache-dir" && val) {
            opts.cacheDir = val;
            ++i;
        } else if (key == "--max-queued" && val) {
            opts.maxQueued = static_cast<std::size_t>(
                std::strtoull(val, nullptr, 10));
            ++i;
        } else if (key == "--ttl-ms" && val) {
            opts.lease.ttl = std::chrono::milliseconds(
                std::strtoull(val, nullptr, 10));
            ++i;
        } else if (key == "--jobs" && val) {
            opts.jobs = static_cast<std::size_t>(
                std::strtoull(val, nullptr, 10));
            ++i;
        } else {
            std::fprintf(
                stderr,
                "usage: wsel_serve --socket PATH --store DIR "
                "[--cache-dir DIR] [--max-queued N] "
                "[--ttl-ms MS] [--jobs N]\n");
            return 2;
        }
    }
    if (opts.socketPath.empty() || opts.storeRoot.empty()) {
        std::fprintf(stderr, "wsel_serve: --socket and --store "
                             "are required\n");
        return 2;
    }

    try {
        obs::enableMetrics();
        serve::Coordinator coordinator(opts);
        g_coordinator = &coordinator;
        struct sigaction sa = {};
        sa.sa_handler = onTerminate;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        std::fprintf(stderr, "wsel_serve: listening on %s, store "
                             "%s\n",
                     opts.socketPath.c_str(),
                     opts.storeRoot.c_str());
        const int rc = coordinator.run();
        g_coordinator = nullptr;
        return rc;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsel_serve: %s\n", e.what());
        return 2;
    }
}
